"""Tests for Job lifecycle and statistics accumulators."""

import pytest

from repro.errors import SimulationError
from repro.sim.jobs import Job
from repro.sim.stats import ClassStats, SimulationReport


class TestJob:
    def make(self, work=5.0):
        return Job(job_id=1, class_id=0, arrival_time=0.0,
                   service_requirement=work)

    def test_start_returns_completion_time(self):
        j = self.make(5.0)
        assert j.start(2.0) == 7.0

    def test_pause_banks_work(self):
        j = self.make(5.0)
        j.start(0.0)
        j.pause(2.0)
        assert j.remaining == pytest.approx(3.0)
        assert j.start(10.0) == pytest.approx(13.0)

    def test_double_start_rejected(self):
        j = self.make()
        j.start(0.0)
        with pytest.raises(SimulationError):
            j.start(1.0)

    def test_pause_when_not_running_rejected(self):
        with pytest.raises(SimulationError):
            self.make().pause(1.0)

    def test_finish_returns_response_time(self):
        j = self.make(2.0)
        j.start(1.0)
        assert j.finish(3.0) == pytest.approx(3.0)
        assert j.response_time == pytest.approx(3.0)

    def test_response_before_departure_rejected(self):
        with pytest.raises(SimulationError):
            _ = self.make().response_time


class TestClassStats:
    def test_time_average_rectangle(self):
        st = ClassStats(warmup=0.0)
        st.on_arrival(0.0)
        st.on_departure(4.0, 4.0, 0.0)
        st.finalize(8.0)
        # One job for 4 of 8 time units.
        assert st.mean_jobs(8.0) == pytest.approx(0.5)

    def test_warmup_discards_early_area(self):
        st = ClassStats(warmup=10.0)
        st.on_arrival(0.0)           # present the whole run
        st.finalize(20.0)
        assert st.mean_jobs(20.0) == pytest.approx(1.0)

    def test_warmup_discards_early_responses(self):
        st = ClassStats(warmup=10.0)
        st.on_arrival(0.0)
        st.on_departure(5.0, 5.0, 0.0)    # pre-warmup arrival: ignored
        st.on_arrival(12.0)
        st.on_departure(15.0, 3.0, 12.0)
        st.finalize(20.0)
        assert st.completed == 1
        assert st.mean_response_time == pytest.approx(3.0)

    def test_response_std(self):
        st = ClassStats()
        st.on_arrival(0.0)
        st.on_departure(1.0, 1.0, 0.0)
        st.on_arrival(1.0)
        st.on_departure(4.0, 3.0, 1.0)
        st.finalize(4.0)
        assert st.response_time_std == pytest.approx((2.0) ** 0.5, rel=1e-9)

    def test_quantile(self):
        st = ClassStats()
        for i in range(1, 101):
            st.on_arrival(float(i))
            st.on_departure(float(i), float(i), float(i))
        st.finalize(101.0)
        assert st.response_quantile(0.5) == pytest.approx(50.5)


class TestSimulationReport:
    def test_from_stats_aggregates(self):
        st = ClassStats()
        st.on_arrival(0.0)
        st.on_departure(2.0, 2.0, 0.0)
        rep = SimulationReport.from_stats([st], horizon=10.0, warmup=0.0,
                                          events=42)
        assert rep.mean_jobs[0] == pytest.approx(0.2)
        assert rep.throughput[0] == pytest.approx(0.1)
        assert rep.total_mean_jobs == pytest.approx(0.2)
        assert rep.events == 42

    def test_littles_law_gap_small_for_consistent_run(self):
        st = ClassStats()
        t = 0.0
        # Deterministic alternating arrivals/departures: N=0.5, lam=0.5,
        # T=1 -> Little's law holds exactly.
        for i in range(1000):
            st.on_arrival(t)
            st.on_departure(t + 1.0, 1.0, t)
            t += 2.0
        rep = SimulationReport.from_stats([st], horizon=t, warmup=0.0,
                                          events=0)
        assert rep.littles_law_gap[0] < 0.01

    def test_describe_renders(self):
        st = ClassStats()
        st.on_arrival(0.0)
        st.on_departure(1.0, 1.0, 0.0)
        rep = SimulationReport.from_stats([st], 10.0, 0.0, 5)
        text = rep.describe(names=("web",))
        assert "web" in text and "N=" in text
