"""Tests for the time-sharing and space-sharing baselines."""

import math

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.sim import SpaceSharingSimulation, TimeSharingSimulation


def single_class(lam=0.5, mu=1.0, g=4, P=4):
    return SystemConfig(processors=P, classes=(
        ClassConfig.markovian(g, arrival_rate=lam, service_rate=mu,
                              quantum_mean=1.0, overhead_mean=0.0001),))


class TestSpaceSharing:
    def test_whole_machine_jobs_reduce_to_mm1(self):
        # g = P: one job at a time, FCFS, no overhead -> M/M/1.
        lam, mu = 0.6, 1.0
        rep_means = []
        for seed in range(3):
            sim = SpaceSharingSimulation(single_class(lam, mu),
                                         seed=seed, warmup=1500.0)
            rep_means.append(sim.run(25_000.0).mean_jobs[0])
        mean = sum(rep_means) / len(rep_means)
        assert mean == pytest.approx(lam / (mu - lam), rel=0.12)

    def test_small_jobs_reduce_to_mmc(self):
        # g = 1 on P = 2: M/M/2.
        lam, mu, c = 1.2, 1.0, 2
        cfg = single_class(lam, mu, g=1, P=2)
        means = [SpaceSharingSimulation(cfg, seed=s, warmup=1500.0)
                 .run(25_000.0).mean_jobs[0] for s in range(3)]
        rho = lam / (c * mu)
        a = lam / mu
        p0 = 1 / (sum(a ** k / math.factorial(k) for k in range(c))
                  + a ** c / (math.factorial(c) * (1 - rho)))
        expect = p0 * a ** c * rho / (math.factorial(c) * (1 - rho) ** 2) + a
        assert sum(means) / len(means) == pytest.approx(expect, rel=0.12)

    def test_head_of_line_blocking(self):
        # A whole-machine job at the head blocks small jobs even when
        # processors are free: verify FCFS strictness via mixed classes.
        cfg = SystemConfig(processors=4, classes=(
            ClassConfig.markovian(1, arrival_rate=1.0, service_rate=2.0,
                                  quantum_mean=1.0, overhead_mean=0.001),
            ClassConfig.markovian(4, arrival_rate=0.2, service_rate=0.5,
                                  quantum_mean=1.0, overhead_mean=0.001),
        ))
        rep = SpaceSharingSimulation(cfg, seed=1, warmup=1000.0).run(30_000.0)
        # Small jobs' response time far exceeds their bare service time
        # (0.5) because they queue behind whole-machine jobs.
        assert rep.mean_response_time[0] > 1.0


class TestTimeSharing:
    def test_reduces_to_round_robin_mm1(self):
        # One class needing the whole machine: RR over a single queue.
        lam, mu = 0.5, 1.0
        cfg = single_class(lam, mu)
        rep = TimeSharingSimulation(cfg, seed=2, quantum=0.2,
                                    overhead=0.0, warmup=1500.0).run(25_000.0)
        # Zero-overhead fine-grained RR of exponential jobs behaves like
        # processor sharing; mean N still lam/(mu-lam) by symmetry.
        assert rep.mean_jobs[0] == pytest.approx(lam / (mu - lam), rel=0.15)

    def test_overhead_degrades_performance(self):
        cfg = single_class(0.5, 1.0)
        cheap = TimeSharingSimulation(cfg, seed=3, quantum=0.5, overhead=0.0,
                                      warmup=1000.0).run(30_000.0)
        costly = TimeSharingSimulation(cfg, seed=3, quantum=0.5, overhead=0.3,
                                       warmup=1000.0).run(30_000.0)
        assert costly.mean_jobs[0] > cheap.mean_jobs[0]

    def test_wastes_processors_on_small_jobs(self):
        # The paper's argument for space sharing: small jobs on a pure
        # time-shared machine hold all P processors.  With utilization
        # accounted at the machine level, throughput caps at mu even
        # though 4 partitions could run in parallel.
        cfg = SystemConfig(processors=4, classes=(
            ClassConfig.markovian(1, arrival_rate=1.5, service_rate=0.5,
                                  quantum_mean=0.5, overhead_mean=0.001),))
        # Offered partition load = 1.5 / (4 * 0.5) = 0.75 (stable under
        # gang); machine-serial load = 1.5 / 0.5 = 3 (unstable under TS).
        rep = TimeSharingSimulation(cfg, seed=4, quantum=0.5,
                                    overhead=0.001).run(3_000.0)
        # Queue blows up: far more jobs than the gang policy would hold.
        assert rep.mean_jobs[0] > 20
