"""Tests for the decomposed simulator, the lending variant, and the
replication runner."""

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import SimulationError
from repro.phasetype import erlang, exponential
from repro.sim import (
    GangSimulation,
    PartitionLendingSimulation,
    VacationServerSimulation,
    run_replications,
    run_until_precise,
)


class TestVacationServer:
    def test_mm1_limit_with_tiny_vacations(self):
        lam, mu = 0.6, 1.0
        sim = VacationServerSimulation(
            1, exponential(lam), exponential(mu),
            quantum=exponential(mean=100.0),
            vacation=exponential(mean=1e-4),
            seed=0, warmup=2000.0)
        rep = sim.run(60_000.0)
        assert rep.mean_jobs[0] == pytest.approx(lam / (mu - lam), rel=0.08)

    def test_vacations_increase_congestion(self):
        lam, mu = 0.6, 1.0
        base = VacationServerSimulation(
            1, exponential(lam), exponential(mu),
            exponential(mean=2.0), exponential(mean=1e-4),
            seed=1, warmup=1000.0).run(30_000.0)
        vac = VacationServerSimulation(
            1, exponential(lam), exponential(mu),
            exponential(mean=2.0), exponential(mean=1.0),
            seed=1, warmup=1000.0).run(30_000.0)
        assert vac.mean_jobs[0] > base.mean_jobs[0]

    def test_erlang_vacations_run(self):
        sim = VacationServerSimulation(
            2, exponential(0.8), exponential(1.0),
            erlang(2, mean=1.5), erlang(3, mean=0.5),
            seed=2, warmup=100.0)
        rep = sim.run(5000.0)
        assert rep.mean_jobs[0] > 0

    def test_rejects_zero_servers(self):
        with pytest.raises(SimulationError):
            VacationServerSimulation(0, exponential(1.0), exponential(1.0),
                                     exponential(1.0), exponential(1.0))


class TestPartitionLending:
    @pytest.fixture
    def cfg(self):
        return SystemConfig(processors=4, classes=(
            ClassConfig.markovian(1, arrival_rate=0.5, service_rate=0.5,
                                  quantum_mean=2.0, overhead_mean=0.02),
            ClassConfig.markovian(2, arrival_rate=0.5, service_rate=1.0,
                                  quantum_mean=2.0, overhead_mean=0.02),
        ))

    def test_lending_happens(self, cfg):
        sim = PartitionLendingSimulation(cfg, seed=1, warmup=500.0)
        sim.run(20_000.0)
        assert sim.lending_grants > 0

    def test_lending_does_not_leak_capacity(self, cfg):
        sim = PartitionLendingSimulation(cfg, seed=2)
        for t in range(1, 41):
            sim.sim.run(until=t * 50.0)
            assert 0 <= sim._lent <= cfg.processors

    def test_lending_improves_on_modeled_policy(self, cfg):
        base = sum(GangSimulation(cfg, seed=s, warmup=2000.0)
                   .run(40_000.0).total_mean_jobs for s in range(3))
        lend = sum(PartitionLendingSimulation(cfg, seed=s, warmup=2000.0)
                   .run(40_000.0).total_mean_jobs for s in range(3))
        # Work-conserving lending should not hurt overall congestion.
        assert lend < base * 1.05

    def test_littles_law_still_holds(self, cfg):
        rep = PartitionLendingSimulation(cfg, seed=3,
                                         warmup=1000.0).run(30_000.0)
        assert max(rep.littles_law_gap) < 0.03


class TestRunReplications:
    def test_summary_structure(self, two_class_config):
        out = run_replications(
            lambda seed, warmup: GangSimulation(two_class_config, seed=seed,
                                                warmup=warmup),
            replications=3, horizon=3000.0, warmup=200.0)
        assert set(out) == {"mean_jobs", "mean_response_time", "throughput"}
        mj = out["mean_jobs"]
        assert mj.replications == 3
        assert len(mj.mean) == 2
        assert all(h >= 0 for h in mj.half_width)

    def test_interval_contains_its_mean(self, two_class_config):
        out = run_replications(
            lambda seed, warmup: GangSimulation(two_class_config, seed=seed,
                                                warmup=warmup),
            replications=3, horizon=3000.0)
        mj = out["mean_jobs"]
        assert mj.contains(0, mj.mean[0])
        lo, hi = mj.interval(0)
        assert lo <= mj.mean[0] <= hi

    def test_needs_two_replications(self, two_class_config):
        with pytest.raises(ValueError):
            run_replications(lambda s, w: GangSimulation(two_class_config),
                             replications=1, horizon=100.0)

    def test_run_until_precise_hits_target(self, two_class_config):
        target = 0.10
        out = run_until_precise(
            lambda seed, warmup: GangSimulation(two_class_config, seed=seed,
                                                warmup=warmup),
            horizon=6000.0, warmup=500.0,
            target_rel_half_width=target, max_replications=30)
        mj = out["mean_jobs"]
        rel = [h / m for m, h in zip(mj.mean, mj.half_width)]
        assert max(rel) <= target or mj.replications == 30
        assert mj.replications >= 3

    def test_run_until_precise_respects_budget(self, two_class_config):
        out = run_until_precise(
            lambda seed, warmup: GangSimulation(two_class_config, seed=seed,
                                                warmup=warmup),
            horizon=1500.0, target_rel_half_width=0.001,   # unreachable
            max_replications=4)
        assert out["mean_jobs"].replications == 4

    def test_run_until_precise_validation(self, two_class_config):
        factory = lambda s, w: GangSimulation(two_class_config, seed=s)
        with pytest.raises(ValueError):
            run_until_precise(factory, horizon=100.0,
                              target_rel_half_width=1.5)
        with pytest.raises(ValueError):
            run_until_precise(factory, horizon=100.0, quantity="latency")

    def test_half_width_shrinks_with_replications(self, two_class_config):
        def factory(seed, warmup):
            return GangSimulation(two_class_config, seed=seed, warmup=warmup)
        few = run_replications(factory, replications=3, horizon=2000.0,
                               base_seed=0)["mean_jobs"]
        many = run_replications(factory, replications=10, horizon=2000.0,
                                base_seed=0)["mean_jobs"]
        # t-quantile shrinks and 1/sqrt(R) shrinks: expect narrower CIs.
        assert sum(many.half_width) < sum(few.half_width)
