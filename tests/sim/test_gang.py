"""Tests for the gang-scheduling simulator."""

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import SimulationError
from repro.sim import GangSimulation


def one_class(lam=0.5, mu=1.0, g=2, P=4, q=2.0, oh=0.01, policy="switch"):
    return SystemConfig(processors=P, classes=(
        ClassConfig.markovian(g, arrival_rate=lam, service_rate=mu,
                              quantum_mean=q, overhead_mean=oh),),
        empty_queue_policy=policy)


class TestBasicOperation:
    def test_reproducible_given_seed(self):
        cfg = one_class()
        a = GangSimulation(cfg, seed=42).run(2000.0)
        b = GangSimulation(cfg, seed=42).run(2000.0)
        assert a.mean_jobs == b.mean_jobs
        assert a.events == b.events

    def test_seed_matters(self):
        cfg = one_class()
        a = GangSimulation(cfg, seed=1).run(2000.0)
        b = GangSimulation(cfg, seed=2).run(2000.0)
        assert a.mean_jobs != b.mean_jobs

    def test_horizon_must_exceed_warmup(self):
        with pytest.raises(SimulationError):
            GangSimulation(one_class(), warmup=10.0).run(5.0)

    def test_littles_law_holds(self):
        rep = GangSimulation(one_class(), seed=3, warmup=500.0).run(20_000.0)
        assert rep.littles_law_gap[0] < 0.02

    def test_throughput_matches_arrival_rate(self):
        rep = GangSimulation(one_class(lam=0.5), seed=4,
                             warmup=500.0).run(30_000.0)
        assert rep.throughput[0] == pytest.approx(0.5, rel=0.05)

    def test_instrumentation_counts(self):
        sim = GangSimulation(one_class(), seed=5)
        sim.run(2000.0)
        assert sim.quanta_started[0] > 0
        assert sim.quanta_skipped[0] > 0        # light load: skips happen
        assert sim.early_switches[0] > 0        # switch-on-empty happens


class TestPolicyDifferences:
    def test_idle_policy_never_switches_early(self):
        sim = GangSimulation(one_class(policy="idle"), seed=6)
        sim.run(2000.0)
        assert sim.early_switches[0] == 0

    def test_switch_policy_responds_faster(self):
        # Two classes so idle time actually costs something.
        def cfg(policy):
            return SystemConfig(processors=4, classes=(
                ClassConfig.markovian(1, arrival_rate=0.6, service_rate=0.5,
                                      quantum_mean=3.0, overhead_mean=0.02),
                ClassConfig.markovian(4, arrival_rate=0.3, service_rate=1.5,
                                      quantum_mean=3.0, overhead_mean=0.02),
            ), empty_queue_policy=policy)
        sw = GangSimulation(cfg("switch"), seed=7, warmup=2000.0).run(50_000.0)
        idle = GangSimulation(cfg("idle"), seed=7, warmup=2000.0).run(50_000.0)
        assert sw.total_mean_jobs < idle.total_mean_jobs


class TestMultiClassConservation:
    def test_all_jobs_accounted(self, two_class_config):
        sim = GangSimulation(two_class_config, seed=8)
        rep = sim.run(5000.0)
        for p in range(2):
            st = sim.stats[p]
            # arrived (post-warmup) = completed + still in system (up to
            # the pre-warmup backlog, zero here since warmup=0).
            assert st.arrived == st.completed + st.in_system

    def test_work_conservation_on_active_jobs(self, two_class_config):
        sim = GangSimulation(two_class_config, seed=9)
        sim.run(3000.0)
        for p in range(2):
            for job in sim._active[p]:
                assert job.work_done <= job.service_requirement + 1e-9

    def test_partition_limit_respected(self, two_class_config):
        sim = GangSimulation(two_class_config, seed=10)
        # Run in small steps, checking the invariant as we go.
        for t in range(1, 21):
            sim.sim.run(until=t * 100.0)
            for p in range(2):
                assert len(sim._active[p]) <= two_class_config.partitions(p)
        # Note: run() was driven manually; stats not finalized here.


class TestPhaseTypeWorkloads:
    def test_erlang_quantum_runs(self, phased_class_config):
        rep = GangSimulation(phased_class_config, seed=11,
                             warmup=200.0).run(5000.0)
        assert all(m > 0 for m in rep.mean_jobs)
