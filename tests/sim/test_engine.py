"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(3.0, log.append, "c")
        sim.schedule(1.0, log.append, "a")
        sim.schedule(2.0, log.append, "b")
        sim.run(until=10.0)
        assert log == ["a", "b", "c"]

    def test_fifo_tiebreak_at_equal_times(self):
        sim = Simulator()
        log = []
        for tag in "abc":
            sim.schedule(1.0, log.append, tag)
        sim.run(until=2.0)
        assert log == ["a", "b", "c"]

    def test_schedule_during_event(self):
        sim = Simulator()
        log = []

        def chain(n):
            log.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run(until=10.0)
        assert log == [0, 1, 2, 3]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, print)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, print)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        ev.cancel()
        sim.run(until=5.0)
        assert log == []

    def test_cancelled_not_counted(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        sim.schedule(2.0, lambda: None)
        sim.run(until=5.0)
        assert sim.events_processed == 1

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRunSemantics:
    def test_clock_advances_to_horizon(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run(until=7.5)
        assert sim.now == 7.5

    def test_events_beyond_horizon_left_pending(self):
        sim = Simulator()
        log = []
        sim.schedule(10.0, log.append, "late")
        sim.run(until=5.0)
        assert log == []
        sim.run(until=20.0)
        assert log == ["late"]

    def test_backwards_horizon_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_now_is_event_time_inside_callback(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run(until=10.0)
        assert seen == [2.5]
