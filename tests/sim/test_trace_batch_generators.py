"""Tests for schedule tracing, batch arrivals and trace-driven runs."""

import numpy as np
import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.sim import BatchArrivalGangSimulation, GangSimulation, TracingGangSimulation
from repro.sim.trace import TraceEventType
from repro.workloads import (
    ClassTrace,
    TraceDrivenGangSimulation,
    generate_trace,
)


@pytest.fixture
def cfg():
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=0.8, service_rate=0.8,
                              quantum_mean=1.5, overhead_mean=0.02,
                              name="a"),
        ClassConfig.markovian(2, arrival_rate=0.4, service_rate=1.2,
                              quantum_mean=1.5, overhead_mean=0.02,
                              name="b"),
    ))


class TestTracing:
    def test_counts_match_base_instrumentation(self, cfg):
        sim = TracingGangSimulation(cfg, seed=1)
        sim.run(2000.0)
        counts = sim.trace.counts()
        assert counts[TraceEventType.QUANTUM_START] == sum(sim.quanta_started)
        ends = counts[TraceEventType.QUANTUM_EXPIRY] \
            + counts[TraceEventType.EARLY_SWITCH]
        # Every started quantum ends (up to one possibly open at horizon).
        assert abs(ends - sum(sim.quanta_started)) <= 1

    def test_quantum_durations_bounded_by_samples(self, cfg):
        sim = TracingGangSimulation(cfg, seed=2)
        sim.run(2000.0)
        for p in range(2):
            durs = sim.trace.quantum_durations(p)
            assert np.all(durs >= 0)
            # Plausible scale: mean realized <= a few quantum means.
            assert durs.mean() < 5 * cfg.classes[p].quantum.mean

    def test_busy_shares_sum_below_one(self, cfg):
        sim = TracingGangSimulation(cfg, seed=3)
        sim.run(3000.0)
        total = sum(sim.trace.busy_share(p, 3000.0) for p in range(2))
        assert 0 < total < 1.0   # overheads and idle take the rest

    def test_cycle_lengths_positive(self, cfg):
        sim = TracingGangSimulation(cfg, seed=4)
        sim.run(2000.0)
        cycles = sim.trace.cycle_lengths()
        assert len(cycles) > 10
        assert np.all(cycles > 0)

    def test_gantt_renders(self, cfg):
        sim = TracingGangSimulation(cfg, seed=5)
        sim.run(200.0)
        art = sim.trace.gantt(start=50.0, end=100.0, width=60)
        assert "class0" in art and "class1" in art
        assert "#" in art

    def test_gantt_bad_window(self, cfg):
        sim = TracingGangSimulation(cfg, seed=6)
        sim.run(100.0)
        with pytest.raises(ValidationError):
            sim.trace.gantt(start=50.0, end=50.0)


class TestBatchArrivals:
    def test_validates_pmfs(self, cfg):
        with pytest.raises(ValidationError):
            BatchArrivalGangSimulation(cfg, [[0.5, 0.4]] * 2)
        with pytest.raises(ValidationError):
            BatchArrivalGangSimulation(cfg, [[1.0]])

    def test_degenerate_batch_matches_plain(self, cfg):
        # Batch size identically 1 must reproduce the plain simulator's
        # statistics (same policy; stream usage differs, so compare
        # statistically).
        plain = [GangSimulation(cfg, seed=s, warmup=500.0)
                 .run(20_000.0).mean_jobs for s in range(3)]
        batch = [BatchArrivalGangSimulation(cfg, [[1.0], [1.0]], seed=100 + s,
                                            warmup=500.0)
                 .run(20_000.0).mean_jobs for s in range(3)]
        for p in range(2):
            a = np.mean([r[p] for r in plain])
            b = np.mean([r[p] for r in batch])
            assert b == pytest.approx(a, rel=0.15)

    def test_batches_increase_congestion(self, cfg):
        # Same job throughput, burstier arrivals: strictly worse queues.
        # Halve the epoch rate, double jobs per epoch.
        cfg_half = SystemConfig(processors=4, classes=(
            ClassConfig.markovian(1, arrival_rate=0.4, service_rate=0.8,
                                  quantum_mean=1.5, overhead_mean=0.02),
            ClassConfig.markovian(2, arrival_rate=0.2, service_rate=1.2,
                                  quantum_mean=1.5, overhead_mean=0.02),
        ))
        single = np.mean([GangSimulation(cfg, seed=s, warmup=1000.0)
                          .run(25_000.0).total_mean_jobs for s in range(3)])
        bursty = np.mean([
            BatchArrivalGangSimulation(cfg_half, [[0.0, 1.0]] * 2,
                                       seed=s, warmup=1000.0)
            .run(25_000.0).total_mean_jobs for s in range(3)])
        assert bursty > single

    def test_offered_load_accounts_for_batches(self, cfg):
        sim = BatchArrivalGangSimulation(cfg, [[0.5, 0.5], [1.0]])
        assert sim.mean_batch_size(0) == pytest.approx(1.5)
        assert sim.offered_load(0) == pytest.approx(
            cfg.classes[0].arrival_rate * 1.5
            / (cfg.partitions(0) * cfg.classes[0].service_rate))


class TestTraceGeneration:
    def test_trace_statistics_match_config(self, cfg):
        trace = generate_trace(cfg, horizon=50_000.0, seed=0)
        for p, ct in enumerate(trace.classes):
            lam_hat = len(ct) / 50_000.0
            assert lam_hat == pytest.approx(cfg.classes[p].arrival_rate,
                                            rel=0.05)
            assert ct.service_requirements.mean() == pytest.approx(
                cfg.classes[p].service.mean, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ClassTrace(np.array([2.0, 1.0]), np.array([1.0, 1.0]))
        with pytest.raises(ValidationError):
            ClassTrace(np.array([1.0]), np.array([-1.0]))

    def test_trace_driven_run_matches_live_statistically(self, cfg):
        trace = generate_trace(cfg, horizon=30_000.0, seed=1)
        driven = TraceDrivenGangSimulation(cfg, trace, seed=2,
                                           warmup=1000.0).run(30_000.0)
        live = GangSimulation(cfg, seed=3, warmup=1000.0).run(30_000.0)
        for p in range(2):
            assert driven.mean_jobs[p] == pytest.approx(live.mean_jobs[p],
                                                        rel=0.25)

    def test_replay_is_deterministic_given_seed(self, cfg):
        trace = generate_trace(cfg, horizon=5_000.0, seed=4)
        a = TraceDrivenGangSimulation(cfg, trace, seed=5).run(5_000.0)
        b = TraceDrivenGangSimulation(cfg, trace, seed=5).run(5_000.0)
        assert a.mean_jobs == b.mean_jobs

    def test_common_random_numbers_reduce_variance(self, cfg):
        """Same trace under two quanta: the difference is low-noise."""
        trace = generate_trace(cfg, horizon=20_000.0, seed=6)

        def with_quantum(q, seed):
            cfg_q = SystemConfig(processors=4, classes=tuple(
                ClassConfig.markovian(
                    c.partition_size, arrival_rate=c.arrival_rate,
                    service_rate=c.service_rate, quantum_mean=q,
                    overhead_mean=0.02)
                for c in cfg.classes))
            return TraceDrivenGangSimulation(cfg_q, trace, seed=seed,
                                             warmup=1000.0).run(20_000.0)

        diffs_crn = [with_quantum(3.0, s).total_mean_jobs
                     - with_quantum(0.5, s).total_mean_jobs
                     for s in range(3)]
        # The sign of the comparison is consistent across seeds.
        assert all(d > 0 for d in diffs_crn) or all(d < 0 for d in diffs_crn)

    def test_class_count_mismatch(self, cfg):
        trace = generate_trace(cfg, horizon=1000.0, seed=7)
        solo = SystemConfig(processors=4, classes=(cfg.classes[0],))
        with pytest.raises(ValidationError):
            TraceDrivenGangSimulation(solo, trace)
