"""End-to-end chaos suite for the scenario service daemon.

Drives a real ``repro-gang serve`` subprocess over the stdio JSONL
protocol while injecting solver faults (``resilience.faults`` armed
through ``REPRO_SERVICE_CHAOS``), SIGKILLing a worker mid-shard, and
finally SIGKILLing the daemon itself mid-sweep — then restarts clean
and asserts the replay completes with results byte-identical to a
fresh single-process :func:`repro.scenario.run`.

This is the PR's acceptance harness; it is the slowest test in the
suite (two daemon subprocesses, spawned workers, two reference solves).
"""

import dataclasses
import json
import os
import queue
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

from repro.scenario import (
    OutputSpec,
    canonical_bytes,
    get_scenario,
    run,
    run_result_to_dict,
)
from repro.service.supervisor import CHAOS_ENV

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: fig3 quick grid values the chaos run targets.
V_ERR = 0.6     # draws an injected ConvergenceError inside the sweep
V_KILL = 2.0    # the worker holding this shard SIGKILLs itself once

FIG3 = {"id": "fig3", "preset": "fig3", "grid": "quick", "timeout": 240}
FIG2 = {"id": "fig2", "preset": "fig2", "grid": "quick", "timeout": 240}


class Daemon:
    """A scenario-service daemon subprocess driven over stdio JSONL."""

    def __init__(self, store_dir, *, workers=2, chaos=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC
        env.pop(CHAOS_ENV, None)
        if chaos is not None:
            env[CHAOS_ENV] = json.dumps(chaos)
        # Its own session => its own process group: killing the group
        # takes the spawned workers down with the daemon, the way an
        # OOM killer or a node reboot would.
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--store", str(store_dir), "--workers", str(workers)],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True, env=env,
            start_new_session=True)
        self._lines = queue.Queue()
        threading.Thread(target=self._pump, daemon=True).start()
        banner = self.read(timeout=120)
        assert banner["status"] == "ready"

    def _pump(self):
        for line in self.proc.stdout:
            self._lines.put(line)

    def send(self, obj):
        self.proc.stdin.write(json.dumps(obj) + "\n")
        self.proc.stdin.flush()

    def read(self, timeout=300):
        return json.loads(self._lines.get(timeout=timeout))

    def request(self, obj, timeout=300):
        self.send(obj)
        return self.read(timeout=timeout)

    def solve_counter(self):
        stats = self.request({"id": "m", "op": "stats"}, timeout=60)
        return stats["metrics"]["counters"].get(
            "service.shards{source=solve}", 0.0)

    def kill_group(self):
        try:
            os.killpg(self.proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        self.proc.wait(timeout=10)

    def shutdown(self):
        try:
            reply = self.request({"id": "bye", "op": "shutdown"},
                                 timeout=60)
            assert reply["op"] == "shutdown"
            self.proc.wait(timeout=60)
        finally:
            self.kill_group()


def point_records(store):
    """Count durable per-point records across the store's segments."""
    count = 0
    for segment in Path(store).glob("seg-*.jsonl"):
        for line in segment.read_text().splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue            # torn tail; not durable
            if record.get("kind") == "point":
                count += 1
    return count


def normalized(preset, grid):
    """The scenario exactly as the service normalizes it."""
    scenario = get_scenario(preset, grid=grid)
    return dataclasses.replace(
        scenario,
        engine=dataclasses.replace(scenario.engine,
                                   workers=None, checkpoint=None),
        output=OutputSpec(measures=scenario.output.measures,
                          metrics=scenario.output.metrics))


def test_chaos_kill_restart_replay_byte_identical(tmp_path):
    store = tmp_path / "store"
    markers = tmp_path / "markers"
    markers.mkdir()
    grid3 = get_scenario("fig3", grid="quick").grid()
    assert V_ERR in grid3 and V_KILL in grid3

    chaos = {
        "faults": [{"site": "sweeps.point",
                    "raises": "ConvergenceError", "keys": [V_ERR]}],
        "kill": {"value": V_KILL, "marker_dir": str(markers)},
    }

    # --- Phase 1: the hostile daemon ---------------------------------
    daemon = Daemon(store, workers=2, chaos=chaos)
    try:
        r1 = daemon.request(FIG3)
        assert r1["status"] == "ok"
        # The injected fault is an explicit error point, nothing more.
        assert r1["error_points"] == 1
        bad = [pt for pt in r1["result"]["points"] if pt.get("error")]
        assert bad[0]["value"] == V_ERR
        assert "ConvergenceError" in bad[0]["error"]
        # The SIGKILLed worker's shard was requeued and solved clean.
        killed = next(pt for pt in r1["result"]["points"]
                      if pt["value"] == V_KILL)
        assert killed.get("error") is None
        assert (markers / f"killed-{V_KILL}").exists()

        stats = daemon.request({"id": "s", "op": "stats"}, timeout=60)
        assert stats["pool"]["restarts"] == 1   # exactly the chaos kill
        assert stats["pool"]["broken"] == 0

        # SIGKILL the daemon (and its workers) mid-sweep — after at
        # least one fig2 shard has durably reached the store, so the
        # kill is deterministically "mid-sweep", not a race.
        base = point_records(store)
        daemon.send(FIG2)
        give_up = time.time() + 120
        while point_records(store) <= base and time.time() < give_up:
            time.sleep(0.05)
        assert point_records(store) > base
    finally:
        daemon.kill_group()

    # --- Phase 2: clean restart, same store --------------------------
    daemon = Daemon(store, workers=2, chaos=None)
    try:
        # fig3 replay: the clean points come back from the store, only
        # the injected-fault point needs a fresh solve — and the
        # result is now complete.
        r3 = daemon.request(FIG3)
        assert r3["status"] == "ok" and not r3["cached"]
        assert r3["error_points"] == 0
        assert r3["store_points"] == len(grid3) - 1
        assert r3["solved_points"] == 1

        # fig2, interrupted mid-sweep by the SIGKILL, completes too —
        # resuming from the shards persisted before the kill (clean
        # points hit the store as they complete, not at sweep end).
        r4 = daemon.request(FIG2)
        assert r4["status"] == "ok"
        assert r4["error_points"] == 0
        assert r4["cached"] or r4["store_points"] > 0

        # Warm pass: both replays are fully store-served — the solve
        # counter does not move (the chaos suite's "zero cold solves").
        before = daemon.solve_counter()
        r5 = daemon.request(dict(FIG2, id="fig2-warm"))
        r6 = daemon.request(dict(FIG3, id="fig3-warm"))
        assert r5["cached"] and r6["cached"]
        assert r5["result"] == r4["result"]
        assert r6["result"] == r3["result"]
        assert daemon.solve_counter() == before
        daemon.shutdown()
    finally:
        daemon.kill_group()

    # --- Byte-identity against fresh single-process runs -------------
    for request, preset in ((r3, "fig3"), (r4, "fig2")):
        fresh = run_result_to_dict(run(normalized(preset, "quick")))
        assert canonical_bytes(request["result"]) \
            == canonical_bytes(fresh)
