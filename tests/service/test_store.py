"""Tests for the crash-safe result store: durability, repair, quarantine."""

import json

import pytest

from repro.errors import ValidationError
from repro.service.store import STORE_SCHEMA, ResultStore


def record_lines(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestBasics:
    def test_put_get_round_trip(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert store.get_result("k") is None
            assert store.put_result("k", {"points": [1, 2]})
            assert store.get_result("k") == {"points": [1, 2]}
            assert store.put_point("p", {"value": 0.5})
            assert store.get_point("p") == {"value": 0.5}
            # Namespaces are separate.
            assert store.get_point("k") is None

    def test_put_is_idempotent(self, tmp_path):
        with ResultStore(tmp_path) as store:
            assert store.put_result("k", {"v": 1})
            assert not store.put_result("k", {"v": 1})
        segment = sorted(tmp_path.glob("seg-*.jsonl"))[0]
        keys = [r["key"] for r in record_lines(segment)
                if r["kind"] == "result"]
        assert keys == ["k"]            # one record, not two

    def test_index_rebuilt_on_reopen(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put_result("k", {"v": 1})
            store.put_point("p", {"v": 2})
        with ResultStore(tmp_path) as store:
            assert store.get_result("k") == {"v": 1}
            assert store.get_point("p") == {"v": 2}
            assert store.stats()["results"] == 1

    def test_segment_header_written(self, tmp_path):
        with ResultStore(tmp_path):
            pass
        segment = sorted(tmp_path.glob("seg-*.jsonl"))[0]
        header = record_lines(segment)[0]
        assert header["kind"] == "header"
        assert header["schema"] == STORE_SCHEMA

    def test_closed_store_rejects_puts(self, tmp_path):
        store = ResultStore(tmp_path)
        store.close()
        with pytest.raises(ValidationError, match="closed"):
            store.put_result("k", {})


class TestRotation:
    def test_rotates_at_segment_size(self, tmp_path):
        with ResultStore(tmp_path, segment_max_bytes=400) as store:
            for i in range(10):
                store.put_point(f"k{i}", {"filler": "x" * 40})
        segments = sorted(tmp_path.glob("seg-*.jsonl"))
        assert len(segments) > 1
        for segment in segments:
            assert record_lines(segment)[0]["kind"] == "header"
        with ResultStore(tmp_path, segment_max_bytes=400) as store:
            assert all(store.get_point(f"k{i}") for i in range(10))


class TestCorruption:
    def fill(self, tmp_path, n=4):
        with ResultStore(tmp_path) as store:
            for i in range(n):
                store.put_point(f"k{i}", {"i": i})
        return sorted(tmp_path.glob("seg-*.jsonl"))[-1]

    def test_torn_tail_truncated_in_place(self, tmp_path):
        segment = self.fill(tmp_path)
        clean = segment.read_bytes()
        segment.write_bytes(clean + b'{"kind": "point", "key": "half')
        with ResultStore(tmp_path) as store:
            assert store.repaired_tails == 1
            assert all(store.get_point(f"k{i}") for i in range(4))
            assert store.get_point("half") is None
        assert segment.read_bytes() == clean

    def test_torn_tail_repair_then_append_round_trips(self, tmp_path):
        segment = self.fill(tmp_path)
        segment.write_bytes(segment.read_bytes() + b"garbage")
        with ResultStore(tmp_path) as store:
            store.put_point("after", {"ok": True})
        with ResultStore(tmp_path) as store:
            assert store.repaired_tails == 0    # healed for good
            assert store.get_point("after") == {"ok": True}

    def test_mid_segment_corruption_quarantined(self, tmp_path):
        segment = self.fill(tmp_path)
        lines = segment.read_text().splitlines()
        lines[2] = '{"kind": "point", "key": "k1", bitrot'
        segment.write_text("\n".join(lines) + "\n")
        with ResultStore(tmp_path) as store:
            assert store.quarantined_lines == 1
            # k1's record was the damaged one; the rest survived.
            assert store.get_point("k1") is None
            assert store.get_point("k0") and store.get_point("k3")
        sidecar = segment.with_suffix(".jsonl.quarantine")
        assert sidecar.exists() and "bitrot" in sidecar.read_text()
        # The healed segment is clean: a reopen finds nothing to do.
        with ResultStore(tmp_path) as store:
            assert store.quarantined_lines == 0

    def test_headerless_segment_set_aside_whole(self, tmp_path):
        self.fill(tmp_path)
        rogue = tmp_path / "seg-00000000.jsonl"
        rogue.write_text('{"kind": "point", "key": "x", "value": {}}\n')
        with ResultStore(tmp_path) as store:
            assert store.quarantined_segments == 1
            assert store.get_point("x") is None     # untrusted
            assert store.get_point("k0") is not None
        assert not rogue.exists()
        assert rogue.with_suffix(".jsonl.quarantine").exists()

    def test_newer_store_version_set_aside(self, tmp_path):
        rogue = tmp_path / "seg-00000001.jsonl"
        rogue.write_text(json.dumps(
            {"kind": "header", "schema": STORE_SCHEMA, "version": 99})
            + "\n")
        with ResultStore(tmp_path) as store:
            assert store.quarantined_segments == 1
            store.put_point("new", {})              # still writable

    def test_empty_segment_file_tolerated(self, tmp_path):
        (tmp_path / "seg-00000001.jsonl").touch()
        with ResultStore(tmp_path) as store:
            store.put_point("k", {"v": 1})
        with ResultStore(tmp_path) as store:
            assert store.get_point("k") == {"v": 1}

    def test_unknown_record_kinds_tolerated(self, tmp_path):
        segment = self.fill(tmp_path)
        with open(segment, "a") as fh:
            fh.write('{"kind": "hologram", "key": "z"}\n')
        with ResultStore(tmp_path) as store:
            assert store.quarantined_lines == 0
            assert store.get_point("k0") is not None


class TestCompaction:
    def test_compact_collapses_segments_and_keeps_records(self, tmp_path):
        with ResultStore(tmp_path, segment_max_bytes=64) as store:
            for i in range(6):
                store.put_result(f"k{i}", {"v": i})
            assert len(sorted(tmp_path.glob("seg-*.jsonl"))) > 1
            summary = store.compact()
            assert summary["records"] == 6
            assert summary["segments_before"] > 1
            # Everything is still served after compaction...
            for i in range(6):
                assert store.get_result(f"k{i}") == {"v": i}
            # ...and new appends keep working.
            assert store.put_result("after", {"v": "post-compact"})
        # The compacted layout replays from disk like any other store.
        with ResultStore(tmp_path) as store:
            assert store.get_result("k3") == {"v": 3}
            assert store.get_result("after") == {"v": "post-compact"}
            assert store.stats()["results"] == 7

    def test_compact_drops_quarantine_sidecars(self, tmp_path):
        with ResultStore(tmp_path) as store:
            store.put_result("a", {"v": 1})
            store.put_result("b", {"v": 2})
        segment = sorted(tmp_path.glob("seg-*.jsonl"))[0]
        lines = segment.read_text().splitlines()
        lines.insert(1, "%% rot %%")       # mid-segment damage
        segment.write_text("\n".join(lines) + "\n")
        with ResultStore(tmp_path) as store:
            assert store.quarantined_lines == 1
            assert list(tmp_path.glob("*.quarantine"))
            summary = store.compact()
            assert summary["quarantine_files_dropped"] == 1
            assert not list(tmp_path.glob("*.quarantine"))
            assert store.get_result("a") == {"v": 1}
            assert store.stats()["compactions"] == 1

    def test_compact_writes_one_record_per_live_key(self, tmp_path):
        with ResultStore(tmp_path, segment_max_bytes=64) as store:
            store.put_result("k", {"v": 1})
            store.put_point("p", {"v": 2})
            store.compact()
        segments = sorted(tmp_path.glob("seg-*.jsonl"))
        records = [r for s in segments for r in record_lines(s)
                   if r["kind"] != "header"]
        assert sorted((r["kind"], r["key"]) for r in records) \
            == [("point", "p"), ("result", "k")]

    def test_closed_store_rejects_compact(self, tmp_path):
        store = ResultStore(tmp_path)
        store.close()
        with pytest.raises(ValidationError, match="closed"):
            store.compact()
