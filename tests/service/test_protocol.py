"""Tests for the service wire protocol."""

import json

import pytest

from repro.errors import ValidationError
from repro.service import protocol
from repro.service.protocol import Request


class TestRequestValidation:
    def test_minimal_preset_run(self):
        req = protocol.parse_request({"id": "r1", "preset": "fig2"})
        assert req.op == "run" and req.preset == "fig2"
        assert req.grid == "default" and req.timeout is None

    def test_inline_scenario_run(self):
        req = protocol.parse_request(
            {"id": "r1", "scenario": {"system": {"preset": "fig23"}}})
        assert req.scenario == {"system": {"preset": "fig23"}}

    def test_missing_id_rejected(self):
        with pytest.raises(ValidationError, match="id"):
            protocol.parse_request({"preset": "fig2"})

    def test_unknown_op_rejected(self):
        with pytest.raises(ValidationError, match="unknown op"):
            protocol.parse_request({"id": "r", "op": "explode"})

    def test_run_needs_exactly_one_source(self):
        with pytest.raises(ValidationError, match="exactly one"):
            protocol.parse_request({"id": "r"})
        with pytest.raises(ValidationError, match="exactly one"):
            protocol.parse_request({"id": "r", "preset": "fig2",
                                    "scenario": {}})

    def test_control_ops_need_no_scenario(self):
        for op in ("ping", "stats", "shutdown"):
            assert protocol.parse_request({"id": "r", "op": op}).op == op

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValidationError, match="unknown request field"):
            protocol.parse_request({"id": "r", "preset": "fig2",
                                    "retries": 3})

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValidationError, match="timeout"):
            protocol.parse_request({"id": "r", "preset": "fig2",
                                    "timeout": 0})

    def test_decode_malformed_line(self):
        with pytest.raises(ValidationError, match="not valid JSON"):
            protocol.decode_request("{nope")


class TestEncoding:
    def test_encode_is_one_line(self):
        line = protocol.encode({"a": [1, 2], "b": {"c": "multi\nline"}})
        assert line.endswith("\n")
        assert line.count("\n") == 1
        assert json.loads(line) == {"a": [1, 2], "b": {"c": "multi\nline"}}

    def test_encode_round_trips_nan(self):
        # Failed sweep points carry NaN measures; the wire must too.
        decoded = json.loads(protocol.encode({"x": float("nan")}))
        assert decoded["x"] != decoded["x"]


class TestResponses:
    def test_result_response_statuses(self):
        ok = protocol.result_response(
            "r", key="k", result={}, cached=False, degraded=False,
            store_points=1, solved_points=2, error_points=0, elapsed=0.5)
        assert ok["status"] == "ok" and ok["id"] == "r"
        deg = protocol.result_response(
            "r", key="k", result={}, cached=False, degraded=True,
            store_points=0, solved_points=1, error_points=2, elapsed=0.5)
        assert deg["status"] == "degraded"

    def test_error_response_names_the_type(self):
        resp = protocol.error_response("r", ValidationError("bad input"))
        assert resp == {"id": "r", "status": "error",
                        "error": "ValidationError", "message": "bad input"}

    def test_busy_response(self):
        resp = protocol.busy_response(None, pending=8, limit=8)
        assert resp["status"] == "busy" and resp["limit"] == 8

    def test_control_responses_echo_id(self):
        assert protocol.pong_response("p")["id"] == "p"
        assert protocol.stats_response("s", {"store": {}})["store"] == {}
        assert protocol.shutdown_response("x")["op"] == "shutdown"

    def test_ready_banner_carries_protocol_version(self):
        banner = protocol.ready_banner(workers=2, store_dir="/tmp/s")
        assert banner["protocol"] == protocol.PROTOCOL_VERSION


class TestRequestDefaultsAreFrozen:
    def test_engine_overrides_copied(self):
        overrides = {"tol": 1e-7}
        req = Request(id="r", preset="fig2", engine=overrides)
        overrides["tol"] = 1.0
        assert req.engine == {"tol": 1e-7}
