"""In-process tests for the scenario service core (workers=0).

The subprocess/chaos behavior lives in ``test_chaos.py``; here the
service runs inline so the request semantics — dedupe, shard reuse,
degradation, store discipline — are cheap to exercise.
"""

import dataclasses

import pytest

from repro.scenario import (
    OutputSpec,
    canonical_bytes,
    get_scenario,
    point_key,
    run,
    run_result_to_dict,
)
from repro.serialize import scenario_to_dict
from repro.service import ScenarioService, ServiceConfig


@pytest.fixture
def service(tmp_path):
    config = ServiceConfig(store_dir=str(tmp_path / "store"))
    with ScenarioService(config) as svc:
        yield svc


def normalized(preset, grid="default"):
    """The scenario exactly as the service normalizes it."""
    scenario = get_scenario(preset, grid=grid)
    return dataclasses.replace(
        scenario,
        engine=dataclasses.replace(scenario.engine,
                                   workers=None, checkpoint=None),
        output=OutputSpec(measures=scenario.output.measures,
                          metrics=scenario.output.metrics))


class TestRunPath:
    def test_solve_cache_and_cross_grid_reuse(self, service):
        quick = get_scenario("fig2", grid="quick")
        r1 = service.handle({"id": "a", "preset": "fig2",
                             "grid": "quick"})
        assert r1["status"] == "ok" and not r1["cached"]
        assert r1["solved_points"] == len(quick.grid())
        assert r1["error_points"] == 0

        # Identical request: served whole from the result store.
        r2 = service.handle({"id": "b", "preset": "fig2",
                             "grid": "quick"})
        assert r2["cached"] and r2["result"] == r1["result"]

        # The inline form of the same scenario hashes to the same key.
        r3 = service.handle({"id": "c",
                             "scenario": scenario_to_dict(quick)})
        assert r3["cached"] and r3["key"] == r1["key"]

        # The default tier's grid is a subset of quick's: the sweep is
        # assembled entirely from stored per-point shards, zero solves.
        r4 = service.handle({"id": "d", "preset": "fig2"})
        assert r4["status"] == "ok" and not r4["cached"]
        assert r4["solved_points"] == 0
        assert r4["store_points"] == len(get_scenario("fig2").grid())

        # Byte-identity: the assembled result equals a fresh
        # single-process run of the normalized scenario.
        fresh = run_result_to_dict(run(normalized("fig2", "quick")))
        assert canonical_bytes(r1["result"]) == canonical_bytes(fresh)

    def test_engine_override_changes_cache_key(self, service):
        shard = scenario_to_dict(get_scenario("fig2").with_grid([0.5]))
        r1 = service.handle({"id": "a", "scenario": shard})
        r2 = service.handle({"id": "b", "scenario": shard,
                             "engine": {"tol": 1e-7}})
        assert r1["status"] == "ok" and r2["status"] == "ok"
        assert not r2["cached"]
        assert r1["key"] != r2["key"]


class TestDegradation:
    def test_deadline_degrades_and_is_never_stored(self, service):
        quick = get_scenario("fig2", grid="quick")
        full = get_scenario("fig2", grid="full")
        shared = sorted(set(quick.grid()) & set(full.grid()))
        assert shared                   # the tiers are built to overlap

        # A deadline that has already passed: every point degrades.
        r1 = service.handle({"id": "a", "preset": "fig2",
                             "grid": "quick", "timeout": 1e-9})
        assert r1["status"] == "degraded"
        assert r1["error_points"] == len(quick.grid())
        for pt in r1["result"]["points"]:
            assert pt["error"].startswith("DeadlineExceeded")
        # Degraded results are never persisted.
        assert service.store.get_result(r1["key"]) is None

        # The same request without the deadline is a cold, clean solve.
        r2 = service.handle({"id": "b", "preset": "fig2",
                             "grid": "quick"})
        assert r2["status"] == "ok" and not r2["cached"]
        assert r2["error_points"] == 0

        # Partial degradation: the full tier shares points with quick —
        # those are served from the store, the rest come back as
        # explicit deadline errors (the completed prefix is kept).
        r3 = service.handle({"id": "c", "preset": "fig2",
                             "grid": "full", "timeout": 1e-9})
        assert r3["status"] == "degraded"
        assert r3["store_points"] == len(shared)
        assert r3["error_points"] == len(full.grid()) - len(shared)
        clean = [pt for pt in r3["result"]["points"]
                 if pt.get("error") is None]
        assert len(clean) == len(shared)
        # Neither the partial result nor the missing points leaked
        # into the store.
        assert service.store.get_result(r3["key"]) is None
        missing = sorted(set(full.grid()) - set(shared))
        scenario = normalized("fig2", "full")
        assert service.store.get_point(
            point_key(scenario, missing[0])) is None


class TestProtocolSurface:
    def test_unknown_preset_is_an_error_reply(self, service):
        resp = service.handle({"id": "x", "preset": "nope"})
        assert resp["status"] == "error"
        assert resp["error"] == "ValidationError"
        assert resp["id"] == "x"

    def test_malformed_line_yields_error_reply(self, service):
        resp = service.handle_line("{not json")
        assert resp["status"] == "error" and resp["id"] is None
        # A decodable line with a bad op still echoes its id back.
        resp = service.handle_line('{"id": "m", "op": "explode"}')
        assert resp["status"] == "error" and resp["id"] == "m"

    def test_control_ops(self, service):
        pong = service.handle({"id": "p", "op": "ping"})
        assert pong["status"] == "ok" and pong["op"] == "ping"
        stats = service.handle({"id": "s", "op": "stats"})
        assert "store" in stats and "pool" in stats
        assert stats["pool"]["workers"] == 0
        bye = service.handle({"id": "q", "op": "shutdown"})
        assert bye["op"] == "shutdown"
        assert service.shutting_down


class TestStoreResilience:
    def test_torn_store_repaired_and_still_served(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path / "store"))
        shard = scenario_to_dict(get_scenario("fig2").with_grid([0.5]))
        with ScenarioService(config) as svc:
            r1 = svc.handle({"id": "a", "scenario": shard})
            assert r1["status"] == "ok"
        # A daemon SIGKILLed mid-write leaves a torn tail line.
        segment = sorted((tmp_path / "store").glob("seg-*.jsonl"))[-1]
        with open(segment, "ab") as fh:
            fh.write(b'{"kind": "result", "key": "torn')
        with ScenarioService(config) as svc:
            assert svc.store.repaired_tails == 1
            r2 = svc.handle({"id": "b", "scenario": shard})
        assert r2["cached"] and r2["result"] == r1["result"]


class TestObservabilitySurface:
    """Health, enriched stats, exposition, and structured log wiring."""

    def test_health_ok_while_open(self, service):
        health = service.health()
        assert health["status"] == "ok"
        assert health["uptime_seconds"] >= 0.0
        assert health["checks"] == {"store": "ok", "pool": "ok",
                                    "accepting": True}

    def test_health_degraded_once_shutting_down(self, service):
        service.handle({"id": "q", "op": "shutdown"})
        health = service.health()
        assert health["status"] == "degraded"
        assert health["checks"]["accepting"] is False

    def test_health_degraded_after_close(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path / "store"))
        svc = ScenarioService(config)
        svc.open()
        svc.close()
        health = svc.health()
        assert health["status"] == "degraded"
        assert health["checks"]["store"] == "closed"
        assert health["checks"]["pool"] == "closed"

    def test_stats_enriched_and_backward_compatible(self, service):
        service.handle({"id": "a", "preset": "fig2", "grid": "quick"})
        stats = service.handle({"id": "s", "op": "stats"})
        # The pre-existing surface survives for old clients.
        assert "store" in stats and "pool" in stats and "metrics" in stats
        assert stats["uptime_seconds"] >= 0.0
        assert stats["health"]["status"] == "ok"
        assert stats["requests"]["total"] == 1
        assert stats["requests"]["by_status"] == {"ok": 1}
        (entry,) = stats["recent"]
        assert entry["request_id"] == "a.1"   # service-assigned, distinct
        assert entry["client_id"] == "a"
        assert entry["status"] == "ok" and entry["cached"] is False

    def test_recent_ring_is_bounded(self, tmp_path):
        config = ServiceConfig(store_dir=str(tmp_path / "store"),
                               recent_requests=2)
        with ScenarioService(config) as svc:
            for cid in ("a", "b", "c"):
                svc.handle({"id": cid, "preset": "fig2", "grid": "quick"})
            recent = svc._stats()["recent"]
        assert [e["client_id"] for e in recent] == ["b", "c"]
        assert [e["request_id"] for e in recent] == ["b.2", "c.3"]

    def test_metrics_exposition_round_trips(self, service):
        from repro.obs.prom import parse_exposition
        service.handle({"id": "a", "preset": "fig2", "grid": "quick"})
        families = parse_exposition(service.metrics_exposition())
        up = dict((s[0], s[2])
                  for s in families["repro_service_up"]["samples"])
        assert up["repro_service_up"] == 1.0
        assert families["repro_service_healthy"]["samples"][0][2] == 1.0
        totals = {tuple(sorted(labels.items())): v for _, labels, v
                  in families["repro_service_requests_total"]["samples"]}
        assert totals[(("status", "ok"),)] == 1.0
        assert families["repro_service_requests_total"]["type"] == "counter"
        assert "repro_service_pool_workers" in families

    def test_structured_log_covers_request_lifecycle(self, tmp_path):
        import json
        log_path = tmp_path / "svc.log"
        config = ServiceConfig(store_dir=str(tmp_path / "store"),
                               log=str(log_path))
        with ScenarioService(config) as svc:
            svc.handle({"id": "a", "preset": "fig2", "grid": "quick"})
        records = [json.loads(line)
                   for line in log_path.read_text().splitlines()]
        events = [r["event"] for r in records]
        assert events[0] == "service.start"
        assert events[-1] == "service.stop"
        done = next(r for r in records if r["event"] == "request.done")
        assert done["request_id"] == "a.1"
        assert done["status"] == "ok"


class TestCrossProcessTracing:
    """One service request must read as one timeline across pids."""

    def test_worker_spans_share_the_request_id(self, tmp_path):
        from repro.obs import summarize_trace
        trace_path = tmp_path / "svc.jsonl"
        config = ServiceConfig(store_dir=str(tmp_path / "store"),
                               workers=1, trace=str(trace_path))
        with ScenarioService(config) as svc:
            reply = svc.handle({"id": "t1", "preset": "fig2",
                                "grid": "quick"})
            assert reply["status"] == "ok"
        # Worker sidecar files were folded back into the main trace.
        assert not list(tmp_path.glob("svc.jsonl.w*"))
        summary = summarize_trace(trace_path)
        assert "t1.1" in summary.requests
        # Daemon pid plus at least one spawned worker pid.
        assert len(summary.requests["t1.1"]["pids"]) >= 2
        assert summary.requests["t1.1"]["spans"] > 0

    def test_inline_profile_records_reach_the_trace(self, tmp_path):
        from repro.obs import summarize_trace
        trace_path = tmp_path / "svc.jsonl"
        config = ServiceConfig(store_dir=str(tmp_path / "store"),
                               trace=str(trace_path),
                               profile_workers=True)
        with ScenarioService(config) as svc:
            svc.handle({"id": "p1", "preset": "fig2", "grid": "quick"})
        summary = summarize_trace(trace_path)
        assert summary.profile            # hotspots were aggregated
        assert all(agg["calls"] >= 0 and agg["tottime"] >= 0.0
                   for agg in summary.profile.values())


class TestDerivedSolveBudget:
    """Satellite regression: a request deadline must be carved into
    per-point solve budgets when the scenario sets none of its own, so
    one divergent point burns its slice — not the whole request."""

    def test_budget_is_remaining_deadline_over_cold_points(self, service):
        import time
        scenario = normalized("fig2", "quick")
        deadline = time.monotonic() + 10.0
        budget = service._derived_budget(scenario, deadline, 5)
        assert budget == pytest.approx(2.0, rel=0.05)

    def test_no_deadline_or_explicit_budget_means_no_derivation(
            self, service):
        import time
        scenario = normalized("fig2", "quick")
        assert service._derived_budget(scenario, None, 5) is None
        budgeted = scenario.with_engine(solve_budget=3.0)
        assert service._derived_budget(
            budgeted, time.monotonic() + 10.0, 5) is None
        # An expired deadline derives nothing; the pool times out.
        assert service._derived_budget(
            scenario, time.monotonic() - 1.0, 5) is None

    def test_divergent_point_degrades_alone_under_derived_budget(
            self, service, monkeypatch):
        """One shard that would run forever must come back as a single
        error point while its siblings still solve cleanly."""
        from repro.service import supervisor

        seen_budgets = []
        real_solve = supervisor.solve_shard

        def instrumented(shard):
            budget = shard["engine"].get("solve_budget")
            seen_budgets.append(budget)
            value = shard["system"]["axis"]["values"][0]
            if value == 0.5:
                # Stand-in for a divergent fixed point: the solver's
                # wall-clock budget check is what would abort it.
                raise RuntimeError(
                    f"BudgetExceededError: solve exceeded its "
                    f"{budget:.3f}s budget")
            return real_solve(shard)

        monkeypatch.setattr(supervisor, "solve_shard", instrumented)
        reply = service.handle({"id": "a", "preset": "fig2",
                                "grid": "quick", "timeout": 60.0})
        grid = get_scenario("fig2", grid="quick").grid()
        # Every cold shard carried an equal slice of the deadline.
        assert len(seen_budgets) == len(grid)
        assert all(b is not None for b in seen_budgets)
        assert all(b == pytest.approx(60.0 / len(grid), rel=0.05)
                   for b in seen_budgets)
        assert reply["error_points"] == 1
        assert reply["solved_points"] == len(grid) - 1
        bad = [pt for pt in reply["result"]["points"] if pt.get("error")]
        assert len(bad) == 1 and bad[0]["value"] == 0.5
        # The failed point is never persisted; the clean ones are,
        # under their unbudgeted keys — so a retry without a deadline
        # only re-solves the divergent point.
        scenario = normalized("fig2", "quick")
        assert service.store.get_point(point_key(scenario, 0.5)) is None
        assert service.store.get_point(
            point_key(scenario, grid[0])) is not None
        assert service.store.get_result(reply["key"]) is None
        monkeypatch.setattr(supervisor, "solve_shard", real_solve)
        retry = service.handle({"id": "b", "preset": "fig2",
                                "grid": "quick"})
        assert retry["status"] == "ok"
        assert retry["solved_points"] == 1
        assert retry["store_points"] == len(grid) - 1


class TestStdioFairness:
    """Round-robin intake across client IDs (not FIFO)."""

    def test_burst_client_cannot_starve_second_client(self, service,
                                                      monkeypatch):
        """A five-line script: client ``w`` warms the loop, client
        ``a`` bursts three requests while ``w``'s request is still
        being handled, and client ``b`` sends one afterwards.  Under
        FIFO ``b`` would wait out the whole burst; under round-robin
        it is served after exactly one of ``a``'s requests.
        """
        import io
        import json as jsonlib
        import threading

        enqueued_all = threading.Event()
        handled = []

        def stdin_lines():
            for rid in ("w", "a", "a", "a", "b"):
                yield jsonlib.dumps({"id": rid, "op": "ping"}) + "\n"
            # Resumed only after the reader thread consumed (and
            # therefore enqueued) the last line — unblocking "w"
            # here makes the burst-vs-single ordering deterministic.
            enqueued_all.set()

        def fake_handle_line(line):
            rid = jsonlib.loads(line)["id"]
            if rid == "w":
                assert enqueued_all.wait(timeout=30)
            handled.append(rid)
            return {"id": rid, "status": "ok"}

        monkeypatch.setattr(service, "handle_line", fake_handle_line)
        out = io.StringIO()
        service.serve_stdio(stdin=stdin_lines(), stdout=out)

        assert handled == ["w", "a", "b", "a", "a"]
        replies = [jsonlib.loads(l) for l in out.getvalue().splitlines()]
        assert replies[0]["status"] == "ready"
        assert [r["id"] for r in replies[1:]] == handled

    def test_single_client_stays_fifo(self, service, monkeypatch):
        import io
        import json as jsonlib

        handled = []
        monkeypatch.setattr(
            service, "handle_line",
            lambda line: handled.append(jsonlib.loads(line)["id"])
            or {"id": handled[-1], "status": "ok"})
        lines = iter(jsonlib.dumps({"id": "c", "seq": i}) + "\n"
                     for i in range(4))
        service.serve_stdio(stdin=lines, stdout=io.StringIO())
        assert handled == ["c", "c", "c", "c"]
