"""Tests for the supervised worker pool: restarts, backoff, breaker.

The pool tests spawn real worker processes and drive them with the
``REPRO_SERVICE_CHAOS`` kill hook — a worker that SIGKILLs itself on a
chosen grid value is indistinguishable from an OOM-killed one.
"""

import json
import time

import pytest

from repro.errors import ValidationError
from repro.scenario import get_scenario
from repro.serialize import scenario_to_dict
from repro.service.supervisor import CHAOS_ENV, SupervisedPool, solve_shard


def shard_for(value):
    """A single-point fig2 shard — the cheapest real unit of work."""
    scenario = get_scenario("fig2", grid="quick")
    return scenario_to_dict(scenario.with_grid([value]))


class TestInline:
    def test_workers_zero_solves_inline(self):
        with SupervisedPool(0) as pool:
            results = pool.run_tasks([(0, shard_for(0.5), 0.5)])
        status, payload = results[0]
        assert status == "ok"
        point = payload["points"][0]
        assert point["value"] == 0.5
        assert point.get("error") is None

    def test_inline_matches_solve_shard(self):
        shard = shard_for(1.0)
        with SupervisedPool(0) as pool:
            _, payload = pool.run_tasks([(7, shard, 1.0)])[7]
        assert payload == solve_shard(shard)

    def test_expired_deadline_times_out_everything(self):
        tasks = [(i, shard_for(v), v) for i, v in enumerate([0.5, 1.0])]
        with SupervisedPool(0) as pool:
            results = pool.run_tasks(tasks,
                                     deadline=time.monotonic() - 1.0)
        assert all(status == "timeout"
                   for status, _ in results.values())

    def test_invalid_shard_becomes_error_result(self):
        with SupervisedPool(0) as pool:
            status, message = pool.run_tasks([(0, {}, None)])[0]
        assert status == "error"
        assert "ValidationError" in message

    def test_negative_workers_rejected(self):
        with pytest.raises(ValidationError, match="workers"):
            SupervisedPool(-1)


class TestPool:
    def test_pool_solve_matches_inline(self):
        shard = shard_for(0.5)
        with SupervisedPool(1) as pool:
            results = pool.run_tasks([(0, shard, 0.5)])
            stats = pool.stats()
        status, payload = results[0]
        assert status == "ok"
        assert payload == solve_shard(shard)    # byte-identical shard
        assert stats["restarts"] == 0

    def test_sigkilled_worker_restarted_and_task_requeued(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHAOS_ENV, json.dumps(
            {"kill": {"value": 0.5, "marker_dir": str(tmp_path)}}))
        with SupervisedPool(1) as pool:
            results = pool.run_tasks([(0, shard_for(0.5), 0.5)])
            stats = pool.stats()
        status, payload = results[0]
        assert status == "ok"
        assert payload["points"][0].get("error") is None
        assert stats["restarts"] == 1           # exactly the chaos kill
        assert (tmp_path / "killed-0.5").exists()

    def test_task_kill_limit_turns_crash_loop_into_error(self,
                                                         monkeypatch):
        # No marker dir: the worker dies on this value every time.
        monkeypatch.setenv(CHAOS_ENV,
                           json.dumps({"kill": {"value": 0.5}}))
        with SupervisedPool(1, task_kill_limit=1, breaker_limit=10,
                            backoff_base=0.01) as pool:
            status, message = pool.run_tasks(
                [(0, shard_for(0.5), 0.5)])[0]
        assert status == "error"
        assert "killed 2 worker(s)" in message

    def test_breaker_opens_and_remaining_tasks_fail_fast(self,
                                                         monkeypatch):
        monkeypatch.setenv(CHAOS_ENV,
                           json.dumps({"kill": {"value": 0.5}}))
        with SupervisedPool(1, task_kill_limit=10, breaker_limit=2,
                            backoff_base=0.01) as pool:
            results = pool.run_tasks([(0, shard_for(0.5), 0.5),
                                      (1, shard_for(1.0), 1.0)])
            stats = pool.stats()
        for status, message in results.values():
            assert status == "error"
        assert "circuit breaker open" in results[1][1]
        assert stats["broken"] == 1
        # The acceptance bound: no crash loop past the breaker limit.
        assert stats["restarts"] <= 2
