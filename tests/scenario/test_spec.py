"""Tests for the Scenario spec tree."""

import pytest

from repro.errors import ValidationError
from repro.scenario import (
    EngineSpec,
    OutputSpec,
    Scenario,
    SweepAxis,
    SystemSpec,
    engine_field_names,
)


class TestSweepAxis:
    def test_values_coerced_to_floats(self):
        axis = SweepAxis("quantum_mean", (1, 2))
        assert axis.values == (1.0, 2.0)
        assert all(isinstance(v, float) for v in axis.values)

    def test_needs_parameter_and_values(self):
        with pytest.raises(ValidationError):
            SweepAxis("", (1.0,))
        with pytest.raises(ValidationError):
            SweepAxis("quantum_mean", ())


class TestSystemSpec:
    def test_exactly_one_of_preset_or_config(self, two_class_config):
        with pytest.raises(ValidationError, match="exactly one"):
            SystemSpec()
        with pytest.raises(ValidationError, match="exactly one"):
            SystemSpec(preset="fig23", config=two_class_config)

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValidationError, match="unknown system preset"):
            SystemSpec(preset="fig99")

    def test_axis_requires_preset(self, two_class_config):
        with pytest.raises(ValidationError, match="axis requires a preset"):
            SystemSpec(config=two_class_config,
                       axis=SweepAxis("quantum_mean", (1.0,)))

    def test_config_for_builds_preset_at_value(self):
        spec = SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                          axis=SweepAxis("quantum_mean", (1.0, 2.0)))
        from repro.workloads import fig23_config
        assert (spec.config_for(2.0).classes
                == fig23_config(0.4, 2.0).classes)

    def test_swept_config_needs_a_value(self):
        spec = SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                          axis=SweepAxis("quantum_mean", (1.0,)))
        with pytest.raises(ValidationError, match="needs a value"):
            spec.config_for()

    def test_inline_config_returned_as_is(self, two_class_config):
        assert SystemSpec(config=two_class_config).config_for() \
            is two_class_config


class TestEngineSpec:
    def test_defaults_match_solver_defaults(self):
        eng = EngineSpec()
        assert eng.engine == "analytic"
        assert eng.solve_kwargs() == {"max_iterations": 200, "tol": 1e-5,
                                      "heavy_traffic_only": False}
        assert eng.model_kwargs() == {"backend": "auto",
                                      "reduction": "moments2",
                                      "rmatrix_method": "logreduction"}

    def test_engine_validated(self):
        with pytest.raises(ValidationError, match="engine"):
            EngineSpec(engine="magic")

    @pytest.mark.parametrize("kwargs", [
        {"replications": 0}, {"horizon": 0.0}, {"warmup_fraction": 1.0},
        {"max_evaluations": 0},
    ])
    def test_bad_numbers_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            EngineSpec(**kwargs)

    def test_engine_sides(self):
        assert EngineSpec(engine="analytic").analytic
        assert not EngineSpec(engine="analytic").simulated
        assert EngineSpec(engine="sim").simulated
        assert EngineSpec(engine="both").analytic
        assert EngineSpec(engine="both").simulated

    def test_warmup_follows_horizon(self):
        assert EngineSpec(horizon=1000.0).warmup == pytest.approx(100.0)

    def test_field_names_cover_every_knob(self):
        names = engine_field_names()
        assert "backend" in names and "tol" in names
        assert "workers" in names and "replications" in names


class TestOutputSpec:
    def test_unknown_measure_rejected(self):
        with pytest.raises(ValidationError, match="unknown measures"):
            OutputSpec(measures=("throughput",))


class TestScenario:
    SYSTEM = SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                        axis=SweepAxis("quantum_mean", (1.0, 2.0)))

    def test_axis_accessors(self):
        s = Scenario(name="s", system=self.SYSTEM)
        assert s.parameter == "quantum_mean"
        assert s.grid() == (1.0, 2.0)

    def test_with_engine_ignores_none(self):
        s = Scenario(name="s", system=self.SYSTEM)
        assert s.with_engine(workers=None, tol=None) is s
        again = s.with_engine(tol=1e-8, workers=None)
        assert again.engine.tol == 1e-8
        assert again.engine.workers is None
        assert again.system is s.system

    def test_with_grid_replaces_values(self):
        s = Scenario(name="s", system=self.SYSTEM).with_grid([3, 4, 5])
        assert s.grid() == (3.0, 4.0, 5.0)
        assert s.parameter == "quantum_mean"

    def test_with_grid_requires_axis(self, two_class_config):
        s = Scenario(name="s", system=SystemSpec(config=two_class_config))
        with pytest.raises(ValidationError, match="no sweep axis"):
            s.with_grid([1.0])
