"""Tests for the preset scenario registry (and its serialization drift)."""

import json
import pathlib

import pytest

from repro.errors import ValidationError
from repro.scenario import (
    FIGURE_GRIDS,
    GRID_TIERS,
    figure_scenarios,
    get_scenario,
    list_scenarios,
    scenario_names,
)
from repro.serialize import scenario_from_dict, scenario_to_dict

REPO = pathlib.Path(__file__).resolve().parents[2]


class TestRegistry:
    def test_names_cover_figures_and_crosschecks(self):
        names = scenario_names()
        for expected in ("fig2", "fig3", "fig4", "fig5-class0",
                         "fig5-class3", "crosscheck-moderate",
                         "crosscheck-heavy"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError, match="unknown scenario"):
            get_scenario("fig99")

    def test_unknown_grid_tier_rejected(self):
        with pytest.raises(ValidationError, match="grid tier"):
            get_scenario("fig2", grid="huge")

    def test_list_matches_names(self):
        assert [s.name for s in list_scenarios()] == list(scenario_names())

    def test_figure_scenarios(self):
        assert [s.name for s in figure_scenarios(2)] == ["fig2"]
        assert [s.name for s in figure_scenarios("5")] == [
            f"fig5-class{p}" for p in range(4)]
        with pytest.raises(ValidationError, match="figure"):
            figure_scenarios(7)

    @pytest.mark.parametrize("tier", GRID_TIERS)
    def test_grid_tiers_select_the_registered_grids(self, tier):
        assert get_scenario("fig2", grid=tier).grid() \
            == FIGURE_GRIDS["fig2"][tier]
        assert get_scenario("fig5-class1", grid=tier).grid() \
            == FIGURE_GRIDS["fig5"][tier]

    def test_default_grids_match_the_cli_figures(self):
        # The CLI's `figure N` output is defined by the default tier.
        assert get_scenario("fig2").grid() == (
            0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 3.0, 4.5, 6.0)
        assert get_scenario("fig4").grid() == (
            2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0)

    def test_crosscheck_presets_run_both_engines(self):
        for name in ("crosscheck-moderate", "crosscheck-heavy"):
            s = get_scenario(name)
            assert s.engine.engine == "both"
            assert s.engine.replications >= 2
            assert s.axis is None


class TestPresetSerializationDrift:
    """Every preset must survive the scenario schema unchanged."""

    @pytest.mark.parametrize("name", scenario_names())
    @pytest.mark.parametrize("tier", GRID_TIERS)
    def test_round_trip_is_identity(self, name, tier):
        scenario = get_scenario(name, grid=tier)
        assert scenario_from_dict(scenario_to_dict(scenario)) == scenario

    @pytest.mark.parametrize("name", scenario_names())
    def test_dict_form_is_byte_stable(self, name):
        first = scenario_to_dict(get_scenario(name))
        again = scenario_to_dict(scenario_from_dict(first))
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)


class TestCheckedInScenarioFiles:
    """scenarios/*.json must match the registry's canonical form."""

    @pytest.mark.parametrize("stem", ["fig2", "crosscheck-moderate",
                                      "policy-weighted",
                                      "policy-malleable"])
    def test_file_matches_preset(self, stem):
        path = REPO / "scenarios" / f"{stem}.json"
        on_disk = json.loads(path.read_text())
        assert on_disk == scenario_to_dict(get_scenario(stem)), (
            f"{path} drifted from the preset registry; regenerate it with "
            f"PYTHONPATH=src python -c \"from repro.scenario import "
            f"get_scenario; from repro.serialize import save_scenario; "
            f"save_scenario(get_scenario('{stem}'), '{path.name}')\"")

    @pytest.mark.parametrize("stem", ["fig2", "crosscheck-moderate",
                                      "policy-weighted",
                                      "policy-malleable"])
    def test_file_loads_to_the_preset(self, stem):
        from repro.serialize import load_scenario
        path = REPO / "scenarios" / f"{stem}.json"
        assert load_scenario(path) == get_scenario(stem)
