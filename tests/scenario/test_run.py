"""Tests for the unified scenario runner."""

import math

import pytest

from repro.core import GangSchedulingModel
from repro.scenario import (
    EngineSpec,
    OutputSpec,
    Scenario,
    SweepAxis,
    SystemSpec,
    get_scenario,
    run,
)

SMALL_SWEEP = SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                         axis=SweepAxis("quantum_mean", (1.0, 2.0)))
SMALL_POINT = SystemSpec(preset="fig23",
                         args={"arrival_rate": 0.4, "quantum_mean": 2.0})


class TestAnalyticPoint:
    def test_matches_direct_solve(self, two_class_config):
        scenario = Scenario(name="pt",
                            system=SystemSpec(config=two_class_config))
        result = run(scenario)
        direct = GangSchedulingModel(two_class_config).solve()
        assert result.engine == "analytic"
        assert result.parameter is None
        assert len(result.points) == 1
        pt = result.points[0]
        for p in range(len(two_class_config.classes)):
            assert pt.mean_jobs[p] == pytest.approx(direct.mean_jobs(p),
                                                    rel=1e-12)
        assert result.solved is not None
        assert result.sim is None

    def test_engine_knobs_reach_the_solver(self, two_class_config):
        scenario = Scenario(
            name="pt", system=SystemSpec(config=two_class_config),
            engine=EngineSpec(heavy_traffic_only=True))
        result = run(scenario)
        direct = GangSchedulingModel(two_class_config).solve_heavy_traffic()
        assert result.points[0].mean_jobs[0] == pytest.approx(
            direct.mean_jobs(0), rel=1e-12)


class TestAnalyticSweep:
    def test_matches_workloads_sweep(self):
        from repro.workloads import fig23_config, sweep
        result = run(Scenario(name="sw", system=SMALL_SWEEP))
        reference = sweep("quantum_mean", [1.0, 2.0],
                          lambda q: fig23_config(0.4, q))
        assert result.parameter == "quantum_mean"
        assert result.values() == [1.0, 2.0]
        for i in range(2):
            assert result.points[i].mean_jobs == pytest.approx(
                reference.points[i].mean_jobs, rel=1e-12)

    def test_checkpoint_resume_counted(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        scenario = Scenario(name="sw", system=SMALL_SWEEP,
                            engine=EngineSpec(checkpoint=path))
        assert run(scenario).resumed == 0
        again = run(scenario)
        assert again.resumed == len(again.points)

    def test_to_table_shapes(self):
        table = run(Scenario(name="sw", system=SMALL_SWEEP)).to_table()
        assert table.key_name == "quantum_mean"
        assert table.column_names == [f"N[class{p}]" for p in range(4)]
        assert "quantum_mean" in table.render()


class TestSimEngines:
    ENGINE = EngineSpec(engine="sim", horizon=400.0, replications=1)

    def test_sim_point(self):
        result = run(Scenario(name="sim", system=SMALL_POINT,
                              engine=self.ENGINE))
        assert result.engine == "sim"
        assert result.solved is None
        assert result.sim is not None
        pt = result.points[0]
        assert pt.mean_jobs is None
        assert len(pt.sim_mean_jobs) == 4
        assert pt.delta is None

    def test_both_point_reports_deltas(self):
        result = run(Scenario(
            name="both", system=SMALL_POINT,
            engine=EngineSpec(engine="both", horizon=2000.0,
                              replications=2)))
        pt = result.points[0]
        assert pt.mean_jobs is not None and pt.sim_mean_jobs is not None
        for p in range(4):
            expected = ((pt.mean_jobs[p] - pt.sim_mean_jobs[p])
                        / pt.sim_mean_jobs[p])
            assert pt.delta[p] == pytest.approx(expected)
        assert result.max_abs_delta() == pytest.approx(
            max(abs(d) for d in pt.delta))
        table = result.to_table()
        assert "delta[class0]" in table.column_names

    def test_both_sweep(self):
        scenario = Scenario(
            name="both-sweep",
            system=SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                              axis=SweepAxis("quantum_mean", (2.0,))),
            engine=EngineSpec(engine="both", horizon=1000.0))
        result = run(scenario)
        assert len(result.points) == 1
        assert result.points[0].delta is not None
        assert not math.isnan(result.delta_series(0)[0])


class TestPresetRuns:
    def test_fig4_matches_manual_sweep(self):
        from repro.workloads import fig4_config, sweep
        result = run(get_scenario("fig4"))
        grid = list(get_scenario("fig4").grid())
        reference = sweep("service_rate", grid, fig4_config)
        for i in range(len(grid)):
            assert result.points[i].mean_jobs == pytest.approx(
                reference.points[i].mean_jobs, rel=1e-12)


class TestObservability:
    def test_output_spec_arms_a_trace(self, tmp_path):
        trace = tmp_path / "run.jsonl"
        scenario = Scenario(name="traced", system=SMALL_POINT,
                            output=OutputSpec(measures=("mean_jobs",),
                                              trace=str(trace)))
        run(scenario)
        text = trace.read_text()
        assert '"trace-header"' in text
        assert "scenario.run" in text
        assert "traced" in text

    def test_existing_session_not_clobbered(self, tmp_path):
        from repro import obs
        outer = tmp_path / "outer.jsonl"
        inner = tmp_path / "inner.jsonl"
        scenario = Scenario(name="traced", system=SMALL_POINT,
                            output=OutputSpec(measures=("mean_jobs",),
                                              trace=str(inner)))
        obs.start(trace_path=str(outer))
        try:
            run(scenario)
        finally:
            obs.stop()
        assert not inner.exists()
        assert "scenario.run" in outer.read_text()


class TestDistributionMetrics:
    """Selector threading: RunPoint.metrics end to end."""

    OUT = OutputSpec(metrics=("mean", "p95", "p99"))

    def test_analytic_point_metrics(self):
        result = run(Scenario(name="pt", system=SMALL_POINT,
                              output=self.OUT))
        assert result.metric_names == ("mean", "p95", "p99")
        pt = result.points[0]
        assert pt.dist_kinds == ("exact",) * len(pt.metrics)
        for p, row in enumerate(pt.metrics):
            mean, p95, p99 = row
            assert mean == pytest.approx(pt.mean_response_time[p])
            assert mean < p95 < p99

    def test_default_scenarios_carry_no_metrics(self):
        result = run(Scenario(name="pt", system=SMALL_POINT))
        assert result.metric_names is None
        assert result.points[0].metrics is None
        assert result.metrics_table() is None

    def test_both_engine_reports_sim_quantiles(self):
        result = run(Scenario(
            name="both", system=SMALL_POINT, output=self.OUT,
            engine=EngineSpec(engine="both", horizon=2000.0,
                              replications=2)))
        pt = result.points[0]
        assert pt.sim_metrics is not None
        assert pt.sim_metric_half_width is not None
        num_classes = len(pt.metrics)
        assert len(pt.sim_metrics) == num_classes
        for p in range(num_classes):
            sim_mean, sim_p95, sim_p99 = pt.sim_metrics[p]
            assert sim_mean < sim_p95 < sim_p99
            assert all(hw >= 0 for hw in pt.sim_metric_half_width[p])
        table = result.metrics_table()
        cols = table.column_names
        assert any(c.startswith("p99[") for c in cols)
        assert any(c.startswith("sim:p99[") for c in cols)

    def test_round_trip_preserves_metric_fields(self):
        from repro.scenario import run_result_from_dict, run_result_to_dict
        result = run(Scenario(name="pt", system=SMALL_POINT,
                              output=self.OUT))
        back = run_result_from_dict(run_result_to_dict(result))
        assert back.metric_names == result.metric_names
        assert back.points[0].metrics == result.points[0].metrics
        assert back.points[0].dist_kinds == result.points[0].dist_kinds

    def test_default_payloads_keep_historical_keys(self):
        from repro.scenario import run_point_to_dict
        result = run(Scenario(name="pt", system=SMALL_POINT))
        payload = run_point_to_dict(result.points[0])
        assert "metrics" not in payload
        assert "dist_kinds" not in payload
        assert "sim_metrics" not in payload
        assert "sim_metric_half_width" not in payload

    def test_sweep_threads_selectors(self):
        result = run(Scenario(name="sw", system=SMALL_SWEEP,
                              output=OutputSpec(metrics=("mean", "p99"))))
        assert result.metric_names == ("mean", "p99")
        for pt in result.points:
            assert pt.metrics is not None
            assert all(row[1] > row[0] for row in pt.metrics)
