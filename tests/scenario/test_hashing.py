"""Property suite for scenario content hashing (the service's cache key).

The service's correctness rests on two hash properties:

* **stability** — a key survives every representation change that does
  not change the computation: JSON key reordering, serialization
  round-trips, execution-only engine knobs;
* **separation** — scenarios that compute different numbers (different
  presets, grid tiers, solver knobs, grid values) never share a key.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.scenario import (
    GRID_TIERS,
    canonical_bytes,
    get_scenario,
    point_key,
    scenario_key,
    scenario_names,
    semantic_scenario_dict,
)
from repro.serialize import scenario_from_dict, scenario_to_dict

NAMES = scenario_names()


def reorder(value, rng):
    """Recursively shuffle every dict's key order (JSON-visible only)."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: reorder(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [reorder(v, rng) for v in value]
    return value


@st.composite
def preset_scenarios(draw):
    name = draw(st.sampled_from(NAMES))
    grid = draw(st.sampled_from(GRID_TIERS))
    return get_scenario(name, grid=grid)


class TestStability:
    @given(preset_scenarios(), st.randoms())
    @settings(max_examples=40, deadline=None)
    def test_key_invariant_under_key_reordering(self, scenario, rng):
        shuffled = reorder(scenario_to_dict(scenario), rng)
        assert scenario_key(scenario_from_dict(shuffled)) \
            == scenario_key(scenario)

    @given(preset_scenarios())
    @settings(max_examples=40, deadline=None)
    def test_key_survives_json_round_trip(self, scenario):
        data = json.loads(json.dumps(scenario_to_dict(scenario)))
        back = scenario_from_dict(data)
        assert scenario_key(back) == scenario_key(scenario)
        # And the canonical bytes themselves are reproducible.
        assert canonical_bytes(semantic_scenario_dict(back)) \
            == canonical_bytes(semantic_scenario_dict(scenario))

    @given(preset_scenarios(),
           st.integers(min_value=1, max_value=8),
           st.sampled_from(["journal.jsonl", "x/y.jsonl", None]))
    @settings(max_examples=40, deadline=None)
    def test_execution_knobs_do_not_change_key(self, scenario, workers,
                                               checkpoint):
        tweaked = scenario.with_engine(workers=workers,
                                       checkpoint=checkpoint)
        assert scenario_key(tweaked) == scenario_key(scenario)

    @given(preset_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_display_fields_do_not_change_key(self, scenario):
        renamed = dataclasses.replace(scenario, name="other",
                                      description="different words")
        assert scenario_key(renamed) == scenario_key(scenario)


class TestSeparation:
    def test_presets_and_grid_tiers_never_collide(self):
        keys = {}
        for name in NAMES:
            for grid in GRID_TIERS:
                scenario = get_scenario(name, grid=grid)
                key = scenario_key(scenario)
                semantic = canonical_bytes(
                    semantic_scenario_dict(scenario))
                if key in keys and keys[key] != semantic:
                    pytest.fail(
                        f"hash collision: {name}/{grid} collides with a "
                        f"semantically different scenario")
                keys[key] = semantic
        # Sanity: the sweep covered a real population of distinct keys.
        assert len(set(keys)) > len(NAMES)

    @given(preset_scenarios(), st.floats(min_value=1e-7, max_value=1e-3))
    @settings(max_examples=20, deadline=None)
    def test_solver_knobs_change_key(self, scenario, tol):
        tweaked = scenario.with_engine(tol=tol)
        if tweaked.engine.tol == scenario.engine.tol:
            return
        assert scenario_key(tweaked) != scenario_key(scenario)


class TestPointKeys:
    def test_point_keys_shared_across_grids(self):
        # The same grid value reached through different tiers hashes
        # identically — that is what makes shards reusable.
        quick = get_scenario("fig2", grid="quick")
        full = get_scenario("fig2", grid="full")
        shared = set(quick.grid()) & set(full.grid())
        assert shared
        for v in shared:
            assert point_key(quick, v) == point_key(full, v)

    def test_point_keys_distinct_per_value(self):
        scenario = get_scenario("fig2", grid="quick")
        keys = {point_key(scenario, v) for v in scenario.grid()}
        assert len(keys) == len(scenario.grid())

    def test_point_key_differs_from_scenario_key(self):
        scenario = get_scenario("fig2", grid="quick")
        assert point_key(scenario, scenario.grid()[0]) \
            != scenario_key(scenario)

    def test_unswept_point_key(self):
        scenario = get_scenario("crosscheck-moderate")
        assert scenario.axis is None
        assert point_key(scenario, None)  # valid, stable
        with pytest.raises(ValidationError, match="no sweep axis"):
            point_key(scenario, 1.0)

    def test_swept_requires_value(self):
        scenario = get_scenario("fig2")
        with pytest.raises(ValidationError, match="unswept"):
            point_key(scenario, None)


class TestMetricSelectors:
    """Schema-v3 metric selectors: hashed only when non-default."""

    @given(preset_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_default_selectors_do_not_change_key(self, scenario):
        explicit = scenario.with_output(metrics=("mean",))
        assert scenario_key(explicit) == scenario_key(scenario)
        # The hashed subtree itself carries no "metrics" key, so every
        # pre-distribution key (and warm store) is preserved verbatim.
        assert "metrics" not in semantic_scenario_dict(scenario)
        assert "metrics" not in semantic_scenario_dict(explicit)

    @given(preset_scenarios())
    @settings(max_examples=20, deadline=None)
    def test_non_default_selectors_change_key(self, scenario):
        with_p99 = scenario.with_output(metrics=("mean", "p99"))
        assert scenario_key(with_p99) != scenario_key(scenario)
        assert semantic_scenario_dict(with_p99)["metrics"] \
            == ["mean", "p99"]

    @given(preset_scenarios())
    @settings(max_examples=10, deadline=None)
    def test_selector_keys_round_trip(self, scenario):
        with_p99 = scenario.with_output(metrics=("mean", "p99"))
        back = scenario_from_dict(
            json.loads(json.dumps(scenario_to_dict(with_p99))))
        assert scenario_key(back) == scenario_key(with_p99)

    def test_distinct_selector_sets_never_collide(self):
        scenario = get_scenario("fig2", grid="quick")
        keys = {scenario_key(scenario.with_output(metrics=m))
                for m in (("mean",), ("mean", "p95"), ("mean", "p99"),
                          ("mean", "p95", "p99"), ("mean", "tail@2.5"))}
        assert len(keys) == 5

    def test_legacy_boolean_metrics_is_not_hashed(self):
        """The historical ``metrics: true`` observability toggle is an
        execution knob — it must map onto the same key."""
        scenario = get_scenario("fig2", grid="quick")
        data = scenario_to_dict(scenario)
        data.setdefault("output", {})["metrics"] = True
        legacy = scenario_from_dict(data)
        assert legacy.output.collect_metrics
        assert scenario_key(legacy) == scenario_key(scenario)
