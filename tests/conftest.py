"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ClassConfig, SystemConfig
from repro.phasetype import erlang, exponential, hyperexponential


@pytest.fixture
def rng():
    """Deterministic NumPy generator for statistical tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def single_class_config() -> SystemConfig:
    """A small one-class system (the exactly-solvable regime)."""
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(2, arrival_rate=0.8, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.5,
                              name="solo"),
    ))


@pytest.fixture
def two_class_config() -> SystemConfig:
    """A small two-class system exercising the fixed point."""
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=0.5, service_rate=0.5,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="small"),
        ClassConfig.markovian(4, arrival_rate=0.4, service_rate=2.0,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="big"),
    ))


@pytest.fixture
def phased_class_config() -> SystemConfig:
    """Non-exponential distributions in every slot (order > 1 PH)."""
    return SystemConfig(processors=2, classes=(
        ClassConfig(
            partition_size=1,
            arrival=hyperexponential([0.4, 0.6], [0.3, 1.2]),
            service=erlang(2, mean=1.0),
            quantum=erlang(3, mean=2.0),
            overhead=exponential(mean=0.05),
            name="phased",
        ),
        ClassConfig.markovian(2, arrival_rate=0.3, service_rate=1.5,
                              quantum_mean=2.0, overhead_mean=0.05,
                              name="plain"),
    ))
