"""Tests for the block-tridiagonal boundary solver."""

import numpy as np
import pytest

from repro.core.generator import build_class_qbd
from repro.errors import ConvergenceError, ValidationError
from repro.kernels import is_sparse, solve_boundary_blocktridiag
from repro.phasetype import erlang, exponential
from repro.pipeline.assembly import build_class_qbd_fast
from repro.qbd.boundary import solve_boundary
from repro.qbd.rmatrix import solve_R
from repro.qbd.structure import QBDProcess
from repro.resilience import faults


def gang_chain(c=8, *, lam=0.3, mu=1.0, backend=None):
    """One gang class chain with ``c`` boundary levels, plus its R."""
    arrival = exponential(lam)
    service = erlang(2, rate=mu)
    quantum = erlang(2, rate=0.7)
    vacation = erlang(2, rate=0.5)
    if backend is None:
        process, _ = build_class_qbd(c, arrival, service, quantum, vacation,
                                     policy="switch")
    else:
        process, _, _ = build_class_qbd_fast(c, arrival, service, quantum,
                                             vacation, policy="switch",
                                             backend=backend)
    R = solve_R(process.A0, process.A1, process.A2)
    return process, R


def extended_mm1(lam=0.6, mu=1.0, b=25):
    """M/M/1 with ``b`` boundary levels, all interior blocks identical.

    The long identical stretch exercises the freeze-and-reuse path of
    the forward elimination; the exact solution stays geometric.
    """
    A0 = np.array([[lam]])
    A1 = np.array([[-(lam + mu)]])
    A2 = np.array([[mu]])
    rows = []
    for i in range(b + 1):
        row = [None] * (b + 1)
        if i > 0:
            row[i - 1] = A2
        row[i] = A1 if i > 0 else np.array([[-lam]])
        if i < b:
            row[i + 1] = A0
        rows.append(tuple(row))
    return QBDProcess(boundary=tuple(rows), A0=A0, A1=A1, A2=A2), lam / mu


class TestAgainstDenseReference:
    @pytest.mark.parametrize("c", [2, 5, 10])
    def test_gang_chain_parity(self, c):
        process, R = gang_chain(c)
        dense = solve_boundary(process, R, backend="dense")
        block = solve_boundary_blocktridiag(process, R)
        assert len(block) == len(dense)
        for pb, pd in zip(block, dense):
            assert np.allclose(pb, pd, atol=1e-10)

    def test_csr_blocks(self):
        process, R = gang_chain(30, backend="sparse")
        assert any(is_sparse(blk) for row in process.boundary for blk in row
                   if blk is not None)
        dense = solve_boundary(process, R, backend="dense")
        block = solve_boundary_blocktridiag(process, R, backend="sparse")
        for pb, pd in zip(block, dense):
            assert np.allclose(pb, pd, atol=1e-10)

    def test_frozen_stretch_geometric(self):
        process, rho = extended_mm1(b=25)
        R = solve_R(process.A0, process.A1, process.A2)
        pi = solve_boundary_blocktridiag(process, R)
        for i in range(10):
            assert float(pi[i].sum()) == pytest.approx(
                (1 - rho) * rho ** i, abs=1e-12)
        dense = solve_boundary(process, R, backend="dense")
        for pb, pd in zip(pi, dense):
            assert np.allclose(pb, pd, atol=1e-12)


class TestValidationAndFallback:
    def test_bad_R_shape_rejected(self):
        process, R = gang_chain(2)
        with pytest.raises(ValidationError):
            solve_boundary_blocktridiag(process, np.eye(R.shape[0] + 1))

    def test_injected_fault_raises(self):
        process, R = gang_chain(2)
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("boundary",)):
            with pytest.raises(ConvergenceError):
                solve_boundary_blocktridiag(process, R)

    def test_solve_boundary_falls_back_to_dense(self):
        """A failing block solver must never fail the boundary solve."""
        process, R = gang_chain(12)
        expect = solve_boundary(process, R, backend="dense")
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("boundary",)) as spec:
            got = solve_boundary(process, R, backend="sparse")
            assert spec.fired >= 1
        for pg, pe in zip(got, expect):
            assert np.allclose(pg, pe, atol=1e-10)

    def test_unstable_R_rejected(self):
        process, R = gang_chain(2)
        with pytest.raises((ValidationError, ConvergenceError)):
            solve_boundary_blocktridiag(process, np.eye(R.shape[0]) * 1.5)


class TestNormalization:
    def test_mass_with_tail_is_one(self):
        process, R = gang_chain(6)
        pi = solve_boundary_blocktridiag(process, R)
        b = process.boundary_levels
        d = R.shape[0]
        tail = np.linalg.solve(np.eye(d) - R, np.ones(d))
        mass = sum(float(v.sum()) for v in pi[:b]) + float(pi[b] @ tail)
        assert mass == pytest.approx(1.0, abs=1e-12)
        assert all(float(v.min()) >= 0.0 for v in pi)
