"""Tests for sparse Kronecker assembly and the matrix-free operators."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.kernels import KronSumOperator, kron2, solve_sylvester


def blocks(n, m, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, n)), rng.standard_normal((m, m))


class TestKron2:
    def test_dense_matches_numpy(self):
        A, B = blocks(3, 4)
        assert np.array_equal(kron2(A, B), np.kron(A, B))

    def test_sparse_matches_numpy(self):
        A, B = blocks(3, 4, seed=1)
        out = kron2(A, B, sparse=True)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), np.kron(A, B))

    def test_scalar_shortcuts(self):
        A = np.array([[2.5]])
        B = blocks(1, 4, seed=2)[1]
        assert np.allclose(kron2(A, B), 2.5 * B)
        assert np.allclose(kron2(B, A), 2.5 * B)
        out = kron2(A, B, sparse=True)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), 2.5 * B)

    def test_sparse_factors_stay_sparse(self):
        A, B = blocks(3, 3, seed=3)
        out = kron2(sp.csr_array(A), B)
        assert sp.issparse(out)
        assert np.allclose(out.toarray(), np.kron(A, B))


class TestKronSumOperator:
    def test_matvec_matches_materialized(self):
        A, B = blocks(4, 3, seed=4)
        op = KronSumOperator(A, B)
        dense = op.toarray()
        x = np.random.default_rng(4).standard_normal(12)
        assert np.allclose(op @ x, dense @ x, atol=1e-12)

    def test_rmatvec_is_transpose(self):
        A, B = blocks(3, 5, seed=5)
        op = KronSumOperator(A, B)
        dense = op.toarray()
        x = np.random.default_rng(5).standard_normal(15)
        assert np.allclose(op.rmatvec(x), dense.T @ x, atol=1e-12)

    def test_sparse_factors(self):
        A, B = blocks(4, 4, seed=6)
        op = KronSumOperator(sp.csr_array(A), sp.csr_array(B))
        dense = np.kron(A, np.eye(4)) + np.kron(np.eye(4), B)
        x = np.ones(16)
        assert np.allclose(op @ x, dense @ x, atol=1e-12)


class TestSolveSylvester:
    def rand_system(self, d, seed):
        rng = np.random.default_rng(seed)
        R = 0.3 * rng.random((d, d)) / d          # sp(R) well below 1
        M1 = -np.eye(d) * d - rng.random((d, d))  # dominant, invertible
        A2 = rng.random((d, d))
        F = rng.standard_normal((d, d))
        return R, M1, A2, F

    @pytest.mark.parametrize("d", [3, 6, 10])
    def test_matches_dense_kronecker_solve(self, d):
        R, M1, A2, F = self.rand_system(d, seed=d)
        H = solve_sylvester(R, M1, A2, F, tol=1e-12)
        assert H is not None
        # Defining equation: H M1 + R H A2 = -F.
        assert np.allclose(H @ M1 + R @ H @ A2, -F, atol=1e-8)
        M = np.kron(np.eye(d), M1.T) + np.kron(R, A2.T)
        H_ref = np.linalg.solve(M, -F.ravel()).reshape(d, d)
        assert np.allclose(H, H_ref, atol=1e-8)

    def test_zero_rhs(self):
        R, M1, A2, _ = self.rand_system(4, seed=11)
        H = solve_sylvester(R, M1, A2, np.zeros((4, 4)))
        assert np.array_equal(H, np.zeros((4, 4)))

    def test_failure_returns_none(self):
        d = 4
        # Singular coefficient: M1 = 0 and R = 0 gives a zero operator.
        H = solve_sylvester(np.zeros((d, d)), np.zeros((d, d)),
                            np.zeros((d, d)), np.ones((d, d)), maxiter=2)
        assert H is None
