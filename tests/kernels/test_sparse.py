"""Tests for the representation-agnostic block helpers and factorizations."""

import numpy as np
import pytest
from scipy import sparse as sp

from repro.kernels import (
    Factorization,
    block_bytes,
    density,
    diagonal,
    factorize,
    is_sparse,
    ph_moments,
    row_sums,
    sub_dense,
    to_csr,
    to_dense,
)
from repro.phasetype import erlang, hyperexponential


def random_block(n, seed=0, fill=0.3):
    rng = np.random.default_rng(seed)
    M = rng.standard_normal((n, n))
    M[rng.random((n, n)) > fill] = 0.0
    return M


class TestRepresentationHelpers:
    def test_roundtrip(self):
        M = random_block(12)
        assert np.array_equal(to_dense(to_csr(M)), M)
        assert is_sparse(to_csr(M))
        assert not is_sparse(to_dense(to_csr(M)))

    def test_density_agrees(self):
        M = random_block(15, seed=3)
        assert density(M) == pytest.approx(density(to_csr(M)))
        assert density(np.zeros((4, 4))) == 0.0
        assert density(np.zeros((0, 0))) == 0.0

    def test_diagonal_and_row_sums(self):
        M = random_block(10, seed=1)
        C = to_csr(M)
        assert np.allclose(diagonal(C), np.diag(M))
        assert np.allclose(row_sums(C), M.sum(axis=1))

    def test_sub_dense_matches_fancy_indexing(self):
        M = random_block(20, seed=2)
        rows = np.array([0, 3, 7, 19])
        cols = np.array([1, 2, 18])
        expect = M[np.ix_(rows, cols)]
        assert np.array_equal(sub_dense(M, rows, cols), expect)
        assert np.allclose(sub_dense(to_csr(M), rows, cols), expect)

    def test_sub_dense_empty_index_sets(self):
        M = to_csr(random_block(5))
        assert sub_dense(M, np.array([], dtype=np.intp),
                         np.array([0, 1])).shape == (0, 2)
        assert sub_dense(M, np.array([0]),
                         np.array([], dtype=np.intp)).shape == (1, 0)


class TestBlockBytes:
    def test_equal_blocks_equal_bytes(self):
        M = random_block(9, seed=4)
        assert block_bytes(M) == block_bytes(M.copy())
        assert block_bytes(to_csr(M)) == block_bytes(to_csr(M.copy()))

    def test_representations_keyed_apart(self):
        # Sparse and dense solve paths are close but not bit-identical,
        # so the cache must never serve one for the other.
        M = random_block(9, seed=5)
        assert block_bytes(M) != block_bytes(to_csr(M))

    def test_different_values_differ(self):
        M = random_block(9, seed=6)
        N = M.copy()
        N[0, 0] += 1.0
        assert block_bytes(M) != block_bytes(N)
        assert block_bytes(to_csr(M)) != block_bytes(to_csr(N))


class TestFactorization:
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_solve_and_transpose(self, backend):
        rng = np.random.default_rng(7)
        A = random_block(16, seed=7) + 16 * np.eye(16)  # well conditioned
        lu = Factorization(A, backend=backend)
        b = rng.standard_normal(16)
        assert np.allclose(A @ lu.solve(b), b, atol=1e-10)
        assert np.allclose(A.T @ lu.solve_transposed(b), b, atol=1e-10)

    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_matrix_rhs(self, backend):
        A = random_block(10, seed=8) + 10 * np.eye(10)
        B = np.random.default_rng(8).standard_normal((10, 3))
        lu = Factorization(A, backend=backend)
        assert np.allclose(A @ lu.solve(B), B, atol=1e-10)

    def test_factorize_accepts_csr(self):
        A = random_block(12, seed=9) + 12 * np.eye(12)
        x = np.ones(12)
        dense = factorize(A, backend="dense").solve(x)
        sparse = factorize(sp.csr_array(A), backend="sparse").solve(x)
        assert np.allclose(dense, sparse, atol=1e-10)


class TestPhMoments:
    @pytest.mark.parametrize("dist", [
        erlang(4, rate=1.3),
        hyperexponential([0.3, 0.7], [0.5, 2.0]),
    ])
    @pytest.mark.parametrize("backend", ["dense", "sparse"])
    def test_matches_reference(self, dist, backend):
        moments = ph_moments(dist.alpha, dist.S, 3, backend=backend)
        for k, m in enumerate(moments, start=1):
            assert m == pytest.approx(dist.moment(k), rel=1e-12)

    def test_sparse_generator_input(self):
        dist = erlang(6, rate=0.8)
        moments = ph_moments(dist.alpha, sp.csr_array(np.asarray(dist.S)), 2)
        assert moments[0] == pytest.approx(dist.mean, rel=1e-12)
