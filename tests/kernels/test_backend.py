"""Tests for the dense/sparse backend selector."""

import pytest

from repro.errors import ValidationError
from repro.kernels import (
    SPARSE_MIN_SIZE,
    SPARSE_SIZE_THRESHOLD,
    resolve_backend,
    select_backend,
)


class TestResolveBackend:
    def test_none_is_auto(self):
        assert resolve_backend(None) == "auto"

    @pytest.mark.parametrize("mode", ["auto", "dense", "sparse"])
    def test_passthrough(self, mode):
        assert resolve_backend(mode) == mode

    def test_unknown_rejected(self):
        with pytest.raises(ValidationError):
            resolve_backend("gpu")


class TestSelectBackend:
    def test_dense_mode_always_dense(self):
        assert select_backend("dense", 10_000) == "dense"
        assert select_backend("dense", 10_000, 0.001) == "dense"

    def test_sparse_mode_respects_min_size(self):
        assert select_backend("sparse", SPARSE_MIN_SIZE - 1) == "dense"
        assert select_backend("sparse", SPARSE_MIN_SIZE) == "sparse"

    def test_auto_size_threshold(self):
        assert select_backend("auto", SPARSE_SIZE_THRESHOLD - 1) == "dense"
        assert select_backend("auto", SPARSE_SIZE_THRESHOLD) == "sparse"
        assert select_backend(None, SPARSE_SIZE_THRESHOLD) == "sparse"

    def test_auto_density_gate(self):
        n = SPARSE_SIZE_THRESHOLD
        assert select_backend("auto", n, 0.5) == "dense"
        assert select_backend("auto", n, 0.01) == "sparse"
        # Unknown density skips the gate.
        assert select_backend("auto", n, None) == "sparse"

    def test_forced_sparse_ignores_density(self):
        assert select_backend("sparse", SPARSE_MIN_SIZE, 0.99) == "sparse"

    def test_never_returns_auto(self):
        for mode in (None, "auto", "dense", "sparse"):
            for size in (1, 100, 1000):
                assert select_backend(mode, size) in ("dense", "sparse")
