"""Property-based dense <-> sparse parity.

The sparse backend must be an *optimization*, never a model change:
for any well-formed class chain, assembly under ``backend="sparse"``
produces the same blocks, and the sparse solve path lands on the same
stationary distribution to 1e-10.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.generator import build_class_qbd
from repro.kernels import solve_boundary_blocktridiag, to_dense
from repro.phasetype import erlang, exponential, hyperexponential
from repro.pipeline.assembly import build_class_qbd_fast
from repro.qbd.boundary import solve_boundary
from repro.qbd.stability import drift
from repro.qbd.rmatrix import solve_R
from repro.qbd.stationary import solve_qbd

rates = st.floats(0.1, 3.0, allow_nan=False, allow_infinity=False)


@st.composite
def small_ph(draw, *, max_order: int = 2):
    kind = draw(st.sampled_from(["exp", "erlang", "hyper"]))
    if kind == "exp" or max_order == 1:
        return exponential(draw(rates))
    if kind == "erlang":
        return erlang(draw(st.integers(1, max_order)), rate=draw(rates))
    w = draw(st.floats(0.1, 0.9))
    return hyperexponential([w, 1 - w], [draw(rates), draw(rates)])


@st.composite
def class_chains(draw):
    c = draw(st.integers(1, 4))
    arrival = draw(small_ph())
    service = draw(small_ph())
    quantum = draw(small_ph())
    vacation = draw(small_ph())
    policy = draw(st.sampled_from(["switch", "idle"]))
    return c, arrival, service, quantum, vacation, policy


def build_both(chain):
    c, arrival, service, quantum, vacation, policy = chain
    dense, space = build_class_qbd(c, arrival, service, quantum, vacation,
                                   policy=policy)
    sparse, _, _ = build_class_qbd_fast(c, arrival, service, quantum,
                                        vacation, policy=policy,
                                        backend="sparse")
    return dense, sparse, space


@given(chain=class_chains())
@settings(max_examples=30, deadline=None)
def test_assembly_blocks_identical(chain):
    """Sparse-backend assembly yields the exact same generator blocks."""
    dense, sparse, _ = build_both(chain)
    assert np.array_equal(np.asarray(dense.A0), to_dense(sparse.A0))
    assert np.array_equal(np.asarray(dense.A1), to_dense(sparse.A1))
    assert np.array_equal(np.asarray(dense.A2), to_dense(sparse.A2))
    for row_d, row_s in zip(dense.boundary, sparse.boundary):
        for blk_d, blk_s in zip(row_d, row_s):
            if blk_d is None:
                assert blk_s is None
            else:
                assert np.allclose(np.asarray(blk_d), to_dense(blk_s),
                                   atol=0.0)


@given(chain=class_chains())
@settings(max_examples=25, deadline=None)
def test_boundary_solver_parity(chain):
    """Block-tridiagonal elimination == dense reference to 1e-10."""
    c, arrival, service, quantum, vacation, policy = chain
    process, _ = build_class_qbd(c, arrival, service, quantum, vacation,
                                 policy=policy)
    report = drift(process.A0, process.A1, process.A2)
    if not report.stable:
        return
    R = solve_R(process.A0, process.A1, process.A2)
    dense_pi = solve_boundary(process, R, backend="dense")
    block_pi = solve_boundary_blocktridiag(process, R)
    for pb, pd in zip(block_pi, dense_pi):
        assert np.allclose(pb, pd, atol=1e-10)


@given(chain=class_chains())
@settings(max_examples=15, deadline=None)
def test_end_to_end_stationary_parity(chain):
    """solve_qbd under both backends: same stationary vectors to 1e-10."""
    dense_proc, sparse_proc, _ = build_both(chain)
    report = drift(dense_proc.A0, dense_proc.A1, dense_proc.A2)
    if not report.stable:
        return
    sol_d = solve_qbd(dense_proc, backend="dense")
    sol_s = solve_qbd(sparse_proc, backend="sparse")
    assert np.allclose(sol_s.R, sol_d.R, atol=1e-10)
    for pd, ps in zip(sol_d.boundary_pi, sol_s.boundary_pi):
        assert np.allclose(ps, pd, atol=1e-10)
    assert sol_s.mean_level == pytest.approx(sol_d.mean_level,
                                             rel=1e-8, abs=1e-10)
