"""The Kronecker assembler must equal the reference builder exactly."""

import numpy as np
import pytest

from repro.core.generator import build_class_qbd
from repro.errors import ValidationError
from repro.phasetype import PhaseType, erlang, exponential
from repro.pipeline.assembly import AssemblyWorkspace, build_class_qbd_fast

ARRIVALS = {
    "exp": exponential(0.4),
    "ph2": PhaseType([0.6, 0.4], [[-1.0, 0.3], [0.1, -0.8]]),
}
SERVICES = {
    "exp": exponential(1.0),
    "ph2": PhaseType([0.5, 0.5], [[-2.0, 0.5], [0.0, -1.5]]),
}
QUANTA = {"erl2": erlang(2, 1.0), "erl3": erlang(3, 1.5)}
VACATIONS = {"erl3": erlang(3, 2.0), "exp": exponential(0.7)}


def _assert_processes_equal(fast, ref, atol=1e-12):
    assert fast.boundary_levels == ref.boundary_levels
    for name in ("A0", "A1", "A2"):
        np.testing.assert_allclose(getattr(fast, name), getattr(ref, name),
                                   atol=atol, err_msg=name)
    for i, (frow, rrow) in enumerate(zip(fast.boundary, ref.boundary)):
        for j, (fb, rb) in enumerate(zip(frow, rrow)):
            assert (fb is None) == (rb is None), (i, j)
            if fb is not None:
                np.testing.assert_allclose(fb, rb, atol=atol,
                                           err_msg=f"B[{i}][{j}]")


@pytest.mark.parametrize("policy", ["switch", "idle"])
@pytest.mark.parametrize("partitions", [1, 2, 4])
@pytest.mark.parametrize("akey", sorted(ARRIVALS))
@pytest.mark.parametrize("skey", sorted(SERVICES))
@pytest.mark.parametrize("qkey,vkey", [("erl2", "erl3"), ("erl3", "exp")])
def test_fast_assembly_matches_reference(policy, partitions, akey, skey,
                                         qkey, vkey):
    arrival, service = ARRIVALS[akey], SERVICES[skey]
    quantum, vacation = QUANTA[qkey], VACATIONS[vkey]
    ref_proc, ref_space = build_class_qbd(partitions, arrival, service,
                                          quantum, vacation, policy=policy)
    fast_proc, fast_space, ws = build_class_qbd_fast(
        partitions, arrival, service, quantum, vacation, policy=policy)
    assert fast_space == ref_space
    assert isinstance(ws, AssemblyWorkspace)
    _assert_processes_equal(fast_proc, ref_proc)


def test_workspace_reused_across_vacations():
    arrival, service, quantum = exponential(0.4), exponential(1.0), erlang(2, 1.0)
    _, _, ws = build_class_qbd_fast(2, arrival, service, quantum,
                                    erlang(3, 2.0))
    for vac in (erlang(3, 0.5), exponential(1.1), erlang(2, 4.0)):
        proc, _, ws2 = build_class_qbd_fast(2, arrival, service, quantum, vac,
                                            workspace=ws)
        assert ws2 is ws  # the vacation-independent factors survive
        ref, _ = build_class_qbd(2, arrival, service, quantum, vac)
        _assert_processes_equal(proc, ref)


def test_stale_workspace_rebuilt():
    arrival, service, quantum = exponential(0.4), exponential(1.0), erlang(2, 1.0)
    vac = erlang(3, 2.0)
    _, _, ws = build_class_qbd_fast(2, arrival, service, quantum, vac)
    proc, _, ws2 = build_class_qbd_fast(2, exponential(0.7), service, quantum,
                                        vac, workspace=ws)
    assert ws2 is not ws  # different arrival: factors no longer apply
    ref, _ = build_class_qbd(2, exponential(0.7), service, quantum, vac)
    _assert_processes_equal(proc, ref)


def test_atom_at_zero_rejected():
    atom = PhaseType([0.5], [[-1.0]])  # alpha sums to 0.5: atom at zero
    with pytest.raises(ValidationError, match="atom at zero"):
        build_class_qbd_fast(1, exponential(0.4), exponential(1.0),
                             erlang(2, 1.0), atom)
