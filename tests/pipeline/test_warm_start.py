"""Warm-started R solves: seeding, Newton refinement, and its guards."""

import numpy as np
import pytest

from repro.core.generator import build_class_qbd
from repro.phasetype import erlang, exponential
from repro.qbd.rmatrix import METHODS, refine_R, solve_R
from repro.resilience.fallback import resilient_solve_R


@pytest.fixture(scope="module")
def blocks():
    proc, _ = build_class_qbd(2, exponential(0.4), exponential(1.0),
                              erlang(2, 1.0), erlang(3, 2.0))
    return proc.A0, proc.A1, proc.A2


@pytest.fixture(scope="module")
def R_exact(blocks):
    return solve_R(*blocks)


class TestSolveRWarmStart:
    def test_warm_start_matches_cold(self, blocks, R_exact):
        for method in METHODS:
            warm = solve_R(*blocks, method=method, R0=R_exact)
            np.testing.assert_allclose(warm, R_exact, atol=1e-9,
                                       err_msg=method)

    def test_perturbed_seed_converges(self, blocks, R_exact):
        rng = np.random.default_rng(7)
        R0 = R_exact * (1 + 1e-3 * rng.standard_normal(R_exact.shape))
        warm = solve_R(*blocks, R0=R0)
        np.testing.assert_allclose(warm, R_exact, atol=1e-9)

    def test_mismatched_seed_ignored(self, blocks, R_exact):
        bad = np.eye(R_exact.shape[0] + 1)
        warm = solve_R(*blocks, R0=bad)
        np.testing.assert_allclose(warm, R_exact, atol=1e-9)

    def test_nonfinite_seed_ignored(self, blocks, R_exact):
        bad = np.full_like(R_exact, np.nan)
        warm = solve_R(*blocks, R0=bad)
        np.testing.assert_allclose(warm, R_exact, atol=1e-9)


class TestRefineR:
    def test_refines_near_solution(self, blocks, R_exact):
        A0, A1, A2 = blocks
        R0 = R_exact * 1.001
        refined = refine_R(A0, A1, A2, R0)
        assert refined is not None
        resid = A0 + refined @ A1 + refined @ refined @ A2
        assert float(np.max(np.abs(resid))) < 1e-10
        np.testing.assert_allclose(refined, R_exact, atol=1e-8)

    def test_far_seed_rejected(self, blocks):
        A0, A1, A2 = blocks
        # Newton from a far-off seed can land on a *non-minimal*
        # solvent (negative entries); the guards must refuse it so the
        # caller falls back to a cold solve.
        bad = np.full((A1.shape[0], A1.shape[0]), 5.0)
        assert refine_R(A0, A1, A2, bad) is None

    def test_solver_falls_back_to_cold_on_bad_seed(self, blocks, R_exact):
        bad = np.full_like(R_exact, 5.0)
        R = solve_R(*blocks, R0=bad)
        np.testing.assert_allclose(R, R_exact, atol=1e-9)

    def test_refine_is_not_a_method(self):
        assert "newton" not in METHODS
        assert "refine" not in METHODS


class TestResilientWarmStart:
    def test_happy_path_stays_single_attempt(self, blocks, R_exact):
        R, report = resilient_solve_R(*blocks, R0=R_exact)
        np.testing.assert_allclose(R, R_exact, atol=1e-9)
        assert report.method == "logreduction"
        assert report.fallbacks == 0
        assert len(report.attempts) == 1
