"""Vectorized effective-quantum extraction vs the reference implementation."""

import numpy as np
import pytest

from repro.core.generator import build_class_qbd
from repro.core.vacation import effective_quantum
from repro.phasetype import PhaseType, erlang, exponential
from repro.pipeline.extract import ExtractionWorkspace, extract_effective_quantum
from repro.qbd.stationary import solve_qbd

ARRIVAL2 = PhaseType([0.6, 0.4], [[-1.0, 0.3], [0.1, -0.8]])
SERVICE2 = PhaseType([0.5, 0.5], [[-2.0, 0.5], [0.0, -1.5]])


def _solved(partitions, arrival, service, quantum, vacation, policy):
    proc, space = build_class_qbd(partitions, arrival, service, quantum,
                                  vacation, policy=policy)
    return space, proc, solve_qbd(proc)


@pytest.mark.parametrize("policy", ["switch", "idle"])
@pytest.mark.parametrize("partitions", [1, 2, 4])
def test_extraction_matches_reference_markovian(policy, partitions):
    vacation = erlang(3, 2.0)
    space, proc, sol = _solved(partitions, exponential(0.4), exponential(1.0),
                               erlang(2, 1.0), vacation, policy)
    ref = effective_quantum(space, proc, sol, vacation)
    fast = extract_effective_quantum(space, proc, sol, vacation)
    assert fast.order == ref.order
    np.testing.assert_allclose(fast.alpha, ref.alpha, atol=1e-10)
    np.testing.assert_allclose(fast.S, ref.S, atol=1e-10)
    assert abs(fast.atom_at_zero - ref.atom_at_zero) < 1e-12


@pytest.mark.parametrize("policy", ["switch", "idle"])
@pytest.mark.parametrize("partitions", [1, 3])
def test_extraction_matches_reference_phase_type(policy, partitions):
    vacation = exponential(0.7)
    space, proc, sol = _solved(partitions, ARRIVAL2, SERVICE2, erlang(3, 1.5),
                               vacation, policy)
    ref = effective_quantum(space, proc, sol, vacation)
    fast = extract_effective_quantum(space, proc, sol, vacation)
    assert fast.order == ref.order
    np.testing.assert_allclose(fast.alpha, ref.alpha, atol=1e-10)
    np.testing.assert_allclose(fast.S, ref.S, atol=1e-10)
    assert abs(fast.atom_at_zero - ref.atom_at_zero) < 1e-12


def test_truncation_parameters_respected():
    vacation = erlang(3, 2.0)
    space, proc, sol = _solved(2, exponential(0.4), exponential(1.0),
                               erlang(2, 1.0), vacation, "switch")
    for tmass, max_levels in ((1e-6, 400), (1e-12, 400), (1e-9, 7)):
        ref = effective_quantum(space, proc, sol, vacation,
                                truncation_mass=tmass, max_levels=max_levels)
        fast = extract_effective_quantum(space, proc, sol, vacation,
                                         truncation_mass=tmass,
                                         max_levels=max_levels)
        assert fast.order == ref.order, (tmass, max_levels)
        np.testing.assert_allclose(fast.alpha, ref.alpha, atol=1e-10)
        np.testing.assert_allclose(fast.S, ref.S, atol=1e-10)


def test_workspace_plan_reused_across_solutions():
    ws = ExtractionWorkspace()
    for vac in (erlang(3, 2.0), erlang(3, 0.9)):
        space, proc, sol = _solved(2, exponential(0.4), exponential(1.0),
                                   erlang(2, 1.0), vac, "switch")
        ref = effective_quantum(space, proc, sol, vac)
        fast = extract_effective_quantum(space, proc, sol, vac, workspace=ws)
        np.testing.assert_allclose(fast.alpha, ref.alpha, atol=1e-10)
        np.testing.assert_allclose(fast.S, ref.S, atol=1e-10)
    # Same vacation order -> one cached plan serves both solves.
    assert len(ws._plans) == 1
