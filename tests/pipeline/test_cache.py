"""Content-keyed artifact cache: keys, hit accounting, LRU bounds."""

import numpy as np

from repro.core.generator import build_class_qbd
from repro.phasetype import erlang, exponential
from repro.pipeline.cache import ArtifactCache
from repro.qbd.stationary import solve_qbd


def _process(arrival_rate=0.4):
    proc, _ = build_class_qbd(2, exponential(arrival_rate), exponential(1.0),
                              erlang(2, 1.0), erlang(3, 2.0))
    return proc


class TestKey:
    def test_identical_blocks_same_key(self):
        k1 = ArtifactCache.key(_process(), method="logreduction", tol=1e-12,
                               policy=None)
        k2 = ArtifactCache.key(_process(), method="logreduction", tol=1e-12,
                               policy=None)
        assert k1 == k2

    def test_different_blocks_different_key(self):
        k1 = ArtifactCache.key(_process(0.4), method="logreduction",
                               tol=1e-12, policy=None)
        k2 = ArtifactCache.key(_process(0.5), method="logreduction",
                               tol=1e-12, policy=None)
        assert k1 != k2

    def test_solve_options_enter_the_key(self):
        proc = _process()
        base = ArtifactCache.key(proc, method="logreduction", tol=1e-12,
                                 policy=None)
        assert base != ArtifactCache.key(proc, method="cr", tol=1e-12,
                                         policy=None)
        assert base != ArtifactCache.key(proc, method="logreduction",
                                         tol=1e-10, policy=None)

    def test_tiny_perturbation_changes_key(self):
        proc = _process()
        k1 = ArtifactCache.key(proc, method="cr", tol=1e-12, policy=None)
        A1 = proc.A1.copy()
        A1[0, 0] = np.nextafter(A1[0, 0], np.inf)
        from repro.qbd.structure import QBDProcess
        bumped = QBDProcess.from_trusted_blocks(proc.boundary, proc.A0, A1,
                                                proc.A2)
        k2 = ArtifactCache.key(bumped, method="cr", tol=1e-12, policy=None)
        assert k1 != k2


class TestCacheBehaviour:
    def test_hit_and_miss_accounting(self):
        cache = ArtifactCache()
        proc = _process()
        key = ArtifactCache.key(proc, method="logreduction", tol=1e-12,
                                policy=None)
        assert cache.get(key) is None
        sol = solve_qbd(proc)
        cache.put(key, sol)
        assert cache.get(key) is sol
        assert cache.stats() == {"hits": 1, "misses": 1, "evictions": 0,
                                 "entries": 1}

    def test_lru_eviction(self):
        cache = ArtifactCache(max_entries=2)
        cache.put("a", "A")
        cache.put("b", "B")
        assert cache.get("a") == "A"  # refresh "a": "b" is now LRU
        cache.put("c", "C")
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == "A"
        assert cache.get("c") == "C"
