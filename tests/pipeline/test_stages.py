"""The staged pipeline must reproduce the reference solve path."""

import math

import numpy as np
import pytest

from repro.core.fixed_point import FixedPointOptions, run_fixed_point
from repro.core.model import GangSchedulingModel
from repro.pipeline.cache import ArtifactCache
from repro.workloads.presets import fig23_config


@pytest.fixture(scope="module")
def config():
    return fig23_config(0.4, 2.0)


@pytest.fixture(scope="module")
def results(config):
    legacy = run_fixed_point(config, FixedPointOptions(
        warm_start=False, reuse_artifacts=False))
    fast = run_fixed_point(config, FixedPointOptions())
    return legacy, fast


class TestPipelineParity:
    def test_mean_jobs_match_reference_path(self, results):
        legacy, fast = results
        for a, b in zip(legacy.history[-1].mean_jobs,
                        fast.history[-1].mean_jobs):
            assert abs(a - b) <= 1e-8

    def test_same_iteration_count(self, results):
        legacy, fast = results
        assert legacy.iterations == fast.iterations
        assert legacy.converged and fast.converged

    def test_vacation_means_match(self, results):
        legacy, fast = results
        for a, b in zip(legacy.history[-1].vacation_means,
                        fast.history[-1].vacation_means):
            assert abs(a - b) <= 1e-8


class TestTimings:
    def test_result_carries_stage_timings(self, results):
        _, fast = results
        for stage in ("assemble", "stability", "rsolve", "boundary",
                      "extract", "reduce", "recombine"):
            assert stage in fast.timings, stage
            assert fast.timings[stage] >= 0.0

    def test_solved_model_carries_timings(self, config):
        solved = GangSchedulingModel(config).solve()
        assert "measures" in solved.timings
        assert "rsolve" in solved.timings


class TestArtifactCache:
    def test_repeat_solve_hits_cache(self, config):
        cache = ArtifactCache()
        model = GangSchedulingModel(config, cache=cache)
        first = model.solve()
        assert cache.stats()["hits"] == 0 or cache.stats()["misses"] > 0
        misses_after_first = cache.stats()["misses"]
        second = model.solve()
        # The second run replays identical chains end-to-end.
        assert cache.stats()["misses"] == misses_after_first
        assert cache.stats()["hits"] > 0
        for a, b in zip(first.classes, second.classes):
            assert math.isclose(a.mean_jobs, b.mean_jobs, rel_tol=0,
                                abs_tol=0.0)

    def test_cache_respects_solver_options(self, config):
        cache = ArtifactCache()
        GangSchedulingModel(config, cache=cache).solve()
        hits_before = cache.stats()["hits"]
        GangSchedulingModel(config, cache=cache,
                            rmatrix_method="cr").solve()
        # Different method => different keys => no replayed hits beyond
        # the within-run warm restarts.
        assert cache.stats()["misses"] > hits_before


class TestSaturatedMeasures:
    def test_saturated_constructor_values(self):
        from repro.core.measures import ClassMeasures

        m = ClassMeasures.saturated()
        assert m.mean_jobs == float("inf")
        assert m.mean_response_time == float("inf")
        assert m.mean_jobs_waiting == float("inf")
        assert m.variance_jobs == float("inf")
        assert math.isnan(m.mean_jobs_in_service)
        assert math.isnan(m.service_fraction)
        assert math.isnan(m.throughput)
        assert math.isnan(m.utilization)
        assert m.skip_probability_flow == 0.0

    def test_saturated_class_uses_constructor(self):
        from repro.core.measures import ClassMeasures
        from repro.workloads.presets import fig5_config

        # Starve every non-focus class: they saturate, and _package
        # must hand them the canonical saturated measures.
        solved = GangSchedulingModel(
            fig5_config(focus_class=0, fraction=0.97)).solve()
        saturated = [c for c in solved.classes if not c.stable]
        assert saturated, "expected at least one saturated class"
        canonical = ClassMeasures.saturated()
        for c in saturated:
            for name in ("mean_jobs", "mean_response_time",
                         "mean_jobs_waiting", "mean_jobs_in_service",
                         "service_fraction", "skip_probability_flow",
                         "throughput", "utilization", "variance_jobs"):
                got = getattr(c.measures, name)
                want = getattr(canonical, name)
                # nan != nan, so compare by kind
                assert (got == want) or (math.isnan(got)
                                         and math.isnan(want)), name


def test_warm_start_r_seed_survives_iterations(config):
    # The per-class R matrices must be carried across iterations: the
    # second iteration's seed equals the first iteration's solution.
    from repro.pipeline.context import SolveContext
    from repro.pipeline import stages
    from repro.core.vacation import heavy_traffic_vacation

    opts = FixedPointOptions()
    ctx = SolveContext.create(config, opts)
    vacations = [heavy_traffic_vacation(config, p)
                 for p in range(config.num_classes)]
    stages.solve_all(ctx, vacations)
    seeds = [art.R.copy() for art in ctx.classes]
    stages.solve_all(ctx, vacations)  # identical blocks: cache replay
    for art, seed in zip(ctx.classes, seeds):
        np.testing.assert_array_equal(art.R, seed)
    assert ctx.cache.stats()["hits"] == config.num_classes
