"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import StreamFactory, spawn_generators


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 5)
        assert len(gens) == 5

    def test_independent_streams(self):
        g1, g2 = spawn_generators(42, 2)
        a = g1.random(1000)
        b = g2.random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_reproducible(self):
        a = spawn_generators(7, 3)[1].random(10)
        b = spawn_generators(7, 3)[1].random(10)
        assert np.array_equal(a, b)

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestStreamFactory:
    def test_same_name_same_stream(self):
        f = StreamFactory(1)
        assert f.get("a") is f.get("a")

    def test_different_names_different_streams(self):
        f = StreamFactory(1)
        a = f.get("arrivals").random(500)
        b = f.get("service").random(500)
        assert not np.array_equal(a, b)

    def test_creation_order_irrelevant(self):
        f1 = StreamFactory(9)
        f2 = StreamFactory(9)
        _ = f1.get("x")  # created first in f1 only
        a1 = f1.get("y").random(10)
        a2 = f2.get("y").random(10)
        assert np.array_equal(a1, a2)

    def test_seed_changes_streams(self):
        a = StreamFactory(1).get("s").random(10)
        b = StreamFactory(2).get("s").random(10)
        assert not np.array_equal(a, b)
