"""Tests for repro.utils.combinatorics."""

import pytest

from repro.utils.combinatorics import (
    composition_index_map,
    compositions,
    multinomial_compositions,
    num_compositions,
)


class TestNumCompositions:
    @pytest.mark.parametrize("total,parts,expected", [
        (0, 1, 1), (0, 3, 1), (1, 1, 1), (2, 2, 3), (3, 2, 4),
        (4, 3, 15), (5, 4, 56),
    ])
    def test_counts(self, total, parts, expected):
        assert num_compositions(total, parts) == expected

    def test_matches_enumeration(self):
        for total in range(5):
            for parts in range(1, 5):
                assert num_compositions(total, parts) == \
                    len(compositions(total, parts))

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            num_compositions(2, 0)

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            num_compositions(-1, 2)


class TestCompositions:
    def test_order_is_reverse_lex(self):
        assert compositions(2, 2) == ((2, 0), (1, 1), (0, 2))

    def test_all_sums_correct(self):
        for v in compositions(4, 3):
            assert sum(v) == 4
            assert all(x >= 0 for x in v)

    def test_unique(self):
        vs = compositions(5, 3)
        assert len(set(vs)) == len(vs)

    def test_single_part(self):
        assert compositions(7, 1) == ((7,),)

    def test_zero_total(self):
        assert compositions(0, 3) == ((0, 0, 0),)

    def test_deterministic_across_calls(self):
        assert compositions(3, 3) == compositions(3, 3)


class TestMultinomialCompositions:
    def test_probabilities_sum_to_one(self):
        out = multinomial_compositions(3, [0.2, 0.5, 0.3])
        assert sum(p for _, p in out) == pytest.approx(1.0)

    def test_binomial_case(self):
        out = dict(multinomial_compositions(2, [0.25, 0.75]))
        assert out[(2, 0)] == pytest.approx(0.0625)
        assert out[(1, 1)] == pytest.approx(2 * 0.25 * 0.75)
        assert out[(0, 2)] == pytest.approx(0.5625)

    def test_zero_probability_categories_omitted(self):
        out = multinomial_compositions(2, [1.0, 0.0])
        assert out == [((2, 0), 1.0)]

    def test_zero_draws(self):
        out = multinomial_compositions(0, [0.5, 0.5])
        assert out == [((0, 0), 1.0)]


class TestIndexMap:
    def test_inverse_of_enumeration(self):
        vs = compositions(3, 3)
        m = composition_index_map(3, 3)
        for i, v in enumerate(vs):
            assert m[v] == i

    def test_size(self):
        assert len(composition_index_map(4, 2)) == num_compositions(4, 2)
