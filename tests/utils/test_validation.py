"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import (
    NotAGeneratorError,
    NotAPhaseTypeError,
    NotStochasticError,
    ValidationError,
)
from repro.utils.validation import (
    as_float_array,
    check_generator,
    check_probability_vector,
    check_stochastic,
    check_subgenerator,
    check_subprobability_vector,
    check_substochastic,
    is_generator,
    is_stochastic,
)


class TestAsFloatArray:
    def test_coerces_lists(self):
        out = as_float_array([[1, 2], [3, 4]], ndim=2)
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            as_float_array([1.0, 2.0], ndim=2)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([np.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="non-finite"):
            as_float_array([[np.inf]], ndim=2)


class TestProbabilityVector:
    def test_valid(self):
        v = check_probability_vector([0.2, 0.3, 0.5])
        assert v.sum() == pytest.approx(1.0)

    def test_renormalizes_tiny_drift(self):
        v = check_probability_vector([0.5, 0.5 + 1e-12])
        assert v.sum() == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match="negative"):
            check_probability_vector([-0.1, 1.1])

    def test_rejects_bad_sum(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            check_probability_vector([0.2, 0.2])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="non-empty"):
            check_probability_vector([])

    def test_subprobability_allows_deficit(self):
        v = check_subprobability_vector([0.2, 0.3])
        assert v.sum() == pytest.approx(0.5)

    def test_subprobability_rejects_excess(self):
        with pytest.raises(ValidationError, match="<= 1"):
            check_subprobability_vector([0.9, 0.9])


class TestStochastic:
    def test_valid(self):
        P = check_stochastic([[0.5, 0.5], [0.1, 0.9]])
        assert np.allclose(P.sum(axis=1), 1.0)

    def test_rejects_non_square(self):
        with pytest.raises(NotStochasticError, match="square"):
            check_stochastic([[0.5, 0.5]])

    def test_rejects_bad_rows(self):
        with pytest.raises(NotStochasticError, match="sums to"):
            check_stochastic([[0.5, 0.4], [0.1, 0.9]])

    def test_rejects_negative_entry(self):
        with pytest.raises(NotStochasticError, match="negative"):
            check_stochastic([[1.5, -0.5], [0.5, 0.5]])

    def test_is_stochastic_predicate(self):
        assert is_stochastic([[1.0]])
        assert not is_stochastic([[0.9]])

    def test_substochastic_allows_leak(self):
        P = check_substochastic([[0.5, 0.3], [0.0, 0.2]])
        assert P.shape == (2, 2)

    def test_substochastic_rejects_excess(self):
        with pytest.raises(NotStochasticError):
            check_substochastic([[0.9, 0.3], [0.0, 0.2]])


class TestGenerator:
    def test_valid(self):
        Q = check_generator([[-1.0, 1.0], [2.0, -2.0]])
        assert Q[0, 1] == 1.0

    def test_rejects_nonzero_rows(self):
        with pytest.raises(NotAGeneratorError, match="sums to"):
            check_generator([[-1.0, 0.5], [2.0, -2.0]])

    def test_rejects_negative_offdiag(self):
        with pytest.raises(NotAGeneratorError, match="off-diagonal"):
            check_generator([[1.0, -1.0], [2.0, -2.0]])

    def test_scaled_tolerance_accepts_fast_chains(self):
        # A stiff generator with O(1e-7) rounding noise on a 1e6 rate.
        Q = np.array([[-1e6, 1e6], [5e5, -5e5 + 1e-7]])
        assert is_generator(Q)

    def test_is_generator_predicate(self):
        assert is_generator([[-1.0, 1.0], [0.0, 0.0]])
        assert not is_generator([[1.0]])


class TestSubgenerator:
    def test_valid(self):
        S = check_subgenerator([[-2.0, 1.0], [0.0, -3.0]])
        assert S[1, 1] == -3.0

    def test_rejects_positive_row_sum(self):
        with pytest.raises(NotAPhaseTypeError):
            check_subgenerator([[-1.0, 2.0], [0.0, -1.0]])

    def test_rejects_singular(self):
        # Phase 2 never exits: recurrent, so absorption is not certain.
        with pytest.raises(NotAPhaseTypeError, match="singular"):
            check_subgenerator([[-1.0, 1.0], [0.0, 0.0]])

    def test_rejects_positive_diagonal(self):
        with pytest.raises(NotAPhaseTypeError):
            check_subgenerator([[1.0]], require_invertible=False)

    def test_allows_singular_when_not_required(self):
        S = check_subgenerator([[-1.0, 1.0], [1.0, -1.0]],
                               require_invertible=False)
        assert S.shape == (2, 2)
