"""Tests for repro.utils.linalg."""

import numpy as np
import pytest

from repro.errors import ReducibleChainError, ValidationError
from repro.utils.linalg import (
    drazin_like_solve,
    geometric_tail_sum,
    kron_sum,
    solve_stationary_dtmc,
    solve_stationary_gth,
    spectral_radius,
    stationary_from_generator,
)


def random_generator(rng, n):
    """Random irreducible generator (dense positive off-diagonals)."""
    Q = rng.uniform(0.1, 2.0, size=(n, n))
    np.fill_diagonal(Q, 0.0)
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return Q


class TestSpectralRadius:
    def test_diagonal(self):
        assert spectral_radius(np.diag([0.5, -0.9])) == pytest.approx(0.9)

    def test_empty(self):
        assert spectral_radius(np.zeros((0, 0))) == 0.0

    def test_rotation_matrix(self):
        theta = 0.3
        R = np.array([[np.cos(theta), -np.sin(theta)],
                      [np.sin(theta), np.cos(theta)]])
        assert spectral_radius(R) == pytest.approx(1.0)


class TestKronSum:
    def test_shape(self):
        A = np.array([[-1.0, 1.0], [0.5, -0.5]])
        B = np.array([[-2.0, 2.0], [1.0, -1.0]])
        K = kron_sum(A, B)
        assert K.shape == (4, 4)

    def test_generator_of_independent_pair(self):
        # Kronecker sum of two generators is again a generator.
        A = np.array([[-1.0, 1.0], [0.5, -0.5]])
        B = np.array([[-2.0, 2.0], [1.0, -1.0]])
        K = kron_sum(A, B)
        assert np.allclose(K.sum(axis=1), 0.0)

    def test_eigenvalues_add(self):
        A = np.diag([-1.0, -2.0])
        B = np.diag([-3.0, -5.0])
        K = kron_sum(A, B)
        assert sorted(np.diag(K)) == [-7.0, -6.0, -5.0, -4.0]


class TestGTH:
    def test_two_state_ctmc(self):
        Q = np.array([[-1.0, 1.0], [3.0, -3.0]])
        pi = solve_stationary_gth(Q)
        assert pi == pytest.approx([0.75, 0.25])

    def test_matches_direct_solve(self, rng):
        Q = random_generator(rng, 7)
        pi_gth = solve_stationary_gth(Q)
        pi_dir = stationary_from_generator(Q, method="direct")
        assert pi_gth == pytest.approx(pi_dir, abs=1e-10)

    def test_balance_residual(self, rng):
        Q = random_generator(rng, 12)
        pi = solve_stationary_gth(Q)
        assert np.max(np.abs(pi @ Q)) < 1e-10
        assert pi.sum() == pytest.approx(1.0)

    def test_single_state(self):
        assert solve_stationary_gth(np.array([[0.0]])) == pytest.approx([1.0])

    def test_transient_state_gets_zero_mass(self):
        # State 2 feeds {0,1} but nothing returns: pi_2 = 0.
        Q = np.array([[-1.0, 1.0, 0.0],
                      [1.0, -1.0, 0.0],
                      [0.0, 1.0, -1.0]])
        pi = solve_stationary_gth(Q)
        assert pi[2] == pytest.approx(0.0, abs=1e-12)

    def test_unreachable_remainder_raises(self):
        # State 1 has no transitions into state 0: elimination cannot
        # fold it back, which GTH reports as reducibility.
        with pytest.raises(ReducibleChainError):
            solve_stationary_gth(np.array([[-1.0, 1.0], [0.0, 0.0]]))

    def test_stiff_generator(self):
        # Rates spanning 10 orders of magnitude: GTH stays accurate.
        Q = np.array([
            [-1e-5, 1e-5, 0.0],
            [0.0, -1e5, 1e5],
            [1.0, 0.0, -1.0],
        ])
        pi = solve_stationary_gth(Q)
        assert np.max(np.abs(pi @ Q)) < 1e-8
        assert np.all(pi > 0)

    def test_dtmc(self):
        P = np.array([[0.5, 0.5], [0.25, 0.75]])
        pi = solve_stationary_dtmc(P)
        assert pi @ P == pytest.approx(pi)
        assert pi == pytest.approx([1 / 3, 2 / 3])

    def test_empty_raises(self):
        with pytest.raises(ValidationError):
            solve_stationary_gth(np.zeros((0, 0)))

    def test_unknown_method(self):
        with pytest.raises(ValidationError, match="unknown"):
            stationary_from_generator(np.array([[0.0]]), method="qr")


class TestDrazinLikeSolve:
    def test_exact_for_invertible(self, rng):
        A = rng.normal(size=(4, 4)) + 4 * np.eye(4)
        B = rng.normal(size=(2, 4))
        X = drazin_like_solve(A, B)
        assert X @ A == pytest.approx(B, abs=1e-9)

    def test_minimum_norm_for_singular(self):
        # X A = B with singular A: returns the least-squares solution.
        A = np.array([[1.0, 0.0], [0.0, 0.0]])
        B = np.array([[2.0, 0.0]])
        X = drazin_like_solve(A, B)
        assert X @ A == pytest.approx(B, abs=1e-9)


class TestGeometricTailSum:
    @pytest.fixture
    def R(self, rng):
        M = rng.uniform(0, 0.2, size=(4, 4))
        assert spectral_radius(M) < 1
        return M

    def test_weight0(self, R):
        direct = sum(np.linalg.matrix_power(R, n) for n in range(400))
        assert geometric_tail_sum(R, weight=0) == pytest.approx(direct, abs=1e-10)

    def test_weight1(self, R):
        direct = sum(n * np.linalg.matrix_power(R, n) for n in range(400))
        assert geometric_tail_sum(R, weight=1) == pytest.approx(direct, abs=1e-10)

    def test_weight2(self, R):
        direct = sum(n * n * np.linalg.matrix_power(R, n) for n in range(600))
        assert geometric_tail_sum(R, weight=2) == pytest.approx(direct, abs=1e-8)

    def test_bad_weight(self, R):
        with pytest.raises(ValidationError):
            geometric_tail_sum(R, weight=3)
