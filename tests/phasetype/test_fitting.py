"""Tests for moment-matching PH fitting."""

import pytest

from repro.errors import ValidationError
from repro.phasetype import fit_moments, match_three_moments, match_two_moments


class TestTwoMoments:
    @pytest.mark.parametrize("mean,scv", [
        (1.0, 1.0), (2.5, 0.5), (0.3, 0.07), (1.0, 4.0), (10.0, 1.8),
        (0.01, 0.33),
    ])
    def test_matches_exactly(self, mean, scv):
        d = match_two_moments(mean, scv)
        assert d.mean == pytest.approx(mean, rel=1e-9)
        assert d.scv == pytest.approx(scv, rel=1e-9)

    def test_scv_one_is_exponential(self):
        assert match_two_moments(2.0, 1.0).order == 1

    def test_high_scv_is_order_two(self):
        assert match_two_moments(1.0, 5.0).order == 2

    def test_low_scv_order_grows(self):
        d = match_two_moments(1.0, 0.1)
        assert 10 <= d.order <= 11

    def test_scv_floor_capped(self):
        d = match_two_moments(1.0, 1e-6)
        assert d.mean == pytest.approx(1.0, rel=1e-9)
        assert d.order <= 100

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            match_two_moments(-1.0, 1.0)
        with pytest.raises(ValidationError):
            match_two_moments(1.0, 0.0)


class TestThreeMoments:
    @pytest.mark.parametrize("m", [
        # Moments of genuine Coxian-2 distributions (hence feasible):
        # coxian([2, 1], [0.4, 1]) and two high-variability triples.
        (1.1, 2.3, 7.05),
        (1.0, 2.5, 10.0),
        (1.0, 3.0, 16.0),
    ])
    def test_matches_when_feasible(self, m):
        d = match_three_moments(*m)
        for k, target in enumerate(m, start=1):
            assert d.moment(k) == pytest.approx(target, rel=1e-5)

    def test_exponential_shortcut(self):
        d = match_three_moments(2.0, 8.0, 48.0)
        assert d.order == 1

    def test_falls_back_on_infeasible(self):
        # Deterministic-like moments (scv ~ 0) are infeasible for Coxian-2;
        # the fallback still matches the mean.
        d = match_three_moments(1.0, 1.0 + 1e-9, 1.0)
        assert d.mean == pytest.approx(1.0, rel=0.05)

    def test_strict_raises_on_infeasible(self):
        with pytest.raises(ValidationError):
            match_three_moments(1.0, 1.0 + 1e-9, 1.0, strict=True)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            match_three_moments(1.0, -2.0, 6.0)


class TestFitMoments:
    def test_one_moment(self):
        d = fit_moments([3.0])
        assert d.order == 1 and d.mean == pytest.approx(3.0)

    def test_two_moments(self):
        d = fit_moments([1.0, 3.0])  # scv = 2
        assert d.scv == pytest.approx(2.0, rel=1e-9)

    def test_three_moments(self):
        d = fit_moments([1.0, 2.5, 10.0])
        assert d.moment(3) == pytest.approx(10.0, rel=1e-5)

    def test_wrong_arity(self):
        with pytest.raises(ValidationError):
            fit_moments([])
        with pytest.raises(ValidationError):
            fit_moments([1.0, 2.0, 3.0, 4.0])

    def test_infeasible_pair_fallback(self):
        d = fit_moments([1.0, 0.5])   # m2 < m1^2 impossible
        assert d.mean == pytest.approx(1.0, rel=1e-6)

    def test_infeasible_pair_strict(self):
        with pytest.raises(ValidationError):
            fit_moments([1.0, 0.5], strict=True)
