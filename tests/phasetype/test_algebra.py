"""Tests for PH closure operations (Theorem 2.5 and friends)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.phasetype import (
    PhaseType,
    convolve,
    convolve_many,
    erlang,
    exponential,
    hyperexponential,
    maximum,
    minimum,
    mixture,
    scale,
)


class TestConvolve:
    def test_means_add(self):
        f = exponential(1.0)
        g = erlang(2, mean=3.0)
        assert convolve(f, g).mean == pytest.approx(f.mean + g.mean)

    def test_variances_add(self):
        f = erlang(2, mean=1.0)
        g = hyperexponential([0.5, 0.5], [1.0, 4.0])
        assert convolve(f, g).variance == pytest.approx(f.variance + g.variance)

    def test_order_adds(self):
        assert convolve(erlang(2, rate=1.0), erlang(3, rate=1.0)).order == 5

    def test_two_exponentials_make_erlang(self):
        c = convolve(exponential(2.0), exponential(2.0))
        e = erlang(2, rate=2.0)
        xs = np.linspace(0.01, 5, 50)
        assert c.cdf(xs) == pytest.approx(e.cdf(xs), abs=1e-10)

    def test_theorem_2_5_block_structure(self):
        f, g = erlang(2, rate=1.0), exponential(3.0)
        c = convolve(f, g)
        # Upper-left block is S_F; coupling is exit(F) x alpha(G).
        assert np.allclose(c.S[:2, :2], f.S)
        assert np.allclose(c.S[:2, 2:], np.outer(f.exit_rates, g.alpha))
        assert np.allclose(c.S[2:, 2:], g.S)

    def test_atom_in_first_operand(self):
        f = PhaseType([0.5], [[-1.0]])      # atom 0.5 at zero
        g = exponential(1.0)
        c = convolve(f, g)
        # X + Y where X = 0 w.p. 1/2: mean = 0.5*1 + 1 = 1.5.
        assert c.mean == pytest.approx(1.5)
        assert c.atom_at_zero == pytest.approx(0.0)

    def test_atoms_multiply(self):
        f = PhaseType([0.5], [[-1.0]])    # atom 0.5
        g = PhaseType([0.25], [[-1.0]])   # atom 0.75
        assert convolve(f, g).atom_at_zero == pytest.approx(0.5 * 0.75)

    def test_laplace_transforms_multiply(self):
        f = erlang(2, mean=1.0)
        g = exponential(0.7)
        c = convolve(f, g)
        for s in [0.3, 1.0, 2.5]:
            assert c.laplace_transform(s) == pytest.approx(
                f.laplace_transform(s) * g.laplace_transform(s))


class TestConvolveMany:
    def test_matches_paper_vacation_structure(self):
        # C_p * G_{p+1} * C_{p+1}: order sums, mean sums.
        parts = [exponential(mean=0.01), exponential(mean=2.0),
                 exponential(mean=0.01)]
        v = convolve_many(parts)
        assert v.order == 3
        assert v.mean == pytest.approx(2.02)

    def test_single_element(self):
        f = erlang(2, mean=1.0)
        assert convolve_many([f]) is f

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            convolve_many([])


class TestMixture:
    def test_mean_is_convex_combination(self):
        f, g = exponential(1.0), exponential(0.25)
        m = mixture([0.3, 0.7], [f, g])
        assert m.mean == pytest.approx(0.3 * f.mean + 0.7 * g.mean)

    def test_cdf_is_convex_combination(self):
        f, g = erlang(2, mean=1.0), exponential(2.0)
        m = mixture([0.5, 0.5], [f, g])
        xs = np.linspace(0.0, 4.0, 9)
        assert m.cdf(xs) == pytest.approx(0.5 * f.cdf(xs) + 0.5 * g.cdf(xs))

    def test_rejects_bad_weights(self):
        with pytest.raises(ValidationError):
            mixture([0.5, 0.6], [exponential(1.0), exponential(2.0)])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            mixture([1.0], [exponential(1.0), exponential(2.0)])


class TestScale:
    def test_mean_scales(self):
        d = scale(erlang(3, mean=1.0), 4.0)
        assert d.mean == pytest.approx(4.0)

    def test_scv_invariant(self):
        base = erlang(3, mean=1.0)
        assert scale(base, 7.0).scv == pytest.approx(base.scv)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            scale(exponential(1.0), -2.0)


class TestMinimum:
    def test_exponential_minimum_rate_adds(self):
        m = minimum(exponential(2.0), exponential(3.0))
        assert m.mean == pytest.approx(1.0 / 5.0)

    def test_sf_multiplies(self):
        f = erlang(2, mean=1.0)
        g = exponential(1.5)
        m = minimum(f, g)
        for x in [0.2, 1.0, 3.0]:
            assert m.sf(x) == pytest.approx(f.sf(x) * g.sf(x))

    def test_sampled_agreement(self, rng):
        f, g = erlang(2, mean=2.0), exponential(1.0)
        m = minimum(f, g)
        direct = np.minimum(f.sample(rng, 30_000), g.sample(rng, 30_000))
        assert m.mean == pytest.approx(direct.mean(), rel=0.05)


class TestMaximum:
    def test_cdf_multiplies(self):
        f = exponential(1.0)
        g = erlang(2, mean=1.0)
        m = maximum(f, g)
        for x in [0.2, 1.0, 3.0]:
            assert m.cdf(x) == pytest.approx(f.cdf(x) * g.cdf(x), abs=1e-9)

    def test_exponential_pair_mean(self):
        # E[max] = 1/a + 1/b - 1/(a+b).
        a, b = 2.0, 3.0
        m = maximum(exponential(a), exponential(b))
        assert m.mean == pytest.approx(1 / a + 1 / b - 1 / (a + b))

    def test_min_max_mean_identity(self):
        # E[min] + E[max] = E[X] + E[Y].
        f = erlang(2, mean=1.5)
        g = hyperexponential([0.5, 0.5], [1.0, 3.0])
        total = minimum(f, g).mean + maximum(f, g).mean
        assert total == pytest.approx(f.mean + g.mean)
