"""Tests for PH equilibrium (stationary-excess) distributions."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.phasetype import (
    equilibrium,
    erlang,
    exponential,
    hyperexponential,
    residual_moment,
)


class TestEquilibrium:
    def test_exponential_is_fixed_point(self):
        # Memorylessness: the equilibrium of Exp is itself.
        d = exponential(2.0)
        e = equilibrium(d)
        xs = np.linspace(0.01, 5, 20)
        assert e.cdf(xs) == pytest.approx(d.cdf(xs), abs=1e-10)

    def test_mean_identity(self):
        # E[X_e] = E[X^2] / (2 E[X]).
        for d in (erlang(3, mean=2.0),
                  hyperexponential([0.4, 0.6], [0.5, 3.0])):
            assert equilibrium(d).mean == pytest.approx(
                d.moment(2) / (2 * d.mean))

    def test_density_is_scaled_survival(self):
        d = erlang(2, mean=1.0)
        e = equilibrium(d)
        xs = np.linspace(0.05, 6, 25)
        assert e.pdf(xs) == pytest.approx(d.sf(xs) / d.mean, abs=1e-9)

    def test_erlang_equilibrium_mean(self):
        # Erlang-2 mean 1: m2 = 1.5 -> equilibrium mean 0.75.
        assert equilibrium(erlang(2, mean=1.0)).mean == pytest.approx(0.75)

    def test_low_variability_shortens_residual(self):
        # SCV < 1: residual shorter than original mean; SCV > 1: longer.
        low = erlang(5, mean=1.0)
        high = hyperexponential([0.5, 0.5], [0.25, 4.0])
        assert equilibrium(low).mean < low.mean
        assert equilibrium(high).mean > high.mean


class TestResidualMoment:
    def test_matches_equilibrium_moments(self):
        d = erlang(3, mean=2.0)
        e = equilibrium(d)
        for k in (1, 2, 3):
            assert residual_moment(d, k) == pytest.approx(e.moment(k),
                                                          rel=1e-9)

    def test_zeroth_moment_is_one(self):
        assert residual_moment(exponential(1.0), 0) == pytest.approx(1.0)

    def test_rejects_negative_order(self):
        with pytest.raises(ValidationError):
            residual_moment(exponential(1.0), -1)
