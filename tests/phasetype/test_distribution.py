"""Tests for the PhaseType class."""

import numpy as np
import pytest

from repro.errors import NotAPhaseTypeError
from repro.phasetype import PhaseType, erlang, exponential, hyperexponential


class TestConstruction:
    def test_valid(self):
        d = PhaseType([1.0], [[-2.0]])
        assert d.order == 1

    def test_mismatched_sizes(self):
        with pytest.raises(NotAPhaseTypeError):
            PhaseType([1.0, 0.0], [[-2.0]])

    def test_rejects_recurrent_phase(self):
        with pytest.raises(NotAPhaseTypeError):
            PhaseType([0.5, 0.5], [[-1.0, 1.0], [1.0, -1.0]])

    def test_alpha_deficit_is_atom(self):
        d = PhaseType([0.7], [[-1.0]])
        assert d.atom_at_zero == pytest.approx(0.3)

    def test_readonly_views(self):
        d = exponential(1.0)
        with pytest.raises(ValueError):
            d.alpha[0] = 0.5
        with pytest.raises(ValueError):
            d.S[0, 0] = -3.0

    def test_repr_mentions_order_and_mean(self):
        r = repr(erlang(3, mean=1.5))
        assert "order=3" in r and "mean=1.5" in r

    def test_equality_and_hash(self):
        a = exponential(2.0)
        b = exponential(2.0)
        assert a == b and hash(a) == hash(b)
        assert a != exponential(3.0)


class TestMoments:
    def test_exponential_moments(self):
        d = exponential(2.0)
        assert d.mean == pytest.approx(0.5)
        assert d.variance == pytest.approx(0.25)
        assert d.scv == pytest.approx(1.0)
        assert d.moment(3) == pytest.approx(6 / 8)

    def test_erlang_moments(self):
        d = erlang(4, mean=2.0)
        assert d.mean == pytest.approx(2.0)
        assert d.scv == pytest.approx(0.25)
        assert d.std == pytest.approx(1.0)

    def test_hyperexponential_scv_above_one(self):
        d = hyperexponential([0.3, 0.7], [0.2, 2.0])
        assert d.scv > 1.0

    def test_moment_zero(self):
        assert exponential(1.0).moment(0) == 1.0

    def test_negative_moment_rejected(self):
        with pytest.raises(ValueError):
            exponential(1.0).moment(-1)

    def test_rate_is_reciprocal_mean(self):
        d = erlang(2, mean=4.0)
        assert d.rate == pytest.approx(0.25)

    def test_atom_shrinks_mean(self):
        full = exponential(1.0)
        with_atom = PhaseType([0.5], [[-1.0]])
        assert with_atom.mean == pytest.approx(0.5 * full.mean)


class TestDistributionFunctions:
    def test_exponential_cdf(self):
        d = exponential(2.0)
        x = np.array([0.0, 0.5, 1.0, 2.0])
        assert d.cdf(x) == pytest.approx(1 - np.exp(-2 * x))

    def test_sf_complements_cdf(self):
        d = erlang(3, mean=1.0)
        for x in [0.1, 0.7, 2.5]:
            assert d.cdf(x) + d.sf(x) == pytest.approx(1.0)

    def test_pdf_integrates_to_one(self):
        d = erlang(2, mean=1.0)
        xs = np.linspace(0, 30, 30_001)
        integral = np.trapezoid(d.pdf(xs), xs)
        assert integral == pytest.approx(1.0, abs=1e-5)

    def test_negative_argument_conventions(self):
        d = exponential(1.0)
        assert d.cdf(-1.0) == 0.0
        assert d.sf(-1.0) == 1.0
        assert d.pdf(-1.0) == 0.0

    def test_scalar_in_scalar_out(self):
        d = exponential(1.0)
        assert isinstance(d.cdf(1.0), float)

    def test_atom_at_zero_in_cdf(self):
        d = PhaseType([0.6], [[-1.0]])
        assert d.cdf(0.0) == pytest.approx(0.4)

    def test_laplace_transform_at_zero_is_one(self):
        d = erlang(2, mean=1.0)
        assert d.laplace_transform(0.0) == pytest.approx(1.0)

    def test_laplace_transform_exponential(self):
        lam = 2.0
        d = exponential(lam)
        for s in [0.5, 1.0, 3.0]:
            assert d.laplace_transform(s) == pytest.approx(lam / (lam + s))

    def test_quantile_roundtrip(self):
        d = erlang(3, mean=2.0)
        for q in [0.1, 0.5, 0.9]:
            assert d.cdf(d.quantile(q)) == pytest.approx(q, abs=1e-8)

    def test_quantile_below_atom_is_zero(self):
        d = PhaseType([0.5], [[-1.0]])
        assert d.quantile(0.3) == 0.0

    def test_quantile_rejects_bad_level(self):
        with pytest.raises(ValueError):
            exponential(1.0).quantile(1.0)

    def test_ulp_close_rates_stay_accurate(self):
        # scipy.linalg.expm's triangular shortcut returns garbage (a
        # negative superdiagonal) when two diagonal entries differ by
        # ~1 ulp; the uniformization evaluator must not.  Found by
        # hypothesis via maximum(exp, hypoexp) in test_properties.
        from repro.phasetype import hypoexponential, maximum

        r = 0.05
        g = hypoexponential([r, np.nextafter(r, 1.0)])
        near = erlang(2, rate=r)
        for x in [0.5, 1.0, 10.0]:
            assert g.cdf(x) == pytest.approx(near.cdf(x), abs=1e-10)
        f = exponential(9.0)
        m = maximum(f, g)
        for x in [0.5, 1.0, 10.0]:
            assert m.cdf(x) == pytest.approx(f.cdf(x) * g.cdf(x), abs=1e-10)


class TestSampling:
    def test_sample_scalar(self, rng):
        x = exponential(1.0).sample(rng)
        assert isinstance(x, float) and x >= 0

    def test_sample_mean_converges(self, rng):
        d = erlang(3, mean=2.0)
        xs = d.sample(rng, size=40_000)
        assert xs.mean() == pytest.approx(2.0, rel=0.03)

    def test_sample_variance_converges(self, rng):
        d = hyperexponential([0.4, 0.6], [0.5, 3.0])
        xs = d.sample(rng, size=60_000)
        assert xs.var() == pytest.approx(d.variance, rel=0.1)

    def test_atom_sampled_as_zero(self, rng):
        d = PhaseType([0.5], [[-1.0]])
        xs = d.sample(rng, size=5_000)
        assert np.mean(xs == 0.0) == pytest.approx(0.5, abs=0.03)

    def test_negative_size_rejected(self, rng):
        with pytest.raises(ValueError):
            exponential(1.0).sample(rng, size=-1)


class TestUtilities:
    def test_rescaled(self):
        d = erlang(2, mean=1.0).rescaled(5.0)
        assert d.mean == pytest.approx(5.0)
        assert d.scv == pytest.approx(0.5)

    def test_rescaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            exponential(1.0).rescaled(0.0)

    def test_embedded_generator_rows_sum_zero(self):
        Q = erlang(3, mean=1.0).embedded_generator()
        assert np.allclose(Q.sum(axis=1), 0.0)
        assert Q.shape == (4, 4)

    def test_irreducible_representation(self):
        assert erlang(2, mean=1.0).is_irreducible_representation()

    def test_trimmed_removes_unreachable(self):
        # Phase 2 unreachable: alpha mass only on phase 0, no 0->1 rate.
        d = PhaseType([1.0, 0.0], [[-1.0, 0.0], [0.0, -2.0]])
        assert not d.is_irreducible_representation()
        t = d.trimmed()
        assert t.order == 1
        assert t.mean == pytest.approx(d.mean)

    def test_trimmed_noop_when_irreducible(self):
        d = erlang(2, mean=1.0)
        assert d.trimmed() is d
