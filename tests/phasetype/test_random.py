"""Tests for the fast PH sampler."""

import numpy as np
import pytest

from repro.phasetype import PhaseType, coxian, erlang, exponential, hyperexponential
from repro.phasetype.random import PhaseTypeSampler, sampler_for


class TestFastPaths:
    def test_exponential_fast_path(self):
        s = PhaseTypeSampler(exponential(2.0))
        assert s._exp_rate == pytest.approx(2.0)

    def test_erlang_fast_path(self):
        s = PhaseTypeSampler(erlang(4, rate=3.0))
        assert s._erlang == (4, pytest.approx(3.0))

    def test_coxian_uses_general_path(self):
        s = PhaseTypeSampler(coxian([1.0, 2.0], [0.5, 1.0]))
        assert s._exp_rate is None and s._erlang is None

    def test_hyperexponential_not_erlang(self):
        s = PhaseTypeSampler(hyperexponential([0.5, 0.5], [1.0, 2.0]))
        assert s._erlang is None


class TestCorrectness:
    @pytest.mark.parametrize("dist", [
        exponential(1.7),
        erlang(3, mean=2.0),
        hyperexponential([0.3, 0.7], [0.5, 2.0]),
        coxian([2.0, 1.0], [0.4, 1.0]),
    ], ids=["exp", "erlang", "h2", "cox2"])
    def test_batch_mean_and_scv(self, dist, rng):
        xs = sampler_for(dist).draw_batch(rng, 50_000)
        assert xs.mean() == pytest.approx(dist.mean, rel=0.04)
        scv_hat = xs.var() / xs.mean() ** 2
        assert scv_hat == pytest.approx(dist.scv, rel=0.12)

    def test_draw_single(self, rng):
        x = sampler_for(erlang(2, mean=1.0)).draw(rng)
        assert x > 0

    def test_atom_handled(self, rng):
        d = PhaseType([0.4], [[-1.0]])
        xs = sampler_for(d).draw_batch(rng, 20_000)
        assert np.mean(xs == 0.0) == pytest.approx(0.6, abs=0.02)

    def test_sampler_cache_returns_same_object(self):
        d = exponential(1.0)
        assert sampler_for(d) is sampler_for(d)

    def test_cache_distinguishes_distributions(self):
        assert sampler_for(exponential(1.0)) is not sampler_for(exponential(2.0))

    def test_agrees_with_slow_sampler(self, rng):
        d = coxian([2.0, 0.5], [0.3, 1.0])
        fast = sampler_for(d).draw_batch(np.random.default_rng(0), 40_000)
        slow = d.sample(np.random.default_rng(1), size=40_000)
        assert fast.mean() == pytest.approx(slow.mean(), rel=0.04)
        assert np.quantile(fast, 0.9) == pytest.approx(np.quantile(slow, 0.9),
                                                       rel=0.05)
