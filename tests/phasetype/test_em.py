"""Tests for hyper-Erlang EM fitting."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.phasetype import erlang, exponential, hyperexponential
from repro.phasetype.em import fit_hyper_erlang, fit_ph_em


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestFitHyperErlang:
    def test_recovers_exponential(self, rng):
        data = rng.exponential(2.0, size=5000)
        fit = fit_hyper_erlang(data, [1])
        assert fit.distribution.mean == pytest.approx(2.0, rel=0.05)
        assert fit.distribution.scv == pytest.approx(1.0, rel=0.1)

    def test_recovers_erlang(self, rng):
        true = erlang(4, mean=2.0)
        data = true.sample(rng, size=6000)
        fit = fit_hyper_erlang(data, [4])
        assert fit.distribution.mean == pytest.approx(2.0, rel=0.05)
        assert fit.rates[0] == pytest.approx(2.0, rel=0.1)   # k/mean

    def test_recovers_hyperexponential_mixture(self, rng):
        true = hyperexponential([0.3, 0.7], [0.2, 2.0])
        data = true.sample(rng, size=8000)
        fit = fit_hyper_erlang(data, [1, 1])
        assert fit.distribution.mean == pytest.approx(true.mean, rel=0.08)
        assert fit.distribution.scv == pytest.approx(true.scv, rel=0.25)

    def test_likelihood_monotone_in_structure_freedom(self, rng):
        data = rng.gamma(2.0, 1.0, size=3000)
        single = fit_hyper_erlang(data, [2])
        richer = fit_hyper_erlang(data, [1, 2])
        # Extra branch can only help at the global optimum; EM may stop
        # a whisker short of it, hence the tolerance.
        assert richer.log_likelihood >= single.log_likelihood - 1e-4

    def test_rejects_nonpositive_samples(self):
        with pytest.raises(ValidationError):
            fit_hyper_erlang([1.0, -2.0], [1])

    def test_rejects_empty_orders(self, rng):
        with pytest.raises(ValidationError):
            fit_hyper_erlang(rng.exponential(1.0, 100), [])

    def test_weights_sum_to_one(self, rng):
        data = rng.exponential(1.0, 2000)
        fit = fit_hyper_erlang(data, [1, 2, 3])
        assert sum(fit.weights) == pytest.approx(1.0)


class TestFitPhEM:
    def test_low_variability_picks_erlang_like(self, rng):
        data = erlang(4, mean=1.0).sample(rng, size=6000)
        fit = fit_ph_em(data, total_order=4)
        assert fit.distribution.scv == pytest.approx(0.25, rel=0.25)

    def test_high_variability_picks_mixture(self, rng):
        true = hyperexponential([0.2, 0.8], [0.1, 2.0])
        data = true.sample(rng, size=8000)
        fit = fit_ph_em(data, total_order=4)
        assert fit.distribution.scv > 1.5
        assert len(fit.orders) >= 2

    def test_result_usable_in_model(self, rng):
        """Fitted distributions drop straight into the gang model."""
        from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
        data = rng.gamma(2.0, 0.5, size=4000)
        fitted = fit_ph_em(data, total_order=3).distribution
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig(partition_size=1,
                        arrival=exponential(0.4),
                        service=fitted.rescaled(1.0),
                        quantum=exponential(mean=2.0),
                        overhead=exponential(mean=0.1)),))
        solved = GangSchedulingModel(cfg).solve()
        assert solved.mean_jobs(0) > 0

    def test_total_order_validated(self, rng):
        with pytest.raises(ValidationError):
            fit_ph_em(rng.exponential(1.0, 100), total_order=0)
