"""Property-based tests (hypothesis) for the PH algebra.

Strategies generate random *valid* PH distributions from the named
families; properties assert the algebraic identities that must hold
for every member of the class.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phasetype import (
    convolve,
    erlang,
    exponential,
    hyperexponential,
    hypoexponential,
    match_two_moments,
    maximum,
    minimum,
    mixture,
    scale,
)

rates = st.floats(min_value=0.05, max_value=20.0,
                  allow_nan=False, allow_infinity=False)
means = st.floats(min_value=0.05, max_value=50.0,
                  allow_nan=False, allow_infinity=False)
scvs = st.floats(min_value=0.02, max_value=20.0,
                 allow_nan=False, allow_infinity=False)


@st.composite
def phase_types(draw):
    """A random small PH distribution from a random family."""
    kind = draw(st.sampled_from(["exp", "erlang", "hypo", "hyper"]))
    if kind == "exp":
        return exponential(draw(rates))
    if kind == "erlang":
        return erlang(draw(st.integers(1, 5)), rate=draw(rates))
    if kind == "hypo":
        n = draw(st.integers(1, 4))
        return hypoexponential([draw(rates) for _ in range(n)])
    n = draw(st.integers(2, 4))
    ws = [draw(st.floats(0.05, 1.0)) for _ in range(n)]
    total = sum(ws)
    return hyperexponential([w / total for w in ws],
                            [draw(rates) for _ in range(n)])


@given(f=phase_types(), g=phase_types())
@settings(max_examples=60, deadline=None)
def test_convolution_means_and_variances_add(f, g):
    c = convolve(f, g)
    np.testing.assert_allclose(c.mean, f.mean + g.mean, rtol=1e-8)
    np.testing.assert_allclose(c.variance, f.variance + g.variance,
                               rtol=1e-6, atol=1e-12)


@given(f=phase_types(), g=phase_types(),
       x=st.floats(min_value=0.0, max_value=30.0))
@settings(max_examples=60, deadline=None)
def test_min_max_survival_identities(f, g, x):
    np.testing.assert_allclose(minimum(f, g).sf(x), f.sf(x) * g.sf(x),
                               atol=1e-8)
    np.testing.assert_allclose(maximum(f, g).cdf(x), f.cdf(x) * g.cdf(x),
                               atol=1e-8)


@given(f=phase_types(), c=st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=60, deadline=None)
def test_scaling_moments(f, c):
    s = scale(f, c)
    np.testing.assert_allclose(s.mean, c * f.mean, rtol=1e-9)
    np.testing.assert_allclose(s.scv, f.scv, rtol=1e-7)


@given(f=phase_types(), g=phase_types(), w=st.floats(0.01, 0.99))
@settings(max_examples=60, deadline=None)
def test_mixture_moments_are_convex(f, g, w):
    m = mixture([w, 1 - w], [f, g])
    np.testing.assert_allclose(m.mean, w * f.mean + (1 - w) * g.mean,
                               rtol=1e-9)
    np.testing.assert_allclose(m.moment(2),
                               w * f.moment(2) + (1 - w) * g.moment(2),
                               rtol=1e-8)


@given(f=phase_types(), x=st.floats(0.0, 20.0), y=st.floats(0.0, 20.0))
@settings(max_examples=60, deadline=None)
def test_cdf_monotone_and_bounded(f, x, y):
    lo, hi = sorted((x, y))
    cl, ch = f.cdf(lo), f.cdf(hi)
    assert -1e-12 <= cl <= ch <= 1.0 + 1e-12


@given(mean=means, scv=scvs)
@settings(max_examples=60, deadline=None)
def test_two_moment_fit_roundtrip(mean, scv):
    d = match_two_moments(mean, scv)
    np.testing.assert_allclose(d.mean, mean, rtol=1e-8)
    np.testing.assert_allclose(d.scv, scv, rtol=1e-6)


@given(f=phase_types())
@settings(max_examples=60, deadline=None)
def test_moments_satisfy_cauchy_schwarz(f):
    # E[X^2] >= (E[X])^2 for any distribution.
    assert f.moment(2) >= f.mean ** 2 * (1 - 1e-12)


@given(f=phase_types())
@settings(max_examples=40, deadline=None)
def test_exit_rates_nonnegative_and_consistent(f):
    s0 = f.exit_rates
    assert np.all(s0 >= 0)
    np.testing.assert_allclose(np.asarray(f.S).sum(axis=1) + s0, 0.0,
                               atol=1e-10)
