"""Tests for the named PH families."""

import pytest

from repro.errors import ValidationError
from repro.phasetype import (
    coxian,
    erlang,
    exponential,
    generalized_erlang,
    hyperexponential,
    hypoexponential,
)


class TestExponential:
    def test_by_rate(self):
        assert exponential(4.0).mean == pytest.approx(0.25)

    def test_by_mean(self):
        assert exponential(mean=0.25).rate == pytest.approx(4.0)

    def test_requires_exactly_one_parameter(self):
        with pytest.raises(ValidationError):
            exponential()
        with pytest.raises(ValidationError):
            exponential(1.0, mean=1.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            exponential(0.0)
        with pytest.raises(ValidationError):
            exponential(mean=-1.0)


class TestErlang:
    def test_mean_parameterization_matches_paper(self):
        # Paper Section 2.5: K-stage Erlang with mean 1/mu has stage
        # rate K*mu.
        d = erlang(4, mean=0.5)
        assert d.S[0, 0] == pytest.approx(-8.0)
        assert d.mean == pytest.approx(0.5)

    def test_scv(self):
        for k in (1, 2, 5, 10):
            assert erlang(k, rate=1.0).scv == pytest.approx(1.0 / k)

    def test_k1_is_exponential(self):
        assert erlang(1, rate=2.0).mean == exponential(2.0).mean

    def test_rejects_k0(self):
        with pytest.raises(ValidationError):
            erlang(0, rate=1.0)

    def test_requires_one_parameter(self):
        with pytest.raises(ValidationError):
            erlang(2)


class TestHypoexponential:
    def test_mean_is_sum(self):
        d = hypoexponential([1.0, 2.0, 4.0])
        assert d.mean == pytest.approx(1.0 + 0.5 + 0.25)

    def test_variance_is_sum(self):
        d = hypoexponential([1.0, 2.0])
        assert d.variance == pytest.approx(1.0 + 0.25)

    def test_generalized_erlang_alias(self):
        a = generalized_erlang([1.0, 3.0])
        b = hypoexponential([1.0, 3.0])
        assert a == b

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            hypoexponential([])


class TestHyperexponential:
    def test_mean(self):
        d = hyperexponential([0.25, 0.75], [1.0, 3.0])
        assert d.mean == pytest.approx(0.25 / 1.0 + 0.75 / 3.0)

    def test_scv_at_least_one(self):
        d = hyperexponential([0.5, 0.5], [0.1, 10.0])
        assert d.scv >= 1.0

    def test_rejects_bad_probs(self):
        with pytest.raises(ValidationError):
            hyperexponential([0.5, 0.4], [1.0, 2.0])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError):
            hyperexponential([1.0], [1.0, 2.0])


class TestCoxian:
    def test_all_exit_probability_one_is_exponential(self):
        d = coxian([2.0], [1.0])
        assert d.mean == pytest.approx(0.5)

    def test_never_exit_early_is_hypoexponential(self):
        d = coxian([1.0, 2.0], [0.0, 1.0])
        assert d.mean == pytest.approx(hypoexponential([1.0, 2.0]).mean)

    def test_early_exit_shortens_mean(self):
        long = coxian([1.0, 1.0], [0.0, 1.0])
        short = coxian([1.0, 1.0], [0.9, 1.0])
        assert short.mean < long.mean
        # Exact: 1 + (1 - p1) * 1.
        assert short.mean == pytest.approx(1.0 + 0.1)

    def test_final_probability_must_be_one(self):
        with pytest.raises(ValidationError):
            coxian([1.0, 2.0], [0.5, 0.5])

    def test_probabilities_in_unit_interval(self):
        with pytest.raises(ValidationError):
            coxian([1.0, 2.0], [1.5, 1.0])

    def test_sampling_matches_mean(self, rng):
        d = coxian([2.0, 1.0], [0.3, 1.0])
        xs = d.sample(rng, size=30_000)
        assert xs.mean() == pytest.approx(d.mean, rel=0.05)
