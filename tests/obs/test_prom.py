"""Prometheus exposition: rendering, escaping, and the round-trip."""

from __future__ import annotations

import math

import pytest

from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
from repro.obs.prom import (
    escape_label_value,
    parse_exposition,
    render_exposition,
    sanitize_name,
    split_series_key,
)


def registry_snapshot():
    reg = MetricsRegistry()
    reg.inc("service.requests", 3, status="ok")
    reg.inc("service.requests", 1, status="error")
    reg.set_gauge("service.up", 1.0)
    for v in (0.002, 0.05, 1.3):
        reg.observe("service.request.elapsed", v)
    return reg.snapshot()


class TestSplitSeriesKey:
    def test_bare_name(self):
        assert split_series_key("cache.hits") == ("cache.hits", {})

    def test_labels(self):
        assert split_series_key("x{a=1,b=two}") == (
            "x", {"a": "1", "b": "two"})

    def test_ambiguous_key_refused(self):
        with pytest.raises(ValueError):
            split_series_key("x{a=1=2}")


class TestSanitizeAndEscape:
    def test_dots_become_underscores(self):
        assert sanitize_name("service.request.elapsed") == \
            "service_request_elapsed"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_name("9lives")[0] not in "0123456789"

    def test_escapes(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"


class TestRender:
    def test_counter_total_suffix_and_type_lines(self):
        text = render_exposition(registry_snapshot())
        assert "# TYPE repro_service_requests_total counter" in text
        assert 'repro_service_requests_total{status="ok"} 3' in text

    def test_histogram_series_shape(self):
        text = render_exposition(registry_snapshot())
        assert "# TYPE repro_service_request_elapsed histogram" in text
        assert text.count("repro_service_request_elapsed_bucket") == \
            len(BUCKET_BOUNDS) + 1
        assert 'le="+Inf"' in text
        assert "repro_service_request_elapsed_sum" in text
        assert "repro_service_request_elapsed_count 3" in text
        assert "repro_service_request_elapsed_min" in text
        assert "repro_service_request_elapsed_max" in text

    def test_buckets_are_cumulative(self):
        fams = parse_exposition(render_exposition(registry_snapshot()))
        samples = [s for s in
                   fams["repro_service_request_elapsed"]["samples"]
                   if s[0].endswith("_bucket")]
        counts = [v for _, _, v in samples]
        assert counts == sorted(counts)
        assert counts[-1] == 3.0            # +Inf covers everything

    def test_legacy_histogram_renders_sum_count_only(self):
        snap = {"histograms": {"h": {"count": 2.0, "sum": 3.0,
                                     "min": 1.0, "max": 2.0}}}
        text = render_exposition(snap)
        assert "repro_h_sum 3" in text
        assert "repro_h_count 2" in text
        assert "_bucket" not in text

    def test_output_is_deterministic(self):
        snap = registry_snapshot()
        assert render_exposition(snap) == render_exposition(snap)

    def test_custom_prefix(self):
        text = render_exposition({"counters": {"c": 1.0}}, prefix="x_")
        assert "x_c_total 1" in text


class TestRoundTrip:
    def test_full_registry_round_trips(self):
        snap = registry_snapshot()
        fams = parse_exposition(render_exposition(snap))
        totals = {tuple(sorted(labels.items())): v
                  for _, labels, v
                  in fams["repro_service_requests_total"]["samples"]}
        assert totals[(("status", "ok"),)] == 3.0
        assert totals[(("status", "error"),)] == 1.0
        assert fams["repro_service_up"]["samples"][0][2] == 1.0
        assert fams["repro_service_request_elapsed"]["type"] == "histogram"

    def test_label_values_with_quotes_newlines_unicode(self):
        nasty = 'he said "hi"\nüñí\\done'
        snap = {"counters": {f"c{{k={nasty}}}": 2.0}}
        fams = parse_exposition(render_exposition(snap))
        (_, labels, value), = fams["repro_c_total"]["samples"]
        assert labels["k"] == nasty
        assert value == 2.0

    def test_infinite_bound_round_trips(self):
        fams = parse_exposition('x_bucket{le="+Inf"} 4\n')
        (_, labels, value), = fams["x_bucket"]["samples"]
        assert math.isinf(float(labels["le"].replace("+Inf", "inf")))
        assert value == 4.0


class TestParserStrictness:
    def test_missing_value_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("just_a_name\n")

    def test_unterminated_labels_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition('x{a="b 1\n')

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("9bad 1\n")

    def test_non_numeric_value_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("x abc\n")

    def test_duplicate_type_rejected(self):
        with pytest.raises(ValueError):
            parse_exposition("# TYPE x counter\n# TYPE x gauge\n")

    def test_help_lines_ignored(self):
        fams = parse_exposition("# HELP x whatever\nx 1\n")
        assert fams["x"]["samples"] == [("x", {}, 1.0)]
