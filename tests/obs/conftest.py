"""Keep the process-global observability state clean between tests."""

from __future__ import annotations

import pytest

from repro.obs import metrics, trace


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    trace.stop_tracing()
    metrics.disable()
    metrics.reset()
