"""Chrome trace-event export: schema validity and span mapping."""

from __future__ import annotations

import json

from repro import obs
from repro.obs.chrome import chrome_trace, write_chrome_trace
from repro.obs.trace import request_scope, span, start_tracing, stop_tracing


def make_trace(path):
    with obs.session(trace_path=path):
        with request_scope("cli.1"):
            with span("service.request", scenario="fig2"):
                with span("worker.task"):
                    pass


def validate_schema(doc):
    """The subset of the trace-event schema Perfetto insists on."""
    assert isinstance(doc["traceEvents"], list)
    for ev in doc["traceEvents"]:
        assert ev["ph"] in ("X", "M", "i")
        assert isinstance(ev["name"], str)
        assert isinstance(ev["pid"], int)
        if ev["ph"] == "X":
            assert isinstance(ev["ts"], (int, float)) and ev["ts"] >= 0
            assert isinstance(ev["dur"], (int, float)) and ev["dur"] >= 0
        elif ev["ph"] == "i":
            assert isinstance(ev["ts"], (int, float))


class TestChromeTrace:
    def test_balanced_spans_become_complete_events(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        doc = chrome_trace(obs.load_trace(path))
        validate_schema(doc)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"service.request",
                                           "worker.task"}
        req = next(e for e in xs if e["name"] == "service.request")
        assert req["args"]["request_id"] == "cli.1"
        assert req["args"]["scenario"] == "fig2"
        assert req["cat"] == "req:cli.1"

    def test_header_becomes_process_metadata(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        doc = chrome_trace(obs.load_trace(path))
        ms = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert ms and ms[0]["name"] == "process_name"

    def test_unclosed_span_becomes_instant(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = start_tracing(path)
        tracer.begin("crashy", None)
        stop_tracing()
        doc = chrome_trace(obs.load_trace(path))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert "crashy" in instants[0]["name"]

    def test_events_sorted_by_ts(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        doc = chrome_trace(obs.load_trace(path))
        ts = [e.get("ts", 0.0) for e in doc["traceEvents"]]
        assert ts == sorted(ts)

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        trace = tmp_path / "t.jsonl"
        out = tmp_path / "t.chrome.json"
        make_trace(trace)
        n = write_chrome_trace(trace, out)
        doc = json.loads(out.read_text())
        validate_schema(doc)
        assert n == len(doc["traceEvents"]) > 0
        assert doc["displayTimeUnit"] == "ms"

    def test_metrics_records_are_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)                    # session embeds no metrics here
        events = obs.load_trace(path)
        events.append({"kind": "metrics", "pid": 1, "counters": {}})
        events.append({"kind": "profile", "pid": 1, "hotspots": []})
        doc = chrome_trace(events)
        assert all(e["ph"] in ("X", "M", "i") for e in doc["traceEvents"])
