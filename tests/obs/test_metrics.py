"""Metrics registry: keys, instruments, gating, merging, rendering."""

from __future__ import annotations

from repro.obs import metrics
from repro.obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    metric_key,
    render_snapshot,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("cache.hits", None) == "cache.hits"
        assert metric_key("cache.hits", {}) == "cache.hits"

    def test_labels_sorted(self):
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_non_string_values(self):
        assert metric_key("x", {"ok": True, "k": 3}) == "x{k=3,ok=True}"


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 2.5)
        assert reg.snapshot()["counters"] == {"c": 3.5}

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", -4.0)
        assert reg.snapshot()["gauges"] == {"g": -4.0}

    def test_histogram_tracks_count_sum_min_max(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.observe("h", v)
        assert reg.snapshot()["histograms"]["h"] == {
            "count": 3.0, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("c", method="a")
        reg.inc("c", method="b")
        assert reg.snapshot()["counters"] == {
            "c{method=a}": 1.0, "c{method=b}": 1.0}

    def test_reset_and_len(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        assert len(reg) == 3
        reg.reset()
        assert len(reg) == 0

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        snap["counters"]["c"] = 99.0
        assert reg.snapshot()["counters"]["c"] == 1.0


class TestGlobalGating:
    def test_disabled_helpers_record_nothing(self):
        metrics.reset()
        assert not metrics.enabled()
        metrics.inc("c")
        assert metrics.snapshot()["counters"] == {}

    def test_enable_records_and_disable_keeps_data(self):
        metrics.reset()
        metrics.enable()
        metrics.inc("c")
        metrics.disable()
        metrics.inc("c")  # ignored
        assert metrics.snapshot()["counters"] == {"c": 1.0}


class TestMergeSnapshots:
    def test_counters_add_gauges_last_histograms_merge(self):
        a = {"counters": {"c": 1.0}, "gauges": {"g": 1.0},
             "histograms": {"h": {"count": 1.0, "sum": 2.0,
                                  "min": 2.0, "max": 2.0}}}
        b = {"counters": {"c": 2.0, "d": 5.0}, "gauges": {"g": 7.0},
             "histograms": {"h": {"count": 2.0, "sum": 2.0,
                                  "min": 0.5, "max": 1.5}}}
        out = merge_snapshots([a, b])
        assert out["counters"] == {"c": 3.0, "d": 5.0}
        assert out["gauges"] == {"g": 7.0}
        assert out["histograms"]["h"] == {
            "count": 3.0, "sum": 4.0, "min": 0.5, "max": 2.0}

    def test_tolerates_missing_sections(self):
        out = merge_snapshots([{}, {"counters": {"c": 1.0}}])
        assert out["counters"] == {"c": 1.0}

    def test_empty_input(self):
        out = merge_snapshots([])
        assert out == {"counters": {}, "gauges": {}, "histograms": {}}


class TestRender:
    def test_sections_and_values(self):
        snap = {"counters": {"c": 2.0}, "gauges": {"g": 1.5},
                "histograms": {"h": {"count": 2.0, "sum": 3.0,
                                     "min": 1.0, "max": 2.0}}}
        text = render_snapshot(snap)
        assert "c = 2" in text
        assert "g = 1.5" in text
        assert "mean=1.5" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_snapshot({})

    def test_indent(self):
        text = render_snapshot({"counters": {"c": 1.0}}, indent="  ")
        assert text.startswith("  counters:")


class TestRsolveMetricsIntegration:
    def test_successful_solves_feed_registry(self):
        """The satellite bugfix: success-path diagnostics reach metrics."""
        import numpy as np

        from repro.qbd.rmatrix import solve_R
        A0 = np.array([[0.2, 0.0], [0.1, 0.1]])
        A2 = np.array([[0.5, 0.1], [0.2, 0.6]])
        A1 = -(np.diag(A0.sum(1) + A2.sum(1) + 0.3)) + 0.15 * np.ones((2, 2))
        metrics.reset()
        metrics.enable()
        solve_R(A0, A1, A2, method="logreduction")
        snap = metrics.snapshot()
        assert snap["counters"][
            "rsolve.solves{method=logreduction,refined=False}"] == 1.0
        hist = snap["histograms"][
            "rsolve.iterations{method=logreduction}"]
        assert hist["count"] == 1.0 and hist["max"] >= 1.0
        assert "rsolve.residual{method=logreduction}" in snap["histograms"]
