"""Metrics registry: keys, instruments, gating, merging, rendering."""

from __future__ import annotations

from repro.obs import metrics
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    metric_key,
    render_snapshot,
)


class TestMetricKey:
    def test_bare_name(self):
        assert metric_key("cache.hits", None) == "cache.hits"
        assert metric_key("cache.hits", {}) == "cache.hits"

    def test_labels_sorted(self):
        assert metric_key("x", {"b": 2, "a": 1}) == "x{a=1,b=2}"

    def test_non_string_values(self):
        assert metric_key("x", {"ok": True, "k": 3}) == "x{k=3,ok=True}"


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.inc("c", 2.5)
        assert reg.snapshot()["counters"] == {"c": 3.5}

    def test_gauge_keeps_last(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        reg.set_gauge("g", -4.0)
        assert reg.snapshot()["gauges"] == {"g": -4.0}

    def test_histogram_tracks_count_sum_min_max(self):
        reg = MetricsRegistry()
        for v in (3.0, 1.0, 2.0):
            reg.observe("h", v)
        h = reg.snapshot()["histograms"]["h"]
        assert (h["count"], h["sum"], h["min"], h["max"]) == (
            3.0, 6.0, 1.0, 3.0)

    def test_histogram_buckets_are_cumulative_by_construction(self):
        reg = MetricsRegistry()
        for v in (1e-7, 0.5, 2.0, 1e6):        # under, mid, mid, overflow
            reg.observe("h", v)
        h = reg.snapshot()["histograms"]["h"]
        assert len(h["buckets"]) == len(BUCKET_BOUNDS) + 1
        assert sum(h["buckets"]) == h["count"] == 4.0
        assert h["buckets"][0] == 1.0           # 1e-7 <= 1e-6
        assert h["buckets"][-1] == 1.0          # 1e6 beyond the last bound

    def test_bucket_bound_value_lands_inclusively(self):
        reg = MetricsRegistry()
        reg.observe("h", BUCKET_BOUNDS[5])
        h = reg.snapshot()["histograms"]["h"]
        assert h["buckets"][5] == 1.0

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("c", method="a")
        reg.inc("c", method="b")
        assert reg.snapshot()["counters"] == {
            "c{method=a}": 1.0, "c{method=b}": 1.0}

    def test_reset_and_len(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 1)
        reg.observe("h", 1)
        assert len(reg) == 3
        reg.reset()
        assert len(reg) == 0

    def test_snapshot_is_a_copy(self):
        reg = MetricsRegistry()
        reg.inc("c")
        snap = reg.snapshot()
        snap["counters"]["c"] = 99.0
        assert reg.snapshot()["counters"]["c"] == 1.0


class TestGlobalGating:
    def test_disabled_helpers_record_nothing(self):
        metrics.reset()
        assert not metrics.enabled()
        metrics.inc("c")
        assert metrics.snapshot()["counters"] == {}

    def test_enable_records_and_disable_keeps_data(self):
        metrics.reset()
        metrics.enable()
        metrics.inc("c")
        metrics.disable()
        metrics.inc("c")  # ignored
        assert metrics.snapshot()["counters"] == {"c": 1.0}


class TestMergeSnapshots:
    def test_counters_add_gauges_last_histograms_merge(self):
        a = {"counters": {"c": 1.0}, "gauges": {"g": 1.0},
             "histograms": {"h": {"count": 1.0, "sum": 2.0,
                                  "min": 2.0, "max": 2.0}}}
        b = {"counters": {"c": 2.0, "d": 5.0}, "gauges": {"g": 7.0},
             "histograms": {"h": {"count": 2.0, "sum": 2.0,
                                  "min": 0.5, "max": 1.5}}}
        out = merge_snapshots([a, b])
        assert out["counters"] == {"c": 3.0, "d": 5.0}
        assert out["gauges"] == {"g": 7.0}
        assert out["histograms"]["h"] == {
            "count": 3.0, "sum": 4.0, "min": 0.5, "max": 2.0}

    def test_tolerates_missing_sections(self):
        out = merge_snapshots([{}, {"counters": {"c": 1.0}}])
        assert out["counters"] == {"c": 1.0}

    def test_empty_input(self):
        out = merge_snapshots([])
        assert out == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_empty_histogram_section_merges_clean(self):
        out = merge_snapshots([{"histograms": {}},
                               {"histograms": {}}])
        assert out["histograms"] == {}

    def test_bucketed_histograms_merge_elementwise(self):
        def snap_with(values):
            reg = MetricsRegistry()
            for v in values:
                reg.observe("h", v)
            return reg.snapshot()

        out = merge_snapshots([snap_with([0.5, 2.0]), snap_with([0.25])])
        h = out["histograms"]["h"]
        assert h["count"] == 3.0
        assert sum(h["buckets"]) == 3.0

    def test_colliding_key_with_legacy_histogram_drops_buckets(self):
        """A pre-bucket trace record merging onto a bucketed one keeps
        the summary stats but cannot keep the buckets."""
        reg = MetricsRegistry()
        reg.observe("h", 1.0)
        legacy = {"histograms": {"h": {"count": 2.0, "sum": 5.0,
                                       "min": 2.0, "max": 3.0}}}
        for order in ([reg.snapshot(), legacy], [legacy, reg.snapshot()]):
            h = merge_snapshots(order)["histograms"]["h"]
            assert "buckets" not in h
            assert (h["count"], h["sum"]) == (3.0, 6.0)
            assert (h["min"], h["max"]) == (1.0, 3.0)

    def test_colliding_keys_across_kinds_stay_separate(self):
        """The same key string as counter in one snapshot and gauge in
        another lands in its own section, never cross-merged."""
        out = merge_snapshots([{"counters": {"x": 1.0}},
                               {"gauges": {"x": 9.0}}])
        assert out["counters"]["x"] == 1.0
        assert out["gauges"]["x"] == 9.0

    def test_merge_does_not_alias_inputs(self):
        a = {"histograms": {"h": {"count": 1.0, "sum": 1.0, "min": 1.0,
                                  "max": 1.0, "buckets": [1.0, 0.0]}}}
        out = merge_snapshots([a])
        out["histograms"]["h"]["buckets"][0] = 99.0
        assert a["histograms"]["h"]["buckets"][0] == 1.0


class TestHistogramQuantile:
    def test_empty_and_legacy_return_none(self):
        assert histogram_quantile({"count": 0.0, "buckets": []}, 0.5) is None
        assert histogram_quantile(
            {"count": 2.0, "sum": 3.0, "min": 1.0, "max": 2.0}, 0.5) is None

    def test_single_observation_reports_itself(self):
        reg = MetricsRegistry()
        reg.observe("h", 0.007)
        h = reg.snapshot()["histograms"]["h"]
        for q in (0.5, 0.95, 0.99):
            assert histogram_quantile(h, q) == 0.007

    def test_quantiles_are_monotone_and_clamped(self):
        reg = MetricsRegistry()
        for v in (0.001, 0.002, 0.05, 0.3, 1.2, 4.0, 9.0, 80.0):
            reg.observe("h", v)
        h = reg.snapshot()["histograms"]["h"]
        p50 = histogram_quantile(h, 0.50)
        p95 = histogram_quantile(h, 0.95)
        p99 = histogram_quantile(h, 0.99)
        assert h["min"] <= p50 <= p95 <= p99 <= h["max"]

    def test_overflow_bucket_interpolates_toward_max(self):
        reg = MetricsRegistry()
        for v in (1.0, 5000.0):                 # 5000 > last bound (1000)
            reg.observe("h", v)
        h = reg.snapshot()["histograms"]["h"]
        assert histogram_quantile(h, 0.99) <= 5000.0


class TestRender:
    def test_sections_and_values(self):
        snap = {"counters": {"c": 2.0}, "gauges": {"g": 1.5},
                "histograms": {"h": {"count": 2.0, "sum": 3.0,
                                     "min": 1.0, "max": 2.0}}}
        text = render_snapshot(snap)
        assert "c = 2" in text
        assert "g = 1.5" in text
        assert "mean=1.5" in text

    def test_empty_snapshot(self):
        assert "no metrics" in render_snapshot({})

    def test_indent(self):
        text = render_snapshot({"counters": {"c": 1.0}}, indent="  ")
        assert text.startswith("  counters:")

    def test_bucketed_histogram_renders_quantiles(self):
        reg = MetricsRegistry()
        for v in (1.0, 2.0, 3.0):
            reg.observe("h", v)
        text = render_snapshot(reg.snapshot())
        assert "p50=" in text and "p95=" in text and "p99=" in text

    def test_legacy_histogram_renders_without_quantiles(self):
        snap = {"histograms": {"h": {"count": 2.0, "sum": 3.0,
                                     "min": 1.0, "max": 2.0}}}
        text = render_snapshot(snap)
        assert "mean=1.5" in text and "p50=" not in text


class TestRsolveMetricsIntegration:
    def test_successful_solves_feed_registry(self):
        """The satellite bugfix: success-path diagnostics reach metrics."""
        import numpy as np

        from repro.qbd.rmatrix import solve_R
        A0 = np.array([[0.2, 0.0], [0.1, 0.1]])
        A2 = np.array([[0.5, 0.1], [0.2, 0.6]])
        A1 = -(np.diag(A0.sum(1) + A2.sum(1) + 0.3)) + 0.15 * np.ones((2, 2))
        metrics.reset()
        metrics.enable()
        solve_R(A0, A1, A2, method="logreduction")
        snap = metrics.snapshot()
        assert snap["counters"][
            "rsolve.solves{method=logreduction,refined=False}"] == 1.0
        hist = snap["histograms"][
            "rsolve.iterations{method=logreduction}"]
        assert hist["count"] == 1.0 and hist["max"] >= 1.0
        assert "rsolve.residual{method=logreduction}" in snap["histograms"]
