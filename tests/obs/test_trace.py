"""Tracer and span behaviour: events, nesting, timings view, workers."""

from __future__ import annotations

import json
import threading

import pytest

from repro import obs
from repro.obs import trace
from repro.obs.trace import (
    StageTimings,
    Tracer,
    current_request_id,
    ensure_worker_tracer,
    merge_worker_traces,
    request_scope,
    set_request_id,
    span,
    start_tracing,
    stop_tracing,
    tracing_enabled,
)


def read_events(path):
    return [json.loads(line) for line in
            path.read_text().splitlines() if line.strip()]


class TestDisabledPath:
    def test_span_is_shared_noop(self):
        assert not tracing_enabled()
        s1 = span("anything")
        s2 = span("anything-else", klass=3)
        assert s1 is s2  # the shared _NULL singleton: zero allocation
        with s1:
            pass

    def test_span_with_timings_still_accumulates(self):
        acc = StageTimings()
        with span("stage.x", timings=acc, stage="x"):
            pass
        assert "x" in acc.as_dict()
        assert acc.as_dict()["x"] >= 0.0

    def test_metrics_helpers_are_noops_when_disabled(self):
        from repro.obs import metrics
        metrics.inc("c")
        metrics.observe("h", 1.0)
        metrics.set_gauge("g", 2.0)
        snap = metrics.snapshot()
        assert not snap["counters"] and not snap["histograms"] \
            and not snap["gauges"]


class TestTracer:
    def test_header_is_first_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        stop_tracing()
        events = read_events(path)
        assert events[0]["kind"] == "trace-header"
        assert events[0]["version"] == trace.TRACE_VERSION
        assert "epoch" in events[0] and "mono" in events[0]

    def test_span_emits_balanced_pair(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        with span("work", klass=2):
            pass
        stop_tracing()
        header, b, e = read_events(path)
        assert (b["kind"], e["kind"]) == ("B", "E")
        assert b["name"] == e["name"] == "work"
        assert b["sid"] == e["sid"]
        assert b["attrs"] == {"klass": 2}
        assert e["wall"] >= 0.0 and e["cpu"] >= 0.0
        assert e["ts"] >= b["ts"]

    def test_nesting_records_parent_and_depth(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        with span("outer"):
            with span("inner"):
                pass
        stop_tracing()
        events = read_events(path)
        begins = {ev["name"]: ev for ev in events if ev["kind"] == "B"}
        assert begins["outer"]["parent"] is None
        assert begins["outer"]["depth"] == 0
        assert begins["inner"]["parent"] == begins["outer"]["sid"]
        assert begins["inner"]["depth"] == 1

    def test_sibling_spans_share_parent(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        with span("outer"):
            with span("a"):
                pass
            with span("b"):
                pass
        stop_tracing()
        begins = {ev["name"]: ev
                  for ev in read_events(path) if ev["kind"] == "B"}
        assert begins["a"]["parent"] == begins["b"]["parent"] \
            == begins["outer"]["sid"]
        assert begins["a"]["depth"] == begins["b"]["depth"] == 1

    def test_span_survives_exceptions(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        stop_tracing()
        kinds = [ev["kind"] for ev in read_events(path)]
        assert kinds == ["trace-header", "B", "E"]

    def test_threads_nest_independently(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)

        def worker():
            with span("thread-span"):
                pass

        with span("main-span"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        stop_tracing()
        begins = {ev["name"]: ev
                  for ev in read_events(path) if ev["kind"] == "B"}
        # The other thread's span is a root, not a child of main-span.
        assert begins["thread-span"]["parent"] is None
        assert begins["thread-span"]["tid"] != begins["main-span"]["tid"]

    def test_timings_view_matches_trace_wall(self, tmp_path):
        path = tmp_path / "t.jsonl"
        acc = StageTimings()
        start_tracing(path)
        with span("stage.solve", timings=acc, stage="solve"):
            sum(range(10_000))
        stop_tracing()
        e = [ev for ev in read_events(path) if ev["kind"] == "E"][0]
        # Fed from the same perf_counter window: identical by construction.
        assert acc.as_dict()["solve"] == pytest.approx(e["wall"], abs=0.0)

    def test_raw_emit_and_event_count(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = start_tracing(path)
        tracer.emit({"kind": "custom", "x": 1})
        assert tracer.events == 2  # header + custom
        stop_tracing()


class TestWorkerTraces:
    def test_worker_file_and_merge(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = start_tracing(path)
        # Simulate a worker: a sibling tracer with a fake pid suffix.
        wpath = tmp_path / "t.jsonl.w99999"
        worker = Tracer(wpath, mode="a")
        worker.emit({"kind": "custom", "from": "worker"})
        worker.close()
        absorbed = merge_worker_traces(parent)
        stop_tracing()
        assert absorbed == 2  # worker header + record
        assert not wpath.exists()
        kinds = [ev["kind"] for ev in read_events(path)]
        assert kinds.count("trace-header") == 2
        assert "custom" in kinds

    def test_ensure_worker_tracer_discards_foreign_tracer(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = start_tracing(path)
        parent.pid = parent.pid + 1  # masquerade as a fork-inherited copy
        worker = ensure_worker_tracer(path)
        try:
            assert worker is not parent
            assert worker.path.name.startswith("t.jsonl.w")
            # The parent's handle must not have been closed.
            assert not parent._fh.closed
        finally:
            stop_tracing()
            worker.path.unlink(missing_ok=True)

    def test_ensure_worker_tracer_is_idempotent(self, tmp_path):
        base = tmp_path / "t.jsonl"
        first = ensure_worker_tracer(base)
        try:
            assert ensure_worker_tracer(base) is first
        finally:
            stop_tracing()


class TestRequestScope:
    def test_scope_sets_and_restores(self):
        assert current_request_id() is None
        with request_scope("r.1"):
            assert current_request_id() == "r.1"
            with request_scope("r.2"):
                assert current_request_id() == "r.2"
            assert current_request_id() == "r.1"
        assert current_request_id() is None

    def test_set_request_id_unscoped(self):
        set_request_id("r.9")
        try:
            assert current_request_id() == "r.9"
        finally:
            set_request_id(None)
        assert current_request_id() is None

    def test_spans_tagged_with_request_id(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        with request_scope("cli.1"):
            with span("service.request"):
                pass
        with span("untagged"):
            pass
        stop_tracing()
        events = read_events(path)
        tagged = [ev for ev in events if ev.get("name") ==
                  "service.request"]
        assert all(ev["req"] == "cli.1" for ev in tagged)
        assert len(tagged) == 2             # both B and E carry it
        assert all("req" not in ev for ev in events
                   if ev.get("name") == "untagged")

    def test_scope_is_per_thread(self):
        seen = {}

        def other():
            seen["other"] = current_request_id()

        with request_scope("r.main"):
            t = threading.Thread(target=other)
            t.start()
            t.join()
        assert seen["other"] is None        # contextvar did not leak


class TestStaleWorkerCleanup:
    def test_start_tracing_salvages_stale_worker_files(self, tmp_path):
        path = tmp_path / "t.jsonl"
        stale = tmp_path / "t.jsonl.w11111"
        with open(stale, "w") as fh:
            fh.write(json.dumps({"kind": "custom", "pid": 11111}) + "\n")
            fh.write('{"kind": "B", "name": "torn mid-wri')  # SIGKILL tail
        start_tracing(path)
        stop_tracing()
        assert not stale.exists()
        events = read_events(path)
        assert any(ev.get("kind") == "custom" and ev.get("pid") == 11111
                   for ev in events)
        # The torn tail was dropped, not copied.
        assert all(ev.get("name") != "torn mid-wri" for ev in events)

    def test_absorb_skips_torn_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        parent = start_tracing(path)
        wpath = tmp_path / "t.jsonl.w22222"
        with open(wpath, "w") as fh:
            fh.write(json.dumps({"kind": "custom"}) + "\n")
            fh.write("garbage not json\n")
            fh.write(json.dumps({"kind": "custom2"}) + "\n")
        absorbed = merge_worker_traces(parent)
        stop_tracing()
        assert absorbed == 2
        kinds = [ev["kind"] for ev in read_events(path)]
        assert "custom" in kinds and "custom2" in kinds


class TestSession:
    def test_session_embeds_metrics_snapshot(self, tmp_path):
        from repro.obs import metrics
        path = tmp_path / "t.jsonl"
        with obs.session(trace_path=path):
            metrics.inc("test.counter", method="x")
        events = read_events(path)
        snaps = [ev for ev in events if ev["kind"] == "metrics"]
        assert len(snaps) == 1
        assert snaps[0]["counters"] == {"test.counter{method=x}": 1.0}
        assert not tracing_enabled()
        assert not metrics.enabled()
