"""Property-based invariants of the trace event stream.

Any program of nested ``span()`` calls must serialize to JSONL whose
begin/end events are balanced (well-bracketed per thread), whose
``ts`` values are monotonically non-decreasing, and whose parent/depth
links reconstruct the nesting that produced them.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.trace import span, start_tracing, stop_tracing

# A span program is a tree: each node is a list of child trees.  The
# root list holds the top-level spans.
trees = st.recursive(st.just([]),
                     lambda children: st.lists(children, max_size=3),
                     max_leaves=12)


def run_program(children, name="s"):
    for i, grandchildren in enumerate(children):
        with span(f"{name}.{i}"):
            run_program(grandchildren, name=f"{name}.{i}")


def count_spans(children):
    return sum(1 + count_spans(g) for g in children)


@settings(max_examples=40, deadline=None)
@given(program=trees)
def test_span_programs_emit_balanced_monotone_events(tmp_path_factory,
                                                     program):
    path = tmp_path_factory.mktemp("trace") / "t.jsonl"
    start_tracing(path)
    try:
        run_program(program)
    finally:
        stop_tracing()

    events = [json.loads(line)
              for line in path.read_text().splitlines() if line.strip()]
    assert events[0]["kind"] == "trace-header"
    body = events[1:]

    n = count_spans(program)
    assert sum(1 for ev in body if ev["kind"] == "B") == n
    assert sum(1 for ev in body if ev["kind"] == "E") == n

    # Timestamps never run backwards.
    ts = [ev["ts"] for ev in body]
    assert all(a <= b for a, b in zip(ts, ts[1:]))

    # Well-bracketed: replaying the stream with a stack matches every E
    # to the innermost open B, and ends with an empty stack.
    stack = []
    begins = {}
    for ev in body:
        if ev["kind"] == "B":
            # parent/depth reflect the stack at begin time.
            assert ev["depth"] == len(stack)
            assert ev["parent"] == (stack[-1] if stack else None)
            stack.append(ev["sid"])
            begins[ev["sid"]] = ev
        else:
            assert stack and stack[-1] == ev["sid"]
            stack.pop()
            b = begins[ev["sid"]]
            assert b["name"] == ev["name"]
            assert ev["wall"] >= 0.0
            assert ev["ts"] >= b["ts"]
    assert stack == []

    # sids are unique across the program.
    assert len(begins) == n
