"""Structured log: record shape, rotation, global gating, request IDs."""

from __future__ import annotations

import json

import pytest

from repro.obs import log as obs_log
from repro.obs.log import StructuredLog
from repro.obs.trace import request_scope


@pytest.fixture(autouse=True)
def _clean_global_log():
    yield
    obs_log.shutdown()


def read_events(path):
    return [json.loads(line)
            for line in path.read_text().splitlines() if line.strip()]


class TestStructuredLog:
    def test_record_shape(self, tmp_path):
        log = StructuredLog(tmp_path / "s.log")
        log.write("info", "service.start", workers=2)
        log.close()
        (rec,) = read_events(tmp_path / "s.log")
        assert rec["level"] == "info"
        assert rec["event"] == "service.start"
        assert rec["workers"] == 2
        assert isinstance(rec["ts"], float)
        assert isinstance(rec["mono"], float)
        assert isinstance(rec["pid"], int)
        assert "request_id" not in rec

    def test_request_id_from_trace_scope(self, tmp_path):
        log = StructuredLog(tmp_path / "s.log")
        with request_scope("req.7"):
            log.write("warn", "request.shed")
        log.write("info", "outside")
        log.close()
        recs = read_events(tmp_path / "s.log")
        assert recs[0]["request_id"] == "req.7"
        assert "request_id" not in recs[1]

    def test_unknown_level_rejected(self, tmp_path):
        log = StructuredLog(tmp_path / "s.log")
        with pytest.raises(ValueError):
            log.write("fatal", "boom")
        log.close()

    def test_rotation_by_size(self, tmp_path):
        path = tmp_path / "s.log"
        log = StructuredLog(path, max_bytes=400, backups=2)
        for i in range(30):
            log.write("info", "tick", i=i, pad="x" * 50)
        log.close()
        assert path.exists()
        assert (tmp_path / "s.log.1").exists()
        assert (tmp_path / "s.log.2").exists()
        assert not (tmp_path / "s.log.3").exists()  # backups capped
        # Every surviving file holds whole, parseable events.
        for p in (path, tmp_path / "s.log.1", tmp_path / "s.log.2"):
            assert all(rec["event"] == "tick" for rec in read_events(p))

    def test_rotation_preserves_newest_events(self, tmp_path):
        path = tmp_path / "s.log"
        log = StructuredLog(path, max_bytes=400, backups=1)
        for i in range(30):
            log.write("info", "tick", i=i, pad="x" * 50)
        log.close()
        newest = read_events(path)[-1]["i"]
        assert newest == 29

    def test_append_on_reopen(self, tmp_path):
        path = tmp_path / "s.log"
        StructuredLog(path).write("info", "first")
        log2 = StructuredLog(path)
        log2.write("info", "second")
        log2.close()
        assert [r["event"] for r in read_events(path)] == \
            ["first", "second"]


class TestGlobalHelpers:
    def test_unconfigured_emit_is_noop(self):
        assert not obs_log.configured()
        obs_log.info("nobody.listening")     # must not raise

    def test_configure_emit_shutdown(self, tmp_path):
        obs_log.configure(tmp_path / "g.log")
        assert obs_log.configured()
        obs_log.warn("worker.crash", worker=3)
        obs_log.error("store.quarantine")
        obs_log.shutdown()
        assert not obs_log.configured()
        recs = read_events(tmp_path / "g.log")
        assert [r["event"] for r in recs] == \
            ["worker.crash", "store.quarantine"]
        assert recs[0]["level"] == "warn"
        assert recs[1]["level"] == "error"

    def test_reconfigure_replaces_sink(self, tmp_path):
        obs_log.configure(tmp_path / "a.log")
        obs_log.configure(tmp_path / "b.log")
        obs_log.info("hello")
        obs_log.shutdown()
        assert read_events(tmp_path / "b.log")[0]["event"] == "hello"
        assert (tmp_path / "a.log").read_text() == ""

    def test_non_serializable_fields_stringified(self, tmp_path):
        obs_log.configure(tmp_path / "g.log")
        obs_log.info("odd", value={1, 2})    # sets are not JSON
        obs_log.shutdown()
        assert "odd" in read_events(tmp_path / "g.log")[0]["event"]
