"""Trace summarization and report rendering."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs import metrics, summarize_trace
from repro.obs.report import load_trace, render_report, render_requests
from repro.obs.trace import request_scope, span, start_tracing, stop_tracing


def make_trace(path):
    """A small two-class trace with nested stage spans and metrics."""
    with obs.session(trace_path=path):
        for klass in (0, 1):
            with span("fixed_point"):
                with span("stage.rsolve", stage="rsolve", klass=klass):
                    pass
                with span("stage.boundary", stage="boundary", klass=klass):
                    pass
        with span("stage.recombine", stage="recombine"):
            pass
        metrics.inc("cache.hits", 3)
        metrics.inc("rsolve.solves", method="cr")


class TestLoadTrace:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        events = load_trace(path)
        assert events[0]["kind"] == "trace-header"
        assert any(ev["kind"] == "metrics" for ev in events)

    def test_corrupt_trailing_line_dropped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        whole = len(load_trace(path))
        with open(path, "a") as fh:
            fh.write('{"kind": "B", "name": "tru')  # crash mid-write
        assert len(load_trace(path)) == whole

    def test_corrupt_interior_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        whole = len(load_trace(path))
        with open(path, "a") as fh:
            fh.write("not json\n")
            fh.write('{"kind": "custom"}\n')
        with pytest.warns(UserWarning, match="corrupt trace"):
            events = load_trace(path)
        assert len(events) == whole + 1     # the bad line, and only it
        assert events[-1] == {"kind": "custom"}


class TestSummarize:
    def test_stage_table_aggregation(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        s = summarize_trace(path)
        assert s.stages == ["rsolve", "boundary", "recombine"]
        assert s.classes == [0, 1, None]
        assert ("rsolve", 0) in s.stage_seconds
        assert s.stage_counts[("rsolve", 0)] == 1
        assert s.stage_counts[("recombine", None)] == 1
        assert s.stage_total("rsolve") == pytest.approx(
            s.stage_seconds[("rsolve", 0)] + s.stage_seconds[("rsolve", 1)])
        assert set(s.stage_totals()) == {"rsolve", "boundary", "recombine"}

    def test_span_rollup_and_pids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        s = summarize_trace(path)
        assert s.spans["fixed_point"]["count"] == 2
        assert s.spans["fixed_point"]["wall"] >= 0.0
        assert len(s.pids) == 1
        assert s.unclosed == 0

    def test_metrics_rollup(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        s = summarize_trace(path)
        assert s.metrics["counters"]["cache.hits"] == 3.0
        assert s.metrics["counters"]["rsolve.solves{method=cr}"] == 1.0

    def test_unclosed_span_detected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        tracer = start_tracing(path)
        tracer.begin("crashy", None)  # never ended
        stop_tracing()
        assert summarize_trace(path).unclosed == 1

    def test_worker_metrics_records_merge(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        with open(path, "a") as fh:  # a worker's per-point snapshot
            fh.write(json.dumps({"kind": "metrics", "pid": 4242,
                                 "scope": "point",
                                 "counters": {"cache.hits": 2.0}}) + "\n")
        s = summarize_trace(path)
        assert s.metrics["counters"]["cache.hits"] == 5.0
        assert 4242 in s.pids


class TestRequestsAndProfile:
    def make_request_trace(self, path):
        with obs.session(trace_path=path):
            with request_scope("cli.1"):
                with span("service.request"):
                    with span("worker.task"):
                        pass
            with request_scope("cli.2"):
                with span("service.request"):
                    pass
        with open(path, "a") as fh:     # a merged worker-side record
            fh.write(json.dumps(
                {"kind": "B", "name": "worker.task", "ts": 1.0,
                 "pid": 999, "tid": 1, "sid": 1, "parent": None,
                 "depth": 0, "req": "cli.1"}) + "\n")
            fh.write(json.dumps(
                {"kind": "E", "name": "worker.task", "ts": 1.5,
                 "pid": 999, "tid": 1, "sid": 1, "wall": 0.5,
                 "cpu": 0.4, "req": "cli.1"}) + "\n")
            fh.write(json.dumps(
                {"kind": "profile", "pid": 999, "req": "cli.1",
                 "hotspots": [
                     {"func": "a.py:1:f", "calls": 10,
                      "tottime": 0.2, "cumtime": 0.3},
                     {"func": "a.py:1:f", "calls": 5,
                      "tottime": 0.1, "cumtime": 0.1}]}) + "\n")

    def test_spans_group_by_request_across_pids(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.make_request_trace(path)
        s = summarize_trace(path)
        assert set(s.requests) == {"cli.1", "cli.2"}
        assert len(s.requests["cli.1"]["pids"]) == 2
        assert s.requests["cli.1"]["spans"] == 3
        assert s.requests["cli.2"]["spans"] == 1

    def test_profile_records_sum_by_function(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.make_request_trace(path)
        s = summarize_trace(path)
        agg = s.profile["a.py:1:f"]
        assert agg["calls"] == 15
        assert agg["tottime"] == pytest.approx(0.3)

    def test_render_requests_table(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.make_request_trace(path)
        text = render_requests(summarize_trace(path))
        assert "cli.1" in text and "cli.2" in text
        assert "999" in text                    # the worker pid column

    def test_render_requests_empty(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        assert "no request-tagged spans" in render_requests(
            summarize_trace(path))

    def test_report_mentions_requests_and_hotspots(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self.make_request_trace(path)
        text = render_report(summarize_trace(path))
        assert "requests: 2 traced" in text
        assert "worker profile hotspots" in text
        assert "a.py:1:f" in text


class TestRender:
    def test_report_sections(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        text = render_report(summarize_trace(path))
        assert "per-class, per-stage wall seconds:" in text
        assert "class0" in text and "class1" in text
        assert "rsolve" in text and "recombine" in text
        assert "spans:" in text and "fixed_point: count=2" in text
        assert "cache:" in text and "cache.hits = 3" in text
        assert "solver:" in text and "rsolve.solves{method=cr}" in text

    def test_empty_trace_renders(self, tmp_path):
        path = tmp_path / "t.jsonl"
        start_tracing(path)
        stop_tracing()
        text = render_report(summarize_trace(path))
        assert "1 event(s)" in text

    def test_unknown_metrics_go_to_other_section(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.session(trace_path=path):
            metrics.inc("weird.counter")
        text = render_report(summarize_trace(path))
        assert "other metrics:" in text
        assert "weird.counter" in text

    def test_continuation_hit_rate_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.session(trace_path=path):
            metrics.inc("sweep.points", 3, start="warm")
            metrics.inc("sweep.points", 1, start="cold")
        text = render_report(summarize_trace(path))
        assert "continuation: warm=3 cold=1 hit rate 75.0%" in text

    def test_no_continuation_line_without_batched_points(self, tmp_path):
        path = tmp_path / "t.jsonl"
        make_trace(path)
        text = render_report(summarize_trace(path))
        assert "continuation:" not in text


class TestTimingsAgreement:
    def test_report_stage_totals_match_result_timings(self, tmp_path,
                                                      two_class_config):
        """Acceptance: trace totals vs FixedPointResult.timings (5%)."""
        from repro.core import GangSchedulingModel
        path = tmp_path / "solve.jsonl"
        with obs.session(trace_path=path):
            solved = GangSchedulingModel(two_class_config).solve()
        totals = summarize_trace(path).stage_totals()
        for stage, seconds in solved.timings.items():
            assert totals[stage] == pytest.approx(seconds, rel=0.05), stage
