"""The shared quantile contract: one numerical definition, three
estimators (exact CDF bisection, empirical order statistics,
Prometheus bucket interpolation), all left-continuous generalized
inverses ``Q(q) = inf{t : F(t) >= q}`` on ``0 <= q < 1``."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.quantiles import (
    bucket_quantile,
    cdf_quantile,
    check_level,
    empirical_quantile,
    empirical_tail,
)
from repro.phasetype import erlang, exponential, hyperexponential


class TestLevelContract:
    def test_valid_levels_pass(self):
        for q in (0.0, 0.5, 0.999999):
            check_level(q)

    @pytest.mark.parametrize("q", [-0.01, 1.0, 1.5, float("nan")])
    def test_invalid_levels_raise(self, q):
        with pytest.raises(ValueError):
            check_level(q)

    def test_every_estimator_shares_the_contract(self):
        with pytest.raises(ValueError):
            cdf_quantile(lambda t: 1.0, 1.0, mean_hint=1.0)
        with pytest.raises(ValueError):
            empirical_quantile([1.0, 2.0], 1.0)
        with pytest.raises(ValueError):
            exponential(1.0).quantile(1.0)


class TestCdfQuantile:
    def test_matches_exponential_closed_form(self):
        lam = 0.7
        for q in (0.1, 0.5, 0.9, 0.99):
            got = cdf_quantile(lambda t: 1.0 - math.exp(-lam * t), q,
                               mean_hint=1.0 / lam)
            assert got == pytest.approx(-math.log1p(-q) / lam, abs=1e-8)

    def test_atom_at_zero_short_circuits(self):
        got = cdf_quantile(lambda t: 0.3 + 0.7 * (1 - math.exp(-t)), 0.2,
                           mean_hint=0.7, atom_at_zero=0.3)
        assert got == 0.0

    @given(q=st.floats(min_value=0.01, max_value=0.99))
    @settings(max_examples=30, deadline=None)
    def test_phasetype_tail_of_quantile_inverts(self, q):
        """``sf(Q(q)) == 1 - q`` for continuous laws — the generalized
        inverse is an exact inverse wherever the CDF is strictly
        increasing, which every PH distribution is on ``(0, inf)``."""
        dist = hyperexponential((0.4, 0.6), (0.5, 2.0))
        t = dist.quantile(q)
        assert dist.sf(t) == pytest.approx(1.0 - q, abs=1e-6)

    def test_erlang_median_between_mode_and_mean(self):
        dist = erlang(3, mean=3.0)
        median = dist.quantile(0.5)
        assert 2.0 < median < 3.0            # mode=2 < median < mean=3


class TestEmpirical:
    def test_empty_samples_are_nan(self):
        assert math.isnan(empirical_quantile([], 0.5))
        assert math.isnan(empirical_tail([], 1.0))

    def test_quantile_is_linear_interpolated_order_statistic(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert empirical_quantile(samples, 0.5) == pytest.approx(2.5)
        assert empirical_quantile(samples, 0.0) == 1.0

    def test_tail_is_strict_exceedance_fraction(self):
        samples = [1.0, 2.0, 3.0, 4.0]
        assert empirical_tail(samples, 2.0) == pytest.approx(0.5)
        assert empirical_tail(samples, 0.0) == 1.0
        assert empirical_tail(samples, 4.0) == 0.0

    @given(data=st.lists(st.floats(min_value=0.01, max_value=100.0),
                         min_size=20, max_size=200),
           q=st.floats(min_value=0.05, max_value=0.95))
    @settings(max_examples=50, deadline=None)
    def test_tail_of_quantile_consistency(self, data, q):
        """``tail(quantile(q)) <= 1 - q`` up to one sample's mass: the
        discrete analogue of the exact inversion property."""
        t = empirical_quantile(data, q)
        slack = 1.0 / len(data) + 1e-12
        assert empirical_tail(data, t) <= (1.0 - q) + slack


class TestBucketQuantile:
    def test_delegation_preserves_histogram_quantile(self):
        """``obs.metrics.histogram_quantile`` must keep its historical
        numbers now that it routes through the shared contract."""
        from repro.obs.metrics import BUCKET_BOUNDS, MetricsRegistry
        from repro.obs.metrics import histogram_quantile

        reg = MetricsRegistry()
        rng = np.random.default_rng(7)
        values = rng.exponential(scale=0.05, size=500)
        for v in values:
            reg.observe("t", float(v))
        hist = reg.snapshot()["histograms"]["t"]
        for q in (0.5, 0.9, 0.99):
            got = histogram_quantile(hist, q)
            direct = bucket_quantile(hist["buckets"], BUCKET_BOUNDS, q,
                                     count=hist["count"], lo=hist["min"],
                                     hi=hist["max"])
            assert got == direct
            # Bucket interpolation is coarse, but must bracket the
            # empirical quantile to within a bucket's width.
            assert got >= 0.0

    def test_empty_histogram_is_none(self):
        assert bucket_quantile({}, (), 0.5, count=0.0, lo=0.0, hi=0.0) is None
