"""The four ``ClassDistributions`` kinds and the selector surface.

One configuration per kind: all-exponential Figure-2/3 workload
(``exact``), Erlang service under Poisson arrivals (``moment``), an
Erlang *arrival* stream (``unsupported``), and an overloaded hot class
(``saturated``) — plus the selector grammar that names the columns
every reporting surface shares.
"""

import math

import pytest

from repro.core import GangSchedulingModel, SystemConfig
from repro.core.config import ClassConfig
from repro.errors import UnstableSystemError, ValidationError
from repro.metrics import (
    ClassDistributions,
    MetricSelector,
    metric_values,
    parse_metric,
    parse_metrics,
)
from repro.phasetype import erlang, exponential
from repro.workloads.presets import fig23_config


def _solve(config):
    return GangSchedulingModel(config).solve()


def _class(arrival, service, *, name=""):
    return ClassConfig(partition_size=2, arrival=arrival, service=service,
                       quantum=exponential(mean=2.0),
                       overhead=exponential(mean=0.1), name=name)


@pytest.fixture(scope="module")
def exact_solved():
    return _solve(fig23_config(0.4, 2.0))


@pytest.fixture(scope="module")
def moment_solved():
    config = SystemConfig(processors=4, classes=(
        _class(exponential(0.3), erlang(2, mean=1.0)),))
    return _solve(config)


@pytest.fixture(scope="module")
def unsupported_solved():
    config = SystemConfig(processors=4, classes=(
        _class(erlang(2, mean=3.0), exponential(1.0)),))
    return _solve(config)


@pytest.fixture(scope="module")
def saturated_solved():
    # The hot class is hopelessly overloaded (lambda = 5 against mu = 1
    # on two partitions); the cold class keeps the system solvable.
    config = SystemConfig(processors=4, classes=(
        _class(exponential(5.0), exponential(1.0), name="hot"),
        _class(exponential(0.2), exponential(1.0), name="cold")))
    return _solve(config)


class TestExact:
    def test_kind_and_laws(self, exact_solved):
        dist = exact_solved.distributions(0)
        assert dist.kind == "exact"
        assert dist.supported
        assert dist.response is not None and dist.waiting is not None
        assert "tagged-job" in dist.detail
        assert dist.arrival_poisson

    def test_mean_matches_littles_law(self, exact_solved):
        for p in range(len(exact_solved.classes)):
            dist = exact_solved.distributions(p)
            assert dist.mean == pytest.approx(
                exact_solved.classes[p].mean_response_time, rel=1e-6)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_tail_of_quantile_inverts(self, exact_solved, q):
        dist = exact_solved.distributions(0)
        assert dist.tail(dist.quantile(q)) == pytest.approx(1.0 - q,
                                                            abs=1e-6)

    def test_quantiles_are_monotone(self, exact_solved):
        dist = exact_solved.distributions(0)
        p50, p95, p99 = (dist.quantile(q) for q in (0.5, 0.95, 0.99))
        assert 0.0 < p50 < p95 < p99 < math.inf

    def test_waiting_has_atom_at_zero(self, exact_solved):
        """Some arrivals enter service immediately, so the waiting law
        carries a point mass at zero and ``Q(q)`` stays 0 below it."""
        waiting = exact_solved.distributions(0).waiting
        atom = waiting.cdf(0.0)
        assert 0.0 < atom < 1.0
        assert waiting.quantile(atom / 2.0) == 0.0

    def test_loss_probability_decreases_in_capacity(self, exact_solved):
        dist = exact_solved.distributions(0)
        losses = [dist.loss_probability(k) for k in (1, 2, 5, 20)]
        assert all(l is not None for l in losses)
        assert losses == sorted(losses, reverse=True)
        assert 0.0 <= losses[-1] < losses[0] <= 1.0
        with pytest.raises(ValueError):
            dist.loss_probability(0)

    def test_distributions_are_model_cached(self, exact_solved):
        assert exact_solved.distributions(0) is exact_solved.distributions(0)


class TestMoment:
    def test_kind_and_mean_preserved(self, moment_solved):
        dist = moment_solved.distributions(0)
        assert dist.kind == "moment"
        assert "distributional Little" in dist.detail
        assert dist.waiting is None
        assert dist.mean == pytest.approx(
            moment_solved.classes[0].mean_response_time, rel=1e-9)

    def test_quantiles_usable(self, moment_solved):
        dist = moment_solved.distributions(0)
        q = dist.quantile(0.95)
        assert math.isfinite(q) and q > dist.mean
        assert dist.tail(q) == pytest.approx(0.05, abs=1e-6)

    def test_loss_probability_available(self, moment_solved):
        assert moment_solved.distributions(0).loss_probability(10) is not None


class TestUnsupported:
    def test_marker_semantics(self, unsupported_solved):
        dist = unsupported_solved.distributions(0)
        assert dist.kind == "unsupported"
        assert not dist.supported
        assert "PASTA" in dist.detail and "order-2" in dist.detail
        assert math.isnan(dist.mean)
        assert math.isnan(dist.quantile(0.99))
        assert math.isnan(dist.tail(1.0))
        assert dist.loss_probability(5) is None


class TestSaturated:
    def test_partial_saturation_degrades_not_raises(self, saturated_solved):
        hot = saturated_solved.distributions(0)
        cold = saturated_solved.distributions(1)
        assert hot.kind == "saturated"
        assert cold.kind == "exact"

    def test_marker_semantics(self, saturated_solved):
        hot = saturated_solved.distributions(0)
        assert hot.mean == math.inf
        assert hot.quantile(0.99) == math.inf
        assert hot.quantile(0.0) == 0.0
        assert hot.tail(1e9) == 1.0
        assert hot.loss_probability(1000) == 1.0

    def test_marker_constructor(self):
        marker = ClassDistributions.saturated()
        assert marker.kind == "saturated" and not marker.supported

    def test_all_saturated_still_raises(self):
        config = SystemConfig(processors=4, classes=(
            _class(exponential(5.0), exponential(1.0)),))
        with pytest.raises(UnstableSystemError):
            _solve(config)


class TestMetricValues:
    def test_values_match_distribution_calls(self, exact_solved):
        dist = exact_solved.distributions(0)
        values = metric_values(exact_solved, 0,
                               ("mean", "p95", "tail@10"))
        assert values[0] == pytest.approx(
            exact_solved.classes[0].measures.mean_response_time)
        assert values[1] == pytest.approx(dist.quantile(0.95))
        assert values[2] == pytest.approx(dist.tail(10.0))

    def test_mean_only_never_builds_distributions(self, moment_solved):
        values = metric_values(moment_solved, 0, ("mean",))
        assert values == (
            pytest.approx(moment_solved.classes[0].measures
                          .mean_response_time),)

    def test_saturated_values(self, saturated_solved):
        values = metric_values(saturated_solved, 0, ("p99", "tail@5"))
        assert values == (math.inf, 1.0)


class TestSelectorGrammar:
    def test_quantile_value_is_a_level(self):
        sel = parse_metric("p99")
        assert sel == MetricSelector(raw="p99", kind="quantile", value=0.99)
        assert parse_metric("p99.9").value == pytest.approx(0.999)

    def test_tail_and_mean(self):
        assert parse_metric("tail@2.5") == MetricSelector(
            raw="tail@2.5", kind="tail", value=2.5)
        assert parse_metric("mean").kind == "mean"

    @pytest.mark.parametrize("bad", ["p0", "p100", "pq", "tail@", "q95", ""])
    def test_unknown_selectors_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_metric(bad)

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            parse_metrics(("mean", "p99", "mean"))
