"""Analytic percentiles vs simulated empirical quantiles.

The exact ``ClassDistributions`` laws come from the per-class QBD of
the *decomposed* model, so the right referee is
:class:`~repro.sim.VacationServerSimulation` — a simulation of the
very law the analysis computes (class alone on its partitions, served
in quanta separated by the converged vacation distribution).  Analytic
quantiles must land inside a Student-t confidence interval of the
replicated empirical quantiles; disagreement there is a bug, not model
bias.

(Against the full :class:`~repro.sim.GangSimulation` only the
documented moderate-load error band holds — see
``tests/integration/test_model_vs_sim.py``.)
"""

import math

import numpy as np
import pytest

from repro.core import GangSchedulingModel
from repro.sim import VacationServerSimulation
from repro.workloads import fig23_config

#: two-sided 97.5% Student-t quantiles for n-1 degrees of freedom
T975 = {3: 3.182, 4: 2.776, 5: 2.571}

LEVELS = (0.5, 0.9, 0.95)
REPLICATIONS = 4
HORIZON = 30_000.0
WARMUP = 1_000.0


@pytest.fixture(scope="module")
def solved():
    return GangSchedulingModel(fig23_config(0.4, 2.0)).solve()


def _replicated_quantiles(config, solved, p):
    """Per-replication empirical response quantiles of class ``p``'s
    decomposed vacation-server law (fixed seeds)."""
    cls = config.classes[p]
    cr = solved.classes[p]
    rows = []
    for seed in range(REPLICATIONS):
        sim = VacationServerSimulation(
            config.partitions(p), cls.arrival, cls.service, cls.quantum,
            cr.vacation, policy=config.empty_queue_policy,
            seed=seed, warmup=WARMUP)
        sim.run(HORIZON)
        rows.append([sim.stats.response_quantile(q) for q in LEVELS])
    return np.asarray(rows)


def _ci(values):
    mean = float(np.mean(values))
    half = T975[len(values)] * float(np.std(values, ddof=1)) \
        / math.sqrt(len(values))
    return mean, half


class TestPercentileCrosscheck:
    @pytest.mark.parametrize("p", [0, 1, 2])
    def test_analytic_quantiles_within_ci(self, solved, p):
        config = solved.config
        rows = _replicated_quantiles(config, solved, p)
        dist = solved.distributions(p)
        assert dist.kind == "exact"
        for j, q in enumerate(LEVELS):
            analytic = dist.quantile(q)
            mean, half = _ci(rows[:, j])
            # CI bound with a small relative floor: the t-interval of
            # four replications is itself noisy at the 2% scale.
            bound = max(2.0 * half, 0.04 * mean)
            assert abs(analytic - mean) < bound, (
                f"class {p} q={q}: analytic {analytic:.4f} vs simulated "
                f"{mean:.4f} +/- {half:.4f}")

    def test_analytic_tail_within_ci(self, solved):
        """``tail@t`` at the analytic p90: the simulated exceedance
        fraction must bracket the nominal 10%."""
        config = solved.config
        cls = config.classes[0]
        cr = solved.classes[0]
        t90 = solved.distributions(0).quantile(0.9)
        tails = []
        for seed in range(REPLICATIONS):
            sim = VacationServerSimulation(
                config.partitions(0), cls.arrival, cls.service,
                cls.quantum, cr.vacation,
                policy=config.empty_queue_policy, seed=seed, warmup=WARMUP)
            sim.run(HORIZON)
            tails.append(sim.stats.response_tail(t90))
        mean, half = _ci(tails)
        assert abs(mean - 0.1) < max(2.0 * half, 0.015)
