"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import ENGINE_FLAGS, build_parser, main

#: Every subcommand that evaluates a scenario shares the engine schema.
EVALUATING_SUBCOMMANDS = ("run", "solve", "figure", "optimize", "simulate")


def _subcommand_argv(command):
    """A minimal valid argv prefix for each evaluating subcommand."""
    return {
        "run": ["run", "fig4"],
        "solve": ["solve"],
        "figure": ["figure", "4"],
        "optimize": ["optimize"],
        "simulate": ["simulate"],
    }[command]


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.processors == 8
        assert args.empty_queue == "switch"
        assert args.policy is None

    @pytest.mark.parametrize("command", EVALUATING_SUBCOMMANDS)
    def test_policy_flag_parses_everywhere(self, command):
        argv = _subcommand_argv(command) + ["--policy", "weighted:2/1/1/1"]
        args = build_parser().parse_args(argv)
        assert args.policy == "weighted:2/1/1/1"

    def test_bad_policy_spec_exits_2(self, capsys):
        assert main(["solve", "--policy", "no-such-kind"]) == 2
        assert "ValidationError" in capsys.readouterr().err

    def test_bad_class_spec(self):
        with pytest.raises(SystemExit):
            main(["solve", "--class", "1,2"])


class TestSolve:
    def test_default_config_prints_report(self, capsys):
        assert main(["solve", "--heavy-traffic"]) == 0
        out = capsys.readouterr().out
        assert "class0" in out and "total N=" in out

    def test_custom_classes(self, capsys):
        rc = main(["solve", "--processors", "4",
                   "--class", "1,0.4,1,2,0.02",
                   "--class", "4,0.2,2,2,0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P=4" in out and "L=2" in out


class TestFigure:
    def test_figure_4_table(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "service_rate" in out
        assert "N[class3]" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])


class TestFigurePlot:
    def test_plot_flag_renders_curves(self, capsys):
        assert main(["figure", "4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "N[class0]" in out
        assert "+--" in out     # plot frame


class TestOptimize:
    def test_optimize_small_system(self, capsys):
        rc = main(["optimize", "--processors", "2",
                   "--class", "1,0.5,1,2,0.1",
                   "--min", "0.5", "--max", "4.0", "--tol", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal quantum mean" in out
        assert "converged=True" in out


class TestPolicyFlag:
    def test_solve_with_weighted_policy(self, capsys):
        rc = main(["solve", "--heavy-traffic",
                   "--policy", "weighted:2/1/1/1"])
        assert rc == 0
        assert "total N=" in capsys.readouterr().out

    def test_optimize_search_priority(self, capsys):
        rc = main(["optimize", "--search", "priority",
                   "--processors", "4",
                   "--class", "1,0.5,1,2,0.1",
                   "--class", "2,0.3,1.5,2,0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal policy: priority" in out
        assert "total N=" in out


class TestSimulate:
    def test_simulate_with_compare(self, capsys):
        rc = main(["simulate", "--processors", "4",
                   "--class", "2,0.4,1,2,0.02",
                   "--horizon", "4000", "--compare"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulation:" in out
        assert "analytic comparison:" in out


class TestEngineFlagParity:
    """Every engine knob must be reachable from every subcommand.

    This is the regression guard for the historical drift where solve
    and optimize could not select --backend and simulate could not set
    --workers or the fixed-point tolerances: the flags now come from
    one shared schema (repro.cli.ENGINE_FLAGS), and this test walks
    the full flag x subcommand matrix.
    """

    SAMPLE = {
        "--backend": "dense", "--workers": "2", "--checkpoint": "cp.jsonl",
        "--max-iterations": "50", "--fp-tol": "1e-7",
        "--heavy-traffic": None, "--solve-budget": "2.5", "--batch": "8",
        "--horizon": "500", "--seed": "7",
        "--replications": "3", "--budget": "9",
    }

    def test_schema_covers_engine_spec(self):
        from repro.scenario import engine_field_names
        assert {f for f, _, _ in ENGINE_FLAGS} <= set(engine_field_names())

    @pytest.mark.parametrize("command", EVALUATING_SUBCOMMANDS)
    @pytest.mark.parametrize("field,flag", [(f, fl) for f, fl, _ in
                                            ENGINE_FLAGS])
    def test_every_flag_parses_everywhere(self, command, field, flag):
        argv = _subcommand_argv(command) + [flag]
        if self.SAMPLE[flag] is not None:
            argv.append(self.SAMPLE[flag])
        args = build_parser().parse_args(argv)
        assert getattr(args, field) is not None

    @pytest.mark.parametrize("command", EVALUATING_SUBCOMMANDS)
    def test_flags_default_to_none(self, command):
        """Unset flags must stay None so scenario defaults win."""
        args = build_parser().parse_args(_subcommand_argv(command))
        for field, _, _ in ENGINE_FLAGS:
            assert getattr(args, field) is None

    def test_optimize_keeps_its_interval_tol(self):
        args = build_parser().parse_args(
            ["optimize", "--tol", "0.1", "--fp-tol", "1e-8"])
        assert args.search_tol == pytest.approx(0.1)
        assert args.tol == pytest.approx(1e-8)

    def test_simulate_reaches_solver_knobs(self, capsys):
        rc = main(["simulate", "--processors", "4",
                   "--class", "2,0.4,1,2,0.02", "--horizon", "1000",
                   "--fp-tol", "1e-6", "--backend", "dense", "--compare"])
        assert rc == 0
        assert "analytic comparison:" in capsys.readouterr().out


class TestRunSubcommand:
    def test_run_preset_matches_figure_output(self, capsys):
        assert main(["figure", "4"]) == 0
        figure_out = capsys.readouterr().out
        assert main(["run", "fig4"]) == 0
        run_out = capsys.readouterr().out
        assert run_out == figure_out

    def test_run_fig2_file_matches_figure_2_exactly(self, tmp_path, capsys):
        """The acceptance criterion: file-driven run == figure 2."""
        from repro.scenario import get_scenario
        from repro.serialize import save_scenario
        path = tmp_path / "fig2.json"
        save_scenario(get_scenario("fig2"), path)
        assert main(["figure", "2"]) == 0
        figure_out = capsys.readouterr().out
        assert main(["run", str(path)]) == 0
        assert capsys.readouterr().out == figure_out

    def test_run_unknown_scenario_exits_2(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_run_engine_override(self, capsys):
        rc = main(["run", "crosscheck-moderate", "--engine", "analytic"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total N=" in out
        assert "simulation" not in out

    def test_run_flag_overrides_apply(self, tmp_path, capsys):
        path = str(tmp_path / "cp.jsonl")
        assert main(["run", "fig4", "--checkpoint", path]) == 0
        capsys.readouterr()
        assert main(["run", "fig4", "--checkpoint", path]) == 0
        assert "point(s) resumed" in capsys.readouterr().err


class TestScenariosSubcommand:
    def test_listing_names_every_preset(self, capsys):
        from repro.scenario import scenario_names
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_named_export_is_loadable_json(self, capsys):
        from repro.scenario import get_scenario
        from repro.serialize import scenario_from_dict
        assert main(["scenarios", "fig3"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert scenario_from_dict(data) == get_scenario("fig3")


class TestErrorHandling:
    UNSTABLE = ["solve", "--processors", "2", "--class", "1,5.0,1.0,2.0,0.01"]

    def test_repro_error_exits_2_with_one_line_message(self, capsys):
        assert main(self.UNSTABLE) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro-gang: UnstableSystemError:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_traceback_flag_reraises(self):
        from repro.errors import UnstableSystemError
        with pytest.raises(UnstableSystemError):
            main(["--traceback"] + self.UNSTABLE)

    def test_checkpoint_mismatch_reported_readably(self, tmp_path, capsys):
        path = tmp_path / "fig.jsonl"
        path.write_text('{"kind": "sweep-header", "parameter": "other"}\n')
        assert main(["figure", "2", "--checkpoint", str(path)]) == 2
        assert "CheckpointError" in capsys.readouterr().err

    def test_run_missing_scenario_file_exits_2(self, tmp_path, capsys):
        # Satellite regression: a bad path used to leak a raw
        # FileNotFoundError traceback (or worse, a misleading
        # unknown-preset listing).
        missing = tmp_path / "nope" / "scenario.json"
        assert main(["run", str(missing)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-gang: ValidationError:")
        assert len(err.strip().splitlines()) == 1

    def test_run_missing_json_name_treated_as_file(self, capsys):
        # No path separator, but the .json suffix marks it as a file —
        # not a preset lookup.
        assert main(["run", "no-such-scenario.json"]) == 2
        err = capsys.readouterr().err
        assert "cannot read scenario file" in err

    def test_run_directory_exits_2(self, tmp_path, capsys):
        assert main(["run", str(tmp_path)]) == 2
        assert capsys.readouterr().err.startswith(
            "repro-gang: ValidationError:")

    def test_run_corrupt_scenario_file_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "repro-scenario", "version":')
        assert main(["run", str(path)]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-gang: ValidationError:")
        assert "not valid JSON" in err

    def test_run_bad_file_traceback_flag_reraises(self, tmp_path):
        from repro.errors import ValidationError
        with pytest.raises(ValidationError):
            main(["--traceback", "run", str(tmp_path / "missing.json")])


class TestServiceCLI:
    def test_request_store_one_shot_then_cached(self, tmp_path, capsys):
        from repro.scenario import get_scenario
        from repro.serialize import save_scenario
        path = tmp_path / "point.json"
        save_scenario(get_scenario("fig2").with_grid([0.5]), path)
        store = str(tmp_path / "store")
        assert main(["request", str(path), "--store", store]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["status"] == "ok"
        assert reply["solved_points"] == 1
        # The store persists across one-shot invocations.
        assert main(["request", str(path), "--store", store]) == 0
        assert json.loads(capsys.readouterr().out)["cached"] is True

    def test_serve_compact_on_start_flag(self):
        args = build_parser().parse_args(
            ["serve", "--store", "s", "--compact-on-start"])
        assert args.compact_on_start is True
        args = build_parser().parse_args(["serve", "--store", "s"])
        assert args.compact_on_start is False

    def test_request_requires_exactly_one_target(self):
        with pytest.raises(SystemExit):
            main(["request", "fig2"])

    def test_request_ping_needs_no_scenario(self, tmp_path, capsys):
        rc = main(["request", "--op", "ping",
                   "--store", str(tmp_path / "store")])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["op"] == "ping"

    def test_request_error_reply_exits_2(self, tmp_path, capsys):
        rc = main(["request", "no-such-preset",
                   "--store", str(tmp_path / "store")])
        assert rc == 2
        assert json.loads(capsys.readouterr().out)["status"] == "error"


class TestFigureCheckpoint:
    def test_figure_resumes_from_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        assert capsys.readouterr().out == first


class TestObservabilityFlags:
    def test_trace_flag_writes_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["solve", "--heavy-traffic",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        assert '"trace-header"' in lines[0]
        assert any('"kind":"E"' in ln for ln in lines)
        assert any('"kind":"metrics"' in ln for ln in lines)

    def test_metrics_flag_prints_snapshot_to_stderr(self, capsys):
        assert main(["solve", "--heavy-traffic", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "class0" in captured.out          # report untouched
        assert "counters:" in captured.err
        assert "rsolve.solves" in captured.err

    def test_report_subcommand_renders_table(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["figure", "2", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-class, per-stage wall seconds:" in out
        assert "rsolve" in out
        assert "solver:" in out

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_checkpoint_resume_summary_line(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        first = capsys.readouterr()
        assert "resumed" not in first.err
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "point(s) resumed" in second.err
        assert second.err.startswith("repro-gang: checkpoint")
