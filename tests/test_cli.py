"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.processors == 8
        assert args.policy == "switch"

    def test_bad_class_spec(self):
        with pytest.raises(SystemExit):
            main(["solve", "--class", "1,2"])


class TestSolve:
    def test_default_config_prints_report(self, capsys):
        assert main(["solve", "--heavy-traffic"]) == 0
        out = capsys.readouterr().out
        assert "class0" in out and "total N=" in out

    def test_custom_classes(self, capsys):
        rc = main(["solve", "--processors", "4",
                   "--class", "1,0.4,1,2,0.02",
                   "--class", "4,0.2,2,2,0.02"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P=4" in out and "L=2" in out


class TestFigure:
    def test_figure_4_table(self, capsys):
        assert main(["figure", "4"]) == 0
        out = capsys.readouterr().out
        assert "service_rate" in out
        assert "N[class3]" in out

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "7"])


class TestFigurePlot:
    def test_plot_flag_renders_curves(self, capsys):
        assert main(["figure", "4", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out
        assert "N[class0]" in out
        assert "+--" in out     # plot frame


class TestOptimize:
    def test_optimize_small_system(self, capsys):
        rc = main(["optimize", "--processors", "2",
                   "--class", "1,0.5,1,2,0.1",
                   "--min", "0.5", "--max", "4.0", "--tol", "0.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "optimal quantum mean" in out
        assert "converged=True" in out


class TestSimulate:
    def test_simulate_with_compare(self, capsys):
        rc = main(["simulate", "--processors", "4",
                   "--class", "2,0.4,1,2,0.02",
                   "--horizon", "4000", "--compare"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulation:" in out
        assert "analytic comparison:" in out


class TestErrorHandling:
    UNSTABLE = ["solve", "--processors", "2", "--class", "1,5.0,1.0,2.0,0.01"]

    def test_repro_error_exits_2_with_one_line_message(self, capsys):
        assert main(self.UNSTABLE) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err.startswith("repro-gang: UnstableSystemError:")
        assert len(captured.err.strip().splitlines()) == 1

    def test_traceback_flag_reraises(self):
        from repro.errors import UnstableSystemError
        with pytest.raises(UnstableSystemError):
            main(["--traceback"] + self.UNSTABLE)

    def test_checkpoint_mismatch_reported_readably(self, tmp_path, capsys):
        path = tmp_path / "fig.jsonl"
        path.write_text('{"kind": "sweep-header", "parameter": "other"}\n')
        assert main(["figure", "2", "--checkpoint", str(path)]) == 2
        assert "CheckpointError" in capsys.readouterr().err


class TestFigureCheckpoint:
    def test_figure_resumes_from_checkpoint(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        first = capsys.readouterr().out
        assert path.exists()
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        assert capsys.readouterr().out == first


class TestObservabilityFlags:
    def test_trace_flag_writes_trace_file(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["solve", "--heavy-traffic",
                     "--trace", str(trace)]) == 0
        capsys.readouterr()
        lines = trace.read_text().splitlines()
        assert '"trace-header"' in lines[0]
        assert any('"kind":"E"' in ln for ln in lines)
        assert any('"kind":"metrics"' in ln for ln in lines)

    def test_metrics_flag_prints_snapshot_to_stderr(self, capsys):
        assert main(["solve", "--heavy-traffic", "--metrics"]) == 0
        captured = capsys.readouterr()
        assert "class0" in captured.out          # report untouched
        assert "counters:" in captured.err
        assert "rsolve.solves" in captured.err

    def test_report_subcommand_renders_table(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert main(["figure", "2", "--trace", str(trace)]) == 0
        capsys.readouterr()
        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-class, per-stage wall seconds:" in out
        assert "rsolve" in out
        assert "solver:" in out

    def test_report_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace" in capsys.readouterr().err

    def test_checkpoint_resume_summary_line(self, tmp_path, capsys):
        path = tmp_path / "fig4.jsonl"
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        first = capsys.readouterr()
        assert "resumed" not in first.err
        assert main(["figure", "4", "--checkpoint", str(path)]) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        assert "point(s) resumed" in second.err
        assert second.err.startswith("repro-gang: checkpoint")
