"""Backend-aware resilience: sparse-path failures downgrade to dense.

A defect in the sparse kernels (proven here by fault injection at the
``"kernels.sparse"`` site) must cost at most one extra attempt — the
resilient solve retries the same method on the dense kernels instead
of burning the tolerance schedule or failing the solve.
"""

import numpy as np
import pytest

from repro.errors import ConvergenceError
from repro.qbd.rmatrix import solve_R
from repro.resilience import faults
from repro.resilience.fallback import resilient_solve_R


def phase_qbd(d=8, lam=0.4, mu=1.0, sw=0.2):
    """A ``d``-phase QBD (cyclic phase switching) — big enough that
    ``backend="sparse"`` engages the matrix-free Newton path
    (``d^2 >= 48``)."""
    A0 = lam * np.eye(d)
    A2 = mu * np.eye(d)
    A1 = -(lam + mu + sw) * np.eye(d)
    for i in range(d):
        A1[i, (i + 1) % d] = sw
    return A0, A1, A2


class TestSparseDowngrade:
    def test_refine_fault_downgrades_to_dense(self):
        A0, A1, A2 = phase_qbd()
        # Warm seed so solve_R enters the (faulted) Newton refinement.
        R0 = solve_R(A0, A1, A2)
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("refine_R",)) as spec:
            R, report = resilient_solve_R(A0, A1, A2, R0=R0,
                                          backend="sparse")
            assert spec.fired >= 1
        assert report.succeeded
        assert np.allclose(R, R0, atol=1e-8)
        # First attempt ran sparse and failed; the bonus attempt reran
        # the same method dense and won.
        first, second = report.attempts[0], report.attempts[1]
        assert first.outcome == "error"
        assert first.backend == "sparse"
        assert "injected fault" in first.error
        assert second.outcome == "ok"
        assert second.backend == "dense"
        assert second.method == first.method
        # The downgrade skipped the tolerance schedule.
        assert second.tol == first.tol

    def test_downgrade_is_bonus_attempt(self):
        """The dense retry must not consume the per-method budget."""
        A0, A1, A2 = phase_qbd()
        R0 = solve_R(A0, A1, A2)
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("refine_R",)):
            _, report = resilient_solve_R(A0, A1, A2, R0=R0,
                                          backend="sparse")
        # One sparse failure + one dense success, within the first
        # method — no fallback to a different algorithm.
        assert len(report.attempts) == 2
        assert report.attempts[0].method == report.attempts[1].method

    def test_dense_backend_unaffected_by_fault(self):
        A0, A1, A2 = phase_qbd()
        R0 = solve_R(A0, A1, A2)
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("refine_R",)) as spec:
            _, report = resilient_solve_R(A0, A1, A2, R0=R0,
                                          backend="dense")
            assert spec.fired == 0
        assert report.attempts[0].outcome == "ok"
        assert report.attempts[0].backend == "dense"

    def test_small_system_sparse_mode_stays_dense(self):
        """Below the size threshold ``backend="sparse"`` is a no-op, so
        the fault never fires and no bonus attempt is granted."""
        A0, A1, A2 = phase_qbd(d=3)
        R0 = solve_R(A0, A1, A2)
        with faults.inject("kernels.sparse", raises=ConvergenceError,
                           keys=("refine_R",)) as spec:
            _, report = resilient_solve_R(A0, A1, A2, R0=R0,
                                          backend="sparse")
            assert spec.fired == 0
        assert report.succeeded
        assert len(report.attempts) == 1


class TestEndToEndParity:
    @pytest.mark.parametrize("backend", ["dense", "sparse", "auto", None])
    def test_backends_agree(self, backend):
        A0, A1, A2 = phase_qbd(d=10)
        R_ref, _ = resilient_solve_R(A0, A1, A2, backend="dense")
        R, report = resilient_solve_R(A0, A1, A2, backend=backend)
        assert report.succeeded
        assert np.allclose(R, R_ref, atol=1e-9)
