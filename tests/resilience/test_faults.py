"""Tests for the deterministic fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, UnstableSystemError
from repro.resilience import faults


class TestArmDisarm:
    def test_inactive_by_default(self):
        assert not faults.active()
        faults.maybe_fault("anything")  # no-op

    def test_arm_and_fire(self):
        faults.arm("site", raises=ConvergenceError)
        with pytest.raises(ConvergenceError, match="injected"):
            faults.maybe_fault("site")

    def test_disarm_one_site(self):
        faults.arm("a", raises=ConvergenceError)
        faults.arm("b", raises=ConvergenceError)
        faults.disarm("a")
        faults.maybe_fault("a")
        with pytest.raises(ConvergenceError):
            faults.maybe_fault("b")

    def test_disarm_all(self):
        faults.arm("a", raises=ConvergenceError)
        faults.disarm()
        assert not faults.active()

    def test_must_raise_or_corrupt(self):
        with pytest.raises(ValueError):
            faults.arm("site")

    def test_exception_instance_reraised(self):
        exc = UnstableSystemError("mine", drift=0.25)
        faults.arm("site", raises=exc)
        with pytest.raises(UnstableSystemError) as info:
            faults.maybe_fault("site")
        assert info.value is exc


class TestSelectivity:
    def test_key_filter(self):
        faults.arm("site", raises=ConvergenceError, keys=("logreduction",))
        faults.maybe_fault("site", key="cr")          # not matching
        with pytest.raises(ConvergenceError):
            faults.maybe_fault("site", key="logreduction")

    def test_times_limits_fires(self):
        spec = faults.arm("site", raises=ConvergenceError, times=2)
        for _ in range(2):
            with pytest.raises(ConvergenceError):
                faults.maybe_fault("site")
        faults.maybe_fault("site")  # third call passes
        assert spec.fired == 2 and spec.seen == 3

    def test_calls_selects_indices(self):
        faults.arm("site", raises=ConvergenceError, calls={1})
        faults.maybe_fault("site")                    # call 0 passes
        with pytest.raises(ConvergenceError):
            faults.maybe_fault("site")                # call 1 fires
        faults.maybe_fault("site")                    # call 2 passes

    def test_deterministic_across_runs(self):
        def run():
            fired = []
            with faults.inject("site", raises=ConvergenceError,
                               calls={0, 2}):
                for i in range(4):
                    try:
                        faults.maybe_fault("site")
                        fired.append(False)
                    except ConvergenceError:
                        fired.append(True)
            return fired
        assert run() == run() == [True, False, True, False]


class TestCorruption:
    def test_nan_array(self):
        faults.arm("site", corrupt="nan")
        out = faults.maybe_corrupt("site", np.ones((2, 2)))
        assert np.all(np.isnan(out))

    def test_nan_scalar(self):
        faults.arm("site", corrupt="nan")
        assert np.isnan(faults.maybe_corrupt("site", 3.0))

    def test_callable_corruption(self):
        faults.arm("site", corrupt=lambda v: -v)
        assert faults.maybe_corrupt("site", 5.0) == -5.0

    def test_passthrough_when_unarmed(self):
        x = np.ones(3)
        assert faults.maybe_corrupt("other", x) is x


class TestInjectContext:
    def test_restores_previous_spec(self):
        outer = faults.arm("site", raises=ConvergenceError, times=0)
        with faults.inject("site", raises=UnstableSystemError):
            with pytest.raises(UnstableSystemError):
                faults.maybe_fault("site")
        assert faults.spec_for("site") is outer

    def test_clears_when_fresh(self):
        with faults.inject("site", raises=ConvergenceError):
            assert faults.active()
        assert not faults.active()
