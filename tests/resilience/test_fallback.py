"""Tests for the solver fallback chain, retries, and budgets."""

import json

import numpy as np
import pytest

from repro.errors import (
    ConvergenceError,
    SolverBudgetExceededError,
    ValidationError,
)
from repro.qbd import QBDProcess, solve_qbd
from repro.qbd.rmatrix import METHODS
from repro.resilience import faults
from repro.resilience.fallback import (
    AttemptRecord,
    ResiliencePolicy,
    RetryPolicy,
    SolveReport,
    default_chain,
    resilient_solve_R,
)


def phase_blocks():
    lam0, lam1, mu, sw = 0.8, 0.2, 1.0, 0.3
    A0 = np.diag([lam0, lam1])
    A2 = np.diag([mu, mu])
    A1 = np.array([
        [-(lam0 + mu + sw), sw],
        [sw, -(lam1 + mu + sw)],
    ])
    return A0, A1, A2


def phase_process():
    A0, A1, A2 = phase_blocks()
    # Level 0 reflects the down-rates back onto the diagonal.
    return QBDProcess(boundary=((A1 + A2, A0), (A2, A1)),
                      A0=A0, A1=A1, A2=A2)


class TestDefaultChain:
    def test_primary_first_then_rest(self):
        chain = default_chain("substitution")
        assert chain[0] == "substitution"
        assert set(chain) == set(METHODS)
        assert len(chain) == len(METHODS)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValidationError, match="unknown"):
            default_chain("newton")


class TestHappyPath:
    def test_primary_succeeds_no_fallback(self):
        A0, A1, A2 = phase_blocks()
        R, report = resilient_solve_R(A0, A1, A2)
        assert report.method == "logreduction"
        assert report.fallbacks == 0
        assert len(report.attempts) == 1
        assert report.attempts[0].outcome == "ok"
        assert np.max(np.abs(R @ R @ A2 + R @ A1 + A0)) < 1e-10

    def test_report_describe_readable(self):
        A0, A1, A2 = phase_blocks()
        _, report = resilient_solve_R(A0, A1, A2)
        text = report.describe()
        assert "logreduction" in text and "ok" in text


class TestFallback:
    def test_primary_error_falls_back(self):
        A0, A1, A2 = phase_blocks()
        R_ref, _ = resilient_solve_R(A0, A1, A2)
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction",)):
            R, report = resilient_solve_R(A0, A1, A2)
        assert report.method == "cr"
        assert report.fallbacks > 0
        assert [a.outcome for a in report.attempts[:-1]] \
            == ["error"] * (len(report.attempts) - 1)
        assert R == pytest.approx(R_ref, abs=1e-8)

    def test_nan_result_detected_and_skipped(self):
        A0, A1, A2 = phase_blocks()
        R_ref, _ = resilient_solve_R(A0, A1, A2)
        with faults.inject("rmatrix.result", corrupt="nan",
                           keys=("logreduction",)):
            R, report = resilient_solve_R(A0, A1, A2)
        assert report.method == "cr"
        invalid = [a for a in report.attempts if a.outcome == "invalid"]
        assert invalid and "non-finite" in invalid[0].error
        assert R == pytest.approx(R_ref, abs=1e-8)

    def test_retry_records_adjusted_tolerances(self):
        A0, A1, A2 = phase_blocks()
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction",)):
            _, report = resilient_solve_R(A0, A1, A2)
        lr = [a for a in report.attempts if a.method == "logreduction"]
        assert len(lr) == 2                      # default retry policy
        assert lr[1].tol > lr[0].tol             # relaxed after failure
        assert lr[1].regularization > 0.0

    def test_every_method_failing_raises_with_report(self):
        A0, A1, A2 = phase_blocks()
        with faults.inject("rmatrix.solve", raises=ConvergenceError):
            with pytest.raises(ConvergenceError,
                               match="every R-matrix method") as info:
                resilient_solve_R(A0, A1, A2)
        report = info.value.report
        assert {a.method for a in report.attempts} == set(METHODS)
        assert not report.succeeded

    def test_custom_chain_restricts_methods(self):
        A0, A1, A2 = phase_blocks()
        policy = ResiliencePolicy(chain=("substitution",))
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("substitution",)):
            with pytest.raises(ConvergenceError) as info:
                resilient_solve_R(A0, A1, A2, policy=policy)
        assert {a.method for a in info.value.report.attempts} \
            == {"substitution"}


class TestBudgets:
    def test_wall_clock_budget_exceeded(self):
        A0, A1, A2 = phase_blocks()
        policy = ResiliencePolicy(retry=RetryPolicy(wall_clock_budget=0.0))
        with pytest.raises(SolverBudgetExceededError) as info:
            resilient_solve_R(A0, A1, A2, policy=policy)
        assert info.value.budget == 0.0
        assert info.value.elapsed is not None
        assert info.value.report.attempts == []

    def test_iteration_budget_exceeded(self):
        A0, A1, A2 = phase_blocks()
        policy = ResiliencePolicy(retry=RetryPolicy(max_total_iterations=1500))
        injected = ConvergenceError("stuck", iterations=1000, residual=0.5)
        with faults.inject("rmatrix.solve", raises=injected):
            with pytest.raises(SolverBudgetExceededError) as info:
                resilient_solve_R(A0, A1, A2, policy=policy)
        assert info.value.iterations >= 1500
        assert info.value.residual == 0.5
        assert len(info.value.report.attempts) == 2

    def test_budget_error_is_a_convergence_error(self):
        # Callers catching ConvergenceError keep working.
        assert issubclass(SolverBudgetExceededError, ConvergenceError)

    def test_wall_clock_budget_binds_mid_attempt(self):
        """Regression: a single runaway attempt must not exceed the budget.

        The budget used to be checked only *between* attempts, so one
        substitution attempt on a critically-drifted QBD (delta shrinks
        like 1/n, never reaching tol) would burn through its full
        100k-iteration cap — tens of seconds at this block size —
        before the clock was consulted.  The deadline is now threaded
        into the iteration loop itself.
        """
        import time

        # Zero-drift diagonal blocks: substitution approaches the
        # double root r=1 sublinearly and never meets tol=1e-12.
        d = 128
        A0 = np.eye(d)
        A2 = np.eye(d)
        A1 = -2.0 * np.eye(d)
        policy = ResiliencePolicy(
            chain=("substitution",),
            retry=RetryPolicy(max_attempts_per_method=1,
                              max_total_iterations=None,
                              wall_clock_budget=0.2))
        t0 = time.monotonic()
        with pytest.raises(SolverBudgetExceededError) as info:
            resilient_solve_R(A0, A1, A2, policy=policy)
        elapsed = time.monotonic() - t0
        # Generous CI slack; the pre-fix behavior is 20s+.
        assert elapsed < 3.0
        assert info.value.budget == 0.2
        [attempt] = info.value.report.attempts
        assert attempt.method == "substitution"
        assert attempt.outcome == "error"
        assert "deadline" in attempt.error


class TestSolveQBDIntegration:
    def test_faulted_primary_still_solves_correctly(self):
        """Acceptance: forced primary failure -> fallback agrees to 1e-8."""
        process = phase_process()
        clean = solve_qbd(process)
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction",)):
            faulted = solve_qbd(process)
        assert faulted.solve_report.method == "cr"
        assert faulted.solve_report.fallbacks > 0
        assert faulted.mean_level == pytest.approx(clean.mean_level,
                                                   abs=1e-8)
        assert faulted.level_marginal(20) == pytest.approx(
            clean.level_marginal(20), abs=1e-8)

    def test_fallback_through_to_spectral(self):
        process = phase_process()
        clean = solve_qbd(process)
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction", "cr", "substitution")):
            faulted = solve_qbd(process)
        assert faulted.solve_report.method == "spectral"
        assert faulted.mean_level == pytest.approx(clean.mean_level,
                                                   abs=1e-8)

    def test_solve_report_present_by_default(self):
        sol = solve_qbd(phase_process())
        assert sol.solve_report is not None
        assert sol.solve_report.method == "logreduction"

    def test_legacy_mode_fails_fast(self):
        process = phase_process()
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction",)):
            with pytest.raises(ConvergenceError):
                solve_qbd(process, resilience=None)
        sol = solve_qbd(process, resilience=None)
        assert sol.solve_report is None


class TestReportSerialization:
    def make_record(self, **overrides):
        base = dict(method="cr", attempt=1, tol=1e-12,
                    regularization=1e-10, outcome="invalid",
                    error="R spectral radius 1.01 >= 1",
                    iterations=17, residual=3.2e-9, elapsed=0.05,
                    backend="sparse")
        base.update(overrides)
        return AttemptRecord(**base)

    def test_attempt_record_roundtrip(self):
        rec = self.make_record()
        data = rec.to_dict()
        assert data["backend"] == "sparse"
        assert AttemptRecord.from_dict(json.loads(json.dumps(data))) == rec

    def test_attempt_record_tolerates_pre_backend_dicts(self):
        data = self.make_record().to_dict()
        del data["backend"]  # record written before the backend field
        rec = AttemptRecord.from_dict(data)
        assert rec.backend is None
        assert rec.method == "cr"

    def test_solve_report_roundtrip(self):
        report = SolveReport(method="cr", attempts=[
            self.make_record(method="logreduction", outcome="error",
                             iterations=None, residual=None, backend=None),
            self.make_record(outcome="ok", error=None),
        ])
        data = json.loads(json.dumps(report.to_dict()))
        back = SolveReport.from_dict(data)
        assert back == report
        assert back.method == "cr"
        assert back.fallbacks == 1
        assert [a.outcome for a in back.attempts] == ["error", "ok"]

    def test_live_report_roundtrips(self):
        A0, A1, A2 = phase_blocks()
        _, report = resilient_solve_R(A0, A1, A2)
        back = SolveReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert back == report
        assert back.attempts[0].iterations is not None  # satellite bugfix
