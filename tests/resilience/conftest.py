"""Shared safety net: no fault leaks out of a test."""

import pytest

from repro.resilience import faults


@pytest.fixture(autouse=True)
def _disarm_all_faults():
    yield
    faults.disarm()
