"""Tests for crash-safe sweep checkpointing and resume."""

import json
import math

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import CheckpointError
from repro.resilience import faults
from repro.resilience.checkpoint import SweepJournal
from repro.workloads import sweep


def tiny_config(lam):
    return SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="only"),
    ))


GRID = [0.2, 0.5, 0.8, 1.1]


class TestJournal:
    def test_roundtrip(self, tmp_path):
        j = SweepJournal(tmp_path / "run.jsonl")
        j.write_header(parameter="lambda", class_names=["only"])
        j.append({"value": 0.5, "ok": True})
        header, records = j.load()
        assert header["parameter"] == "lambda"
        assert records == [{"value": 0.5, "ok": True}]

    def test_missing_file_loads_empty(self, tmp_path):
        header, records = SweepJournal(tmp_path / "nope.jsonl").load()
        assert header is None and records == []

    def test_truncated_final_line_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        j = SweepJournal(path)
        j.write_header(parameter="lambda", class_names=["only"])
        j.append({"value": 0.5})
        with open(path, "a") as fh:
            fh.write('{"value": 0.8, "mean_jo')      # crash mid-write
        header, records = j.load()
        assert header is not None
        assert records == [{"value": 0.5}]

    def test_repair_truncates_partial_tail(self, tmp_path):
        path = tmp_path / "run.jsonl"
        j = SweepJournal(path)
        j.append({"value": 0.5})
        with open(path, "a") as fh:
            fh.write('{"broken')
        assert j.repair() is True
        assert path.read_text() == '{"value": 0.5}\n'
        assert j.repair() is False                   # idempotent

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"broken\n{"value": 0.5}\n')
        with pytest.raises(CheckpointError, match="unparseable"):
            SweepJournal(path).load()

    def test_duplicate_header_raises(self, tmp_path):
        j = SweepJournal(tmp_path / "run.jsonl")
        j.write_header(parameter="a")
        j.write_header(parameter="b")
        with pytest.raises(CheckpointError, match="duplicate header"):
            j.load()

    def test_validate_header_mismatch(self, tmp_path):
        j = SweepJournal(tmp_path / "run.jsonl")
        with pytest.raises(CheckpointError, match="no header"):
            j.validate_header(None, parameter="lambda")
        with pytest.raises(CheckpointError, match="different sweep"):
            j.validate_header({"parameter": "mu"}, parameter="lambda")
        j.validate_header({"parameter": "lambda", "class_names": ["a"]},
                          parameter="lambda", class_names=("a",))

    def test_float_values_roundtrip_exactly(self, tmp_path):
        j = SweepJournal(tmp_path / "run.jsonl")
        vals = [0.1, 1 / 3, 2.0 ** -40, float("inf"), 6.02e23]
        j.append({"vals": vals})
        _, (rec,) = j.load()
        assert rec["vals"] == vals                    # exact, not approx


class TestSweepCheckpointing:
    def test_journal_written_and_resume_skips_solves(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        first = sweep("lambda", GRID, tiny_config, checkpoint=path)
        assert first.resumed == 0
        # Re-running must not re-solve anything: a fault armed at every
        # grid point would fire if any point were solved again.
        with faults.inject("sweeps.point", raises=RuntimeError) as spec:
            second = sweep("lambda", GRID, tiny_config, checkpoint=path)
        assert spec.fired == 0
        assert second.resumed == len(GRID)
        assert second.points == first.points
        assert second.render() == first.render()

    def test_killed_and_resumed_matches_uninterrupted(self, tmp_path):
        """Acceptance: kill mid-sweep, resume, byte-identical results."""
        clean_path = tmp_path / "clean.jsonl"
        crash_path = tmp_path / "crash.jsonl"
        clean = sweep("lambda", GRID, tiny_config, checkpoint=clean_path)

        # "Kill" the sweep at the third grid point: KeyboardInterrupt
        # is not swallowed by skip_errors, like a real SIGINT.
        with faults.inject("sweeps.point", raises=KeyboardInterrupt,
                           keys=(GRID[2],)):
            with pytest.raises(KeyboardInterrupt):
                sweep("lambda", GRID, tiny_config, checkpoint=crash_path)
        resumed = sweep("lambda", GRID, tiny_config, checkpoint=crash_path)

        assert resumed.resumed == 2                   # first two survived
        assert resumed.points == clean.points
        assert resumed.render() == clean.render()
        # The resumed journal is byte-identical to the uninterrupted one.
        assert crash_path.read_bytes() == clean_path.read_bytes()

    def test_failed_points_checkpointed_with_error_class(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        grid = [0.5, 5.0]                             # 5.0 is unstable
        first = sweep("lambda", grid, tiny_config, checkpoint=path)
        assert first.points[1].error is not None
        assert first.points[1].error.startswith("UnstableSystemError")
        records = [json.loads(line) for line in
                   path.read_text().splitlines()][1:]
        assert records[1]["error"].startswith("UnstableSystemError")
        # Failed points resume too — they are not retried.
        second = sweep("lambda", grid, tiny_config, checkpoint=path)
        assert second.resumed == 2
        # NaN-carrying points can't use ==; compare the journal text.
        assert second.points[1].error == first.points[1].error
        assert second.render() == first.render()
        assert math.isnan(second.series(0)[1])

    def test_resume_false_overwrites(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", GRID, tiny_config, checkpoint=path)
        fresh = sweep("lambda", GRID[:2], tiny_config, checkpoint=path,
                      resume=False)
        assert fresh.resumed == 0
        header, records = SweepJournal(path).load()
        assert len(records) == 2

    def test_mismatched_journal_rejected(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", GRID[:2], tiny_config, checkpoint=path)
        with pytest.raises(CheckpointError, match="different sweep"):
            sweep("mu", GRID[:2], tiny_config, checkpoint=path)

    def test_empty_journal_treated_as_fresh(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("")
        res = sweep("lambda", GRID[:2], tiny_config, checkpoint=path)
        assert res.resumed == 0 and len(res.points) == 2

    def test_extra_journal_points_ignored(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", GRID, tiny_config, checkpoint=path)
        narrowed = sweep("lambda", GRID[:2], tiny_config, checkpoint=path)
        assert narrowed.values() == GRID[:2]
        assert narrowed.resumed == 2

    def test_no_checkpoint_unchanged_behaviour(self):
        res = sweep("lambda", GRID[:2], tiny_config)
        assert res.resumed == 0 and len(res.points) == 2
