"""Operational measures cross-validated against instrumented simulation.

Beyond mean jobs, the analytic model reports service fractions, skip
flows and utilization; each is checked here against what the simulator
actually did — in the single-class regime where the model is exact.
"""

import pytest

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.sim import GangSimulation
from repro.sim.trace import TracingGangSimulation


@pytest.fixture(scope="module")
def setup():
    cfg = SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=0.7, service_rate=1.0,
                              quantum_mean=1.5, overhead_mean=0.4),))
    solved = GangSchedulingModel(cfg).solve()
    return cfg, solved


HORIZON = 60_000.0
WARMUP = 3_000.0


class TestOperationalMeasures:
    def test_skip_flow_matches_skip_rate(self, setup):
        """Stationary skipped-quantum flow = skips per unit time in sim."""
        cfg, solved = setup
        sim = GangSimulation(cfg, seed=2, warmup=WARMUP)
        sim.run(HORIZON)
        sim_rate = sim.quanta_skipped[0] / HORIZON
        model_rate = solved.classes[0].measures.skip_probability_flow
        assert model_rate == pytest.approx(sim_rate, rel=0.05)

    def test_service_fraction_matches_busy_share(self, setup):
        """P(quantum phase) = fraction of time the class held the CPUs.

        The trace's busy share counts actual quantum time; skipped
        quanta contribute zero to both sides.
        """
        cfg, solved = setup
        sim = TracingGangSimulation(cfg, seed=3)
        sim.run(HORIZON)
        share = sim.trace.busy_share(0, HORIZON)
        model = solved.classes[0].measures.service_fraction
        assert model == pytest.approx(share, rel=0.04)

    def test_utilization_matches_rho(self, setup):
        cfg, solved = setup
        assert solved.classes[0].measures.utilization == pytest.approx(
            cfg.utilization(0), rel=1e-6)

    def test_waiting_count_via_little_on_queue(self, setup):
        """E[waiting jobs] = lambda * E[wait] (Little on the queue)."""
        from repro.core import waiting_time_distribution
        cfg, solved = setup
        wt = waiting_time_distribution(solved, 0)
        lam = cfg.classes[0].arrival_rate
        # "Waiting" in the measure = no partition; the tagged-job wait
        # ends at first service, which also requires the quantum.  The
        # two notions differ by the partition-holding-but-frozen time,
        # so Little gives an upper bound here:
        assert lam * wt.mean >= solved.classes[0].measures.mean_jobs_waiting - 1e-6

    def test_realized_quantum_mean_matches_effective_quantum(self, setup):
        """Trace-measured quantum durations vs the model's effective
        quantum (conditional on actually running)."""
        import numpy as np

        from repro.core.fixed_point import FixedPointOptions, run_fixed_point
        from repro.core.vacation import effective_quantum
        cfg, _ = setup
        res = run_fixed_point(cfg, FixedPointOptions())
        eq = effective_quantum(res.spaces[0], res.processes[0],
                               res.solutions[0], res.vacations[0])
        cond_mean = eq.mean / (1.0 - eq.atom_at_zero)
        sim = TracingGangSimulation(cfg, seed=4)
        sim.run(HORIZON)
        durs = sim.trace.quantum_durations(0)
        assert cond_mean == pytest.approx(float(np.mean(durs)), rel=0.05)
