"""End-to-end cross-validation: analytic model vs simulators.

Three tiers of agreement, matching the approximation structure:

1. **Exact tier** — single class (vacation = own overhead) and the
   decomposed vacation-server simulation: the model must land inside
   simulation confidence intervals.
2. **Heavy-traffic tier** — multi-class at high utilization: the
   decomposition approximation is near-exact; we demand close
   agreement (the paper's analysis is exact in the heavy-traffic
   limit).
3. **Moderate-load tier** — multi-class at moderate load: the paper's
   independence assumption (footnote 2 defers the exact conditional
   treatment) biases the model low; we assert the documented error
   band rather than pretending agreement.
"""

import numpy as np
import pytest

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.sim import GangSimulation, VacationServerSimulation, run_replications
from repro.workloads import fig23_config


@pytest.fixture(scope="module")
def two_class_cfg():
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=0.5, service_rate=0.5,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="small"),
        ClassConfig.markovian(4, arrival_rate=0.4, service_rate=2.0,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="big"),
    ))


class TestExactTier:
    def test_single_class_inside_ci(self):
        cfg = SystemConfig(processors=4, classes=(
            ClassConfig.markovian(2, arrival_rate=0.8, service_rate=1.0,
                                  quantum_mean=2.0, overhead_mean=0.5),))
        sol = GangSchedulingModel(cfg).solve()
        summ = run_replications(
            lambda s, w: GangSimulation(cfg, seed=s, warmup=w),
            replications=5, horizon=40_000.0, warmup=1000.0)["mean_jobs"]
        assert abs(sol.mean_jobs(0) - summ.mean[0]) < max(
            2 * summ.half_width[0], 0.03 * summ.mean[0])

    def test_decomposed_simulation_matches_model(self, two_class_cfg):
        """Each class's QBD vs a simulation of its own decomposition."""
        model = GangSchedulingModel(two_class_cfg)
        solved = model.solve()
        for p, cr in enumerate(solved.classes):
            cls = two_class_cfg.classes[p]
            means = []
            for seed in range(4):
                sim = VacationServerSimulation(
                    two_class_cfg.partitions(p), cls.arrival, cls.service,
                    cls.quantum, cr.vacation, seed=seed, warmup=1000.0)
                means.append(sim.run(30_000.0).mean_jobs[0])
            assert cr.mean_jobs == pytest.approx(np.mean(means), rel=0.06)


class TestHeavyTrafficTier:
    def test_fig3_point_close_to_simulation(self):
        cfg = fig23_config(0.9, 1.0)
        sol = GangSchedulingModel(cfg).solve()
        summ = run_replications(
            lambda s, w: GangSimulation(cfg, seed=s, warmup=w),
            replications=4, horizon=50_000.0, warmup=5000.0)["mean_jobs"]
        for p in range(4):
            rel = abs(sol.mean_jobs(p) - summ.mean[p]) / summ.mean[p]
            assert rel < 0.15, (
                f"class{p}: model {sol.mean_jobs(p):.2f} vs "
                f"sim {summ.mean[p]:.2f}")


class TestModerateLoadTier:
    def test_documented_bias_band(self, two_class_cfg):
        """The model may sit below the simulation, but within ~25%."""
        sol = GangSchedulingModel(two_class_cfg).solve()
        summ = run_replications(
            lambda s, w: GangSimulation(two_class_cfg, seed=s, warmup=w),
            replications=4, horizon=40_000.0, warmup=2000.0)["mean_jobs"]
        for p in range(2):
            rel = (sol.mean_jobs(p) - summ.mean[p]) / summ.mean[p]
            assert -0.25 < rel < 0.10, (
                f"class{p}: model {sol.mean_jobs(p):.3f} vs "
                f"sim {summ.mean[p]:.3f} ({rel:+.1%})")

    def test_simulation_littles_law(self, two_class_cfg):
        rep = GangSimulation(two_class_cfg, seed=0,
                             warmup=2000.0).run(40_000.0)
        assert max(rep.littles_law_gap) < 0.02
