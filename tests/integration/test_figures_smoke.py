"""Smoke tests of the figure pipelines (coarse grids, full solve path).

The full-resolution figures live in ``benchmarks/``; these tests assert
the *shapes* the paper reports on small grids so the suite stays fast.
"""

import pytest

from repro.analysis import is_monotone_decreasing, is_u_shaped
from repro.workloads import fig23_config, fig4_config, fig5_config, sweep


@pytest.mark.slow
class TestFigureShapes:
    def test_fig2_heavy_class_u_shape(self):
        """Class 3 (whole machine) shows the fall-then-rise of Figure 2."""
        res = sweep("quantum", [0.05, 0.25, 1.0, 3.0, 6.0],
                    lambda q: fig23_config(0.4, q))
        ys = res.series(3)
        assert is_u_shaped(ys, rel_tol=0.02), ys

    def test_fig4_service_rate_sweep_decreases(self):
        res = sweep("mu", [2.0, 4.0, 10.0, 20.0], fig4_config)
        for p in range(4):
            assert is_monotone_decreasing(res.series(p), rel_tol=0.01)

    def test_fig4_flattens(self):
        res = sweep("mu", [2.0, 4.0, 10.0, 20.0], fig4_config)
        ys = res.series(0)
        # Early drop dwarfs the late drop (diminishing returns).
        assert (ys[0] - ys[1]) > 5 * (ys[2] - ys[3])

    def test_fig5_focus_class_decreases_in_fraction(self):
        res = sweep("fraction", [0.15, 0.4, 0.7, 0.85],
                    lambda f: fig5_config(focus_class=0, fraction=f))
        assert is_monotone_decreasing(res.series(0), rel_tol=0.01)

    def test_fig5_other_classes_suffer(self):
        res = sweep("fraction", [0.2, 0.8],
                    lambda f: fig5_config(focus_class=0, fraction=f))
        # Giving class 0 most of the cycle increases someone else's N.
        others_small = sum(res.points[0].mean_jobs[1:])
        others_large = sum(res.points[1].mean_jobs[1:])
        assert others_large > others_small
