"""Tests for the terminal line plotter."""

import math

import pytest

from repro.analysis import Series, ascii_plot
from repro.errors import ValidationError


def make_series(name="s", n=10):
    s = Series(name)
    for i in range(n):
        s.append(i, i * i)
    return s


class TestAsciiPlot:
    def test_contains_axes_and_legend(self):
        art = ascii_plot([make_series("quad")])
        assert "quad" in art
        assert "|" in art and "+" in art
        assert "o" in art        # first series glyph

    def test_title(self):
        art = ascii_plot([make_series()], title="hello")
        assert art.splitlines()[0] == "hello"

    def test_multiple_series_distinct_glyphs(self):
        a = make_series("a")
        b = Series("b")
        for i in range(10):
            b.append(i, 100 - i)
        art = ascii_plot([a, b])
        assert "o a" in art and "x b" in art
        assert "x" in art.split("b")[0]

    def test_y_labels_show_range(self):
        art = ascii_plot([make_series(n=5)])
        assert "16" in art     # max of i^2 for i<5
        assert "0" in art

    def test_log_scale_handles_wide_range(self):
        s = Series("wide")
        for i in range(1, 8):
            s.append(i, 10.0 ** i)
        art = ascii_plot([s], logy=True)
        assert "1e+07" in art or "1e+7" in art

    def test_skips_nonfinite(self):
        s = Series("gappy")
        s.append(0, 1.0)
        s.append(1, math.nan)
        s.append(2, 3.0)
        art = ascii_plot([s])
        assert "gappy" in art

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            ascii_plot([])
        s = Series("nanonly")
        s.append(0, math.nan)
        with pytest.raises(ValidationError):
            ascii_plot([s])

    def test_rejects_tiny_area(self):
        with pytest.raises(ValidationError):
            ascii_plot([make_series()], width=3, height=2)

    def test_constant_series_ok(self):
        s = Series("flat")
        for i in range(5):
            s.append(i, 2.0)
        art = ascii_plot([s])
        assert "flat" in art
