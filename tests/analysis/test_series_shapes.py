"""Tests for result containers and shape predicates."""

import pytest

from repro.analysis import (
    Series,
    Table,
    is_monotone_decreasing,
    is_monotone_increasing,
    is_u_shaped,
    knee_index,
    littles_law_gap,
)


class TestSeries:
    def test_append_and_iterate(self):
        s = Series("n")
        s.append(1, 10.0)
        s.append(2, 5.0)
        assert list(s) == [(1.0, 10.0), (2.0, 5.0)]
        assert len(s) == 2

    def test_argmin(self):
        s = Series("n", x=[1, 2, 3], y=[5.0, 1.0, 9.0])
        assert s.argmin() == 1

    def test_argmin_skips_nan(self):
        s = Series("n", x=[1, 2], y=[float("nan"), 2.0])
        assert s.argmin() == 1

    def test_argmin_all_nan_raises(self):
        s = Series("n", x=[1], y=[float("nan")])
        with pytest.raises(ValueError):
            s.argmin()


class TestTable:
    def test_round_trip(self):
        t = Table("q", ["N0", "N1"])
        t.add_row(1.0, [2.0, 3.0])
        t.add_row(2.0, [1.5, 2.5])
        assert len(t) == 2
        col = t.column("N1")
        assert col.y == [3.0, 2.5]

    def test_csv(self):
        t = Table("q", ["N0"])
        t.add_row(1.0, [0.25])
        csv = t.to_csv()
        assert csv.splitlines()[0] == "q,N0"
        assert "0.25" in csv

    def test_render_fixed_width(self):
        t = Table("q", ["N0"])
        t.add_row(1.0, [2.0])
        text = t.render()
        assert "q" in text and "N0" in text and "2.0000" in text

    def test_row_length_checked(self):
        t = Table("q", ["N0", "N1"])
        with pytest.raises(ValueError):
            t.add_row(1.0, [2.0])


class TestShapePredicates:
    def test_monotone_increasing(self):
        assert is_monotone_increasing([1, 2, 3])
        assert not is_monotone_increasing([1, 3, 2])
        assert is_monotone_increasing([1.0, 0.995, 2.0], rel_tol=0.01)

    def test_monotone_decreasing(self):
        assert is_monotone_decreasing([3, 2, 1])
        assert not is_monotone_decreasing([3, 1, 2])

    def test_u_shape_detection(self):
        assert is_u_shaped([5, 3, 1, 2, 4])
        assert not is_u_shaped([5, 4, 3, 2, 1])        # knee at edge
        assert not is_u_shaped([1, 2, 3, 4, 5])
        assert not is_u_shaped([5, 1, 5, 1, 5])        # not monotone halves

    def test_u_shape_with_noise(self):
        ys = [5.0, 3.0, 1.0, 1.01, 0.999, 2.0, 4.0]
        assert is_u_shaped(ys, rel_tol=0.05)

    def test_knee_index(self):
        assert knee_index([4, 2, 1, 3]) == 2

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            is_u_shaped([1.0, float("nan"), 2.0])


class TestLittlesLaw:
    def test_exact(self):
        assert littles_law_gap(2.0, 0.5, 4.0) == pytest.approx(0.0)

    def test_gap(self):
        assert littles_law_gap(2.0, 0.5, 5.0) == pytest.approx(0.25)

    def test_rejects_nonpositive_n(self):
        with pytest.raises(ValueError):
            littles_law_gap(0.0, 1.0, 1.0)
