"""Tests for the results-report builder."""

import pathlib

import pytest

from repro.analysis import Table, build_results_report


@pytest.fixture
def results_dir(tmp_path) -> pathlib.Path:
    t = Table("quantum_mean", ["N[class0]", "N[class1]"])
    t.add_row(0.5, [1.2, 0.8])
    t.add_row(2.0, [1.0, 0.9])
    (tmp_path / "fig2.csv").write_text(t.to_csv())
    (tmp_path / "fig2.txt").write_text("Figure 2 notes.\n\n" + t.render())
    t2 = Table("x", ["y"])
    t2.add_row(1.0, [2.0])
    (tmp_path / "custom_extra.csv").write_text(t2.to_csv())
    return tmp_path


class TestBuildResultsReport:
    def test_known_section_rendered(self, results_dir):
        md = build_results_report(results_dir)
        assert "## Figure 2" in md
        assert "Figure 2 notes." in md
        assert "| quantum_mean | N[class0] | N[class1] |" in md
        assert "| 0.5 | 1.2 | 0.8 |" in md

    def test_unknown_files_appended(self, results_dir):
        md = build_results_report(results_dir)
        assert "## custom_extra" in md

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_results_report(tmp_path / "nope")

    def test_real_results_dir_if_present(self):
        real = pathlib.Path("benchmarks/results")
        if not real.is_dir():
            pytest.skip("benchmark results not generated yet")
        md = build_results_report(real)
        assert md.startswith("# Measured results")
