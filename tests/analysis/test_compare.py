"""Tests for analytic-vs-simulation comparison plumbing."""

import pytest

from repro.analysis import compare_analytic_simulation
from repro.core import GangSchedulingModel
from repro.sim import GangSimulation, run_replications


@pytest.fixture(scope="module")
def pieces(two_class_config):
    solved = GangSchedulingModel(two_class_config).solve()
    summary = run_replications(
        lambda seed, warmup: GangSimulation(two_class_config, seed=seed,
                                            warmup=warmup),
        replications=3, horizon=5000.0, warmup=500.0)["mean_jobs"]
    return solved, summary


# two_class_config is function-scoped in the root conftest; redefine a
# module-scoped copy for the expensive fixture above.
@pytest.fixture(scope="module")
def two_class_config():
    from repro.core import ClassConfig, SystemConfig
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=0.5, service_rate=0.5,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="small"),
        ClassConfig.markovian(4, arrival_rate=0.4, service_rate=2.0,
                              quantum_mean=1.5, overhead_mean=0.05,
                              name="big"),
    ))


class TestCompare:
    def test_row_per_class(self, pieces):
        solved, summary = pieces
        rows = compare_analytic_simulation(solved, summary)
        assert [r.class_name for r in rows] == ["small", "big"]

    def test_rel_error_definition(self, pieces):
        solved, summary = pieces
        rows = compare_analytic_simulation(solved, summary)
        for p, r in enumerate(rows):
            expect = abs(solved.mean_jobs(p) - summary.mean[p]) \
                / summary.mean[p]
            assert r.rel_error == pytest.approx(expect)

    def test_within_ci_consistent_with_interval(self, pieces):
        solved, summary = pieces
        rows = compare_analytic_simulation(solved, summary)
        for p, r in enumerate(rows):
            lo, hi = summary.interval(p)
            assert r.within_ci == (lo <= r.analytic <= hi)

    def test_carries_ci_half_width(self, pieces):
        solved, summary = pieces
        rows = compare_analytic_simulation(solved, summary)
        for p, r in enumerate(rows):
            assert r.ci_half_width == summary.half_width[p]
