"""Tests for uniformization (Section 2.4 of the paper)."""

import numpy as np
import pytest
from scipy.linalg import expm

from repro.errors import ValidationError
from repro.markov import DiscreteTimeMarkovChain
from repro.markov.uniformization import (
    transient_distribution,
    uniformization_rate,
    uniformize,
)
from repro.utils.linalg import solve_stationary_gth


@pytest.fixture
def Q():
    return np.array([
        [-2.0, 1.0, 1.0],
        [0.5, -1.0, 0.5],
        [1.0, 3.0, -4.0],
    ])


class TestRate:
    def test_default_is_max_exit(self, Q):
        assert uniformization_rate(Q) == 4.0

    def test_slack_inflates(self, Q):
        assert uniformization_rate(Q, slack=1.5) == 6.0

    def test_slack_below_one_rejected(self, Q):
        with pytest.raises(ValidationError):
            uniformization_rate(Q, slack=0.5)

    def test_all_absorbing_gets_positive_rate(self):
        assert uniformization_rate(np.zeros((2, 2))) == 1.0


class TestUniformize:
    def test_produces_stochastic_matrix(self, Q):
        P, rate = uniformize(Q)
        assert np.allclose(P.sum(axis=1), 1.0)
        assert np.all(P >= 0)
        assert rate == 4.0

    def test_paper_identity_P_equals_Q_over_qmax_plus_I(self, Q):
        P, rate = uniformize(Q)
        assert P == pytest.approx(Q / rate + np.eye(3))

    def test_stationary_vector_preserved(self, Q):
        # The core claim of Section 2.4: pi of the DTMC equals pi of
        # the CTMC.
        P, _ = uniformize(Q)
        pi_ctmc = solve_stationary_gth(Q)
        pi_dtmc = DiscreteTimeMarkovChain(P).stationary_distribution()
        assert pi_dtmc == pytest.approx(pi_ctmc, abs=1e-12)

    def test_too_small_qmax_rejected(self, Q):
        with pytest.raises(ValidationError):
            uniformize(Q, q_max=3.0)

    def test_larger_qmax_accepted(self, Q):
        P, rate = uniformize(Q, q_max=10.0)
        assert rate == 10.0
        assert np.allclose(P.sum(axis=1), 1.0)


class TestTransient:
    def test_matches_matrix_exponential(self, Q):
        p0 = np.array([1.0, 0.0, 0.0])
        for t in [0.1, 1.0, 5.0]:
            expect = p0 @ expm(Q * t)
            got = transient_distribution(Q, p0, t)
            assert got == pytest.approx(expect, abs=1e-9)

    def test_zero_time(self, Q):
        p0 = np.array([0.0, 0.5, 0.5])
        assert transient_distribution(Q, p0, 0.0) == pytest.approx(p0)

    def test_negative_time_rejected(self, Q):
        with pytest.raises(ValidationError):
            transient_distribution(Q, np.array([1.0, 0.0, 0.0]), -1.0)

    def test_long_time_reaches_stationarity(self, Q):
        p0 = np.array([0.0, 0.0, 1.0])
        got = transient_distribution(Q, p0, 500.0)
        assert got == pytest.approx(solve_stationary_gth(Q), abs=1e-9)
