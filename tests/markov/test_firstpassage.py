"""Tests for first-passage analysis."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.markov.firstpassage import (
    first_passage_ph,
    hitting_probabilities,
    mean_hitting_times,
)


@pytest.fixture
def ring():
    """3-state unidirectional ring with unit rates."""
    return np.array([
        [-1.0, 1.0, 0.0],
        [0.0, -1.0, 1.0],
        [1.0, 0.0, -1.0],
    ])


class TestMeanHittingTimes:
    def test_ring(self, ring):
        # From 0 to 2: two unit-rate hops.
        t = mean_hitting_times(ring, [2])
        assert t == pytest.approx([2.0, 1.0, 0.0])

    def test_birth_death(self):
        # M/M/1-like: hitting 0 from 1 is the busy period mean
        # 1/(mu - lam) for lam < mu.
        lam, mu = 0.5, 1.0
        n = 60
        Q = np.zeros((n, n))
        for i in range(n):
            if i + 1 < n:
                Q[i, i + 1] = lam
            if i > 0:
                Q[i, i - 1] = mu
        np.fill_diagonal(Q, -Q.sum(axis=1))
        t = mean_hitting_times(Q, [0])
        assert t[1] == pytest.approx(1.0 / (mu - lam), rel=1e-6)

    def test_unreachable_is_inf(self):
        Q = np.array([
            [0.0, 0.0, 0.0],       # absorbing, not the target
            [1.0, -1.0, 0.0],
            [0.0, 1.0, -1.0],
        ])
        t = mean_hitting_times(Q, [2])
        assert t[0] == np.inf

    def test_empty_target_rejected(self, ring):
        with pytest.raises(ValidationError):
            mean_hitting_times(ring, [])

    def test_out_of_range_rejected(self, ring):
        with pytest.raises(ValidationError):
            mean_hitting_times(ring, [7])


class TestHittingProbabilities:
    def test_gambler_ruin(self):
        # Symmetric walk on 0..4, absorbing ends: P(hit 4 before 0 | i)
        # = i/4.
        n = 5
        Q = np.zeros((n, n))
        for i in range(1, n - 1):
            Q[i, i - 1] = 1.0
            Q[i, i + 1] = 1.0
        np.fill_diagonal(Q, -Q.sum(axis=1))
        probs = hitting_probabilities(Q, target=[4], avoid=[0])
        assert probs == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_biased_walk(self):
        p_up, p_dn = 2.0, 1.0
        n = 4
        Q = np.zeros((n, n))
        for i in range(1, n - 1):
            Q[i, i - 1] = p_dn
            Q[i, i + 1] = p_up
        np.fill_diagonal(Q, -Q.sum(axis=1))
        probs = hitting_probabilities(Q, target=[n - 1], avoid=[0])
        # Classical ruin formula with r = dn/up = 1/2.
        r = p_dn / p_up
        expect = [(1 - r ** i) / (1 - r ** (n - 1)) for i in range(n)]
        assert probs == pytest.approx(expect)

    def test_disjointness_enforced(self, ring):
        with pytest.raises(ValidationError):
            hitting_probabilities(ring, target=[1], avoid=[1])


class TestFirstPassagePH:
    def test_matches_mean_hitting_time(self, ring):
        start = np.array([1.0, 0.0, 0.0])
        d = first_passage_ph(ring, [2], start)
        assert d.mean == pytest.approx(mean_hitting_times(ring, [2])[0])

    def test_atom_when_starting_in_target(self, ring):
        start = np.array([0.5, 0.0, 0.5])
        d = first_passage_ph(ring, [2], start)
        assert d.atom_at_zero == pytest.approx(0.5)

    def test_distribution_is_erlang_for_series(self):
        # Ring 0 -> 1 -> 2 with unit rates, starting at 0: Erlang-2.
        Q = np.array([
            [-1.0, 1.0, 0.0],
            [0.0, -1.0, 1.0],
            [0.0, 0.0, 0.0],
        ])
        d = first_passage_ph(Q, [2], np.array([1.0, 0.0, 0.0]))
        from repro.phasetype import erlang
        ref = erlang(2, rate=1.0)
        xs = np.linspace(0.1, 5, 12)
        assert d.cdf(xs) == pytest.approx(ref.cdf(xs), abs=1e-10)

    def test_start_shape_checked(self, ring):
        with pytest.raises(ValidationError):
            first_passage_ph(ring, [2], np.array([1.0, 0.0]))
