"""Tests for absorbing-chain analysis."""

import numpy as np
import pytest

from repro.markov import (
    absorption_probabilities,
    expected_time_to_absorption,
    fundamental_matrix,
)
from repro.phasetype import erlang, hypoexponential


class TestFundamentalMatrix:
    def test_single_phase(self):
        N = fundamental_matrix(np.array([[-2.0]]))
        assert N == pytest.approx(np.array([[0.5]]))

    def test_series_chain(self):
        # Two stages in series with rates 1 and 2: from stage 0 the
        # chain spends 1 time unit in 0 and 0.5 in 1.
        S = np.array([[-1.0, 1.0], [0.0, -2.0]])
        N = fundamental_matrix(S)
        assert N == pytest.approx(np.array([[1.0, 0.5], [0.0, 0.5]]))


class TestAbsorptionProbabilities:
    def test_two_exits(self):
        # One transient state, two absorbing targets with rates 1 and 3.
        S = np.array([[-4.0]])
        B = np.array([[1.0, 3.0]])
        probs = absorption_probabilities(S, B)
        assert probs == pytest.approx(np.array([[0.25, 0.75]]))

    def test_rows_sum_to_one(self):
        S = np.array([[-3.0, 1.0], [0.5, -2.0]])
        B = -np.asarray(S).sum(axis=1, keepdims=True)
        probs = absorption_probabilities(S, B)
        assert probs.sum(axis=1) == pytest.approx([1.0, 1.0])

    def test_vector_B_promoted(self):
        S = np.array([[-1.0]])
        probs = absorption_probabilities(S, np.array([1.0]))
        assert probs.shape == (1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            absorption_probabilities(np.array([[-1.0]]),
                                     np.array([[1.0], [1.0]]))


class TestMeanAbsorptionTime:
    def test_matches_ph_mean(self):
        d = erlang(3, mean=2.0)
        t = expected_time_to_absorption(np.asarray(d.S),
                                        np.asarray(d.alpha))
        assert t == pytest.approx(2.0)

    def test_per_state_vector(self):
        d = hypoexponential([1.0, 2.0])
        times = expected_time_to_absorption(np.asarray(d.S))
        # From stage 0: 1 + 0.5; from stage 1: 0.5.
        assert times == pytest.approx([1.5, 0.5])

    def test_start_shape_checked(self):
        with pytest.raises(ValueError):
            expected_time_to_absorption(np.array([[-1.0]]),
                                        np.array([0.5, 0.5]))
