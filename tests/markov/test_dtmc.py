"""Tests for DiscreteTimeMarkovChain."""

import numpy as np
import pytest

from repro.errors import NotStochasticError, ReducibleChainError
from repro.markov import DiscreteTimeMarkovChain


@pytest.fixture
def weather():
    P = np.array([[0.7, 0.3], [0.4, 0.6]])
    return DiscreteTimeMarkovChain(P)


class TestConstruction:
    def test_validates(self):
        with pytest.raises(NotStochasticError):
            DiscreteTimeMarkovChain([[0.5, 0.4], [0.5, 0.5]])

    def test_labels(self):
        c = DiscreteTimeMarkovChain([[1.0]], labels=["x"])
        assert c.labels == ["x"]

    def test_label_mismatch(self):
        with pytest.raises(ValueError):
            DiscreteTimeMarkovChain([[1.0]], labels=["x", "y"])


class TestStructure:
    def test_irreducible(self, weather):
        assert weather.is_irreducible()

    def test_reducible(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        assert not DiscreteTimeMarkovChain(P).is_irreducible()

    def test_aperiodic_with_self_loop(self, weather):
        assert weather.is_aperiodic()

    def test_periodic_cycle_detected(self):
        P = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert not DiscreteTimeMarkovChain(P).is_aperiodic()

    def test_odd_cycle_is_aperiodic(self):
        P = np.array([
            [0.0, 1.0, 0.0],
            [0.0, 0.0, 1.0],
            [0.5, 0.5, 0.0],
        ])
        # Cycles of length 2 and 3 coexist -> gcd 1.
        assert DiscreteTimeMarkovChain(P).is_aperiodic()


class TestStationary:
    def test_known_solution(self, weather):
        pi = weather.stationary_distribution()
        assert pi == pytest.approx([4 / 7, 3 / 7])

    def test_power_matches_gth(self, weather):
        a = weather.stationary_distribution(method="gth")
        b = weather.stationary_distribution(method="power")
        assert a == pytest.approx(b, abs=1e-10)

    def test_reducible_raises(self):
        P = np.array([[1.0, 0.0], [0.5, 0.5]])
        with pytest.raises(ReducibleChainError):
            DiscreteTimeMarkovChain(P).stationary_distribution()

    def test_unknown_method(self, weather):
        with pytest.raises(ValueError):
            weather.stationary_distribution(method="magic")


class TestStepDistribution:
    def test_zero_steps(self, weather):
        p0 = [1.0, 0.0]
        assert weather.step_distribution(p0, 0) == pytest.approx(p0)

    def test_one_step(self, weather):
        assert weather.step_distribution([1.0, 0.0], 1) == \
            pytest.approx([0.7, 0.3])

    def test_many_steps_converge(self, weather):
        p = weather.step_distribution([1.0, 0.0], 200)
        assert p == pytest.approx(weather.stationary_distribution(), abs=1e-12)

    def test_negative_steps_rejected(self, weather):
        with pytest.raises(ValueError):
            weather.step_distribution([1.0, 0.0], -1)
