"""Property-based tests for the Markov toolkit."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.markov import DiscreteTimeMarkovChain
from repro.markov.uniformization import uniformize
from repro.utils.linalg import (
    solve_stationary_dtmc,
    solve_stationary_gth,
    stationary_from_generator,
)


@st.composite
def irreducible_generators(draw, max_n: int = 6):
    """Dense random generators — strictly positive off-diagonals."""
    n = draw(st.integers(2, max_n))
    raw = draw(hnp.arrays(
        np.float64, (n, n),
        elements=st.floats(0.05, 5.0, allow_nan=False, allow_infinity=False),
    ))
    Q = raw.copy()
    np.fill_diagonal(Q, 0.0)
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return Q


@given(Q=irreducible_generators())
@settings(max_examples=50, deadline=None)
def test_gth_solves_balance_equations(Q):
    pi = solve_stationary_gth(Q)
    assert np.all(pi > 0)
    np.testing.assert_allclose(pi.sum(), 1.0, rtol=1e-12)
    np.testing.assert_allclose(pi @ Q, 0.0, atol=1e-9)


@given(Q=irreducible_generators())
@settings(max_examples=50, deadline=None)
def test_gth_agrees_with_direct_solver(Q):
    a = solve_stationary_gth(Q)
    b = stationary_from_generator(Q, method="direct")
    np.testing.assert_allclose(a, b, atol=1e-9)


@given(Q=irreducible_generators())
@settings(max_examples=50, deadline=None)
def test_uniformization_preserves_stationary_vector(Q):
    # The paper's Section 2.4 equivalence, as a universal property.
    P, rate = uniformize(Q)
    pi_c = solve_stationary_gth(Q)
    pi_d = solve_stationary_dtmc(P)
    np.testing.assert_allclose(pi_c, pi_d, atol=1e-9)
    assert rate >= np.max(-np.diag(Q)) - 1e-12


@given(Q=irreducible_generators(), slack=st.floats(1.0, 3.0))
@settings(max_examples=30, deadline=None)
def test_uniformization_rate_slack_keeps_stochasticity(Q, slack):
    rate = np.max(-np.diag(Q)) * slack
    P, _ = uniformize(Q, q_max=rate)
    assert np.all(P >= 0)
    np.testing.assert_allclose(P.sum(axis=1), 1.0, atol=1e-12)


@given(Q=irreducible_generators())
@settings(max_examples=30, deadline=None)
def test_uniformized_chain_aperiodic_when_diagonal_positive(Q):
    P, _ = uniformize(Q)
    chain = DiscreteTimeMarkovChain(P)
    if np.any(np.diag(P) > 0):
        assert chain.is_aperiodic()
