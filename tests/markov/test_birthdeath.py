"""Tests for the closed-form birth-death oracles."""

import numpy as np
import pytest

from repro.errors import UnstableSystemError, ValidationError
from repro.markov import (
    birth_death_stationary,
    mm1_mean_jobs,
    mmc_erlang_c,
    mmc_mean_jobs,
    mmck_blocking_probability,
)
from repro.utils.linalg import solve_stationary_gth


class TestBirthDeathStationary:
    def test_mm1_geometric(self):
        lam, mu = 0.5, 1.0
        pi = birth_death_stationary(lambda n: lam, lambda n: mu, 200)
        rho = lam / mu
        assert pi[:5] == pytest.approx((1 - rho) * rho ** np.arange(5),
                                       abs=1e-9)

    def test_matches_gth_on_explicit_generator(self):
        birth = lambda n: 1.0 + 0.1 * n
        death = lambda n: 2.0 * n
        levels = 30
        pi = birth_death_stationary(birth, death, levels)
        Q = np.zeros((levels, levels))
        for n in range(levels):
            if n + 1 < levels:
                Q[n, n + 1] = birth(n)
            if n > 0:
                Q[n, n - 1] = death(n)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        assert pi == pytest.approx(solve_stationary_gth(Q), abs=1e-10)

    def test_rejects_zero_death(self):
        with pytest.raises(ValidationError):
            birth_death_stationary(lambda n: 1.0, lambda n: 0.0, 5)

    def test_rejects_zero_levels(self):
        with pytest.raises(ValidationError):
            birth_death_stationary(lambda n: 1.0, lambda n: 1.0, 0)


class TestQueueFormulas:
    def test_mm1(self):
        assert mm1_mean_jobs(0.5, 1.0) == pytest.approx(1.0)
        with pytest.raises(UnstableSystemError):
            mm1_mean_jobs(1.0, 1.0)

    def test_erlang_c_bounds(self):
        c = mmc_erlang_c(3.0, 1.0, 4)
        assert 0.0 < c < 1.0

    def test_mmc_reduces_to_mm1(self):
        assert mmc_mean_jobs(0.5, 1.0, 1) == pytest.approx(mm1_mean_jobs(0.5, 1.0))

    def test_mmc_matches_birth_death(self):
        lam, mu, c = 2.5, 1.0, 4
        pi = birth_death_stationary(lambda n: lam,
                                    lambda n: min(n, c) * mu, 400)
        direct = float(np.arange(400) @ pi)
        assert mmc_mean_jobs(lam, mu, c) == pytest.approx(direct, rel=1e-8)

    def test_mmck_blocking(self):
        # M/M/1/1 (Erlang loss with one server): B = a/(1+a).
        lam, mu = 2.0, 1.0
        a = lam / mu
        assert mmck_blocking_probability(lam, mu, 1, 1) == \
            pytest.approx(a / (1 + a))

    def test_mmck_capacity_check(self):
        with pytest.raises(ValidationError):
            mmck_blocking_probability(1.0, 1.0, 4, 2)

    def test_mmck_large_K_approaches_mmc(self):
        # With huge capacity and stable load, blocking vanishes.
        assert mmck_blocking_probability(0.5, 1.0, 2, 200) < 1e-10
