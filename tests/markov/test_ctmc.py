"""Tests for ContinuousTimeMarkovChain."""

import numpy as np
import pytest

from repro.errors import NotAGeneratorError, ReducibleChainError
from repro.markov import ContinuousTimeMarkovChain


@pytest.fixture
def birth_death():
    """3-state birth-death chain with known stationary vector."""
    Q = np.array([
        [-1.0, 1.0, 0.0],
        [2.0, -3.0, 1.0],
        [0.0, 2.0, -2.0],
    ])
    return ContinuousTimeMarkovChain(Q)


class TestConstruction:
    def test_validates_generator(self):
        with pytest.raises(NotAGeneratorError):
            ContinuousTimeMarkovChain([[1.0, -1.0], [0.0, 0.0]])

    def test_labels(self):
        c = ContinuousTimeMarkovChain([[-1.0, 1.0], [1.0, -1.0]],
                                      labels=["idle", "busy"])
        assert c.state_index("busy") == 1

    def test_label_count_mismatch(self):
        with pytest.raises(ValueError):
            ContinuousTimeMarkovChain([[0.0]], labels=["a", "b"])

    def test_q_is_readonly(self, birth_death):
        with pytest.raises(ValueError):
            birth_death.Q[0, 0] = -5.0


class TestStructure:
    def test_irreducible(self, birth_death):
        assert birth_death.is_irreducible()

    def test_reducible_detected(self):
        Q = np.array([[-1.0, 1.0, 0.0],
                      [1.0, -1.0, 0.0],
                      [0.0, 1.0, -1.0]])
        c = ContinuousTimeMarkovChain(Q)
        assert not c.is_irreducible()
        classes = c.communicating_classes()
        assert sorted(map(sorted, classes)) == [[0, 1], [2]]

    def test_max_exit_rate(self, birth_death):
        assert birth_death.max_exit_rate == 3.0

    def test_single_state_is_irreducible(self):
        assert ContinuousTimeMarkovChain([[0.0]]).is_irreducible()


class TestStationary:
    def test_detailed_balance_solution(self, birth_death):
        pi = birth_death.stationary_distribution()
        # Birth-death: pi_{i+1}/pi_i = birth/death.
        assert pi[1] / pi[0] == pytest.approx(1.0 / 2.0)
        assert pi[2] / pi[1] == pytest.approx(1.0 / 2.0)

    def test_methods_agree(self, birth_death):
        a = birth_death.stationary_distribution(method="gth")
        b = birth_death.stationary_distribution(method="direct")
        assert a == pytest.approx(b)

    def test_reducible_raises(self):
        Q = np.array([[0.0, 0.0], [1.0, -1.0]])
        with pytest.raises(ReducibleChainError):
            ContinuousTimeMarkovChain(Q).stationary_distribution()

    def test_expected_rewards(self, birth_death):
        pi = birth_death.stationary_distribution()
        r = np.array([0.0, 1.0, 2.0])
        assert birth_death.expected_rewards(r) == pytest.approx(pi @ r)

    def test_rewards_shape_checked(self, birth_death):
        with pytest.raises(ValueError):
            birth_death.expected_rewards([1.0])


class TestTransient:
    def test_converges_to_stationary(self, birth_death):
        p0 = np.array([1.0, 0.0, 0.0])
        pt = birth_death.transient_distribution(p0, 200.0)
        assert pt == pytest.approx(birth_death.stationary_distribution(),
                                   abs=1e-8)

    def test_zero_time_identity(self, birth_death):
        p0 = np.array([0.0, 1.0, 0.0])
        assert birth_death.transient_distribution(p0, 0.0) == pytest.approx(p0)

    def test_matches_expm(self, birth_death):
        from scipy.linalg import expm
        p0 = np.array([0.2, 0.5, 0.3])
        t = 0.7
        expect = p0 @ expm(np.asarray(birth_death.Q) * t)
        got = birth_death.transient_distribution(p0, t)
        assert got == pytest.approx(expect, abs=1e-10)


class TestSamplePath:
    def test_occupation_fractions_converge(self, birth_death, rng):
        times, states = birth_death.sample_path(rng, [1.0, 0.0, 0.0],
                                                horizon=20_000.0)
        # Time-weighted occupancy ~ stationary distribution.
        pi = birth_death.stationary_distribution()
        bounds = np.append(times, 20_000.0)
        occ = np.zeros(3)
        for s, t0, t1 in zip(states, bounds[:-1], bounds[1:]):
            occ[s] += t1 - t0
        occ /= occ.sum()
        assert occ == pytest.approx(pi, abs=0.02)

    def test_absorbing_state_ends_path(self, rng):
        Q = np.array([[-1.0, 1.0], [0.0, 0.0]])
        c = ContinuousTimeMarkovChain(Q)
        times, states = c.sample_path(rng, [1.0, 0.0], horizon=1e6)
        assert states[-1] == 1
