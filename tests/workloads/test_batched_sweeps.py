"""Continuation correctness of the batched sweep engine.

The batched engine (:mod:`repro.workloads.batched`) must be an
*implementation detail*: warm-started lockstep solves agree with cold
per-point solves to 1e-8 on any grid shape — non-monotone, duplicated,
or both — and a killed batched sweep resumed from its journal replays
the exact bytes an uninterrupted run produces.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ClassConfig, SystemConfig
from repro.resilience import faults
from repro.workloads import sweep

#: A pool of stable loads for ``tiny_config``; sampling with
#: replacement forces duplicate grid values, permutation strategies
#: force non-monotone orderings.
LOAD_POOL = (0.3, 0.45, 0.6, 0.75, 0.9, 1.05)


def tiny_config(lam):
    return SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="only"),
    ))


def _assert_points_close(batched, serial, tol=1e-8):
    assert len(batched.points) == len(serial.points)
    for bp, sp in zip(batched.points, serial.points):
        assert bp.value == sp.value
        assert bp.error is None and sp.error is None
        for b, s in zip(bp.mean_jobs + bp.mean_response_time,
                        sp.mean_jobs + sp.mean_response_time):
            assert b == pytest.approx(s, rel=tol, abs=tol)


class TestContinuationParity:
    @given(grid=st.lists(st.sampled_from(LOAD_POOL),
                         min_size=3, max_size=6))
    @settings(max_examples=10, deadline=None)
    def test_matches_cold_per_point_on_any_grid(self, grid):
        """Warm-started batched results track cold solves to 1e-8 on
        grids with duplicates and arbitrary (non-monotone) order."""
        batched = sweep("lambda", grid, tiny_config, batch=3)
        serial = sweep("lambda", grid, tiny_config)
        _assert_points_close(batched, serial)

    def test_duplicate_values_solved_once_identical(self):
        """Duplicated grid values yield byte-identical point metrics."""
        res = sweep("lambda", [0.9, 0.3, 0.9, 0.3], tiny_config, batch=4)
        a, b, c, d = res.points
        assert a.mean_jobs == c.mean_jobs
        assert a.mean_response_time == c.mean_response_time
        assert b.mean_jobs == d.mean_jobs

    def test_non_monotone_grid_keeps_input_order(self):
        grid = [0.9, 0.3, 0.6]
        res = sweep("lambda", grid, tiny_config, batch=3)
        assert res.values() == grid
        cold = sweep("lambda", grid, tiny_config)
        _assert_points_close(res, cold)

    def test_provenance_fields(self):
        """Batched points carry wall time and warm/cold status; chunk
        heads start cold, tails warm-start from the head."""
        grid = [0.3, 0.45, 0.6, 0.75]
        res = sweep("lambda", grid, tiny_config, batch=4)
        assert all(p.solve_seconds is not None and p.solve_seconds >= 0
                   for p in res.points)
        warms = [p.warm for p in res.points]  # grid order == sorted here
        assert warms[0] is False
        assert all(w is True for w in warms[1:])
        serial = sweep("lambda", grid[:2], tiny_config)
        assert all(p.solve_seconds is not None for p in serial.points)
        assert all(p.warm is None for p in serial.points)


class TestKillAndResume:
    GRID = [0.3, 0.45, 0.6, 0.75, 0.9, 1.05]

    def test_killed_batched_sweep_resumes_byte_identical(self, tmp_path):
        clean_path = tmp_path / "clean.jsonl"
        crash_path = tmp_path / "crash.jsonl"
        clean = sweep("lambda", self.GRID, tiny_config, batch=3,
                      checkpoint=clean_path)

        # Kill inside the second chunk: fault sites fire before the
        # chunk solves, so the whole second chunk is lost and only the
        # first chunk's three points survive in the journal.
        with faults.inject("sweeps.point", raises=KeyboardInterrupt,
                           keys=(0.9,)):
            with pytest.raises(KeyboardInterrupt):
                sweep("lambda", self.GRID, tiny_config, batch=3,
                      checkpoint=crash_path)
        resumed = sweep("lambda", self.GRID, tiny_config, batch=3,
                        checkpoint=crash_path)

        assert resumed.resumed == 3
        assert resumed.points == clean.points
        # Byte-level: every numeric field matches exactly — the
        # resumed tail re-solved from the journaled continuation seed.
        for rp, cp in zip(resumed.points, clean.points):
            assert rp.mean_jobs == cp.mean_jobs
            assert rp.mean_response_time == cp.mean_response_time
            assert rp.iterations == cp.iterations
        assert resumed.render() == clean.render()
        # The journals agree record-for-record once run-local probe
        # timings (measured wall seconds, never identical across runs)
        # are set aside.
        strip = lambda rec: {k: v for k, v in rec.items() if k != "probe"}
        clean_recs = [strip(json.loads(ln)) for ln in
                      clean_path.read_text().splitlines()]
        crash_recs = [strip(json.loads(ln)) for ln in
                      crash_path.read_text().splitlines()]
        assert crash_recs == clean_recs

    def test_resume_skips_all_solves(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", self.GRID, tiny_config, batch=3, checkpoint=path)
        with faults.inject("sweeps.point", raises=RuntimeError) as spec:
            second = sweep("lambda", self.GRID, tiny_config, batch=3,
                           checkpoint=path)
        assert spec.fired == 0
        assert second.resumed == len(self.GRID)
