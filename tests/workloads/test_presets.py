"""Tests for the paper's figure presets."""

import pytest

from repro.errors import ValidationError
from repro.workloads import (
    fig1_example_config,
    fig23_config,
    fig4_config,
    fig5_config,
    sp2_like_config,
)


class TestFig23:
    def test_paper_topology(self):
        cfg = fig23_config(0.4, 2.0)
        assert cfg.processors == 8
        assert cfg.num_classes == 4
        for p in range(4):
            assert cfg.classes[p].partition_size == 2 ** p
            assert cfg.partitions(p) == 2 ** (3 - p)

    def test_service_rate_ratios(self):
        cfg = fig23_config(0.4, 2.0)
        mus = [c.service_rate for c in cfg.classes]
        assert mus == pytest.approx([0.5, 1.0, 2.0, 4.0])

    def test_rho_equals_lambda(self):
        # The paper's "lambda = 0.4 therefore rho = 0.4".
        for lam in (0.4, 0.6, 0.9):
            assert fig23_config(lam, 1.0).utilization() == pytest.approx(lam)

    def test_quantum_mean_applied_to_all(self):
        cfg = fig23_config(0.4, 3.5)
        assert all(c.quantum.mean == pytest.approx(3.5) for c in cfg.classes)

    def test_overhead_default(self):
        cfg = fig23_config(0.4, 1.0)
        assert all(c.overhead.mean == pytest.approx(0.01) for c in cfg.classes)

    def test_erlang_quanta_option(self):
        cfg = fig23_config(0.4, 2.0, quantum_stages=4)
        assert cfg.classes[0].quantum.order == 4
        assert cfg.classes[0].quantum.scv == pytest.approx(0.25)


class TestFig4:
    def test_common_service_rate(self):
        cfg = fig4_config(3.0)
        assert all(c.service_rate == pytest.approx(3.0) for c in cfg.classes)

    def test_quantum_and_arrival_fixed(self):
        cfg = fig4_config(3.0)
        assert all(c.quantum.mean == pytest.approx(5.0) for c in cfg.classes)
        assert all(c.arrival_rate == pytest.approx(0.6) for c in cfg.classes)


class TestFig5:
    def test_fraction_split(self):
        cfg = fig5_config(focus_class=1, fraction=0.5,
                          cycle_quantum_budget=8.0)
        assert cfg.classes[1].quantum.mean == pytest.approx(4.0)
        for p in (0, 2, 3):
            assert cfg.classes[p].quantum.mean == pytest.approx(4.0 / 3.0)

    def test_total_budget_conserved(self):
        cfg = fig5_config(focus_class=2, fraction=0.3,
                          cycle_quantum_budget=10.0)
        assert sum(c.quantum.mean for c in cfg.classes) == pytest.approx(10.0)

    def test_rho_is_0_6(self):
        assert fig5_config(0, 0.5).utilization() == pytest.approx(0.6)

    def test_fraction_bounds(self):
        with pytest.raises(ValidationError):
            fig5_config(0, 0.0)
        with pytest.raises(ValidationError):
            fig5_config(0, 1.0)
        with pytest.raises(ValidationError):
            fig5_config(7, 0.5)


class TestOtherPresets:
    def test_fig1_has_erlang_quantum(self):
        cfg = fig1_example_config(quantum_stages=4)
        assert cfg.classes[0].quantum.order == 4
        assert cfg.partitions(0) == 3   # "3 servers" in the paper's figure

    def test_sp2_like_is_stable_mix(self):
        cfg = sp2_like_config()
        assert cfg.num_classes == 2
        assert cfg.utilization() < 1.0
        assert cfg.class_names == ("interactive", "batch")
