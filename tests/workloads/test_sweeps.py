"""Tests for the sweep driver."""

import math

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.workloads import sweep


def tiny_config(lam):
    return SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="only"),
    ))


class TestSweep:
    def test_runs_grid(self):
        res = sweep("lambda", [0.2, 0.5, 0.8], tiny_config)
        assert res.values() == [0.2, 0.5, 0.8]
        assert len(res.series(0)) == 3
        assert all(not math.isnan(v) for v in res.series(0))

    def test_series_monotone_in_load(self):
        res = sweep("lambda", [0.2, 0.5, 0.9, 1.2], tiny_config)
        ys = res.series(0)
        assert ys[0] < ys[1] < ys[2] < ys[3]

    def test_unstable_point_recorded_not_raised(self):
        res = sweep("lambda", [0.5, 5.0], tiny_config)
        assert res.points[0].error is None
        assert res.points[1].error is not None
        assert math.isnan(res.series(0)[1])

    def test_skip_errors_false_raises(self):
        from repro.errors import UnstableSystemError
        with pytest.raises(UnstableSystemError):
            sweep("lambda", [5.0], tiny_config, skip_errors=False)

    def test_heavy_traffic_only_runs_one_iteration(self):
        res = sweep("lambda", [0.5], tiny_config, heavy_traffic_only=True)
        assert res.points[0].iterations == 1

    def test_render_and_rows(self):
        res = sweep("lambda", [0.3], tiny_config)
        rows = res.to_rows()
        assert rows[0] == ["lambda", "N[only]"]
        text = res.render()
        assert "lambda" in text and "N[only]" in text

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            sweep("lambda", [], tiny_config)
