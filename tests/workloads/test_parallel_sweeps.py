"""Parallel sweeps: bit-identical to serial, checkpoint-composable."""

import warnings

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import UnstableSystemError
from repro.resilience import faults
from repro.workloads import sweep


def tiny_config(lam):
    return SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="only"),
    ))


GRID = [0.2, 0.5, 0.8, 1.1]


@pytest.fixture(scope="module")
def serial():
    return sweep("lambda", GRID, tiny_config)


class TestParallelEqualsSerial:
    def test_points_bit_identical(self, serial):
        par = sweep("lambda", GRID, tiny_config, workers=2)
        assert par.class_names == serial.class_names
        assert par.points == serial.points

    def test_single_worker_is_serial_path(self, serial):
        par = sweep("lambda", GRID, tiny_config, workers=1)
        assert par.points == serial.points

    def test_parallel_checkpoint_resume(self, serial, tmp_path):
        path = tmp_path / "par.jsonl"
        first = sweep("lambda", GRID, tiny_config, workers=2,
                      checkpoint=path)
        assert first.points == serial.points
        resumed = sweep("lambda", GRID, tiny_config, workers=2,
                        checkpoint=path)
        assert resumed.resumed == len(GRID)
        assert resumed.points == serial.points

    def test_killed_parallel_sweep_resumes_to_serial(self, serial, tmp_path):
        path = tmp_path / "crash.jsonl"
        with faults.inject("sweeps.point", raises=KeyboardInterrupt,
                           keys=(GRID[3],)):
            with pytest.raises(KeyboardInterrupt):
                sweep("lambda", GRID, tiny_config, workers=2,
                      checkpoint=path)
        resumed = sweep("lambda", GRID, tiny_config, workers=2,
                        checkpoint=path)
        assert resumed.points == serial.points

    def test_error_points_recorded(self):
        par = sweep("lambda", [0.2, 5.0], tiny_config, workers=2)
        assert par.points[0].error is None
        assert par.points[1].error is not None
        assert "UnstableSystemError" in par.points[1].error

    def test_skip_errors_false_raises_in_parent(self):
        with pytest.raises(UnstableSystemError):
            sweep("lambda", [0.2, 5.0], tiny_config, workers=2,
                  skip_errors=False)


class TestStalePoints:
    def test_stale_counted_and_warned(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", GRID, tiny_config, checkpoint=path)
        with pytest.warns(UserWarning, match="no longer on the grid"):
            narrowed = sweep("lambda", GRID[:2], tiny_config,
                             checkpoint=path)
        assert narrowed.stale == 2
        assert narrowed.resumed == 2
        assert narrowed.values() == GRID[:2]

    def test_no_stale_on_exact_resume(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        sweep("lambda", GRID, tiny_config, checkpoint=path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            again = sweep("lambda", GRID, tiny_config, checkpoint=path)
        assert again.stale == 0
        assert again.resumed == len(GRID)

    def test_stale_zero_without_checkpoint(self):
        res = sweep("lambda", GRID[:2], tiny_config)
        assert res.stale == 0
