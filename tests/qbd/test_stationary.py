"""Tests for the full QBD stationary solution (Theorem 4.2 + eq. 37)."""

import numpy as np
import pytest

from repro.errors import UnstableSystemError, ValidationError
from repro.qbd import QBDProcess, solve_qbd
from repro.utils.linalg import solve_stationary_gth


def mm1_process(lam=0.5, mu=1.0):
    boundary = (
        (np.array([[-lam]]), np.array([[lam]])),
        (np.array([[mu]]), np.array([[-(lam + mu)]])),
    )
    return QBDProcess(boundary=boundary,
                      A0=[[lam]], A1=[[-(lam + mu)]], A2=[[mu]])


def mmc_process(lam, mu, c):
    """M/M/c as a QBD with boundary levels 0..c."""
    boundary = []
    for i in range(c + 1):
        row = [None] * (c + 1)
        down = min(i, c) * mu
        if i > 0:
            row[i - 1] = np.array([[down]])
        diag = -(lam + down) if i < c else -(lam + c * mu)
        row[i] = np.array([[diag]])
        if i < c:
            row[i + 1] = np.array([[lam]])
        boundary.append(tuple(row))
    return QBDProcess(boundary=tuple(boundary), A0=[[lam]],
                      A1=[[-(lam + c * mu)]], A2=[[c * mu]])


def mmc_mean_jobs(lam, mu, c):
    import math
    rho = lam / (c * mu)
    a = lam / mu
    p0 = 1.0 / (sum(a ** k / math.factorial(k) for k in range(c))
                + a ** c / (math.factorial(c) * (1 - rho)))
    lq = p0 * a ** c * rho / (math.factorial(c) * (1 - rho) ** 2)
    return lq + a


class TestMM1:
    @pytest.mark.parametrize("rho", [0.1, 0.5, 0.9, 0.98])
    def test_geometric_solution(self, rho):
        sol = solve_qbd(mm1_process(rho, 1.0))
        assert sol.level_mass(0) == pytest.approx(1 - rho, abs=1e-9)
        assert sol.mean_level == pytest.approx(rho / (1 - rho), rel=1e-8)
        assert sol.variance_level == pytest.approx(rho / (1 - rho) ** 2,
                                                   rel=1e-7)

    def test_level_vectors_geometric(self):
        rho = 0.6
        sol = solve_qbd(mm1_process(rho, 1.0))
        for i in range(8):
            assert sol.level_mass(i) == pytest.approx((1 - rho) * rho ** i,
                                                      abs=1e-10)

    def test_tail_probability(self):
        rho = 0.7
        sol = solve_qbd(mm1_process(rho, 1.0))
        for k in range(6):
            assert sol.tail_probability(k) == pytest.approx(rho ** (k + 1),
                                                            abs=1e-10)

    def test_total_mass(self):
        sol = solve_qbd(mm1_process())
        assert sol.total_mass_check() == pytest.approx(1.0, abs=1e-10)

    def test_unstable_raises(self):
        with pytest.raises(UnstableSystemError):
            solve_qbd(mm1_process(1.2, 1.0))

    def test_negative_level_rejected(self):
        sol = solve_qbd(mm1_process())
        with pytest.raises(ValidationError):
            sol.level(-1)


class TestMMC:
    @pytest.mark.parametrize("lam,mu,c", [
        (1.5, 1.0, 2), (3.0, 1.0, 4), (5.0, 0.8, 8),
    ])
    def test_matches_erlang_c(self, lam, mu, c):
        sol = solve_qbd(mmc_process(lam, mu, c))
        assert sol.mean_level == pytest.approx(mmc_mean_jobs(lam, mu, c),
                                               rel=1e-9)

    def test_marginal_sums_to_one(self):
        sol = solve_qbd(mmc_process(3.0, 1.0, 4))
        marg = sol.level_marginal(200)
        assert marg.sum() == pytest.approx(1.0, abs=1e-8)

    def test_boundary_matches_birth_death(self):
        lam, mu, c = 2.0, 1.0, 3
        sol = solve_qbd(mmc_process(lam, mu, c))
        # Birth-death ratios: pi_{i+1} = pi_i * lam / ((i+1) mu), i < c.
        for i in range(c):
            ratio = sol.level_mass(i + 1) / sol.level_mass(i)
            assert ratio == pytest.approx(lam / ((i + 1) * mu), rel=1e-8)


class TestAgainstTruncatedSolve:
    def test_phase_qbd_matches_direct_truncation(self):
        """Dense 2-phase QBD vs GTH on a 400-level truncation."""
        lam0, lam1, mu, sw = 0.5, 0.2, 1.0, 0.3
        A0 = np.diag([lam0, lam1])
        A2 = np.diag([mu, mu])
        A1 = np.array([[-(lam0 + mu + sw), sw],
                       [sw, -(lam1 + mu + sw)]])
        # Boundary level 0: no service.
        B00 = np.array([[-(lam0 + sw), sw], [sw, -(lam1 + sw)]])
        B01 = A0.copy()
        B10 = A2.copy()
        B11 = A1.copy()
        proc = QBDProcess(boundary=((B00, B01), (B10, B11)),
                          A0=A0, A1=A1, A2=A2)
        sol = solve_qbd(proc)
        Q, tags = proc.truncated_generator(400)
        pi = solve_stationary_gth(Q)
        # Compare first 10 levels state by state.
        idx = 0
        for (lvl, ph) in tags[:20]:
            assert pi[idx] == pytest.approx(sol.level(lvl)[ph], abs=1e-9)
            idx += 1
        # Mean level agrees.
        mean_direct = sum(lvl * pi[i] for i, (lvl, ph) in enumerate(tags))
        assert sol.mean_level == pytest.approx(mean_direct, rel=1e-6)

    def test_second_moment_against_truncation(self):
        sol = solve_qbd(mm1_process(0.5, 1.0))
        rho = 0.5
        # E[N^2] for M/M/1 geometric: rho(1+rho)/(1-rho)^2.
        assert sol.second_moment_level == pytest.approx(
            rho * (1 + rho) / (1 - rho) ** 2, rel=1e-9)


class TestRepeatingPhaseMarginal:
    def test_sums_to_tail_mass(self):
        sol = solve_qbd(mmc_process(3.0, 1.0, 4))
        agg = sol.repeating_phase_marginal()
        assert agg.sum() == pytest.approx(
            sum(sol.level_mass(i) for i in range(4, 300)), abs=1e-8)
