"""Tests for banded-process re-blocking (batch-arrival machinery)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qbd import solve_qbd
from repro.qbd.banded import BandedLevelProcess, reblock
from repro.utils.linalg import solve_stationary_gth


def batch_mm1(lam=0.3, mu=1.0, pmf=(0.5, 0.3, 0.2)):
    """M^[X]/M/1: batches of size 1..len(pmf) at rate lam, service mu."""
    K = len(pmf)

    def block(i, j):
        if j == i - 1 and i >= 1:
            return np.array([[mu]])
        if i < j <= i + K:
            return np.array([[lam * pmf[j - i - 1]]])
        if j == i:
            rate = lam + (mu if i >= 1 else 0.0)
            return np.array([[-rate]])
        return None

    return BandedLevelProcess(block=block, level_dim=lambda i: 1,
                              max_jump=K, regular_from=1)


def truncated_reference(banded, levels=400):
    """Direct GTH solve of the truncated banded generator."""
    K = banded.max_jump
    Q = np.zeros((levels, levels))
    for i in range(levels):
        for j in range(max(0, i - 1), min(levels - 1, i + K) + 1):
            if i == j:
                continue
            blk = banded.block(i, j)
            if blk is not None:
                Q[i, j] = blk[0, 0]
    np.fill_diagonal(Q, -Q.sum(axis=1))
    return solve_stationary_gth(Q)


class TestReblock:
    def test_structure_valid(self):
        process, index = reblock(batch_mm1())
        # QBDProcess construction validates rows; spot-check shapes.
        assert process.phase_dim == 3          # K * d = 3 * 1
        assert index.regular_dim == 1

    def test_matches_truncated_solution(self):
        banded = batch_mm1()
        process, index = reblock(banded)
        sol = solve_qbd(process)
        pi_ref = truncated_reference(banded)
        for lvl in range(12):
            got = float(index.marginal(sol, lvl).sum())
            assert got == pytest.approx(pi_ref[lvl], abs=1e-9)

    def test_mean_level_matches(self):
        banded = batch_mm1(lam=0.35, mu=1.0, pmf=(0.4, 0.6))
        process, index = reblock(banded)
        sol = solve_qbd(process)
        pi_ref = truncated_reference(banded)
        ref_mean = float(np.arange(pi_ref.size) @ pi_ref)
        assert index.mean_level(sol) == pytest.approx(ref_mean, rel=1e-8)

    def test_single_batch_reduces_to_plain_mm1(self):
        banded = batch_mm1(lam=0.6, mu=1.0, pmf=(1.0,))
        process, index = reblock(banded)
        sol = solve_qbd(process)
        rho = 0.6
        assert index.mean_level(sol) == pytest.approx(rho / (1 - rho),
                                                      rel=1e-8)
        assert float(index.marginal(sol, 0).sum()) == pytest.approx(1 - rho,
                                                                    abs=1e-9)

    def test_batch_queue_worse_than_poisson_at_equal_load(self):
        # Same job rate, batched: more variance -> longer queues.
        m1 = _mean(batch_mm1(lam=0.6, mu=1.0, pmf=(1.0,)))
        m2 = _mean(batch_mm1(lam=0.3, mu=1.0, pmf=(0.0, 1.0)))  # pairs
        assert m2 > m1

    def test_locate_roundtrip(self):
        banded = batch_mm1()
        _, index = reblock(banded)
        seen = set()
        for lvl in range(10):
            J, sl = index.locate(lvl)
            seen.add((J, sl.start, sl.stop))
        assert len(seen) == 10   # distinct coordinates

    def test_negative_level_rejected(self):
        _, index = reblock(batch_mm1())
        with pytest.raises(ValidationError):
            index.locate(-1)

    def test_irregular_dims_rejected(self):
        def block(i, j):
            return batch_mm1().block(i, j)

        banded = BandedLevelProcess(
            block=block, level_dim=lambda i: 1 if i != 3 else 2,
            max_jump=3, regular_from=1)
        with pytest.raises(ValidationError, match="phase dim"):
            reblock(banded)


def _solve(banded):
    process, index = reblock(banded)
    return index, solve_qbd(process)


# Patch: ReblockedIndex.mean_level is an instance method; adapt helper.
def _mean(banded):
    index, sol = _solve(banded)
    return index.mean_level(sol)
