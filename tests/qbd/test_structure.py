"""Tests for QBDProcess structural validation."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qbd import QBDProcess


def mm1_process(lam=0.5, mu=1.0):
    boundary = (
        (np.array([[-lam]]), np.array([[lam]])),
        (np.array([[mu]]), np.array([[-(lam + mu)]])),
    )
    return QBDProcess(boundary=boundary,
                      A0=[[lam]], A1=[[-(lam + mu)]], A2=[[mu]])


class TestValidation:
    def test_valid_mm1(self):
        proc = mm1_process()
        assert proc.boundary_levels == 1
        assert proc.phase_dim == 1

    def test_rejects_mismatched_repeating_shapes(self):
        with pytest.raises(ValidationError, match="match A1"):
            QBDProcess(boundary=((np.array([[-0.5]]), np.array([[0.5]])),
                                 (np.array([[1.0]]), np.array([[-1.5]]))),
                       A0=[[0.5, 0.0]], A1=[[-1.5]], A2=[[1.0]])

    def test_rejects_negative_A0(self):
        with pytest.raises(ValidationError, match="non-negative"):
            QBDProcess(boundary=((np.array([[0.5]]), np.array([[-0.5]])),
                                 (np.array([[1.0]]), np.array([[-1.5]]))),
                       A0=[[-0.5]], A1=[[-0.5]], A2=[[1.0]])

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValidationError, match="sums to"):
            QBDProcess(boundary=((np.array([[-1.0]]), np.array([[0.5]])),
                                 (np.array([[1.0]]), np.array([[-1.5]]))),
                       A0=[[0.5]], A1=[[-1.5]], A2=[[1.0]])

    def test_rejects_wrong_last_level_dim(self):
        boundary = (
            (np.array([[-0.5, 0.0], [0.0, -0.5]]),
             np.array([[0.5], [0.5]])),
            (np.array([[1.0, 0.0]]), np.array([[-1.5]])),
        )
        # Repeating blocks 2x2 but last boundary level is 1-dimensional.
        with pytest.raises(ValidationError, match="phase dim"):
            QBDProcess(boundary=boundary,
                       A0=np.eye(2) * 0.5,
                       A1=np.array([[-1.5, 0.0], [0.0, -1.5]]),
                       A2=np.eye(2))

    def test_rejects_nonadjacent_blocks(self):
        lam, mu = 0.5, 1.0
        boundary = (
            (np.array([[-lam]]), np.array([[lam]]), np.array([[0.1]])),
            (np.array([[mu]]), np.array([[-(lam + mu)]]), np.array([[lam]])),
            (None, np.array([[mu]]), np.array([[-(lam + mu)]])),
        )
        with pytest.raises(ValidationError, match="non-adjacent"):
            QBDProcess(boundary=boundary, A0=[[lam]],
                       A1=[[-(lam + mu)]], A2=[[mu]])

    def test_missing_diagonal_block(self):
        with pytest.raises(ValidationError, match="diagonal"):
            QBDProcess(boundary=((None, np.array([[0.5]])),
                                 (np.array([[1.0]]), np.array([[-1.5]]))),
                       A0=[[0.5]], A1=[[-1.5]], A2=[[1.0]])


class TestAccessors:
    def test_block_lookup(self):
        proc = mm1_process(0.5, 1.0)
        assert proc.block(0, 1) == pytest.approx(np.array([[0.5]]))
        assert proc.block(5, 6) == pytest.approx(np.array([[0.5]]))   # A0
        assert proc.block(6, 5) == pytest.approx(np.array([[1.0]]))   # A2
        assert proc.block(3, 3) == pytest.approx(np.array([[-1.5]]))  # A1
        assert proc.block(0, 2) is None
        assert proc.block(-1, 0) is None

    def test_boundary_dims(self):
        assert mm1_process().boundary_dims() == [1, 1]


class TestTruncatedGenerator:
    def test_rows_sum_to_zero(self):
        Q, tags = mm1_process().truncated_generator(10)
        assert np.allclose(Q.sum(axis=1), 0.0)
        assert len(tags) == 10

    def test_tags_are_level_phase(self):
        _, tags = mm1_process().truncated_generator(4)
        assert tags == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_requires_repeating_level(self):
        with pytest.raises(ValidationError):
            mm1_process().truncated_generator(2)

    def test_truncated_stationary_approximates_mm1(self):
        from repro.utils.linalg import solve_stationary_gth
        lam, mu = 0.5, 1.0
        Q, _ = mm1_process(lam, mu).truncated_generator(60)
        pi = solve_stationary_gth(Q)
        rho = lam / mu
        expect = (1 - rho) * rho ** np.arange(60)
        assert pi == pytest.approx(expect, abs=1e-9)
