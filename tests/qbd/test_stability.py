"""Tests for the Theorem 4.4 drift test."""

import numpy as np
import pytest

from repro.errors import ReducibleChainError
from repro.qbd.stability import drift, is_stable


def mm1_blocks(lam, mu):
    return (np.array([[lam]]), np.array([[-(lam + mu)]]), np.array([[mu]]))


class TestDriftScalar:
    def test_stable(self):
        report = drift(*mm1_blocks(0.5, 1.0))
        assert report.stable
        assert report.up == pytest.approx(0.5)
        assert report.down == pytest.approx(1.0)
        assert report.traffic_intensity == pytest.approx(0.5)

    def test_unstable(self):
        assert not is_stable(*mm1_blocks(1.2, 1.0))

    def test_critical_is_unstable(self):
        # rho = 1 exactly: null recurrent, not positive recurrent.
        report = drift(*mm1_blocks(1.0, 1.0))
        assert not report.stable
        assert report.drift == pytest.approx(0.0)


class TestDriftPhases:
    def test_weighted_by_phase_stationary(self):
        # Phase 0 arrives fast, phase 1 slow; switching 50/50.
        A0 = np.diag([1.5, 0.1])
        A2 = np.diag([1.0, 1.0])
        sw = 1.0
        A1 = np.array([[-(1.5 + 1.0 + sw), sw],
                       [sw, -(0.1 + 1.0 + sw)]])
        report = drift(A0, A1, A2)
        assert report.phase_stationary == pytest.approx([0.5, 0.5])
        assert report.up == pytest.approx(0.8)
        assert report.stable

    def test_drift_equals_sp_R_condition(self):
        # Stability via drift must agree with sp(R) < 1.
        from repro.qbd.rmatrix import solve_R
        from repro.utils.linalg import spectral_radius
        A0 = np.diag([0.7, 0.3])
        A2 = np.diag([1.0, 0.8])
        sw = 0.4
        A1 = np.array([[-(0.7 + 1.0 + sw), sw],
                       [sw, -(0.3 + 0.8 + sw)]])
        report = drift(A0, A1, A2)
        R = solve_R(A0, A1, A2)
        assert report.stable == (spectral_radius(R) < 1.0)

    def test_reducible_phase_process_raises(self):
        # Two phases that never communicate.
        A0 = np.diag([0.5, 0.5])
        A2 = np.diag([1.0, 1.0])
        A1 = np.diag([-1.5, -1.5])
        with pytest.raises(ReducibleChainError):
            drift(A0, A1, A2)
