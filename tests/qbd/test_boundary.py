"""Tests for the dense boundary solve, including degenerate columns.

Unreachable boundary phases (no flux in or out) produce all-zero
columns in the balance system.  Before the zero-column guard they
poisoned the column equilibration with 0/0 NaNs; the regression tests
here pin such states to zero probability explicitly.
"""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qbd.boundary import solve_boundary
from repro.qbd.structure import QBDProcess


def process_with_dead_phase(lam=0.5, mu=1.0):
    """M/M/1 whose level-0 block carries an extra unreachable phase.

    The dead phase has no transitions in or out, so its balance column
    is identically zero; the solution must match plain M/M/1 with zero
    probability on the dead state.
    """
    B00 = np.array([[-lam, 0.0], [0.0, 0.0]])
    B01 = np.array([[lam], [0.0]])
    B10 = np.array([[mu, 0.0]])
    B11 = np.array([[-(lam + mu)]])
    return QBDProcess.from_trusted_blocks(
        boundary=((B00, B01), (B10, B11)),
        A0=np.array([[lam]]), A1=np.array([[-(lam + mu)]]),
        A2=np.array([[mu]]))


class TestDeadColumns:
    def test_dead_phase_gets_zero_probability(self):
        lam, mu = 0.5, 1.0
        rho = lam / mu
        proc = process_with_dead_phase(lam, mu)
        R = np.array([[rho]])
        pi = solve_boundary(proc, R, backend="dense")
        assert np.all(np.isfinite(pi[0])) and np.all(np.isfinite(pi[1]))
        assert pi[0][1] == pytest.approx(0.0, abs=1e-12)
        # The live states reproduce the M/M/1 geometric solution.
        assert pi[0][0] == pytest.approx(1 - rho, abs=1e-10)
        assert pi[1][0] == pytest.approx((1 - rho) * rho, abs=1e-10)

    def test_no_nans_under_equilibration(self):
        # Regression: the 0/0 column scaling used to propagate NaNs
        # into the primary solve before the lstsq fallback could mask
        # the damage.
        proc = process_with_dead_phase(0.3, 1.0)
        pi = solve_boundary(proc, np.array([[0.3]]), backend="dense")
        for v in pi:
            assert np.all(np.isfinite(v))
            assert np.all(v >= 0.0)

    def test_identically_zero_system_rejected(self):
        z = np.zeros((1, 1))
        proc = QBDProcess.from_trusted_blocks(
            boundary=((z, z), (z, z)), A0=z, A1=z, A2=z)
        with pytest.raises(ValidationError):
            solve_boundary(proc, np.zeros((1, 1)), backend="dense")
