"""Tests for the R/G matrix solvers."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.qbd.rmatrix import (
    METHODS,
    RSolveDiagnostics,
    r_from_g,
    solve_G,
    solve_R,
)
from repro.utils.linalg import spectral_radius


def mm1_blocks(lam, mu):
    return (np.array([[lam]]), np.array([[-(lam + mu)]]), np.array([[mu]]))


def phase_blocks():
    """A 2-phase QBD: MAP-modulated M/M/1-like process."""
    lam0, lam1 = 0.8, 0.2
    mu = 1.0
    sw = 0.3
    A0 = np.diag([lam0, lam1])
    A2 = np.diag([mu, mu])
    A1 = np.array([
        [-(lam0 + mu + sw), sw],
        [sw, -(lam1 + mu + sw)],
    ])
    return A0, A1, A2


class TestMM1:
    def test_r_is_rho(self):
        A0, A1, A2 = mm1_blocks(0.6, 1.0)
        for method in METHODS:
            R = solve_R(A0, A1, A2, method=method)
            assert R[0, 0] == pytest.approx(0.6, abs=1e-9)

    def test_g_is_one(self):
        # For a recurrent chain, G is stochastic; scalar case: G = 1.
        A0, A1, A2 = mm1_blocks(0.6, 1.0)
        G = solve_G(A0, A1, A2)
        assert G[0, 0] == pytest.approx(1.0, abs=1e-10)


class TestPhaseCase:
    @pytest.mark.parametrize("method", [m for m in METHODS
                                        if m != "logreduction"])
    def test_methods_agree(self, method):
        A0, A1, A2 = phase_blocks()
        R1 = solve_R(A0, A1, A2, method="logreduction")
        R2 = solve_R(A0, A1, A2, method=method)
        assert R1 == pytest.approx(R2, abs=1e-8)

    @pytest.mark.parametrize("method", METHODS)
    def test_quadratic_residual_all_methods(self, method):
        A0, A1, A2 = phase_blocks()
        R = solve_R(A0, A1, A2, method=method)
        residual = R @ R @ A2 + R @ A1 + A0
        assert np.max(np.abs(residual)) < 1e-9
        assert np.all(R >= 0)
        assert spectral_radius(R) < 1.0

    def test_quadratic_residual(self):
        A0, A1, A2 = phase_blocks()
        R = solve_R(A0, A1, A2)
        residual = R @ R @ A2 + R @ A1 + A0
        assert np.max(np.abs(residual)) < 1e-10

    def test_minimality_sp_below_one(self):
        A0, A1, A2 = phase_blocks()
        R = solve_R(A0, A1, A2)
        assert spectral_radius(R) < 1.0

    def test_r_nonnegative(self):
        A0, A1, A2 = phase_blocks()
        assert np.all(solve_R(A0, A1, A2) >= 0)

    def test_g_stochastic(self):
        A0, A1, A2 = phase_blocks()
        G = solve_G(A0, A1, A2)
        assert np.all(G >= 0)
        assert G.sum(axis=1) == pytest.approx([1.0, 1.0], abs=1e-9)

    def test_g_quadratic_residual(self):
        A0, A1, A2 = phase_blocks()
        G = solve_G(A0, A1, A2)
        residual = A0 @ G @ G + A1 @ G + A2
        assert np.max(np.abs(residual)) < 1e-9

    def test_r_from_g_consistency(self):
        A0, A1, A2 = phase_blocks()
        G = solve_G(A0, A1, A2)
        R = r_from_g(A0, A1, G)
        assert R == pytest.approx(solve_R(A0, A1, A2, method="substitution"),
                                  abs=1e-8)


class TestFailureModes:
    def test_unknown_method(self):
        A0, A1, A2 = mm1_blocks(0.5, 1.0)
        with pytest.raises(ValidationError, match="unknown"):
            solve_R(A0, A1, A2, method="newton")

    def test_unstable_minimal_root_is_one(self):
        # For rho > 1 the quadratic's roots are {1, rho}; the minimal
        # non-negative solution is 1 and sp(R) = 1 flags instability.
        A0, A1, A2 = mm1_blocks(1.5, 1.0)
        R = solve_R(A0, A1, A2, method="substitution", tol=1e-10)
        assert R[0, 0] == pytest.approx(1.0, abs=1e-4)

    def test_no_diagonal_rejected(self):
        with pytest.raises(ValidationError):
            solve_G(np.array([[0.0]]), np.array([[0.0]]), np.array([[0.0]]))


class TestReturnInfo:
    """The success path keeps its diagnostics (iterations/residual)."""

    @pytest.mark.parametrize("method", METHODS)
    def test_info_populated_for_all_methods(self, method):
        A0, A1, A2 = phase_blocks()
        R, info = solve_R(A0, A1, A2, method=method, return_info=True)
        assert isinstance(info, RSolveDiagnostics)
        assert info.method == method
        assert info.iterations >= (0 if method == "spectral" else 1)
        assert 0.0 <= info.residual < 1e-8
        assert info.refined is False

    def test_default_call_shape_unchanged(self):
        A0, A1, A2 = phase_blocks()
        R = solve_R(A0, A1, A2)
        assert isinstance(R, np.ndarray) and R.shape == (2, 2)

    def test_residual_matches_quadratic_defect(self):
        A0, A1, A2 = phase_blocks()
        R, info = solve_R(A0, A1, A2, return_info=True)
        defect = np.max(np.abs(R @ R @ A2 + R @ A1 + A0))
        assert info.residual == pytest.approx(defect, rel=1e-6, abs=1e-15)

    def test_warm_start_reports_refined(self):
        A0, A1, A2 = phase_blocks()
        R0 = solve_R(A0, A1, A2)
        R, info = solve_R(A0, A1, A2, R0=R0, return_info=True)
        assert info.refined is True
        # Newton steps from an already-converged iterate: possibly zero.
        assert info.iterations >= 0
        assert np.allclose(R, R0, atol=1e-8)

    def test_solve_g_return_info(self):
        A0, A1, A2 = phase_blocks()
        G, iterations = solve_G(A0, A1, A2, return_info=True)
        assert iterations >= 1
        assert np.allclose(G.sum(axis=1), 1.0, atol=1e-8)
