"""Tests for caudal-characteristic (tail-decay) analysis."""

import numpy as np
import pytest

from repro.qbd import QBDProcess, caudal_characteristic, decay_rate, solve_qbd


def mm1_solution(rho=0.7):
    lam, mu = rho, 1.0
    boundary = (
        (np.array([[-lam]]), np.array([[lam]])),
        (np.array([[mu]]), np.array([[-(lam + mu)]])),
    )
    proc = QBDProcess(boundary=boundary, A0=[[lam]],
                      A1=[[-(lam + mu)]], A2=[[mu]])
    return solve_qbd(proc)


def phase_solution():
    lam0, lam1, mu, sw = 0.5, 0.2, 1.0, 0.3
    A0 = np.diag([lam0, lam1])
    A2 = np.diag([mu, mu])
    A1 = np.array([[-(lam0 + mu + sw), sw],
                   [sw, -(lam1 + mu + sw)]])
    B00 = np.array([[-(lam0 + sw), sw], [sw, -(lam1 + sw)]])
    proc = QBDProcess(boundary=((B00, A0.copy()), (A2.copy(), A1.copy())),
                      A0=A0, A1=A1, A2=A2)
    return solve_qbd(proc)


class TestDecayRate:
    def test_mm1_eta_is_rho(self):
        assert decay_rate(mm1_solution(0.7).R) == pytest.approx(0.7)

    def test_phase_case_in_unit_interval(self):
        eta = decay_rate(phase_solution().R)
        assert 0 < eta < 1


class TestCaudalCharacteristic:
    def test_mm1_exact(self):
        sol = mm1_solution(0.6)
        cc = caudal_characteristic(sol)
        assert cc.eta == pytest.approx(0.6)
        # M/M/1: P(N > k) = rho^{k+1} exactly.
        for k in (0, 2, 5, 10):
            assert cc.tail_estimate(k) == pytest.approx(0.6 ** (k + 1),
                                                        rel=1e-9)

    def test_asymptotics_match_true_tail(self):
        sol = phase_solution()
        cc = caudal_characteristic(sol)
        # Ratio estimate/truth -> 1 as k grows.
        for k in (20, 40):
            true = sol.tail_probability(k)
            est = cc.tail_estimate(k)
            assert est == pytest.approx(true, rel=1e-3)

    def test_tail_ratio_is_eta(self):
        sol = phase_solution()
        cc = caudal_characteristic(sol)
        r = sol.tail_probability(31) / sol.tail_probability(30)
        assert r == pytest.approx(cc.eta, rel=1e-6)

    def test_quantile_level(self):
        sol = mm1_solution(0.5)
        cc = caudal_characteristic(sol)
        k = cc.quantile_level(1e-6)
        assert cc.tail_estimate(k) <= 1e-6 < cc.tail_estimate(k - 1)

    def test_quantile_level_bounds(self):
        cc = caudal_characteristic(mm1_solution(0.5))
        import pytest as _pytest
        with _pytest.raises(Exception):
            cc.quantile_level(0.0)

    def test_perron_vectors_positive(self):
        cc = caudal_characteristic(phase_solution())
        assert np.all(cc.left_vector > -1e-12)
        assert np.all(cc.right_vector > -1e-12)
