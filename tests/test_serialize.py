"""Tests for configuration (de)serialization."""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.phasetype import coxian, erlang, exponential, hyperexponential
from repro.serialize import (
    load_system,
    phase_type_from_dict,
    phase_type_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
)


class TestPhaseTypeRoundTrip:
    @pytest.mark.parametrize("dist", [
        exponential(2.0),
        erlang(3, mean=1.5),
        hyperexponential([0.3, 0.7], [0.5, 2.0]),
        coxian([2.0, 1.0], [0.4, 1.0]),
    ], ids=["exp", "erlang", "h2", "cox2"])
    def test_raw_roundtrip(self, dist):
        again = phase_type_from_dict(phase_type_to_dict(dist))
        assert np.allclose(again.alpha, dist.alpha)
        assert np.allclose(again.S, dist.S)

    def test_named_kinds(self):
        d = phase_type_from_dict({"kind": "erlang", "k": 4, "mean": 2.0})
        assert d.order == 4 and d.mean == pytest.approx(2.0)
        d = phase_type_from_dict({"kind": "exponential", "rate": 0.5})
        assert d.mean == pytest.approx(2.0)
        d = phase_type_from_dict({"kind": "hyperexponential",
                                  "probs": [0.5, 0.5], "rates": [1, 2]})
        assert d.order == 2
        d = phase_type_from_dict({"kind": "coxian", "rates": [1.0, 2.0],
                                  "completion_probs": [0.3, 1.0]})
        assert d.order == 2

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown"):
            phase_type_from_dict({"kind": "weibull"})

    def test_missing_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            phase_type_from_dict({"rate": 1.0})


class TestSystemRoundTrip:
    def test_roundtrip_preserves_solution(self, two_class_config):
        again = system_from_dict(system_to_dict(two_class_config))
        assert again.processors == two_class_config.processors
        assert again.class_names == two_class_config.class_names
        from repro.core import GangSchedulingModel
        a = GangSchedulingModel(two_class_config).solve_heavy_traffic()
        b = GangSchedulingModel(again).solve_heavy_traffic()
        assert a.mean_jobs() == pytest.approx(b.mean_jobs(), rel=1e-12)

    def test_json_serializable(self, two_class_config):
        text = json.dumps(system_to_dict(two_class_config))
        assert "processors" in text

    def test_file_roundtrip(self, two_class_config, tmp_path):
        path = tmp_path / "system.json"
        save_system(two_class_config, path)
        again = load_system(path)
        assert again.utilization() == pytest.approx(
            two_class_config.utilization())

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            load_system(path)

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            system_from_dict({"processors": 4, "classes": [{"name": "x"}]})

    def test_policy_default(self, two_class_config):
        data = system_to_dict(two_class_config)
        del data["empty_queue_policy"]
        assert system_from_dict(data).empty_queue_policy == "switch"


class TestPropertyRoundTrip:
    """Random PH representations survive serialization bit-for-bit."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    rates = st.floats(0.05, 10.0, allow_nan=False, allow_infinity=False)

    @given(rate=rates, k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_erlang_roundtrip(self, rate, k):
        d = erlang(k, rate=rate)
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert np.array_equal(again.alpha, d.alpha)
        assert np.array_equal(again.S, d.S)

    @given(w=st.floats(0.05, 0.95), r1=rates, r2=rates)
    @settings(max_examples=40, deadline=None)
    def test_hyper_roundtrip_preserves_moments(self, w, r1, r2):
        d = hyperexponential([w, 1 - w], [r1, r2])
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert again.mean == pytest.approx(d.mean, rel=1e-12)
        assert again.moment(3) == pytest.approx(d.moment(3), rel=1e-12)


class TestCLIIntegration:
    def test_solve_from_config_file(self, two_class_config, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "system.json"
        save_system(two_class_config, path)
        assert main(["solve", "--config", str(path),
                     "--heavy-traffic"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "big" in out
