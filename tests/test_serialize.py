"""Tests for configuration (de)serialization."""

import json

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.phasetype import coxian, erlang, exponential, hyperexponential
from repro.serialize import (
    load_system,
    phase_type_from_dict,
    phase_type_to_dict,
    save_system,
    system_from_dict,
    system_to_dict,
)


class TestPhaseTypeRoundTrip:
    @pytest.mark.parametrize("dist", [
        exponential(2.0),
        erlang(3, mean=1.5),
        hyperexponential([0.3, 0.7], [0.5, 2.0]),
        coxian([2.0, 1.0], [0.4, 1.0]),
    ], ids=["exp", "erlang", "h2", "cox2"])
    def test_raw_roundtrip(self, dist):
        again = phase_type_from_dict(phase_type_to_dict(dist))
        assert np.allclose(again.alpha, dist.alpha)
        assert np.allclose(again.S, dist.S)

    def test_named_kinds(self):
        d = phase_type_from_dict({"kind": "erlang", "k": 4, "mean": 2.0})
        assert d.order == 4 and d.mean == pytest.approx(2.0)
        d = phase_type_from_dict({"kind": "exponential", "rate": 0.5})
        assert d.mean == pytest.approx(2.0)
        d = phase_type_from_dict({"kind": "hyperexponential",
                                  "probs": [0.5, 0.5], "rates": [1, 2]})
        assert d.order == 2
        d = phase_type_from_dict({"kind": "coxian", "rates": [1.0, 2.0],
                                  "completion_probs": [0.3, 1.0]})
        assert d.order == 2

    def test_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown"):
            phase_type_from_dict({"kind": "weibull"})

    def test_missing_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            phase_type_from_dict({"rate": 1.0})


class TestSystemRoundTrip:
    def test_roundtrip_preserves_solution(self, two_class_config):
        again = system_from_dict(system_to_dict(two_class_config))
        assert again.processors == two_class_config.processors
        assert again.class_names == two_class_config.class_names
        from repro.core import GangSchedulingModel
        a = GangSchedulingModel(two_class_config).solve_heavy_traffic()
        b = GangSchedulingModel(again).solve_heavy_traffic()
        assert a.mean_jobs() == pytest.approx(b.mean_jobs(), rel=1e-12)

    def test_json_serializable(self, two_class_config):
        text = json.dumps(system_to_dict(two_class_config))
        assert "processors" in text

    def test_file_roundtrip(self, two_class_config, tmp_path):
        path = tmp_path / "system.json"
        save_system(two_class_config, path)
        again = load_system(path)
        assert again.utilization() == pytest.approx(
            two_class_config.utilization())

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            load_system(path)

    def test_missing_field_rejected(self):
        with pytest.raises(ValidationError, match="missing"):
            system_from_dict({"processors": 4, "classes": [{"name": "x"}]})

    def test_policy_default(self, two_class_config):
        data = system_to_dict(two_class_config)
        del data["empty_queue_policy"]
        assert system_from_dict(data).empty_queue_policy == "switch"


class TestPropertyRoundTrip:
    """Random PH representations survive serialization bit-for-bit."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    rates = st.floats(0.05, 10.0, allow_nan=False, allow_infinity=False)

    @given(rate=rates, k=st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_erlang_roundtrip(self, rate, k):
        d = erlang(k, rate=rate)
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert np.array_equal(again.alpha, d.alpha)
        assert np.array_equal(again.S, d.S)

    @given(w=st.floats(0.05, 0.95), r1=rates, r2=rates)
    @settings(max_examples=40, deadline=None)
    def test_hyper_roundtrip_preserves_moments(self, w, r1, r2):
        d = hyperexponential([w, 1 - w], [r1, r2])
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert again.mean == pytest.approx(d.mean, rel=1e-12)
        assert again.moment(3) == pytest.approx(d.moment(3), rel=1e-12)


class TestPropertyRoundTripNonMarkovian:
    """Non-Markovian PH classes survive serialization bit-for-bit."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    rates = st.floats(0.05, 10.0, allow_nan=False, allow_infinity=False)
    probs = st.floats(0.05, 0.95, allow_nan=False, allow_infinity=False)

    @given(data=st.data(), n=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_coxian_roundtrip(self, data, n):
        rs = data.draw(self.st.lists(self.rates, min_size=n, max_size=n))
        ps = data.draw(self.st.lists(self.probs, min_size=n - 1,
                                     max_size=n - 1))
        d = coxian(rs, ps + [1.0])
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert np.array_equal(again.alpha, d.alpha)
        assert np.array_equal(again.S, d.S)

    @given(data=st.data(), n=st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_hyperexponential_roundtrip(self, data, n):
        ws = data.draw(self.st.lists(self.probs, min_size=n, max_size=n))
        rs = data.draw(self.st.lists(self.rates, min_size=n, max_size=n))
        total = sum(ws)
        d = hyperexponential([w / total for w in ws], rs)
        again = phase_type_from_dict(phase_type_to_dict(d))
        assert np.array_equal(again.alpha, d.alpha)
        assert np.array_equal(again.S, d.S)

    @given(rate=rates, k=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_raw_ph_roundtrip_through_json_text(self, rate, k):
        d = erlang(k, rate=rate)
        text = json.dumps(phase_type_to_dict(d))
        again = phase_type_from_dict(json.loads(text))
        assert np.array_equal(again.alpha, d.alpha)
        assert np.array_equal(again.S, d.S)


class TestScenarioSchema:
    """Versioned scenario serialization: round trips and tolerance."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    engines = st.sampled_from(["analytic", "sim", "both"])
    grids = st.lists(st.floats(0.05, 8.0, allow_nan=False,
                               allow_infinity=False),
                     min_size=1, max_size=6, unique=True)

    @staticmethod
    def _scenario(engine, grid, replications, tol):
        from repro.scenario import (
            EngineSpec,
            OutputSpec,
            Scenario,
            SweepAxis,
            SystemSpec,
        )
        return Scenario(
            name="prop", description="property-generated",
            system=SystemSpec(preset="fig23", args={"arrival_rate": 0.4},
                              axis=SweepAxis("quantum_mean", tuple(grid))),
            engine=EngineSpec(engine=engine, replications=replications,
                              tol=tol),
            output=OutputSpec(measures=("mean_jobs",)))

    @given(engine=engines, grid=grids,
           replications=st.integers(1, 8),
           tol=st.floats(1e-10, 1e-2, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_dict_object_dict_is_byte_stable(self, engine, grid,
                                             replications, tol):
        from repro.serialize import scenario_from_dict, scenario_to_dict
        scenario = self._scenario(engine, grid, replications, tol)
        first = scenario_to_dict(scenario)
        assert scenario_from_dict(first) == scenario
        again = scenario_to_dict(scenario_from_dict(first))
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(again, sort_keys=True)

    def test_inline_config_roundtrip(self, two_class_config):
        from repro.scenario import Scenario, SystemSpec
        from repro.serialize import scenario_from_dict, scenario_to_dict
        scenario = Scenario(name="inline",
                            system=SystemSpec(config=two_class_config))
        again = scenario_from_dict(scenario_to_dict(scenario))
        assert again.system.config.class_names \
            == two_class_config.class_names
        assert again.system.config.utilization() == pytest.approx(
            two_class_config.utilization())

    def test_unknown_fields_tolerated_everywhere(self):
        from repro.scenario import get_scenario
        from repro.serialize import scenario_from_dict, scenario_to_dict
        data = scenario_to_dict(get_scenario("fig2"))
        data["future_top_level"] = {"nested": True}
        data["engine"]["future_knob"] = 42
        data["output"]["future_sink"] = "s3://bucket"
        data["system"]["future_hint"] = "x"
        assert scenario_from_dict(data) == get_scenario("fig2")

    def test_absent_sections_get_defaults(self):
        from repro.scenario import EngineSpec, OutputSpec
        from repro.serialize import scenario_from_dict
        scenario = scenario_from_dict({
            "schema": "repro-scenario", "version": 1, "name": "bare",
            "system": {"preset": "fig23",
                       "args": {"arrival_rate": 0.4, "quantum_mean": 2.0}},
        })
        assert scenario.engine == EngineSpec()
        assert scenario.output == OutputSpec()

    def test_newer_version_rejected(self):
        from repro.serialize import (
            SCENARIO_SCHEMA_VERSION,
            scenario_from_dict,
        )
        with pytest.raises(ValidationError, match="newer"):
            scenario_from_dict({
                "schema": "repro-scenario",
                "version": SCENARIO_SCHEMA_VERSION + 1,
                "system": {"preset": "fig23"}})

    def test_wrong_schema_rejected(self):
        from repro.serialize import scenario_from_dict
        with pytest.raises(ValidationError, match="not a scenario"):
            scenario_from_dict({"schema": "something-else", "system": {}})

    def test_null_required_engine_field_rejected(self):
        from repro.scenario import get_scenario
        from repro.serialize import scenario_from_dict, scenario_to_dict
        data = scenario_to_dict(get_scenario("fig2"))
        data["engine"]["tol"] = None
        with pytest.raises(ValidationError, match="cannot be null"):
            scenario_from_dict(data)

    def test_file_roundtrip(self, tmp_path):
        from repro.scenario import get_scenario
        from repro.serialize import load_scenario, save_scenario
        path = tmp_path / "scenario.json"
        save_scenario(get_scenario("crosscheck-heavy"), path)
        assert load_scenario(path) == get_scenario("crosscheck-heavy")


class TestCLIIntegration:
    def test_solve_from_config_file(self, two_class_config, tmp_path, capsys):
        from repro.cli import main
        path = tmp_path / "system.json"
        save_system(two_class_config, path)
        assert main(["solve", "--config", str(path),
                     "--heavy-traffic"]) == 0
        out = capsys.readouterr().out
        assert "small" in out and "big" in out
