"""Aitken acceleration: same fixed point, fewer iterations, safe guards."""

import numpy as np
import pytest

from repro.core.fixed_point import (
    FixedPointOptions,
    _aitken_target,
    run_fixed_point,
)
from repro.workloads.presets import fig23_config


@pytest.mark.parametrize("lam", [0.4, 0.9])
def test_aitken_reaches_same_fixed_point(lam):
    """Figure 2 (lambda=0.4) / Figure 3 (lambda=0.9) configurations."""
    cfg = fig23_config(lam, 2.0)
    plain = run_fixed_point(cfg, FixedPointOptions(acceleration="none"))
    aitken = run_fixed_point(cfg, FixedPointOptions(acceleration="aitken"))
    assert plain.converged and aitken.converged
    for a, b in zip(plain.history[-1].mean_jobs,
                    aitken.history[-1].mean_jobs):
        assert abs(a - b) / max(1.0, abs(b)) < 1e-3
    # The point of accelerating: it must not be slower.
    assert aitken.iterations <= plain.iterations


class TestAitkenTarget:
    def test_clean_linear_sequence_extrapolates(self):
        # x_n = x* + rho^n with rho = 0.5: the Aitken target is x*.
        x_star, rho = np.array([2.0, 3.0]), 0.5
        x0, x1, x2 = (x_star + rho ** n for n in (1, 2, 3))
        target, ok = _aitken_target(x0, x1, x2, tol=1e-5)
        assert ok
        np.testing.assert_allclose(target, x_star, atol=1e-12)

    def test_oscillating_sequence_rejected(self):
        # Alternating iterates (rho < 0): extrapolating would overshoot.
        x_star = np.array([2.0])
        x0, x1, x2 = x_star + 0.3, x_star - 0.2, x_star + 0.15
        _, ok = _aitken_target(x0, x1, x2, tol=1e-5)
        assert not ok

    def test_converged_sequence_rejected(self):
        # Deltas below the meaningful threshold: leave the iteration be.
        x = np.array([2.0])
        _, ok = _aitken_target(x + 3e-9, x + 2e-9, x + 1e-9, tol=1e-5)
        assert not ok

    def test_overshoot_guard_rejects_large_targets(self):
        # Near-unit ratio inflates the extrapolation far beyond x2.
        x0, x1, x2 = (np.array([v]) for v in (1.0, 2.0, 2.999))
        target, ok = _aitken_target(x0, x1, x2, tol=1e-5)
        assert not ok

    def test_negative_target_rejected(self):
        x0, x1, x2 = (np.array([v]) for v in (3.0, 1.0, 0.2))
        _, ok = _aitken_target(x0, x1, x2, tol=1e-5)
        assert not ok
