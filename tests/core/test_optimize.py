"""Tests for the scheduler-tuning API."""

import pytest

from repro.core import (
    ClassConfig,
    GangSchedulingModel,
    SystemConfig,
    optimize_cycle_split,
    optimize_quantum,
    optimize_quantum_for_slo,
    parse_slo_target,
    slo_objective,
    total_jobs_objective,
    weighted_response_objective,
)
from repro.errors import ValidationError
from repro.workloads import fig23_config


class TestObjectives:
    def test_total_jobs(self, two_class_config):
        solved = GangSchedulingModel(two_class_config).solve()
        assert total_jobs_objective(solved) == pytest.approx(
            solved.mean_jobs())

    def test_weighted_response(self, two_class_config):
        solved = GangSchedulingModel(two_class_config).solve()
        obj = weighted_response_objective([2.0, 0.0])
        assert obj(solved) == pytest.approx(2 * solved.mean_response_time(0))

    def test_weight_count_checked(self, two_class_config):
        solved = GangSchedulingModel(two_class_config).solve()
        with pytest.raises(ValidationError):
            weighted_response_objective([1.0])(solved)


class TestOptimizeQuantum:
    def test_finds_fig3_knee(self):
        """On the rho=0.9 curve the knee sits near 0.4-0.6."""
        opt = optimize_quantum(lambda q: fig23_config(0.9, q),
                               bounds=(0.15, 4.0), tol=0.02)
        assert 0.3 <= opt.quantum <= 0.9, opt
        # The optimum beats both interval endpoints.
        lo = GangSchedulingModel(fig23_config(0.9, 0.15)).solve().mean_jobs()
        hi = GangSchedulingModel(fig23_config(0.9, 4.0)).solve().mean_jobs()
        assert opt.objective_value < min(lo, hi)

    def test_respects_evaluation_budget(self):
        opt = optimize_quantum(lambda q: fig23_config(0.4, q),
                               bounds=(0.2, 4.0), max_evaluations=8)
        assert opt.evaluations <= 8

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            optimize_quantum(lambda q: fig23_config(0.4, q),
                             bounds=(2.0, 1.0))
        with pytest.raises(ValidationError):
            optimize_quantum(lambda q: fig23_config(0.4, q),
                             bounds=(0.0, 1.0))

    def test_degenerate_bracket_evaluates_once(self):
        """min == max pins the quantum: one solve, no search."""
        opt = optimize_quantum(lambda q: fig23_config(0.4, q),
                               bounds=(2.0, 2.0))
        assert opt.quantum == 2.0
        assert opt.evaluations == 1
        direct = GangSchedulingModel(fig23_config(0.4, 2.0)).solve()
        assert opt.objective_value == pytest.approx(direct.mean_jobs())

    def test_degenerate_bracket_in_unstable_region(self):
        """A pinned quantum inside the unstable zone reports inf."""
        opt = optimize_quantum(lambda q: fig23_config(0.9, q),
                               bounds=(0.02, 0.02))
        assert opt.objective_value == float("inf")
        assert opt.evaluations == 1

    def test_saturated_endpoint_steers_inward(self):
        """An endpoint whose class is saturated scores inf, and the
        optimum lands strictly inside the stable region."""
        opt = optimize_quantum(lambda q: fig23_config(0.9, q),
                               bounds=(0.05, 2.0), tol=0.05)
        assert opt.objective_value < float("inf")
        endpoint = optimize_quantum(lambda q: fig23_config(0.9, q),
                                    bounds=(0.05, 0.05))
        assert endpoint.objective_value == float("inf")
        assert opt.quantum > 0.05

    def test_honors_scenario_backend_and_budget(self, monkeypatch):
        """The model_kwargs/budget of an EngineSpec reach the search."""
        from repro.core import model as model_module
        from repro.scenario import EngineSpec
        eng = EngineSpec(backend="dense", max_evaluations=5)
        seen = []
        real_init = model_module.GangSchedulingModel.__init__

        def spy(self, config, **kwargs):
            seen.append(kwargs)
            return real_init(self, config, **kwargs)

        monkeypatch.setattr(model_module.GangSchedulingModel,
                            "__init__", spy)
        opt = optimize_quantum(lambda q: fig23_config(0.4, q),
                               bounds=(0.5, 4.0),
                               max_evaluations=eng.max_evaluations,
                               model_kwargs=eng.model_kwargs())
        assert opt.evaluations <= 5
        assert seen and all(k.get("backend") == "dense" for k in seen)

    def test_cli_budget_flag_bounds_the_solves(self, capsys):
        from repro.cli import main
        rc = main(["optimize", "--processors", "2",
                   "--class", "1,0.5,1,2,0.1",
                   "--min", "0.5", "--max", "4.0", "--budget", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        solves = int(next(ln for ln in out.splitlines()
                          if ln.startswith("model solves:")).split(":")[1])
        assert solves <= 4

    def test_unstable_region_scored_inf(self):
        # Bounds reaching into the overhead-dominated unstable zone at
        # rho = 0.9: the optimizer must still come back with a stable
        # quantum.
        opt = optimize_quantum(lambda q: fig23_config(0.9, q),
                               bounds=(0.02, 1.0), tol=0.05)
        assert opt.objective_value < float("inf")
        assert opt.quantum > 0.1


class TestContentKeyedMemo:
    """Repeated quanta must cost zero solves (content-keyed memo)."""

    @staticmethod
    def _counting_solves(monkeypatch):
        from repro.core import model as model_module
        calls = []
        real_solve = model_module.GangSchedulingModel.solve

        def spy(self, *args, **kwargs):
            calls.append(1)
            return real_solve(self, *args, **kwargs)

        monkeypatch.setattr(model_module.GangSchedulingModel,
                            "solve", spy)
        return calls

    def test_identical_configs_solved_once(self, monkeypatch):
        """A factory quantizing the bracket collapses distinct floats
        onto identical configs; each distinct config solves once."""
        calls = self._counting_solves(monkeypatch)
        built = []

        def factory(q):
            rounded = round(q, 1)
            built.append(rounded)
            return fig23_config(0.4, rounded)

        opt = optimize_quantum(factory, bounds=(0.5, 4.0), tol=0.02)
        distinct = len(set(built))
        assert len(built) > distinct  # the bracket did revisit quanta
        assert opt.evaluations == distinct
        assert sum(calls) == distinct

    def test_shared_memo_spans_searches(self, monkeypatch):
        """A caller-provided memo makes a repeat search solve-free."""
        calls = self._counting_solves(monkeypatch)
        memo: dict = {}
        first = optimize_quantum(lambda q: fig23_config(0.4, q),
                                 bounds=(0.5, 4.0), tol=0.05, memo=memo)
        solves_after_first = sum(calls)
        assert solves_after_first == first.evaluations > 0
        second = optimize_quantum(lambda q: fig23_config(0.4, q),
                                  bounds=(0.5, 4.0), tol=0.05, memo=memo)
        assert sum(calls) == solves_after_first  # zero new solves
        assert second.evaluations == 0
        assert second.quantum == first.quantum
        assert second.objective_value == first.objective_value


class TestOptimizeCycleSplit:
    @staticmethod
    def builder(fractions):
        budget = 4.0
        return SystemConfig(processors=4, classes=(
            ClassConfig.markovian(1, arrival_rate=1.2, service_rate=1.0,
                                  quantum_mean=budget * fractions[0],
                                  overhead_mean=0.02, name="small"),
            ClassConfig.markovian(4, arrival_rate=0.2, service_rate=1.0,
                                  quantum_mean=budget * fractions[1],
                                  overhead_mean=0.02, name="big"),
        ))

    def test_favors_the_loaded_class(self):
        opt = optimize_cycle_split(self.builder, 2, max_evaluations=60)
        # Class 0 offers rho=0.3 vs class 1's 0.2 and is interactive
        # (4 partitions): it should receive the larger share.
        assert opt.fractions[0] > 0.5
        assert sum(opt.fractions) == pytest.approx(1.0)

    def test_beats_even_split(self):
        opt = optimize_cycle_split(self.builder, 2, max_evaluations=60)
        even = GangSchedulingModel(self.builder((0.5, 0.5))).solve()
        assert opt.objective_value <= even.mean_jobs() + 1e-6

    def test_needs_two_classes(self):
        with pytest.raises(ValidationError):
            optimize_cycle_split(self.builder, 1)


class TestSLOTargets:
    def test_parse_round_trip(self):
        target = parse_slo_target("p99<=2.5")
        assert target.selector == "p99" and target.bound == 2.5
        tail = parse_slo_target(" tail@5 <= 0.01 ")
        assert tail.selector == "tail@5" and tail.bound == 0.01

    @pytest.mark.parametrize("bad", ["p99", "p99<=", "p99<=soon",
                                     "p99<=2<=3", "q95<=2", "p99<=-1"])
    def test_malformed_targets_rejected(self, bad):
        with pytest.raises(ValidationError):
            parse_slo_target(bad)

    def test_slo_objective_is_worst_class(self, two_class_config):
        solved = GangSchedulingModel(two_class_config).solve()
        obj = slo_objective("p95")
        per_class = [solved.distributions(p).quantile(0.95)
                     for p in range(len(solved.classes))]
        assert obj(solved) == pytest.approx(max(per_class))
        assert slo_objective("mean")(solved) == pytest.approx(
            max(solved.mean_response_time(p)
                for p in range(len(solved.classes))))


class TestOptimizeQuantumForSLO:
    """``optimize --target``: smallest quantum meeting a tail bound.

    One search per regime (feasible / infeasible), shared module-wide:
    each distribution-bearing solve costs seconds.
    """

    BOUNDS = (0.5, 6.0)

    @pytest.fixture(scope="class")
    def feasible(self):
        memo = {}
        opt = optimize_quantum_for_slo(
            lambda q: fig23_config(0.4, q), target="p99<=15",
            bounds=self.BOUNDS, tol=0.02, memo=memo)
        return opt, memo

    def test_returned_quantum_meets_the_bound(self, feasible):
        opt, _ = feasible
        assert opt.feasible
        solved = GangSchedulingModel(
            fig23_config(0.4, opt.quantum)).solve()
        assert slo_objective("p99")(solved) <= 15.0 + 1e-6
        assert opt.metric_value <= 15.0 + 1e-6

    def test_returned_quantum_is_smallest(self, feasible):
        """A slightly smaller quantum must violate the bound — the
        bisection found the left edge of the feasible interval, not
        just any feasible point."""
        opt, _ = feasible
        smaller = max(self.BOUNDS[0], 0.9 * opt.quantum)
        assert smaller < opt.quantum
        solved = GangSchedulingModel(
            fig23_config(0.4, smaller)).solve()
        assert slo_objective("p99")(solved) > 15.0

    def test_memo_shared_across_stages(self, feasible):
        """Probe and bisection share one content-keyed memo: a repeat
        search with the warm memo costs zero fresh solves."""
        opt, memo = feasible
        again = optimize_quantum_for_slo(
            lambda q: fig23_config(0.4, q), target="p99<=15",
            bounds=self.BOUNDS, tol=0.02, memo=memo)
        assert again.evaluations == 0
        assert again.quantum == opt.quantum

    def test_infeasible_bound_reported_not_raised(self):
        """p99<=10 is unreachable on this bracket (the minimum over
        quanta is ~12.2): the search reports the unconstrained
        optimum instead of pretending."""
        opt = optimize_quantum_for_slo(
            lambda q: fig23_config(0.4, q), target="p99<=10",
            bounds=(0.5, 6.0), tol=0.05)
        assert not opt.feasible
        assert opt.best_metric_value > 10.0
        assert opt.quantum == opt.best_quantum
        assert "INFEASIBLE" in repr(opt)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValidationError):
            optimize_quantum_for_slo(lambda q: fig23_config(0.4, q),
                                     target="p99<=15", bounds=(0.0, 1.0))
