"""Fixed-point edge paths, driven by deterministic fault injection.

The optimistic-bootstrap restart, per-class saturation pinning, and the
all-saturated abort are hard to reach with well-posed configurations on
demand; the fault harness makes each path deterministic.
"""

import math

import numpy as np
import pytest

from repro.core.fixed_point import FixedPointOptions, run_fixed_point
from repro.errors import UnstableSystemError
from repro.resilience import faults


@pytest.fixture(autouse=True)
def _disarm_all_faults():
    yield
    faults.disarm()


class TestOptimisticBootstrap:
    def test_transient_instability_triggers_bootstrap(self, two_class_config):
        # The heavy-traffic initialization "fails" once; the driver must
        # restart from near-zero quanta and still converge.
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, times=1):
            result = run_fixed_point(two_class_config)
        assert result.used_bootstrap
        assert result.converged
        assert all(not s for s in result.saturated)
        assert all(math.isfinite(m) for m in result.history[-1].mean_jobs)

    def test_reference_run_does_not_bootstrap(self, two_class_config):
        result = run_fixed_point(two_class_config)
        assert not result.used_bootstrap
        assert result.converged

    def test_bootstrap_result_matches_unfaulted(self, two_class_config):
        clean = run_fixed_point(two_class_config)
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, times=1):
            faulted = run_fixed_point(two_class_config)
        clean_means = clean.history[-1].mean_jobs
        faulted_means = faulted.history[-1].mean_jobs
        assert faulted_means == pytest.approx(clean_means, rel=1e-3)

    def test_bootstrap_disabled_pins_instead(self, two_class_config):
        opts = FixedPointOptions(allow_optimistic_bootstrap=False)
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, keys=(0,), times=1):
            result = run_fixed_point(two_class_config, opts)
        assert not result.used_bootstrap


class TestSaturationPinning:
    def test_persistently_unstable_class_is_pinned(self, two_class_config):
        # Class 0 is "genuinely" saturated: every solve attempt fails.
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, keys=(0,)):
            result = run_fixed_point(two_class_config)
        assert result.saturated == [True, False]
        assert result.solutions[0] is None
        assert result.solutions[1] is not None
        last = result.history[-1].mean_jobs
        assert math.isinf(last[0]) and math.isfinite(last[1])
        # The pinned class's vacation feedback uses its full quantum.
        assert result.converged

    def test_pinned_class_reports_unstable_in_model(self, two_class_config):
        from repro.core import GangSchedulingModel
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, keys=(1,)):
            solved = GangSchedulingModel(two_class_config).solve()
        assert not solved.classes[1].stable
        assert math.isinf(solved.classes[1].mean_jobs)
        assert solved.classes[0].stable
        assert solved.tail_probability(1, 5) == 1.0


class TestAllSaturated:
    def test_every_class_saturated_raises(self, two_class_config):
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError):
            with pytest.raises(UnstableSystemError, match="saturated"):
                run_fixed_point(two_class_config)

    def test_heavy_traffic_only_fails_fast(self, two_class_config):
        opts = FixedPointOptions(heavy_traffic_only=True)
        with faults.inject("fixed_point.class_solve",
                           raises=UnstableSystemError, keys=(0,)):
            with pytest.raises(UnstableSystemError, match="heavy-traffic"):
                run_fixed_point(two_class_config, opts)


class TestResilienceWiring:
    def test_solutions_carry_solve_reports(self, two_class_config):
        result = run_fixed_point(two_class_config)
        for sol in result.solutions:
            assert sol.solve_report is not None
            assert sol.solve_report.method == "logreduction"

    def test_resilience_disabled_omits_reports(self, two_class_config):
        opts = FixedPointOptions(resilience=None)
        result = run_fixed_point(two_class_config, opts)
        for sol in result.solutions:
            assert sol.solve_report is None

    def test_rmatrix_fault_recovered_by_fallback(self, two_class_config):
        from repro.errors import ConvergenceError
        clean = run_fixed_point(two_class_config)
        with faults.inject("rmatrix.solve", raises=ConvergenceError,
                           keys=("logreduction",)):
            faulted = run_fixed_point(two_class_config)
        assert faulted.converged
        assert all(sol.solve_report.method == "cr"
                   for sol in faulted.solutions)
        assert np.allclose(faulted.history[-1].mean_jobs,
                           clean.history[-1].mean_jobs, rtol=1e-6)
