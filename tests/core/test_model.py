"""Tests for GangSchedulingModel / SolvedModel and the fixed point."""

import pytest

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.core.fixed_point import FixedPointOptions, run_fixed_point
from repro.errors import UnstableSystemError


class TestFixedPointDriver:
    def test_converges_on_small_system(self, two_class_config):
        res = run_fixed_point(two_class_config, FixedPointOptions(tol=1e-6))
        assert res.converged
        assert res.iterations >= 2
        # Mean jobs decrease from the heavy-traffic upper bound.
        first = res.history[0].mean_jobs
        last = res.history[-1].mean_jobs
        assert all(l <= f + 1e-9 for f, l in zip(first, last))

    def test_heavy_traffic_only_single_iteration(self, two_class_config):
        res = run_fixed_point(two_class_config,
                              FixedPointOptions(heavy_traffic_only=True))
        assert res.iterations == 1 and res.converged

    def test_vacations_shrink_from_heavy_traffic(self, two_class_config):
        res = run_fixed_point(two_class_config, FixedPointOptions())
        hv = res.history[0].vacation_means
        fv = res.history[-1].vacation_means
        assert all(f < h for h, f in zip(hv, fv))

    def test_fully_saturated_system_raises(self):
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=5.0, service_rate=1.0,
                                  quantum_mean=1.0, overhead_mean=0.01),
        ))
        with pytest.raises(UnstableSystemError, match="saturated"):
            run_fixed_point(cfg)

    def test_heavy_traffic_only_reports_unstable_classes(self):
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=5.0, service_rate=1.0,
                                  quantum_mean=1.0, overhead_mean=0.01),
        ))
        from repro.core.fixed_point import FixedPointOptions
        with pytest.raises(UnstableSystemError, match="class0"):
            run_fixed_point(cfg, FixedPointOptions(heavy_traffic_only=True))

    def test_partial_saturation_keeps_stable_classes(self):
        # One class far over its share; the other fine.  The stable
        # class must still get a finite solution.
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=4.0, service_rate=1.0,
                                  quantum_mean=1.0, overhead_mean=0.01,
                                  name="hot"),
            ClassConfig.markovian(2, arrival_rate=0.1, service_rate=2.0,
                                  quantum_mean=1.0, overhead_mean=0.01,
                                  name="cool"),
        ))
        solved = GangSchedulingModel(cfg).solve()
        assert not solved.classes[0].stable
        assert solved.mean_jobs(0) == float("inf")
        assert solved.classes[1].stable
        assert solved.mean_jobs(1) < float("inf")
        assert solved.tail_probability(0, 10) == 1.0

    def test_phase_type_parameters_work(self, phased_class_config):
        res = run_fixed_point(phased_class_config,
                              FixedPointOptions(max_iterations=60))
        assert res.converged
        assert all(m > 0 for m in res.history[-1].mean_jobs)


class TestSolvedModel:
    @pytest.fixture
    def solved(self, two_class_config):
        return GangSchedulingModel(two_class_config).solve()

    def test_mean_jobs_aggregates(self, solved):
        total = sum(solved.mean_jobs(p) for p in range(2))
        assert solved.mean_jobs() == pytest.approx(total)

    def test_littles_law_exact(self, solved, two_class_config):
        for p, cls in enumerate(two_class_config.classes):
            n = solved.mean_jobs(p)
            t = solved.mean_response_time(p)
            assert n == pytest.approx(cls.arrival_rate * t, rel=1e-12)

    def test_throughput_equals_arrival_rate(self, solved, two_class_config):
        # Flow conservation: the chain's stationary departure rate must
        # equal the arrival rate — a strong end-to-end consistency check
        # on the generator construction.
        for p, cls in enumerate(two_class_config.classes):
            thr = solved.classes[p].measures.throughput
            assert thr == pytest.approx(cls.arrival_rate, rel=1e-6)

    def test_utilization_equals_rho(self, solved, two_class_config):
        for p in range(2):
            util = solved.classes[p].measures.utilization
            assert util == pytest.approx(two_class_config.utilization(p),
                                         rel=1e-6)

    def test_tail_probabilities_decreasing(self, solved):
        tails = [solved.tail_probability(0, k) for k in range(8)]
        assert all(a >= b - 1e-12 for a, b in zip(tails, tails[1:]))

    def test_waiting_plus_in_service(self, solved):
        for cr in solved.classes:
            m = cr.measures
            assert m.mean_jobs == pytest.approx(
                m.mean_jobs_waiting + m.mean_jobs_in_service, rel=1e-9)

    def test_describe_mentions_classes(self, solved):
        text = solved.describe()
        assert "small" in text and "big" in text

    def test_heavy_traffic_upper_bounds_fixed_point(self, two_class_config):
        model = GangSchedulingModel(two_class_config)
        ht = model.solve_heavy_traffic()
        fp = model.solve()
        for p in range(2):
            assert fp.mean_jobs(p) <= ht.mean_jobs(p) + 1e-9


class TestAcceleration:
    def test_aitken_matches_plain(self, two_class_config):
        from repro.core.fixed_point import FixedPointOptions, run_fixed_point
        plain = run_fixed_point(two_class_config,
                                FixedPointOptions(acceleration="none"))
        acc = run_fixed_point(two_class_config,
                              FixedPointOptions(acceleration="aitken"))
        assert acc.converged and plain.converged
        for a, b in zip(acc.history[-1].mean_jobs,
                        plain.history[-1].mean_jobs):
            assert a == pytest.approx(b, rel=5e-4)

    def test_aitken_not_slower_overall(self):
        """Across the figure regimes, acceleration saves iterations."""
        from repro.core.fixed_point import FixedPointOptions, run_fixed_point
        from repro.workloads import fig23_config
        total_plain = total_acc = 0
        for lam, q in [(0.4, 2.0), (0.6, 1.0)]:
            cfg = fig23_config(lam, q)
            total_plain += run_fixed_point(
                cfg, FixedPointOptions(acceleration="none")).iterations
            total_acc += run_fixed_point(
                cfg, FixedPointOptions(acceleration="aitken")).iterations
        assert total_acc < total_plain


class TestReductionConsistency:
    def test_reductions_agree_on_small_system(self, two_class_config):
        results = {}
        for red in ("moments2", "moments3", "exact"):
            model = GangSchedulingModel(two_class_config, reduction=red,
                                        truncation_mass=1e-8,
                                        max_truncation_levels=80)
            results[red] = GangSchedulingModel.solve(model).mean_jobs(0)
        assert results["moments2"] == pytest.approx(results["exact"], rel=0.02)
        assert results["moments3"] == pytest.approx(results["exact"], rel=0.02)


class TestPolicies:
    def test_idle_policy_solves(self, two_class_config):
        cfg = SystemConfig(processors=two_class_config.processors,
                           classes=two_class_config.classes,
                           empty_queue_policy="idle")
        sol = GangSchedulingModel(cfg).solve(max_iterations=60)
        assert sol.mean_jobs() > 0

    def test_switch_beats_idle(self, two_class_config):
        """Early switching recycles idle time: fewer jobs on average."""
        switch = GangSchedulingModel(two_class_config).solve()
        idle_cfg = SystemConfig(processors=two_class_config.processors,
                                classes=two_class_config.classes,
                                empty_queue_policy="idle")
        idle = GangSchedulingModel(idle_cfg).solve(max_iterations=60)
        assert switch.mean_jobs() < idle.mean_jobs()


class TestCacheStatsSurfaced:
    def test_fixed_point_result_carries_cache_stats(self, two_class_config):
        result = run_fixed_point(two_class_config, FixedPointOptions())
        stats = result.cache_stats
        assert set(stats) == {"hits", "misses", "evictions", "entries"}
        assert stats["misses"] > 0  # first iteration always misses
        # Warm iterations re-solve identical per-class subproblems.
        assert stats["hits"] + stats["misses"] >= result.iterations

    def test_solved_model_carries_cache_stats(self, two_class_config):
        solved = GangSchedulingModel(two_class_config).solve()
        assert solved.cache_stats["misses"] > 0
        assert solved.cache_stats["entries"] >= 1
        assert solved.cache_stats["evictions"] >= 0
