"""Tests for ClassConfig / SystemConfig."""

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.phasetype import PhaseType, exponential


def make_class(g=2, lam=0.5, mu=1.0):
    return ClassConfig.markovian(g, arrival_rate=lam, service_rate=mu,
                                 quantum_mean=2.0, overhead_mean=0.01)


class TestClassConfig:
    def test_markovian_rates(self):
        c = make_class(lam=0.4, mu=2.0)
        assert c.arrival_rate == pytest.approx(0.4)
        assert c.service_rate == pytest.approx(2.0)
        assert c.quantum_rate == pytest.approx(0.5)
        assert c.overhead_rate == pytest.approx(100.0)

    def test_rejects_nonpositive_partition(self):
        with pytest.raises(ValidationError):
            ClassConfig.markovian(0, arrival_rate=1, service_rate=1,
                                  quantum_mean=1, overhead_mean=0.1)

    def test_rejects_atom_at_zero(self):
        with pytest.raises(ValidationError, match="atom at zero"):
            ClassConfig(partition_size=1,
                        arrival=PhaseType([0.5], [[-1.0]]),
                        service=exponential(1.0),
                        quantum=exponential(1.0),
                        overhead=exponential(10.0))

    def test_rejects_non_phasetype(self):
        with pytest.raises(ValidationError, match="PhaseType"):
            ClassConfig(partition_size=1, arrival=1.0,
                        service=exponential(1.0),
                        quantum=exponential(1.0),
                        overhead=exponential(10.0))


class TestSystemConfig:
    def test_partitions(self):
        cfg = SystemConfig(processors=8, classes=(make_class(2),))
        assert cfg.partitions(0) == 4

    def test_rejects_nondividing_partition(self):
        with pytest.raises(ValidationError, match="divide"):
            SystemConfig(processors=8, classes=(make_class(3),))

    def test_rejects_empty_classes(self):
        with pytest.raises(ValidationError):
            SystemConfig(processors=4, classes=())

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValidationError, match="empty_queue_policy"):
            SystemConfig(processors=4, classes=(make_class(2),),
                         empty_queue_policy="spin")

    def test_utilization_per_class(self):
        # rho_p = lambda / (c_p mu).
        cfg = SystemConfig(processors=8,
                           classes=(make_class(2, lam=0.5, mu=1.0),))
        assert cfg.utilization(0) == pytest.approx(0.5 / 4.0)

    def test_paper_identity_rho_equals_lambda(self):
        # With mu = (0.5, 1, 2, 4) and g = 2^p on 8 processors, the
        # total rho equals the common arrival rate (Section 5).
        mus = [0.5, 1.0, 2.0, 4.0]
        classes = tuple(
            ClassConfig.markovian(2 ** p, arrival_rate=0.4,
                                  service_rate=mus[p], quantum_mean=1.0,
                                  overhead_mean=0.01)
            for p in range(4))
        cfg = SystemConfig(processors=8, classes=classes)
        assert cfg.utilization() == pytest.approx(0.4)

    def test_cycle_mean(self):
        cfg = SystemConfig(processors=4, classes=(make_class(2), make_class(4)))
        assert cfg.cycle_mean() == pytest.approx(2 * (2.0 + 0.01))

    def test_default_names(self):
        cfg = SystemConfig(processors=4, classes=(make_class(2), make_class(4)))
        assert cfg.class_names == ("class0", "class1")

    def test_describe_mentions_rho(self):
        cfg = SystemConfig(processors=4, classes=(make_class(2),))
        assert "rho" in cfg.describe()
