"""Tests for the analytic batch-arrival gang model."""

import numpy as np
import pytest

from repro.core import (
    BatchGangSchedulingModel,
    ClassConfig,
    GangSchedulingModel,
    SystemConfig,
)
from repro.errors import UnstableSystemError, ValidationError
from repro.sim import BatchArrivalGangSimulation


def single_class(lam=0.5, mu=1.0, c=2, q=2.0, oh=0.3):
    return SystemConfig(processors=c, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=mu,
                              quantum_mean=q, overhead_mean=oh),))


class TestConstruction:
    def test_pmf_validated(self):
        cfg = single_class()
        with pytest.raises(ValidationError):
            BatchGangSchedulingModel(cfg, [[0.5, 0.4]])
        with pytest.raises(ValidationError):
            BatchGangSchedulingModel(cfg, [[1.0], [1.0]])

    def test_batch_statistics(self):
        model = BatchGangSchedulingModel(single_class(), [[0.25, 0.5, 0.25]])
        assert model.mean_batch_size(0) == pytest.approx(2.0)
        assert model.job_arrival_rate(0) == pytest.approx(1.0)


class TestDegenerateBatch:
    def test_reduces_to_plain_model(self):
        cfg = single_class()
        plain = GangSchedulingModel(cfg).solve()
        batch = BatchGangSchedulingModel(cfg, [[1.0]]).solve()
        assert batch.mean_jobs(0) == pytest.approx(plain.mean_jobs(0),
                                                   rel=1e-8)

    def test_two_class_degenerate(self, two_class_config):
        plain = GangSchedulingModel(two_class_config).solve()
        batch = BatchGangSchedulingModel(
            two_class_config, [[1.0], [1.0]]).solve(max_iterations=120)
        for p in range(2):
            assert batch.mean_jobs(p) == pytest.approx(plain.mean_jobs(p),
                                                       rel=1e-3)


class TestAgainstSimulation:
    def test_single_class_exact_regime(self):
        """L=1 has no decomposition approximation: model == simulation."""
        pmf = [0.4, 0.35, 0.25]
        cfg = single_class(lam=0.25)
        model = BatchGangSchedulingModel(cfg, [pmf]).solve()
        sims = [BatchArrivalGangSimulation(cfg, [pmf], seed=s,
                                           warmup=2000.0).run(40_000.0)
                .mean_jobs[0] for s in range(4)]
        assert model.mean_jobs(0) == pytest.approx(np.mean(sims), rel=0.05)

    def test_littles_law_with_job_rate(self):
        pmf = [0.5, 0.5]
        cfg = single_class(lam=0.3)
        model = BatchGangSchedulingModel(cfg, [pmf])
        solved = model.solve()
        n = solved.mean_jobs(0)
        t = solved.classes[0].mean_response_time
        assert n == pytest.approx(model.job_arrival_rate(0) * t, rel=1e-12)


class TestBatchEffects:
    def test_batching_increases_congestion_at_equal_load(self):
        # Same job rate: singles at rate 0.5 vs pairs at rate 0.25.
        singles = BatchGangSchedulingModel(
            single_class(lam=0.5), [[1.0]]).solve()
        pairs = BatchGangSchedulingModel(
            single_class(lam=0.25), [[0.0, 1.0]]).solve()
        assert pairs.mean_jobs(0) > singles.mean_jobs(0)

    def test_bigger_batches_worse(self):
        base = single_class(lam=0.2)
        two = BatchGangSchedulingModel(base, [[0.0, 1.0]]).solve()
        four = BatchGangSchedulingModel(base, [[0.0, 0.0, 0.0, 1.0]]).solve()
        # Quadruple the batch at the same epoch rate: double the load
        # AND double the burstiness.
        assert four.mean_jobs(0) > 2 * two.mean_jobs(0)

    def test_unstable_batch_load_raises(self):
        # Epoch rate fine, batch factor pushes rho over 1.
        cfg = single_class(lam=0.6, c=1)
        with pytest.raises(UnstableSystemError):
            BatchGangSchedulingModel(cfg, [[0.0, 0.0, 1.0]]).solve()

    def test_multiclass_batches_solve(self, two_class_config):
        model = BatchGangSchedulingModel(
            two_class_config, [[0.7, 0.3], [1.0]])
        solved = model.solve(max_iterations=80)
        assert solved.mean_jobs() > 0
        # Batches on class 0 make it worse than its single-arrival self
        # at the same epoch rate.
        plain = GangSchedulingModel(two_class_config).solve()
        assert solved.mean_jobs(0) > plain.mean_jobs(0)


class TestPhaseService:
    def test_multinomial_entry_with_erlang_service(self):
        """Batch jobs drawing Erlang service phases: brute-force check."""
        from repro.phasetype import erlang, exponential
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig(partition_size=1,
                        arrival=exponential(0.2),
                        service=erlang(2, mean=1.0),
                        quantum=exponential(mean=2.0),
                        overhead=exponential(mean=0.3)),))
        pmf = [0.5, 0.5]
        model = BatchGangSchedulingModel(cfg, [pmf]).solve()
        sims = [BatchArrivalGangSimulation(cfg, [pmf], seed=s,
                                           warmup=2000.0).run(40_000.0)
                .mean_jobs[0] for s in range(4)]
        assert model.mean_jobs(0) == pytest.approx(np.mean(sims), rel=0.06)
