"""Tests for the per-class state-space enumeration."""

import pytest

from repro.core.statespace import ClassStateSpace
from repro.errors import ValidationError
from repro.utils.combinatorics import num_compositions


@pytest.fixture
def space():
    """c=3, exponential arrival/service, Erlang-2 quantum, order-3 vacation."""
    return ClassStateSpace(partitions=3, m_arrival=1, m_service=1,
                           m_quantum=2, m_vacation=3)


class TestBasics:
    def test_cycle_phases(self, space):
        assert space.num_cycle_phases == 5
        assert space.is_quantum_phase(0)
        assert space.is_quantum_phase(1)
        assert not space.is_quantum_phase(2)

    def test_level0_has_only_vacation_phases_under_switch(self, space):
        assert list(space.cycle_phases_at(0)) == [2, 3, 4]
        assert space.level_dim(0) == 3

    def test_level0_idle_policy_keeps_all_phases(self):
        sp = ClassStateSpace(partitions=2, m_arrival=1, m_service=1,
                             m_quantum=2, m_vacation=3, policy="idle")
        assert list(sp.cycle_phases_at(0)) == [0, 1, 2, 3, 4]

    def test_in_service_saturates(self, space):
        assert [space.in_service(i) for i in range(6)] == [0, 1, 2, 3, 3, 3]

    def test_repeating_dim(self, space):
        assert space.repeating_dim == space.level_dim(3) == 5

    def test_boundary_levels_is_c(self, space):
        assert space.boundary_levels == 3

    def test_rejects_bad_policy(self):
        with pytest.raises(ValidationError):
            ClassStateSpace(1, 1, 1, 1, 1, policy="wat")

    def test_rejects_nonpositive_orders(self):
        with pytest.raises(ValidationError):
            ClassStateSpace(1, 0, 1, 1, 1)


class TestMultiPhaseService:
    @pytest.fixture
    def sp(self):
        return ClassStateSpace(partitions=2, m_arrival=2, m_service=3,
                               m_quantum=1, m_vacation=2)

    def test_level_dims_count_compositions(self, sp):
        # dim = mA * C(s + mB - 1, mB - 1) * (M + N).
        assert sp.level_dim(0) == 2 * num_compositions(0, 3) * 2
        assert sp.level_dim(1) == 2 * num_compositions(1, 3) * 3
        assert sp.level_dim(2) == 2 * num_compositions(2, 3) * 3
        assert sp.level_dim(5) == sp.level_dim(2)

    def test_index_roundtrip(self, sp):
        for level in (0, 1, 2, 4):
            seen = set()
            for j, (a, v, k) in enumerate(sp.states(level)):
                idx = sp.index(level, a, v, k)
                assert idx == j
                seen.add(idx)
            assert seen == set(range(sp.level_dim(level)))

    def test_invalid_phase_rejected(self, sp):
        with pytest.raises(ValidationError):
            sp.index(0, 0, (0, 0, 0), 0)   # quantum phase at level 0

    def test_invalid_vector_rejected(self, sp):
        with pytest.raises(ValidationError):
            sp.index(2, 0, (1, 0, 0), 0)   # sums to 1, needs 2

    def test_invalid_arrival_phase_rejected(self, sp):
        with pytest.raises(ValidationError):
            sp.index(1, 5, (1, 0, 0), 0)


class TestLabels:
    def test_labels_align_with_states(self, space):
        labels = space.labels(1)
        assert len(labels) == space.level_dim(1)
        assert labels[0].startswith("i=1")
        assert any("Q0" in s for s in labels)
        assert any("V0" in s for s in labels)
