"""Tests for the tagged-job response-time distribution."""

import math

import numpy as np
import pytest

from repro.core import (
    ClassConfig,
    GangSchedulingModel,
    SystemConfig,
    response_time_distribution,
    waiting_time_distribution,
)
from repro.errors import ValidationError
from repro.phasetype import erlang, exponential


def single_class(lam=0.6, mu=1.0, c=2, q=2.0, oh=0.3):
    return SystemConfig(processors=c, classes=(
        ClassConfig.markovian(1, arrival_rate=lam, service_rate=mu,
                              quantum_mean=q, overhead_mean=oh),))


class TestMeanConsistency:
    """The tagged-job mean must equal Little's law — two entirely
    independent computations."""

    @pytest.mark.parametrize("lam,c,q,oh", [
        (0.6, 2, 2.0, 0.3),
        (0.3, 1, 1.0, 0.1),
        (1.5, 4, 3.0, 0.05),
    ])
    def test_single_class(self, lam, c, q, oh):
        cfg = single_class(lam=lam, c=c, q=q, oh=oh)
        sol = GangSchedulingModel(cfg).solve()
        rt = response_time_distribution(sol, 0)
        assert rt.mean == pytest.approx(sol.mean_response_time(0), rel=1e-7)

    def test_multiclass(self, two_class_config):
        sol = GangSchedulingModel(two_class_config).solve()
        for p in range(2):
            rt = response_time_distribution(sol, p)
            assert rt.mean == pytest.approx(sol.mean_response_time(p),
                                            rel=1e-6)


class TestMM1Limit:
    def test_exponential_response(self):
        """M/M/1 limit: response time ~ Exp(mu - lam)."""
        cfg = SystemConfig(processors=1, classes=(
            ClassConfig.markovian(1, arrival_rate=0.5, service_rate=1.0,
                                  quantum_mean=100.0, overhead_mean=1e-5),))
        sol = GangSchedulingModel(cfg).solve()
        rt = response_time_distribution(sol, 0)
        rate = 1.0 - 0.5
        for x in (0.5, 1.0, 3.0):
            assert rt.sf(x) == pytest.approx(math.exp(-rate * x), abs=2e-3)


class TestAgainstSimulation:
    def test_quantiles_match_sim(self):
        from repro.sim import GangSimulation
        cfg = single_class()
        sol = GangSchedulingModel(cfg).solve()
        rt = response_time_distribution(sol, 0)
        rep = GangSimulation(cfg, seed=9, warmup=3000.0).run(60_000.0)
        q50, q95, q99 = rep.response_quantiles[0]
        assert rt.quantile(0.5) == pytest.approx(q50, rel=0.05)
        assert rt.quantile(0.95) == pytest.approx(q95, rel=0.05)


class TestValidation:
    def test_requires_exponential_service(self):
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig(partition_size=1, arrival=exponential(0.3),
                        service=erlang(2, mean=1.0),
                        quantum=exponential(mean=2.0),
                        overhead=exponential(mean=0.1)),))
        sol = GangSchedulingModel(cfg).solve()
        with pytest.raises(ValidationError, match="exponential"):
            response_time_distribution(sol, 0)

    def test_requires_poisson_arrivals(self):
        from repro.phasetype import hyperexponential
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig(partition_size=1,
                        arrival=hyperexponential([0.5, 0.5], [0.2, 1.0]),
                        service=exponential(1.0),
                        quantum=exponential(mean=2.0),
                        overhead=exponential(mean=0.1)),))
        sol = GangSchedulingModel(cfg).solve()
        with pytest.raises(ValidationError, match="PASTA"):
            response_time_distribution(sol, 0)

    def test_saturated_class_rejected(self):
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=4.0, service_rate=1.0,
                                  quantum_mean=1.0, overhead_mean=0.01,
                                  name="hot"),
            ClassConfig.markovian(2, arrival_rate=0.1, service_rate=2.0,
                                  quantum_mean=1.0, overhead_mean=0.01,
                                  name="cool"),
        ))
        sol = GangSchedulingModel(cfg).solve()
        with pytest.raises(ValidationError, match="saturated"):
            response_time_distribution(sol, 0)


class TestWaitingTime:
    @pytest.fixture
    def solved(self):
        return GangSchedulingModel(single_class()).solve()

    def test_waiting_below_response(self, solved):
        rt = response_time_distribution(solved, 0)
        wt = waiting_time_distribution(solved, 0)
        assert wt.mean < rt.mean
        # Response = waiting + (interrupted) service >= waiting + E[B].
        assert rt.mean - wt.mean >= 1.0 / solved.config.classes[0].service_rate - 1e-9

    def test_zero_wait_atom(self, solved):
        """Arrivals to a free partition mid-quantum wait zero."""
        wt = waiting_time_distribution(solved, 0)
        assert 0.0 < wt.atom_at_zero < 1.0

    def test_atom_matches_stationary_probability(self, solved):
        # P(wait = 0) = P(arrival sees m0 <= c AND quantum running)
        # = stationary P(level < c, quantum phase) by PASTA.
        wt = waiting_time_distribution(solved, 0)
        space = solved.classes[0].space
        sol = solved.classes[0].stationary
        prob = 0.0
        for i in range(space.partitions):   # arrival makes m0 = i+1 <= c
            pi = sol.level(i)
            for j, (a, v, k) in enumerate(space.states(i)):
                if space.is_quantum_phase(k):
                    prob += pi[j]
        assert wt.atom_at_zero == pytest.approx(prob, rel=1e-9)

    def test_heavier_load_waits_longer(self):
        light = GangSchedulingModel(single_class(lam=0.3)).solve()
        heavy = GangSchedulingModel(single_class(lam=1.2)).solve()
        assert waiting_time_distribution(heavy, 0).mean > \
            waiting_time_distribution(light, 0).mean

    def test_waiting_against_simulation(self):
        """Mean wait and zero-wait fraction vs an instrumented run."""
        from repro.sim import GangSimulation

        class WaitSim(GangSimulation):
            def __init__(self, *a, **k):
                super().__init__(*a, **k)
                self.waits = []

            def _start_job(self, job):
                if job.work_done == 0.0 and not hasattr(job, "_started"):
                    job._started = True
                    if job.arrival_time >= self.warmup:
                        self.waits.append(self.sim.now - job.arrival_time)
                super()._start_job(job)

        cfg = single_class()
        solved = GangSchedulingModel(cfg).solve()
        wt = waiting_time_distribution(solved, 0)
        sim = WaitSim(cfg, seed=5, warmup=2000.0)
        sim.run(50_000.0)
        waits = np.asarray(sim.waits)
        assert wt.mean == pytest.approx(waits.mean(), rel=0.08)
        assert wt.atom_at_zero == pytest.approx(
            float(np.mean(waits < 1e-12)), abs=0.02)


class TestShape:
    def test_stochastic_ordering_in_load(self):
        """Heavier load: stochastically longer responses."""
        light = GangSchedulingModel(single_class(lam=0.3)).solve()
        heavy = GangSchedulingModel(single_class(lam=1.2)).solve()
        rt_l = response_time_distribution(light, 0)
        rt_h = response_time_distribution(heavy, 0)
        for x in (0.5, 1.0, 2.0, 5.0):
            assert rt_h.sf(x) >= rt_l.sf(x) - 1e-9

    def test_response_exceeds_service_time(self):
        """Response stochastically dominates the bare service demand."""
        cfg = single_class(lam=0.6, mu=1.0)
        sol = GangSchedulingModel(cfg).solve()
        rt = response_time_distribution(sol, 0)
        svc = exponential(1.0)
        for x in (0.5, 1.0, 3.0):
            assert rt.sf(x) >= svc.sf(x) - 1e-9
