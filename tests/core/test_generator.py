"""Tests for the per-class QBD generator construction."""

import numpy as np
import pytest

from repro.core.generator import build_class_qbd
from repro.errors import ValidationError
from repro.phasetype import PhaseType, erlang, exponential, hyperexponential


def simple_chain(c=2, policy="switch", **kw):
    args = dict(
        arrival=exponential(0.5),
        service=exponential(1.0),
        quantum=exponential(mean=2.0),
        vacation=exponential(mean=1.0),
    )
    args.update(kw)
    return build_class_qbd(c, args["arrival"], args["service"],
                           args["quantum"], args["vacation"], policy=policy)


class TestStructuralInvariants:
    def test_valid_qbd_produced(self):
        proc, space = simple_chain()
        # Validation in QBDProcess already checks row sums; spot-check
        # block shapes here.
        assert proc.phase_dim == space.repeating_dim
        assert proc.boundary_levels == 2

    def test_erlang_quantum_and_vacation(self):
        proc, space = simple_chain(
            quantum=erlang(3, mean=2.0),
            vacation=erlang(2, mean=1.0),
        )
        assert space.m_quantum == 3 and space.m_vacation == 2
        assert proc.phase_dim == 5

    def test_multiphase_service(self):
        proc, space = simple_chain(c=2, service=erlang(2, mean=1.0))
        # Level 2 phases: 1 arrival x C(3,1)=3 vectors x 2 cycle = 6.
        assert proc.phase_dim == 6

    def test_phase_arrivals(self):
        proc, space = simple_chain(
            arrival=hyperexponential([0.5, 0.5], [0.3, 1.0]))
        assert space.m_arrival == 2

    def test_atom_rejected(self):
        with pytest.raises(ValidationError, match="atom"):
            simple_chain(vacation=PhaseType([0.5], [[-1.0]]))

    def test_labels_attached_on_request(self):
        proc, space = build_class_qbd(
            2, exponential(0.5), exponential(1.0),
            exponential(mean=1.0), exponential(mean=1.0), with_labels=True)
        assert proc.level_labels is not None
        assert len(proc.level_labels) == 4  # levels 0..2 plus repeating


class TestTransitionSemantics:
    def test_no_service_during_vacation(self):
        """Down-rates out of vacation states must be zero."""
        proc, space = simple_chain(c=1)
        A2 = np.asarray(proc.A2)
        for j, (a, v, k) in enumerate(space.states(2)):
            if not space.is_quantum_phase(k):
                assert A2[j].sum() == 0.0

    def test_arrivals_always_active(self):
        proc, space = simple_chain(c=1)
        A0 = np.asarray(proc.A0)
        lam = 0.5
        for j, (a, v, k) in enumerate(space.states(2)):
            assert A0[j].sum() == pytest.approx(lam)

    def test_switch_on_empty_targets_vacation(self):
        """Level 1 -> 0 transitions must land in vacation phases only."""
        proc, space = simple_chain(c=2)
        down = proc.boundary[1][0]
        # Level 0 states are all vacation-phase states under "switch".
        assert down.shape == (space.level_dim(1), space.level_dim(0))
        # Completion happens only from quantum states.
        for j, (a, v, k) in enumerate(space.states(1)):
            if space.is_quantum_phase(k):
                assert down[j].sum() == pytest.approx(1.0)  # mu = 1, one job
            else:
                assert down[j].sum() == 0.0

    def test_idle_policy_keeps_quantum_at_level0(self):
        proc, space = simple_chain(c=2, policy="idle")
        assert space.level_dim(0) == space.num_cycle_phases
        down = proc.boundary[1][0]
        for j, (a, v, k) in enumerate(space.states(1)):
            if space.is_quantum_phase(k):
                # Completion keeps the quantum running: lands on (a, 0, k).
                y = space.index(0, a, (0,), k)
                assert down[j, y] == pytest.approx(1.0)

    def test_refill_uses_service_init(self):
        """Above c, a completion pulls the next job in with alpha_B."""
        service = erlang(2, mean=1.0)
        proc, space = simple_chain(c=1, service=service)
        A2 = np.asarray(proc.A2)
        # From (a=0, v=(0,1), quantum): stage-2 completion rate 2.0 pulls
        # a queued job starting in stage 1 -> v=(1,0).
        x = space.index(2, 0, (0, 1), 0)
        y = space.index(1, 0, (1, 0), 0)
        assert A2[x, y] == pytest.approx(2.0)

    def test_quantum_expiry_enters_vacation_start(self):
        vac = erlang(2, mean=1.0)
        proc, space = simple_chain(c=1, vacation=vac)
        A1 = np.asarray(proc.A1)
        gamma = 0.5  # quantum rate (mean 2)
        x = space.index(2, 0, (1,), 0)            # quantum phase
        y = space.index(2, 0, (1,), space.m_quantum)  # vacation phase 0
        assert A1[x, y] == pytest.approx(gamma)

    def test_vacation_end_starts_quantum(self):
        proc, space = simple_chain(c=1)
        A1 = np.asarray(proc.A1)
        x = space.index(2, 0, (1,), 1)   # vacation phase (rate 1)
        y = space.index(2, 0, (1,), 0)   # quantum start
        assert A1[x, y] == pytest.approx(1.0)

    def test_level0_vacation_restart_drops_self_loop(self):
        """Exponential vacation at level 0: restart is a no-op."""
        proc, space = simple_chain(c=1)
        B00 = proc.boundary[0][0]
        # Single level-0 state: (a=0, (), vacation). Its only outflow is
        # the arrival (rate 0.5).
        assert B00.shape == (1, 1)
        assert B00[0, 0] == pytest.approx(-0.5)

    def test_level0_erlang_vacation_restarts_at_stage_one(self):
        vac = erlang(2, mean=1.0)
        proc, space = simple_chain(c=1, vacation=vac)
        B00 = proc.boundary[0][0]
        # State (0, (), V1) completes the vacation (stage rate 2 = k/mean)
        # and restarts at V0.
        x = space.index(0, 0, (0,), space.m_quantum + 1)
        y = space.index(0, 0, (0,), space.m_quantum + 0)
        assert B00[x, y] == pytest.approx(2.0)


class TestAgainstBruteForce:
    def test_stationary_matches_truncated_gth(self):
        """Full chain solution vs dense truncation, multi-phase case."""
        from repro.qbd import solve_qbd
        from repro.utils.linalg import solve_stationary_gth
        proc, space = simple_chain(
            c=2,
            arrival=exponential(0.4),
            service=erlang(2, mean=1.0),
            quantum=erlang(2, mean=1.5),
            vacation=erlang(2, mean=0.8),
        )
        sol = solve_qbd(proc)
        Q, tags = proc.truncated_generator(60)
        pi = solve_stationary_gth(Q)
        mean_direct = sum(lvl * pi[i] for i, (lvl, _) in enumerate(tags))
        assert sol.mean_level == pytest.approx(mean_direct, rel=1e-6)
        # State-by-state agreement on the boundary.
        offset = 0
        for lvl in range(3):
            d = space.level_dim(lvl)
            assert pi[offset:offset + d] == pytest.approx(sol.level(lvl),
                                                          abs=1e-8)
            offset += d
