"""Limit-case validation: the gang model collapses to known queues.

With a single class, the vacation is exactly the overhead ``C_0``;
driving the overhead to zero and the quantum to infinity recovers the
classical M/M/c (and M/PH/c) queue, whose mean job counts are known in
closed form.  These tests anchor the entire pipeline — state space,
generator, R matrix, boundary, measures — to textbook results.
"""

import math

import pytest

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.phasetype import erlang, exponential


def mmc_mean_jobs(lam, mu, c):
    rho = lam / (c * mu)
    a = lam / mu
    p0 = 1.0 / (sum(a ** k / math.factorial(k) for k in range(c))
                + a ** c / (math.factorial(c) * (1 - rho)))
    lq = p0 * a ** c * rho / (math.factorial(c) * (1 - rho) ** 2)
    return lq + a


def single_class(c, *, lam, mu, quantum_mean=50.0, overhead_mean=1e-4,
                 service=None):
    return SystemConfig(processors=c, classes=(
        ClassConfig(
            partition_size=1,
            arrival=exponential(lam),
            service=service or exponential(mu),
            quantum=exponential(mean=quantum_mean),
            overhead=exponential(mean=overhead_mean),
        ),
    ))


class TestMMCLimit:
    @pytest.mark.parametrize("lam,mu,c", [
        (0.7, 1.0, 1),
        (1.5, 1.0, 2),
        (3.0, 1.0, 4),
        (2.5, 0.8, 4),
        (6.0, 1.0, 8),
    ])
    def test_matches_erlang_c(self, lam, mu, c):
        cfg = single_class(c, lam=lam, mu=mu)
        sol = GangSchedulingModel(cfg).solve()
        assert sol.mean_jobs(0) == pytest.approx(mmc_mean_jobs(lam, mu, c),
                                                 rel=2e-3)

    def test_overhead_pushes_above_mmc(self):
        """A visible overhead strictly increases congestion."""
        lam, mu, c = 1.5, 1.0, 2
        sol = GangSchedulingModel(
            single_class(c, lam=lam, mu=mu, overhead_mean=0.5)).solve()
        assert sol.mean_jobs(0) > mmc_mean_jobs(lam, mu, c)

    def test_mph_c_limit_erlang_service(self):
        """M/E2/2 against a brute-force truncated CTMC of the same queue.

        The reference chain is assembled directly from first principles
        (state = (queue length, stage of job on server 1, stage of job
        on server 2)) with no gang-scheduling machinery involved.
        """
        import numpy as np

        from repro.utils.linalg import solve_stationary_gth

        lam, c, stages, r = 1.2, 2, 2, 2.0   # stage rate = k * mu = 2
        cfg = single_class(c, lam=lam, mu=1.0, service=erlang(2, mean=1.0))
        sol = GangSchedulingModel(cfg).solve()

        # Brute force. State: (n, s1, s2) with n jobs in system; s_i in
        # {0 (idle), 1, 2} is the Erlang stage on server i; servers fill
        # in order (s2 occupied only if s1 is).
        cap = 60
        states = []
        for n in range(cap + 1):
            busy = min(n, c)
            if busy == 0:
                states.append((n, 0, 0))
            elif busy == 1:
                states.extend((n, s1, 0) for s1 in (1, 2))
            else:
                states.extend((n, s1, s2) for s1 in (1, 2) for s2 in (1, 2))
        idx = {s: i for i, s in enumerate(states)}
        Q = np.zeros((len(states), len(states)))

        def add(a, b, rate):
            Q[idx[a], idx[b]] += rate

        for (n, s1, s2) in states:
            # Arrival.
            if n < cap:
                if n == 0:
                    add((n, s1, s2), (n + 1, 1, 0), lam)
                elif n == 1:
                    add((n, s1, s2), (n + 1, s1, 1), lam)
                else:
                    add((n, s1, s2), (n + 1, s1, s2), lam)
            # Stage advances / completions per busy server.
            for server, s in ((1, s1), (2, s2)):
                if s == 0:
                    continue
                if s < stages:      # advance to next stage
                    t = (n, s + 1, s2) if server == 1 else (n, s1, s + 1)
                    add((n, s1, s2), t, r)
                else:               # completion
                    if n > c:       # refill from queue at stage 1
                        t = (n - 1, 1, s2) if server == 1 else (n - 1, s1, 1)
                    elif n == 2:    # freed server idles; survivor on s1 slot
                        t = (n - 1, s2 if server == 1 else s1, 0)
                    else:           # n == 1: system empties
                        t = (0, 0, 0)
                    add((n, s1, s2), t, r)
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        pi = solve_stationary_gth(Q)
        ref_mean = sum(n * pi[i] for i, (n, _, _) in enumerate(states))
        assert sol.mean_jobs(0) == pytest.approx(ref_mean, rel=5e-3)


class TestVacationQueueExactness:
    """L=1 with a visible overhead is solved exactly (no approximation)."""

    def test_matches_decomposed_simulation(self):
        from repro.sim.decomposed import VacationServerSimulation
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=1.0, service_rate=1.0,
                                  quantum_mean=2.0, overhead_mean=0.3),
        ))
        sol = GangSchedulingModel(cfg).solve()
        cls = cfg.classes[0]
        sim = VacationServerSimulation(
            2, cls.arrival, cls.service, cls.quantum, cls.overhead,
            seed=11, warmup=2000.0)
        rep = sim.run(60_000.0)
        assert sol.mean_jobs(0) == pytest.approx(rep.mean_jobs[0], rel=0.05)
