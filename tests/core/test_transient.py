"""Tests for transient analysis of the class chains."""

import numpy as np
import pytest

from repro.core import (
    ClassConfig,
    GangSchedulingModel,
    SystemConfig,
    transient_mean_jobs,
)
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def solved():
    cfg = SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=0.8, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.3),))
    return GangSchedulingModel(cfg).solve()


class TestTransient:
    def test_converges_to_stationary(self, solved):
        tr = transient_mean_jobs(solved, 0, [1.0, 10.0, 100.0, 300.0])
        assert tr.mean_jobs[-1] == pytest.approx(tr.stationary_mean,
                                                 rel=1e-4)

    def test_monotone_relaxation_from_empty(self, solved):
        """From an empty start, E[N(t)] rises toward the mean."""
        tr = transient_mean_jobs(solved, 0, [0.5, 1, 2, 4, 8, 16, 32])
        diffs = np.diff(tr.mean_jobs)
        assert np.all(diffs > -1e-9)
        assert tr.mean_jobs[0] < tr.stationary_mean

    def test_overloaded_start_relaxes_down(self, solved):
        tr = transient_mean_jobs(solved, 0, [1.0, 5.0, 20.0, 100.0],
                                 initial_level=10)
        assert tr.mean_jobs[0] > tr.stationary_mean
        assert tr.mean_jobs[-1] == pytest.approx(tr.stationary_mean,
                                                 rel=1e-3)

    def test_settling_time_behaves(self, solved):
        tr = transient_mean_jobs(solved, 0, [0.5, 1, 2, 4, 8, 16, 32, 64])
        ts = tr.settling_time(rel_tol=0.05)
        assert 0.5 <= ts <= 64.0
        # Looser band settles no later.
        assert tr.settling_time(rel_tol=0.2) <= ts

    def test_series_export(self, solved):
        tr = transient_mean_jobs(solved, 0, [1.0, 2.0])
        s = tr.as_series("n")
        assert s.x == [1.0, 2.0]
        assert len(s.y) == 2

    def test_validates_times(self, solved):
        with pytest.raises(ValidationError):
            transient_mean_jobs(solved, 0, [2.0, 1.0])
        with pytest.raises(ValidationError):
            transient_mean_jobs(solved, 0, [])

    def test_initial_level_bounds(self, solved):
        with pytest.raises(ValidationError):
            transient_mean_jobs(solved, 0, [1.0], initial_level=10_000)

    def test_matches_simulation_snapshot(self, solved):
        """E[N(t)] at a mid-relaxation time vs many short sim runs."""
        from repro.sim import GangSimulation
        cfg = solved.config
        t_snap = 4.0
        tr = transient_mean_jobs(solved, 0, [t_snap])
        counts = []
        for seed in range(400):
            sim = GangSimulation(cfg, seed=seed)
            sim.run(t_snap)
            counts.append(sim.stats[0].in_system)
        sim_mean = float(np.mean(counts))
        se = float(np.std(counts, ddof=1) / np.sqrt(len(counts)))
        assert abs(tr.mean_jobs[0] - sim_mean) < max(3 * se, 0.08), (
            tr.mean_jobs[0], sim_mean, se)
