"""Tests for vacation construction (Theorems 4.1 and 4.3)."""

import numpy as np
import pytest

from repro.core import ClassConfig, SystemConfig, heavy_traffic_vacation
from repro.core.fixed_point import FixedPointOptions, run_fixed_point
from repro.core.vacation import (
    REDUCTIONS,
    effective_quantum,
    fixed_point_vacation,
    reduce_order,
)
from repro.errors import ValidationError
from repro.phasetype import PhaseType, erlang, exponential


def make_system(L=3, lam=0.3, policy="switch"):
    classes = tuple(
        ClassConfig.markovian(2 ** p, arrival_rate=lam, service_rate=1.0 + p,
                              quantum_mean=1.0 + 0.5 * p,
                              overhead_mean=0.02 * (p + 1))
        for p in range(L))
    return SystemConfig(processors=4, classes=classes,
                        empty_queue_policy=policy)


class TestHeavyTrafficVacation:
    def test_theorem_4_1_mean(self):
        cfg = make_system(3)
        for p in range(3):
            v = heavy_traffic_vacation(cfg, p)
            expect = cfg.classes[p].overhead.mean
            for off in range(1, 3):
                n = (p + off) % 3
                expect += cfg.classes[n].quantum.mean
                expect += cfg.classes[n].overhead.mean
            assert v.mean == pytest.approx(expect)

    def test_theorem_4_1_order(self):
        cfg = make_system(3)
        v = heavy_traffic_vacation(cfg, 0)
        # N = sum_{n != p} M_n + sum_n m_{C_n}; all exponential here.
        assert v.order == 2 + 3

    def test_single_class_is_just_overhead(self):
        cfg = SystemConfig(processors=2, classes=(
            ClassConfig.markovian(1, arrival_rate=0.3, service_rate=1.0,
                                  quantum_mean=1.0, overhead_mean=0.5),))
        v = heavy_traffic_vacation(cfg, 0)
        assert v.mean == pytest.approx(0.5)
        assert v.order == 1

    def test_variance_adds(self):
        cfg = make_system(2)
        v = heavy_traffic_vacation(cfg, 0)
        expect = (cfg.classes[0].overhead.variance
                  + cfg.classes[1].quantum.variance
                  + cfg.classes[1].overhead.variance)
        assert v.variance == pytest.approx(expect)


class TestFixedPointVacation:
    def test_uses_effective_quanta(self):
        cfg = make_system(3)
        eff = {n: exponential(mean=0.2) for n in range(3)}
        v = fixed_point_vacation(cfg, 0, eff)
        expect = (cfg.classes[0].overhead.mean
                  + 0.2 + cfg.classes[1].overhead.mean
                  + 0.2 + cfg.classes[2].overhead.mean)
        assert v.mean == pytest.approx(expect)

    def test_atom_in_quanta_is_fine(self):
        cfg = make_system(2)
        eff = {n: PhaseType([0.3], [[-5.0]]) for n in range(2)}
        v = fixed_point_vacation(cfg, 0, eff)
        # Convolution starts with a proper overhead: no atom overall.
        assert v.atom_at_zero == pytest.approx(0.0)


class TestEffectiveQuantum:
    @pytest.fixture
    def solved(self):
        cfg = make_system(2, lam=0.4)
        res = run_fixed_point(cfg, FixedPointOptions(heavy_traffic_only=True))
        return cfg, res

    def test_stochastically_shorter_than_quantum(self, solved):
        cfg, res = solved
        for p in range(2):
            eq = effective_quantum(res.spaces[p], res.processes[p],
                                   res.solutions[p], res.vacations[p])
            assert eq.mean < cfg.classes[p].quantum.mean
            # Survival dominated by the raw quantum at a few points.
            for x in (0.5, 1.0, 2.0):
                assert eq.sf(x) <= cfg.classes[p].quantum.sf(x) + 1e-9

    def test_atom_is_skip_probability(self, solved):
        cfg, res = solved
        eq = effective_quantum(res.spaces[0], res.processes[0],
                               res.solutions[0], res.vacations[0])
        assert 0.0 < eq.atom_at_zero < 1.0

    def test_idle_policy_has_no_atom(self):
        cfg = make_system(2, lam=0.4, policy="idle")
        res = run_fixed_point(cfg, FixedPointOptions(heavy_traffic_only=True))
        eq = effective_quantum(res.spaces[0], res.processes[0],
                               res.solutions[0], res.vacations[0])
        assert eq.atom_at_zero == pytest.approx(0.0, abs=1e-12)

    def test_truncation_insensitive(self, solved):
        cfg, res = solved
        a = effective_quantum(res.spaces[0], res.processes[0],
                              res.solutions[0], res.vacations[0],
                              truncation_mass=1e-6)
        b = effective_quantum(res.spaces[0], res.processes[0],
                              res.solutions[0], res.vacations[0],
                              truncation_mass=1e-12)
        assert a.mean == pytest.approx(b.mean, rel=1e-4)


class TestReduceOrder:
    def test_exact_is_identity(self):
        d = erlang(3, mean=1.0)
        assert reduce_order(d, "exact") is d

    def test_moments2_matches(self):
        d = erlang(3, mean=2.0)
        r = reduce_order(d, "moments2")
        assert r.mean == pytest.approx(d.mean, rel=1e-9)
        assert r.scv == pytest.approx(d.scv, rel=1e-8)

    def test_moments3_matches(self):
        # A distribution with scv > 1 (feasible for Coxian-2).
        from repro.phasetype import hyperexponential
        d = hyperexponential([0.3, 0.7], [0.4, 2.0])
        r = reduce_order(d, "moments3")
        for k in (1, 2, 3):
            assert r.moment(k) == pytest.approx(d.moment(k), rel=1e-4)

    def test_atom_preserved(self):
        d = PhaseType([0.6, 0.0], np.array([[-1.0, 1.0], [0.0, -2.0]]))
        r = reduce_order(d, "moments2")
        assert r.atom_at_zero == pytest.approx(d.atom_at_zero, abs=1e-12)
        assert r.mean == pytest.approx(d.mean, rel=1e-9)

    def test_pure_atom(self):
        d = PhaseType([0.0], [[-1.0]])
        r = reduce_order(d, "moments2")
        assert r.atom_at_zero == pytest.approx(1.0)

    def test_unknown_reduction(self):
        with pytest.raises(ValidationError):
            reduce_order(exponential(1.0), "pca")

    def test_reductions_constant_complete(self):
        assert set(REDUCTIONS) == {"exact", "moments2", "moments3"}
