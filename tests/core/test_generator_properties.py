"""Property-based tests: the gang chain is a valid QBD for *any*
well-formed configuration.

Strategies draw random small systems (partition counts, PH orders,
rates, policies); properties assert the invariants the analysis relies
on: generator rows vanish, the drift test matches sp(R), flow
conservation (stationary throughput equals the arrival rate), and the
vacation construction's stochastic ordering.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.generator import build_class_qbd
from repro.core.measures import compute_measures
from repro.phasetype import erlang, exponential, hyperexponential
from repro.qbd.rmatrix import solve_R
from repro.qbd.stability import drift
from repro.qbd.stationary import solve_qbd
from repro.utils.linalg import spectral_radius

rates = st.floats(0.1, 3.0, allow_nan=False, allow_infinity=False)


@st.composite
def small_ph(draw, *, max_order: int = 2):
    kind = draw(st.sampled_from(["exp", "erlang", "hyper"]))
    if kind == "exp" or max_order == 1:
        return exponential(draw(rates))
    if kind == "erlang":
        return erlang(draw(st.integers(1, max_order)), rate=draw(rates))
    w = draw(st.floats(0.1, 0.9))
    return hyperexponential([w, 1 - w], [draw(rates), draw(rates)])


@st.composite
def class_chains(draw):
    c = draw(st.integers(1, 3))
    arrival = draw(small_ph())
    service = draw(small_ph())
    quantum = draw(small_ph())
    vacation = draw(small_ph())
    policy = draw(st.sampled_from(["switch", "idle"]))
    return c, arrival, service, quantum, vacation, policy


@given(chain=class_chains())
@settings(max_examples=40, deadline=None)
def test_generator_structure_always_valid(chain):
    """QBDProcess construction validates row sums and signs — merely
    building the chain without an exception is the property."""
    c, arrival, service, quantum, vacation, policy = chain
    process, space = build_class_qbd(c, arrival, service, quantum,
                                     vacation, policy=policy)
    assert process.phase_dim == space.repeating_dim
    assert process.boundary_levels == c


@given(chain=class_chains())
@settings(max_examples=30, deadline=None)
def test_drift_matches_spectral_radius(chain):
    c, arrival, service, quantum, vacation, policy = chain
    process, _ = build_class_qbd(c, arrival, service, quantum, vacation,
                                 policy=policy)
    report = drift(process.A0, process.A1, process.A2)
    # Compare against sp(R) when a solution is attemptable.
    if report.stable:
        R = solve_R(process.A0, process.A1, process.A2)
        assert spectral_radius(R) < 1.0 + 1e-10


@given(chain=class_chains())
@settings(max_examples=25, deadline=None)
def test_flow_conservation(chain):
    """Stationary departure rate equals the arrival rate — the strongest
    single check on the whole construction."""
    c, arrival, service, quantum, vacation, policy = chain
    process, space = build_class_qbd(c, arrival, service, quantum,
                                     vacation, policy=policy)
    report = drift(process.A0, process.A1, process.A2)
    assume(report.stable and report.traffic_intensity < 0.95)
    solution = solve_qbd(process)
    measures = compute_measures(space, solution,
                                arrival_rate=arrival.rate,
                                service=service, vacation=vacation)
    np.testing.assert_allclose(measures.throughput, arrival.rate,
                               rtol=1e-5)
    # Utilization identity: rho_p = lambda / (c mu).
    np.testing.assert_allclose(
        measures.utilization, arrival.rate / (c * service.rate), rtol=1e-5)


@given(chain=class_chains())
@settings(max_examples=25, deadline=None)
def test_total_probability_mass(chain):
    c, arrival, service, quantum, vacation, policy = chain
    process, _ = build_class_qbd(c, arrival, service, quantum, vacation,
                                 policy=policy)
    report = drift(process.A0, process.A1, process.A2)
    assume(report.stable and report.traffic_intensity < 0.95)
    solution = solve_qbd(process)
    np.testing.assert_allclose(solution.total_mass_check(), 1.0, atol=1e-8)
    # Tail probabilities are a valid survival function.
    tails = [solution.tail_probability(k) for k in range(8)]
    assert all(1e-12 >= b - a for a, b in zip(tails, tails[1:]))


@given(chain=class_chains(), x=st.floats(0.05, 10.0))
@settings(max_examples=25, deadline=None)
def test_effective_quantum_dominated_by_raw_quantum(chain, x):
    """min(T, emptying time) is stochastically below T."""
    from repro.core.vacation import effective_quantum
    c, arrival, service, quantum, vacation, policy = chain
    process, space = build_class_qbd(c, arrival, service, quantum,
                                     vacation, policy=policy)
    report = drift(process.A0, process.A1, process.A2)
    assume(report.stable and report.traffic_intensity < 0.9)
    solution = solve_qbd(process)
    eq = effective_quantum(space, process, solution, vacation,
                           truncation_mass=1e-8, max_levels=120)
    assert eq.mean <= quantum.mean + 1e-9
    assert eq.sf(x) <= quantum.sf(x) + 1e-7
