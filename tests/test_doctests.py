"""Execute the library's docstring examples.

Examples in docstrings are part of the contract; this keeps them from
rotting.  Modules whose examples are expensive (full figure sweeps)
are simply not given doctest examples, so the whole pass stays fast.
"""

import doctest
import importlib

import pytest

MODULES = [
    "repro",
    "repro.phasetype.distribution",
    "repro.phasetype.equilibrium",
    "repro.phasetype.em",
    "repro.core.model",
    "repro.core.batchmodel",
    "repro.sim.engine",
    "repro.sim.gang",
    "repro.utils.rng",
]


@pytest.mark.parametrize("modname", MODULES)
def test_module_doctests(modname):
    mod = importlib.import_module(modname)
    result = doctest.testmod(mod, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s) in {modname}"
    # Modules on this list are expected to actually contain examples.
    assert result.attempted > 0, f"no doctests found in {modname}"
