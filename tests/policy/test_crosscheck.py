"""Analytic <-> simulation agreement for every registered policy.

Two guarantees, matching the refactor's acceptance bar:

* **Pure-refactor byte-identity** — running round-robin *as a policy*
  must reproduce the pre-policy code path bit for bit: same figure-2
  result bytes, same scenario content hashes (pinned literals below,
  captured from the pre-policy seed).
* **Variant agreement** — for every registered policy kind, hypothesis
  draws parameters and the analytic model must track its paired
  simulator within the documented bias band on a small two-class
  system (the model's known moderate-load low bias applies to every
  cycle the policies build, so the band is one-sided-ish: analytic
  sits low, never wildly high).
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.errors import UnstableSystemError
from repro.policy import (
    MalleableSpeedup,
    PriorityCycle,
    RoundRobin,
    WeightedQuantum,
    policy_kinds,
)
from repro.sim import run_replications
from repro.sim.variants import simulation_for

#: Content hashes of every pre-policy preset, captured from the seed
#: revision.  The default round-robin policy normalizes to *absent* in
#: the serialized form, so these must never move — a warm service
#: store survives the policy layer.
PINNED_SCENARIO_KEYS = {
    "fig2": "819ede550f09ac4518a7ba9aac0dd76152cc1861ac66128230d48269adfb7c0f",
    "fig3": "4b059438bc6a03f57c2e4aa3bd0c1428d7944e7b2e5dce1360882477e18d864d",
    "fig4": "db6e3d6ed71182b23e132815ab8002aa834fdf4e3478c26453d341d0b1b9e000",
    "fig5-class0":
        "8b29dfcd44f1bf100ba761d03bfb78435228d3eb1db1e8f029635ba8df8fd800",
    "fig5-class1":
        "9e23687d159071f8c665a8eba06b11d35177cf0691f01f7fcdc852ce8e71e08b",
    "fig5-class2":
        "64c518e5f0e511bc77769940315a2a9da98a1136268dda602b46ad994860c084",
    "fig5-class3":
        "a36c808fc6a7f5d7a2ab9c0887ed8cb7fa0be19cea47b0433461332d7e0e5003",
    "crosscheck-moderate":
        "d85a070692c54d5384165411536f9d5fd355f422283889835749e67421b914db",
    "crosscheck-heavy":
        "e27f81a69c740ff3d4b9b7966521525a25e60193a6a1201ae00567cc4af1e62c",
}


def small_config() -> SystemConfig:
    """A two-class system small enough to crosscheck in ~1s/example."""
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=0.9, service_rate=0.7,
                              quantum_mean=1.0, overhead_mean=0.05,
                              name="small"),
        ClassConfig.markovian(2, arrival_rate=0.5, service_rate=1.0,
                              quantum_mean=1.0, overhead_mean=0.05,
                              name="big"),
    ))


def policy_strategy(kind: str):
    """Draw a policy instance of ``kind`` valid for :func:`small_config`."""
    weight = st.floats(min_value=0.6, max_value=2.0)
    if kind == "round-robin":
        return st.just(RoundRobin())
    if kind == "weighted":
        return st.builds(WeightedQuantum,
                         weights=st.tuples(weight, weight))
    if kind == "priority":
        return st.builds(PriorityCycle,
                         order=st.sampled_from([(0, 1), (1, 0)]),
                         decay=st.floats(min_value=0.5, max_value=1.0),
                         floor=st.floats(min_value=0.2, max_value=0.5))
    if kind == "malleable":
        return st.builds(MalleableSpeedup,
                         processors=st.tuples(st.sampled_from([1, 2]),
                                              st.sampled_from([2, 4])),
                         sigma=st.floats(min_value=0.6, max_value=1.0))
    raise AssertionError(
        f"policy kind {kind!r} has no crosscheck strategy; every "
        f"registered policy must be covered here")


class TestEveryRegisteredPolicyAgrees:
    """One hypothesis property per registered kind (the parametrize
    over ``policy_kinds()`` is the completeness guard: registering a
    new policy without a strategy fails loudly)."""

    @pytest.mark.parametrize("kind", policy_kinds())
    def test_kind_has_a_strategy(self, kind):
        policy_strategy(kind)

    @pytest.mark.parametrize("kind", policy_kinds())
    @settings(max_examples=4, deadline=None, derandomize=True)
    @given(data=st.data())
    def test_analytic_tracks_simulation(self, kind, data):
        policy = data.draw(policy_strategy(kind))
        cfg = small_config()
        try:
            sol = GangSchedulingModel(cfg, policy=policy).solve()
        except UnstableSystemError:
            # A draw may push a class past saturation; agreement is
            # only defined for stable systems.
            assume(False)
        summ = run_replications(
            lambda s, w: simulation_for(cfg, policy=policy, seed=s,
                                        warmup=w),
            replications=2, horizon=15_000.0, warmup=1_500.0)["mean_jobs"]
        for p in range(cfg.num_classes):
            rel = (sol.mean_jobs(p) - summ.mean[p]) / summ.mean[p]
            assert -0.35 < rel < 0.15, (
                f"{policy.describe()}: class {p} analytic "
                f"{sol.mean_jobs(p):.3f} vs sim {summ.mean[p]:.3f} "
                f"({rel:+.1%})")


class TestRoundRobinIsAPureRefactor:
    def test_figure2_bytes_identical_under_explicit_policy(self):
        from repro.scenario import canonical_bytes, get_scenario, run
        from repro.scenario import run_result_to_dict
        fig2 = get_scenario("fig2")
        baseline = run_result_to_dict(run(fig2))
        as_policy = run_result_to_dict(
            run(fig2.with_policy(RoundRobin())))
        assert canonical_bytes(as_policy) == canonical_bytes(baseline)

    def test_model_solution_identical_under_explicit_policy(self):
        cfg = small_config()
        base = GangSchedulingModel(cfg).solve()
        as_policy = GangSchedulingModel(cfg, policy=RoundRobin()).solve()
        for p in range(cfg.num_classes):
            assert as_policy.mean_jobs(p) == base.mean_jobs(p)  # bitwise

    def test_simulation_identical_under_explicit_policy(self):
        cfg = small_config()
        base = simulation_for(cfg, seed=7, warmup=500.0)
        as_policy = simulation_for(cfg, policy=RoundRobin(), seed=7,
                                   warmup=500.0)
        r1 = base.run(horizon=5_000.0)
        r2 = as_policy.run(horizon=5_000.0)
        assert r1.mean_jobs == r2.mean_jobs  # bitwise

    @pytest.mark.parametrize("name,key", sorted(PINNED_SCENARIO_KEYS.items()))
    def test_pre_policy_scenario_keys_unchanged(self, name, key):
        from repro.scenario import get_scenario, scenario_key
        assert scenario_key(get_scenario(name)) == key, (
            f"{name}: scenario hash moved — the service store would go "
            f"cold; the default policy must serialize to absent")
