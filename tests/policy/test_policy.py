"""Unit tests for the scheduling-policy layer: protocol, registry, parsing."""

import pickle

import pytest

from repro.core import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.policy import (
    ROUND_ROBIN,
    MalleableSpeedup,
    PriorityCycle,
    RoundRobin,
    SchedulingPolicy,
    WeightedQuantum,
    parse_policy,
    policy_from_dict,
    policy_kinds,
    policy_to_dict,
    register_policy,
    registered_policies,
    resolve_policy,
)


@pytest.fixture(scope="module")
def cfg():
    return SystemConfig(processors=8, classes=tuple(
        ClassConfig.markovian(g, arrival_rate=0.3, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.05,
                              name=f"class{p}")
        for p, g in enumerate((1, 2, 4, 8))))


class TestRegistry:
    def test_all_shipped_kinds_registered(self):
        assert set(policy_kinds()) >= {
            "round-robin", "weighted", "priority", "malleable"}

    def test_registered_policies_is_a_copy(self):
        reg = registered_policies()
        reg.pop("round-robin")
        assert "round-robin" in policy_kinds()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            @register_policy
            class Impostor(SchedulingPolicy):
                kind = "round-robin"

    def test_empty_kind_rejected(self):
        with pytest.raises(ValidationError, match="non-empty kind"):
            @register_policy
            class Nameless(SchedulingPolicy):
                pass

    def test_resolve_none_is_the_shared_round_robin(self):
        assert resolve_policy(None) is ROUND_ROBIN
        assert resolve_policy(ROUND_ROBIN) is ROUND_ROBIN

    def test_resolve_rejects_non_policies(self):
        with pytest.raises(ValidationError, match="SchedulingPolicy"):
            resolve_policy("weighted")

    def test_only_round_robin_is_default(self):
        assert RoundRobin().is_default
        assert not WeightedQuantum(weights=(1.0, 1.0)).is_default


class TestParsing:
    @pytest.mark.parametrize("spec,expected", [
        ("round-robin", RoundRobin()),
        ("weighted:2/1.5/1/1",
         WeightedQuantum(weights=(2.0, 1.5, 1.0, 1.0))),
        ("weighted:weights=2/1.5/1/1",
         WeightedQuantum(weights=(2.0, 1.5, 1.0, 1.0))),
        ("priority:order=3/2/1/0,decay=0.7,floor=0.3",
         PriorityCycle(order=(3, 2, 1, 0), decay=0.7, floor=0.3)),
        ("priority:3/2/1/0", PriorityCycle(order=(3, 2, 1, 0))),
        ("malleable:procs=2/2/4/8,sigma=0.7",
         MalleableSpeedup(processors=(2, 2, 4, 8), sigma=0.7)),
        ("malleable:2/2/4/8", MalleableSpeedup(processors=(2, 2, 4, 8))),
    ])
    def test_spec_round_trip(self, spec, expected):
        assert parse_policy(spec) == expected

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown scheduling"):
            parse_policy("fifo")

    def test_bad_argument_rejected(self):
        with pytest.raises(ValidationError, match="bad arguments"):
            parse_policy("weighted:nope=1")

    def test_bare_value_needs_a_primary_param(self):
        with pytest.raises(ValidationError, match="key=value"):
            parse_policy("round-robin:3")


class TestSerialization:
    POLICIES = [
        RoundRobin(),
        WeightedQuantum(weights=(2.0, 1.5, 1.0, 1.0)),
        PriorityCycle(order=(3, 2, 1, 0), decay=0.7, floor=0.3),
        MalleableSpeedup(processors=(2, 2, 4, 8), sigma=0.7),
    ]

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.kind)
    def test_dict_round_trip(self, policy):
        data = policy_to_dict(policy)
        assert data["kind"] == policy.kind
        assert policy_from_dict(data) == policy

    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.kind)
    def test_pickle_and_hash(self, policy):
        # Policies ride inside frozen FixedPointOptions and travel to
        # sweep worker processes: they must pickle and hash.
        assert pickle.loads(pickle.dumps(policy)) == policy
        assert {policy: 1}[policy] == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValidationError, match="unknown scheduling"):
            policy_from_dict({"kind": "fifo"})

    def test_unknown_param_rejected(self):
        with pytest.raises(ValidationError, match="bad parameters"):
            policy_from_dict({"kind": "weighted", "weightz": [1, 1]})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValidationError, match="'kind'"):
            policy_from_dict({"weights": [1, 1]})


class TestRoundRobinViews:
    def test_views_alias_config_distributions(self, cfg):
        # Identity, not just equality: aliasing is what makes
        # round-robin-as-a-policy byte-identical to the legacy path
        # (same PH objects -> same convolutions, same sampler caches).
        for p, view in enumerate(ROUND_ROBIN.views(cfg)):
            cls = cfg.classes[p]
            assert view.arrival is cls.arrival
            assert view.service is cls.service
            assert view.quantum is cls.quantum
            assert view.overhead is cls.overhead
            assert view.partitions == cfg.partitions(p)
            assert view.job_processors == cls.partition_size

    def test_turn_order_and_successor(self, cfg):
        assert ROUND_ROBIN.turn_order(cfg) == (0, 1, 2, 3)
        assert ROUND_ROBIN.successor(cfg, 3) == 0

    def test_cycle_parts_is_theorem_41_shape(self, cfg):
        # C_p, then (G_n, C_n) for the other L-1 classes in turn order.
        parts = ROUND_ROBIN.cycle_parts(cfg, 1)
        assert len(parts) == 1 + 2 * (cfg.num_classes - 1)
        assert parts[0] is cfg.classes[1].overhead
        assert parts[1] is cfg.classes[2].quantum
        assert parts[2] is cfg.classes[2].overhead
        assert parts[-2] is cfg.classes[0].quantum
        assert parts[-1] is cfg.classes[0].overhead

    def test_cycle_parts_substitutes_effective_quanta(self, cfg):
        eff = {p: cfg.classes[p].quantum.rescaled(0.5)
               for p in range(cfg.num_classes)}
        parts = ROUND_ROBIN.cycle_parts(cfg, 0, effective_quanta=eff)
        assert parts[1] is eff[1] and parts[3] is eff[2]


class TestWeightedQuantum:
    def test_quantum_mass_scales_with_weight_and_is_conserved(self, cfg):
        pol = WeightedQuantum(weights=(2.0, 1.0, 1.0, 1.0))
        views = pol.views(cfg)
        base = [cls.quantum.mean for cls in cfg.classes]
        scaled = [v.quantum.mean for v in views]
        # Class 0 holds 2x the share of class 1...
        assert scaled[0] / scaled[1] == pytest.approx(2.0)
        # ...and total quantum mass in the cycle is conserved.
        assert sum(scaled) == pytest.approx(sum(base))

    def test_uniform_weights_reduce_to_round_robin(self, cfg):
        views = WeightedQuantum(weights=(1.0, 1.0, 1.0, 1.0)).views(cfg)
        for p, view in enumerate(views):
            assert view.quantum is cfg.classes[p].quantum

    def test_arity_and_sign_validated(self, cfg):
        with pytest.raises(ValidationError, match="4 classes"):
            WeightedQuantum(weights=(1.0, 1.0)).views(cfg)
        with pytest.raises(ValidationError, match="positive"):
            WeightedQuantum(weights=(1.0, -1.0, 1.0, 1.0)).views(cfg)


class TestPriorityCycle:
    def test_turn_order_follows_priority(self, cfg):
        pol = PriorityCycle(order=(3, 2, 1, 0))
        assert pol.turn_order(cfg) == (3, 2, 1, 0)
        assert pol.successor(cfg, 3) == 2
        assert pol.successor(cfg, 0) == 3

    def test_quantum_mass_decays_by_rank_with_floor(self, cfg):
        pol = PriorityCycle(order=(3, 2, 1, 0), decay=0.5, floor=0.2)
        views = pol.views(cfg)
        means = [v.quantum.mean for v in views]
        # Priority order 3 > 2 > 1 > 0: quantum mass is monotone in rank.
        assert means[3] > means[2] > means[1] >= means[0]
        # The starvation bound: raw shares 1, .5, .25, then the floor
        # (0.2 > 0.5**3) keeps the lowest class at a guaranteed slice.
        assert means[1] / means[3] == pytest.approx(0.25)
        assert means[0] / means[3] == pytest.approx(0.2)
        # Total quantum mass in the cycle is conserved.
        assert sum(means) == pytest.approx(
            sum(cls.quantum.mean for cls in cfg.classes))

    def test_validation(self, cfg):
        with pytest.raises(ValidationError, match="permutation"):
            PriorityCycle(order=(0, 0, 1, 2)).views(cfg)
        with pytest.raises(ValidationError, match="decay"):
            PriorityCycle(order=(0, 1, 2, 3), decay=0.0).views(cfg)
        with pytest.raises(ValidationError, match="floor"):
            PriorityCycle(order=(0, 1, 2, 3), floor=1.5).views(cfg)


class TestMalleableSpeedup:
    def test_capacity_and_service_rescaling(self, cfg):
        pol = MalleableSpeedup(processors=(2, 2, 4, 8), sigma=0.7)
        views = pol.views(cfg)
        for p, view in enumerate(views):
            k = pol.processors[p]
            assert view.partitions == cfg.processors // k
            assert view.job_processors == k
        # Class 0 folds from g=1 onto k=2 processors: service mean
        # shrinks by s(1)/s(2) = 2**-0.7.
        assert views[0].service.mean == pytest.approx(
            cfg.classes[0].service.mean * 2.0 ** -0.7)
        # Class 3 keeps its rigid allocation: service is untouched.
        assert views[3].service is cfg.classes[3].service

    def test_validation(self, cfg):
        with pytest.raises(ValidationError, match="does not divide"):
            MalleableSpeedup(processors=(3, 2, 4, 8)).views(cfg)
        with pytest.raises(ValidationError, match="sigma"):
            MalleableSpeedup(processors=(1, 2, 4, 8), sigma=1.5).views(cfg)
        with pytest.raises(ValidationError, match="k must be >= 1"):
            MalleableSpeedup(processors=(0, 2, 4, 8)).views(cfg)
        with pytest.raises(ValidationError, match="sizes 2 classes"):
            MalleableSpeedup(processors=(2, 2)).views(cfg)


class TestScenarioIntegration:
    def test_explicit_round_robin_normalizes_to_absent(self):
        from repro.scenario import get_scenario, scenario_key
        fig2 = get_scenario("fig2")
        aliased = fig2.with_policy(RoundRobin())
        assert aliased.system.policy is None
        assert scenario_key(aliased) == scenario_key(fig2)

    def test_non_default_policy_changes_key_and_round_trips(self):
        from repro.scenario import get_scenario, scenario_key
        from repro.serialize import scenario_from_dict, scenario_to_dict
        fig2 = get_scenario("fig2")
        weighted = fig2.with_policy(
            WeightedQuantum(weights=(2.0, 1.5, 1.0, 1.0)))
        assert scenario_key(weighted) != scenario_key(fig2)
        data = scenario_to_dict(weighted)
        assert data["version"] == 2
        assert data["system"]["policy"]["kind"] == "weighted"
        assert scenario_from_dict(data) == weighted

    def test_describe_is_stable(self):
        assert RoundRobin().describe() == "round-robin"
        assert PriorityCycle(order=(1, 0)).describe() == \
            "priority(decay=0.5, floor=0.05, order=[1, 0])"
