"""Ablation: R-matrix algorithms (logarithmic reduction vs substitution).

Times both solvers on the repeating blocks of a Figure 2 class chain
across loads, and verifies they produce the same matrix.  Logarithmic
reduction converges quadratically and should win by a growing margin
as the drift approaches zero (rho -> 1), where successive substitution
slows to a crawl.
"""

import time

import numpy as np
import pytest

from repro.analysis import Table
from repro.core.generator import build_class_qbd
from repro.core.vacation import heavy_traffic_vacation
from repro.qbd.rmatrix import solve_R
from repro.workloads import fig23_config


def class0_blocks(lam):
    cfg = fig23_config(lam, 1.0)
    vacation = heavy_traffic_vacation(cfg, 0)
    process, _ = build_class_qbd(
        cfg.partitions(0), cfg.classes[0].arrival, cfg.classes[0].service,
        cfg.classes[0].quantum, vacation)
    return process.A0, process.A1, process.A2


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("method", ["logreduction", "substitution"])
def test_rmatrix_method_speed(benchmark, method):
    A0, A1, A2 = class0_blocks(0.9)
    R = benchmark(solve_R, A0, A1, A2, method=method)
    residual = R @ R @ A2 + R @ A1 + A0
    assert np.max(np.abs(residual)) < 1e-8


@pytest.mark.benchmark(group="ablation")
def test_rmatrix_methods_agree_across_loads(benchmark, emit):
    table = Table("lambda", ["dim", "t_logred_ms", "t_subst_ms",
                             "max_abs_diff"])

    def run_all():
        rows = []
        for lam in (0.3, 0.6, 0.9, 0.95):
            A0, A1, A2 = class0_blocks(lam)
            t0 = time.perf_counter()
            R1 = solve_R(A0, A1, A2, method="logreduction")
            t1 = time.perf_counter()
            R2 = solve_R(A0, A1, A2, method="substitution")
            t2 = time.perf_counter()
            rows.append((lam, A1.shape[0], (t1 - t0) * 1e3, (t2 - t1) * 1e3,
                         float(np.max(np.abs(R1 - R2)))))
        return rows

    for lam, dim, t_log, t_sub, diff in benchmark.pedantic(
            run_all, rounds=1, iterations=1):
        table.add_row(lam, [dim, t_log, t_sub, diff])
        assert diff < 1e-7
    emit("ablation_rmatrix", table, notes=(
        "R-matrix solver ablation on the class-0 chain of the fig2/3 "
        "config: logarithmic reduction vs successive substitution."))
