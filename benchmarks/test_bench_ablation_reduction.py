"""Ablation: effective-quantum order reduction inside the fixed point.

Theorem 4.3's effective quantum is a PH distribution with one phase
per (truncated) chain state; feeding it back exactly makes the next
iteration's state space large.  The library therefore compresses it by
moment matching (2 or 3 moments), invoking the insensitivity argument
the paper cites.  This bench measures what the compression costs in
accuracy and buys in time.
"""

import time

import pytest

from repro.analysis import Table
from repro.core import GangSchedulingModel
from repro.core.vacation import REDUCTIONS
from repro.workloads import fig23_config


def solve_with(reduction, lam=0.6, q=2.0):
    model = GangSchedulingModel(
        fig23_config(lam, q), reduction=reduction,
        truncation_mass=1e-7, max_truncation_levels=60)
    t0 = time.perf_counter()
    solved = model.solve(max_iterations=80)
    return solved, time.perf_counter() - t0


@pytest.mark.benchmark(group="ablation")
@pytest.mark.parametrize("reduction", list(REDUCTIONS))
def test_reduction_speed(benchmark, reduction):
    solved, _ = benchmark.pedantic(solve_with, args=(reduction,),
                                   rounds=1, iterations=1)
    assert solved.converged


@pytest.mark.benchmark(group="ablation")
def test_reduction_accuracy(benchmark, emit):
    table = Table("reduction", [f"N[class{p}]" for p in range(4)]
                  + ["solve_seconds"])
    outcomes = benchmark.pedantic(
        lambda: [solve_with(red) for red in REDUCTIONS],
        rounds=1, iterations=1)
    results = {}
    for i, (red, (solved, dt)) in enumerate(zip(REDUCTIONS, outcomes)):
        results[red] = [solved.mean_jobs(p) for p in range(4)]
        table.add_row(i, results[red] + [dt])
    emit("ablation_reduction", table, notes=(
        "Effective-quantum order reduction ablation (rows: 0=exact, "
        "1=moments2, 2=moments3 in REDUCTIONS order "
        f"{REDUCTIONS}), fig2 system at rho=0.6, quantum 2."))

    # Moment-matched solutions must agree with the exact reduction to
    # well under a percent — the empirical insensitivity claim.
    for red in ("moments2", "moments3"):
        for p in range(4):
            rel = abs(results[red][p] - results["exact"][p]) \
                / results["exact"][p]
            assert rel < 0.01, (red, p, rel)
