"""Baseline comparison: gang scheduling vs pure time- and space-sharing.

The paper's introduction motivates gang scheduling as the combination
of time-sharing's responsiveness and space-sharing's throughput.  This
bench runs the three policies (plus the SP2-style lending variant) on
a mixed interactive/batch workload and reports per-class response
times.  Expected ordering:

* pure time-sharing wastes processors on small jobs (the machine
  serializes work that could space-share) — worst overall;
* pure space-sharing runs to completion — batch-friendly but
  interactive jobs get stuck behind whole-machine jobs;
* gang scheduling bounds interactive delay via the timeplexing cycle
  while keeping partitions busy;
* partition lending (the paper's SP2 deviation) recovers some of the
  capacity the modeled policy idles away.
"""

import pytest

from repro.analysis import Table
from repro.core import ClassConfig, SystemConfig
from repro.sim import (
    GangSimulation,
    PartitionLendingSimulation,
    SpaceSharingSimulation,
    TimeSharingSimulation,
)


def mixed_workload() -> SystemConfig:
    """Interactive + medium + batch classes on 8 processors.

    The 2-processor medium class gives the lending variant something to
    lend to: its queued jobs fit the capacity the interactive class
    leaves idle.
    """
    return SystemConfig(processors=8, classes=(
        ClassConfig.markovian(1, arrival_rate=2.0, service_rate=1.0,
                              quantum_mean=1.0, overhead_mean=0.01,
                              name="interactive"),
        ClassConfig.markovian(2, arrival_rate=0.8, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="medium"),
        ClassConfig.markovian(8, arrival_rate=0.2, service_rate=1.0,
                              quantum_mean=4.0, overhead_mean=0.01,
                              name="batch"),
    ))


POLICIES = {
    "gang": lambda cfg, s, w: GangSimulation(cfg, seed=s, warmup=w),
    "lending": lambda cfg, s, w: PartitionLendingSimulation(cfg, seed=s,
                                                            warmup=w),
    "space": lambda cfg, s, w: SpaceSharingSimulation(cfg, seed=s, warmup=w),
    "time": lambda cfg, s, w: TimeSharingSimulation(cfg, seed=s, warmup=w,
                                                    quantum=1.0,
                                                    overhead=0.01),
}


def run_all(horizon):
    cfg = mixed_workload()
    out = {}
    for name, factory in POLICIES.items():
        reps = [factory(cfg, seed, horizon * 0.1).run(horizon)
                for seed in range(3)]
        out[name] = (
            sum(r.mean_response_time[0] for r in reps) / len(reps),
            sum(r.mean_response_time[-1] for r in reps) / len(reps),
            sum(r.total_mean_jobs for r in reps) / len(reps),
        )
    return out


@pytest.mark.benchmark(group="baselines")
def test_scheduler_comparison(benchmark, emit, full_grids):
    horizon = 60_000.0 if full_grids else 20_000.0
    out = benchmark.pedantic(run_all, args=(horizon,),
                             rounds=1, iterations=1)

    order = ["gang", "lending", "space", "time"]
    table = Table("policy", ["T_interactive", "T_batch", "N_total"])
    for i, name in enumerate(order):
        table.add_row(i, list(out[name]))
    emit("baselines", table, notes=(
        "Scheduler comparison on an interactive+batch mix, 8 processors "
        f"(rows in order {order}).\n"
        "Gang bounds interactive delay while keeping partitions busy; "
        "pure time-sharing serializes the machine; pure space-sharing "
        "delays interactive jobs behind whole-machine batch jobs."))

    t_gang, t_space, t_time = (out["gang"][0], out["space"][0],
                               out["time"][0])
    # Interactive responsiveness: gang well ahead of time-sharing.
    assert t_gang < t_time / 3, (t_gang, t_time)
    # Gang keeps overall congestion below pure time-sharing.
    assert out["gang"][2] < out["time"][2]
    # Lending never hurts overall congestion materially.
    assert out["lending"][2] < out["gang"][2] * 1.10
