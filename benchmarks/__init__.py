"""Benchmark harness regenerating the paper's evaluation artifacts."""
