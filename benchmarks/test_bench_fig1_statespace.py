"""Figure 1: the per-class state-transition diagram.

The paper's Figure 1 draws the class-p Markov chain for Poisson
arrivals, exponential service, exponential overhead, an Erlang-K
quantum and 3 servers.  This bench rebuilds that chain, exports its
state graph (nodes + labeled transitions) to
``benchmarks/results/fig1_diagram.txt`` in DOT format, and times the
construction.
"""

import pytest

from repro.analysis import Table
from repro.core.generator import build_class_qbd
from repro.workloads import fig1_example_config

K = 4  # Erlang stages of the quantum, the paper's "M_p = K"


def build_fig1_chain():
    cfg = fig1_example_config(quantum_stages=K)
    from repro.core.vacation import heavy_traffic_vacation
    vacation = heavy_traffic_vacation(cfg, 0)
    return build_class_qbd(
        cfg.partitions(0), cfg.classes[0].arrival, cfg.classes[0].service,
        cfg.classes[0].quantum, vacation,
        policy=cfg.empty_queue_policy, with_labels=True)


@pytest.mark.benchmark(group="statespace")
def test_fig1_state_diagram(benchmark, emit):
    process, space = benchmark.pedantic(build_fig1_chain,
                                        rounds=3, iterations=1)

    # The paper's structural facts for this example.
    assert space.partitions == 3                      # "3 servers"
    assert space.m_arrival == 1 and space.m_service == 1
    assert space.m_quantum == K
    assert process.boundary_levels == 3

    # Export the boundary + first repeating level as a DOT digraph.
    lines = ["digraph fig1 {", '  rankdir="LR";']
    edge_count = 0
    for i in range(5):
        labels_i = space.labels(min(i, space.boundary_levels + 1))
        for j in (i - 1, i, i + 1):
            if j < 0 or j > 4:
                continue
            blk = process.block(i, j)
            if blk is None:
                continue
            labels_j = space.labels(min(j, space.boundary_levels + 1))
            for a in range(blk.shape[0]):
                for b in range(blk.shape[1]):
                    rate = blk[a, b]
                    if rate > 0 and not (i == j and a == b):
                        lines.append(
                            f'  "{i}:{labels_i[a]}" -> "{j}:{labels_j[b]}"'
                            f' [label="{rate:.3g}"];')
                        edge_count += 1
    lines.append("}")
    from benchmarks.conftest import RESULTS_DIR
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "fig1_diagram.txt").write_text("\n".join(lines))

    # Summary table: states and transitions per level.
    table = Table("level", ["states", "quantum_states"])
    for lvl in range(5):
        labels = space.labels(min(lvl, space.boundary_levels + 1))
        dim = space.level_dim(lvl)
        nq = sum(1 for (a, v, k) in space.states(lvl)
                 if space.is_quantum_phase(k))
        table.add_row(lvl, [dim, nq])
    emit("fig1_statespace", table, notes=(
        f"Figure 1 reproduction: class-0 chain of the paper's example "
        f"(3 servers, Erlang-{K} quantum).  {edge_count} transitions "
        "exported to fig1_diagram.txt."))

    assert edge_count > 50
    # Level 0 has only vacation phases under the paper's policy.
    assert space.level_dim(0) == space.m_vacation
