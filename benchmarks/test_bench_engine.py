"""Micro-benchmarks: event-engine throughput and PH sampling rates.

Not a paper artifact — capacity planning for the simulation substrate
(how long a figure-scale crosscheck costs and why).
"""

import numpy as np
import pytest

from repro.phasetype import coxian, erlang, exponential
from repro.phasetype.random import sampler_for
from repro.sim import GangSimulation
from repro.sim.engine import Simulator
from repro.workloads import fig23_config


@pytest.mark.benchmark(group="engine")
def test_event_engine_throughput(benchmark):
    """Schedule/dispatch cost of the bare event loop."""

    def pump():
        sim = Simulator()

        def tick():
            if sim.now < 10_000.0:
                sim.schedule(1.0, tick)

        sim.schedule(0.0, tick)
        sim.run(until=11_000.0)
        return sim.events_processed

    events = benchmark(pump)
    assert events == 10_001


@pytest.mark.benchmark(group="engine")
def test_gang_simulation_event_rate(benchmark):
    """End-to-end simulation cost on the fig2 configuration."""
    cfg = fig23_config(0.4, 2.0)

    def run():
        return GangSimulation(cfg, seed=0).run(5_000.0).events

    events = benchmark.pedantic(run, rounds=3, iterations=1)
    assert events > 10_000


@pytest.mark.benchmark(group="engine")
@pytest.mark.parametrize("dist,name", [
    (exponential(1.0), "exponential"),
    (erlang(4, rate=1.0), "erlang4"),
    (coxian([2.0, 1.0], [0.3, 1.0]), "coxian2"),
], ids=["exp", "erlang4", "cox2"])
def test_ph_sampling_rate(benchmark, dist, name):
    sampler = sampler_for(dist)
    rng = np.random.default_rng(0)
    xs = benchmark(sampler.draw_batch, rng, 10_000)
    assert xs.shape == (10_000,)
    assert abs(xs.mean() - dist.mean) / dist.mean < 0.1
