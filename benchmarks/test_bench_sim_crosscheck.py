"""Cross-validation bench: analytic model vs discrete-event simulation.

Runs a Figure 2/3 configuration through both engines and reports
per-class mean jobs with simulation confidence intervals and relative
errors.  Expected outcome (documented in EXPERIMENTS.md): close
agreement at heavy load, where the paper's decomposition is near
exact; a systematic underestimate of order 10-20% at moderate load,
where the paper's footnote-2 independence assumption bites.
"""

import pytest

from repro.analysis import Table, compare_analytic_simulation
from repro.core import GangSchedulingModel
from repro.sim import GangSimulation, run_replications
from repro.workloads import fig23_config

SCENARIOS = [
    ("moderate", 0.4, 2.0, 0.30),   # rho, quantum, error budget
    ("heavy", 0.9, 1.0, 0.15),
]


def run_crosscheck(lam, quantum, horizon, replications):
    cfg = fig23_config(lam, quantum)
    solved = GangSchedulingModel(cfg).solve()
    summary = run_replications(
        lambda seed, warmup: GangSimulation(cfg, seed=seed, warmup=warmup),
        replications=replications, horizon=horizon,
        warmup=horizon * 0.1)["mean_jobs"]
    return compare_analytic_simulation(solved, summary)


@pytest.mark.benchmark(group="crosscheck")
@pytest.mark.parametrize("name,lam,quantum,budget",
                         SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_model_vs_simulation(benchmark, emit, full_grids, name, lam,
                             quantum, budget):
    horizon = 60_000.0 if full_grids else 25_000.0
    reps = 6 if full_grids else 4
    rows = benchmark.pedantic(run_crosscheck,
                              args=(lam, quantum, horizon, reps),
                              rounds=1, iterations=1)

    table = Table("class", ["analytic_N", "sim_N", "sim_ci", "rel_err"])
    for p, r in enumerate(rows):
        table.add_row(p, [r.analytic, r.simulated, r.ci_half_width,
                          r.rel_error])
    emit(f"crosscheck_{name}", table, notes=(
        f"Analytic vs simulation, fig2/3 config: lambda={lam}, "
        f"quantum={quantum}, {reps} replications x {horizon:g} time "
        "units.  Positive rel_err = model differs from simulation; the "
        "moderate-load bias is the paper's independence approximation."))

    for r in rows:
        assert r.rel_error < budget, (
            f"{r.class_name}: analytic {r.analytic:.3f} vs "
            f"sim {r.simulated:.3f} ({r.rel_error:.1%} > {budget:.0%})")
