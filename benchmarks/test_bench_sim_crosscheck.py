"""Cross-validation bench: analytic model vs discrete-event simulation.

Runs the ``crosscheck-moderate`` / ``crosscheck-heavy`` preset
scenarios (``engine="both"``) through the unified scenario runner and
reports per-class mean jobs with simulation confidence intervals and
relative errors.  Expected outcome (documented in EXPERIMENTS.md):
close agreement at heavy load, where the paper's decomposition is near
exact; a systematic underestimate of order 10-20% at moderate load,
where the paper's footnote-2 independence assumption bites.
"""

import pytest

from repro.analysis import Table, compare_analytic_simulation
from repro.scenario import get_scenario
from repro.scenario import run as run_scenario

SCENARIOS = [
    ("moderate", "crosscheck-moderate", 0.30),   # error budget
    ("heavy", "crosscheck-heavy", 0.15),
]


def run_crosscheck(preset, horizon, replications):
    scenario = get_scenario(preset).with_engine(horizon=horizon,
                                                replications=replications)
    return run_scenario(scenario)


@pytest.mark.benchmark(group="crosscheck")
@pytest.mark.parametrize("name,preset,budget",
                         SCENARIOS, ids=[s[0] for s in SCENARIOS])
def test_model_vs_simulation(benchmark, emit, full_grids, name, preset,
                             budget):
    horizon = 60_000.0 if full_grids else 25_000.0
    reps = 6 if full_grids else 4
    result = benchmark.pedantic(run_crosscheck,
                                args=(preset, horizon, reps),
                                rounds=1, iterations=1)
    args = result.scenario.system.args
    rows = compare_analytic_simulation(result.solved,
                                       result.sim.summaries["mean_jobs"])

    table = Table("class", ["analytic_N", "sim_N", "sim_ci", "rel_err"])
    for p, r in enumerate(rows):
        table.add_row(p, [r.analytic, r.simulated, r.ci_half_width,
                          r.rel_error])
    emit(f"crosscheck_{name}", table, notes=(
        f"Analytic vs simulation, fig2/3 config: "
        f"lambda={args['arrival_rate']}, quantum={args['quantum_mean']}, "
        f"{reps} replications x {horizon:g} time units.  Positive "
        "rel_err = model differs from simulation; the moderate-load "
        "bias is the paper's independence approximation."))

    for r in rows:
        assert r.rel_error < budget, (
            f"{r.class_name}: analytic {r.analytic:.3f} vs "
            f"sim {r.simulated:.3f} ({r.rel_error:.1%} > {budget:.0%})")
    # The unified result's cross-engine deltas tell the same story.
    assert result.max_abs_delta() < budget
