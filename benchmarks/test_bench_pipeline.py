"""Staged-pipeline acceptance bench: warm starts, reuse, parallel sweep.

The gate for the staged solver pipeline: a Figure-2-style quantum sweep
solved with the pipeline defaults (warm-started R solves + artifact
reuse) across 4 worker processes must

* run at least 2x faster than the seed serial path (pipeline features
  disabled),
* reproduce the seed's mean-jobs series to 1e-8 at every grid point,
* survive a mid-sweep kill and resume to a byte-identical result.

The measured times and speedup are persisted to
``benchmarks/results/BENCH_pipeline.json`` for the CI smoke-bench
artifact.
"""

import dataclasses
import json
import pathlib
import time

import pytest

from repro.resilience import faults
from repro.workloads import fig23_config, sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

GRID = [0.25, 0.5, 1.0, 2.0, 3.0, 4.5]
WORKERS = 4


def factory(q):
    return fig23_config(0.4, q)


def run_seed(grid):
    """The pre-pipeline solve path: cold R solves, no artifact reuse."""
    return sweep("quantum_mean", grid, factory,
                 model_kwargs=dict(warm_start=False, reuse_artifacts=False))


def run_pipeline(grid, **kwargs):
    return sweep("quantum_mean", grid, factory, workers=WORKERS, **kwargs)


def _canonical_bytes(result) -> bytes:
    return json.dumps([dataclasses.asdict(pt) for pt in result.points],
                      sort_keys=True).encode()


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_sweep_speedup_and_parity(benchmark, emit):
    t0 = time.perf_counter()
    seed = run_seed(GRID)
    t_seed = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = benchmark.pedantic(run_pipeline, args=(GRID,),
                              rounds=1, iterations=1)
    t_fast = time.perf_counter() - t0

    # Parity: the pipeline is an optimization, not a model change.
    worst = 0.0
    for a, b in zip(seed.points, fast.points):
        assert a.value == b.value and a.error is None and b.error is None
        for x, y in zip(a.mean_jobs, b.mean_jobs):
            worst = max(worst, abs(x - y))
    assert worst <= 1e-8, f"mean_jobs diverged by {worst:.3e}"

    speedup = t_seed / t_fast
    payload = {
        "grid": GRID,
        "workers": WORKERS,
        "seed_seconds": round(t_seed, 4),
        "pipeline_seconds": round(t_fast, 4),
        "speedup": round(speedup, 3),
        "worst_mean_jobs_diff": worst,
        "points": [dataclasses.asdict(pt) for pt in fast.points],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_pipeline.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\nseed serial {t_seed:.2f}s  pipeline x{WORKERS} {t_fast:.2f}s  "
          f"speedup {speedup:.2f}x  worst diff {worst:.2e}")

    assert speedup >= 2.0, (
        f"pipeline sweep only {speedup:.2f}x faster than the seed path "
        f"({t_fast:.2f}s vs {t_seed:.2f}s)")


def test_pipeline_kill_and_resume_byte_identical(tmp_path):
    reference = run_pipeline(GRID)
    path = tmp_path / "pipeline.jsonl"
    with faults.inject("sweeps.point", raises=KeyboardInterrupt,
                       keys=(GRID[4],)):
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(GRID, checkpoint=path)
    resumed = run_pipeline(GRID, checkpoint=path)
    assert resumed.resumed > 0, "the kill left nothing journaled"
    assert _canonical_bytes(resumed) == _canonical_bytes(reference)
