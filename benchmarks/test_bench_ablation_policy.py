"""Ablation: switch-on-empty vs strict cycling ("idle").

The paper's policy context-switches the moment a class's queue
empties.  The ablation removes that feature: the quantum runs to its
PH expiry over an idle machine.  Both the analytic model and the
simulator implement both policies; this bench quantifies the benefit
of early switching across quantum lengths (it grows with the quantum —
a long quantum over an empty queue is pure waste).
"""

import pytest

from repro.analysis import Table
from repro.core import GangSchedulingModel
from repro.sim import GangSimulation
from repro.workloads import fig23_config

QUANTA = [0.5, 1.0, 2.0, 4.0]


def solve_policies(q):
    switch = GangSchedulingModel(
        fig23_config(0.4, q, policy="switch")).solve()
    idle = GangSchedulingModel(
        fig23_config(0.4, q, policy="idle")).solve()
    return switch, idle


@pytest.mark.benchmark(group="ablation")
def test_policy_ablation(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [solve_policies(q) for q in QUANTA], rounds=1, iterations=1)

    table = Table("quantum_mean", ["N_switch", "N_idle", "idle_penalty"])
    penalties = []
    for q, (sw, idle) in zip(QUANTA, rows):
        penalty = idle.mean_jobs() / sw.mean_jobs()
        penalties.append(penalty)
        table.add_row(q, [sw.mean_jobs(), idle.mean_jobs(), penalty])
    emit("ablation_policy", table, notes=(
        "Switch-on-empty (paper) vs strict cycling (idle) on the fig2 "
        "system at rho = 0.4 (analytic model).\n"
        "idle_penalty = N_idle / N_switch; grows with the quantum."))

    assert all(p > 1.0 for p in penalties)
    assert penalties[-1] > penalties[0]


@pytest.mark.benchmark(group="ablation")
def test_policy_ablation_simulation_agrees(benchmark, emit):
    """The same ordering must hold in the full simulator."""
    q = 2.0

    def run_pair():
        sw = GangSimulation(fig23_config(0.4, q, policy="switch"),
                            seed=5, warmup=2000.0).run(30_000.0)
        idle = GangSimulation(fig23_config(0.4, q, policy="idle"),
                              seed=5, warmup=2000.0).run(30_000.0)
        return sw, idle

    sw, idle = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = Table("policy_sim", ["N_total"])
    table.add_row(0, [sw.total_mean_jobs])     # 0 = switch
    table.add_row(1, [idle.total_mean_jobs])   # 1 = idle
    emit("ablation_policy_sim", table, notes=(
        "Simulation cross-check of the policy ablation (row 0 = "
        "switch-on-empty, row 1 = strict cycle), fig2 config, "
        "quantum 2."))
    assert idle.total_mean_jobs > sw.total_mean_jobs


# ---------------------------------------------------------------------------
# Scheduling-policy variants on the fig2 grid
# ---------------------------------------------------------------------------

import json
import pathlib
import time

from repro.policy import (
    MalleableSpeedup,
    PriorityCycle,
    WeightedQuantum,
)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Trimmed fig2 quantum grid (the pipeline bench's points).
POLICY_GRID = [0.25, 0.5, 1.0, 2.0, 3.0, 4.5]

VARIANTS = {
    "weighted": WeightedQuantum(weights=(2.0, 1.5, 1.0, 1.0)),
    "priority": PriorityCycle(order=(3, 2, 1, 0), decay=0.7, floor=0.3),
    "malleable": MalleableSpeedup(processors=(2, 2, 4, 8), sigma=0.7),
}


def _sweep_totals(policy):
    """Total mean jobs at each grid point under ``policy`` (None = RR)."""
    totals = []
    for q in POLICY_GRID:
        sol = GangSchedulingModel(fig23_config(0.4, q),
                                  policy=policy).solve()
        totals.append(sol.mean_jobs())
    return totals


@pytest.mark.benchmark(group="ablation")
def test_scheduling_policy_variants_on_fig2_grid(benchmark, emit):
    """Compare the shipped scheduling policies across the fig2 sweep.

    Round-robin is the reference run (``seed_seconds``); the three
    variants together are the measured path (``pipeline_seconds``),
    persisted to ``BENCH_policy.json`` for the CI regression gate.
    """
    t0 = time.perf_counter()
    baseline = _sweep_totals(None)
    t_seed = time.perf_counter() - t0

    def run_variants():
        return {name: _sweep_totals(pol) for name, pol in VARIANTS.items()}

    t0 = time.perf_counter()
    by_policy = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    t_variants = time.perf_counter() - t0

    table = Table("quantum_mean",
                  ["N_round_robin"] + [f"N_{n}" for n in VARIANTS])
    for i, q in enumerate(POLICY_GRID):
        table.add_row(q, [baseline[i]] + [by_policy[n][i] for n in VARIANTS])
    emit("ablation_scheduling_policy", table, notes=(
        "Total mean jobs across the fig2 quantum sweep (rho = 0.4) under "
        "each shipped scheduling policy (analytic model).\n"
        "weighted = 2/1.5/1/1 quantum mass; priority = order 3/2/1/0, "
        "decay 0.7, floor 0.3; malleable = 2/2/4/8 processors, "
        "sigma 0.7."))

    payload = {
        "grid": POLICY_GRID,
        "seed_seconds": round(t_seed, 4),
        "pipeline_seconds": round(t_variants, 4),
        "round_robin": baseline,
        "variants": {name: {"policy": pol.describe(),
                            "total_mean_jobs": by_policy[name]}
                     for name, pol in VARIANTS.items()},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_policy.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    # Sanity: every variant solved every point, and reshaping the cycle
    # actually moved the numbers (no variant silently aliased RR).
    for name, totals in by_policy.items():
        assert len(totals) == len(POLICY_GRID)
        assert all(t > 0 for t in totals)
        assert any(abs(t - b) > 1e-6 for t, b in zip(totals, baseline)), (
            f"{name} reproduced round-robin exactly; its lever is dead")
