"""Ablation: switch-on-empty vs strict cycling ("idle").

The paper's policy context-switches the moment a class's queue
empties.  The ablation removes that feature: the quantum runs to its
PH expiry over an idle machine.  Both the analytic model and the
simulator implement both policies; this bench quantifies the benefit
of early switching across quantum lengths (it grows with the quantum —
a long quantum over an empty queue is pure waste).
"""

import pytest

from repro.analysis import Table
from repro.core import GangSchedulingModel
from repro.sim import GangSimulation
from repro.workloads import fig23_config

QUANTA = [0.5, 1.0, 2.0, 4.0]


def solve_policies(q):
    switch = GangSchedulingModel(
        fig23_config(0.4, q, policy="switch")).solve()
    idle = GangSchedulingModel(
        fig23_config(0.4, q, policy="idle")).solve()
    return switch, idle


@pytest.mark.benchmark(group="ablation")
def test_policy_ablation(benchmark, emit):
    rows = benchmark.pedantic(
        lambda: [solve_policies(q) for q in QUANTA], rounds=1, iterations=1)

    table = Table("quantum_mean", ["N_switch", "N_idle", "idle_penalty"])
    penalties = []
    for q, (sw, idle) in zip(QUANTA, rows):
        penalty = idle.mean_jobs() / sw.mean_jobs()
        penalties.append(penalty)
        table.add_row(q, [sw.mean_jobs(), idle.mean_jobs(), penalty])
    emit("ablation_policy", table, notes=(
        "Switch-on-empty (paper) vs strict cycling (idle) on the fig2 "
        "system at rho = 0.4 (analytic model).\n"
        "idle_penalty = N_idle / N_switch; grows with the quantum."))

    assert all(p > 1.0 for p in penalties)
    assert penalties[-1] > penalties[0]


@pytest.mark.benchmark(group="ablation")
def test_policy_ablation_simulation_agrees(benchmark, emit):
    """The same ordering must hold in the full simulator."""
    q = 2.0

    def run_pair():
        sw = GangSimulation(fig23_config(0.4, q, policy="switch"),
                            seed=5, warmup=2000.0).run(30_000.0)
        idle = GangSimulation(fig23_config(0.4, q, policy="idle"),
                              seed=5, warmup=2000.0).run(30_000.0)
        return sw, idle

    sw, idle = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    table = Table("policy_sim", ["N_total"])
    table.add_row(0, [sw.total_mean_jobs])     # 0 = switch
    table.add_row(1, [idle.total_mean_jobs])   # 1 = idle
    emit("ablation_policy_sim", table, notes=(
        "Simulation cross-check of the policy ablation (row 0 = "
        "switch-on-empty, row 1 = strict cycle), fig2 config, "
        "quantum 2."))
    assert idle.total_mean_jobs > sw.total_mean_jobs
