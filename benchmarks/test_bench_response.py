"""Extension bench: analytic response-time percentiles vs simulation.

The paper reports mean response times only (Little's law).  The
tagged-job construction in ``core/response.py`` yields the full
distribution; this bench compares its median/p95/p99 against simulated
percentiles on a gang-scheduled class and times the computation.
"""

import pytest

from repro.analysis import Table
from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.core.response import response_time_distribution
from repro.sim import GangSimulation


def config():
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=1.2, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.05,
                              name="small"),
        ClassConfig.markovian(4, arrival_rate=0.25, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.05,
                              name="big"),
    ))


def analytic_quantiles():
    cfg = config()
    solved = GangSchedulingModel(cfg).solve()
    out = []
    for p in range(2):
        rt = response_time_distribution(solved, p)
        out.append((rt.mean, rt.quantile(0.5), rt.quantile(0.95),
                    rt.quantile(0.99)))
    return out


@pytest.mark.benchmark(group="extensions")
def test_response_time_percentiles(benchmark, emit, full_grids):
    analytic = benchmark.pedantic(analytic_quantiles, rounds=1, iterations=1)

    horizon = 120_000.0 if full_grids else 50_000.0
    rep = GangSimulation(config(), seed=17, warmup=horizon * 0.1).run(horizon)

    table = Table("class", ["T_mean", "p50", "p95", "p99",
                            "sim_p50", "sim_p95", "sim_p99"])
    for p, (mean, q50, q95, q99) in enumerate(analytic):
        s50, s95, s99 = rep.response_quantiles[p]
        table.add_row(p, [mean, q50, q95, q99, s50, s95, s99])
    emit("extension_response", table, notes=(
        "Analytic response-time percentiles (tagged-job PH) vs one "
        "simulation run.  The paper's analysis stops at means; the "
        "tagged-job chain extends it to the full distribution "
        "(exponential service)."))

    for p, (mean, q50, q95, q99) in enumerate(analytic):
        s50, s95, s99 = rep.response_quantiles[p]
        # The multi-class analytic model carries the decomposition
        # approximation, which *amplifies in the tail* (documented in
        # EXPERIMENTS.md): generous bounds here, tight ones below in the
        # exact single-class regime.
        assert q50 == pytest.approx(s50, rel=0.30), (p, q50, s50)
        assert q95 == pytest.approx(s95, rel=0.45), (p, q95, s95)
        assert q50 < q95 < q99


@pytest.mark.benchmark(group="extensions")
def test_response_percentiles_exact_regime(benchmark, emit, full_grids):
    """Single class: no approximation — percentiles must match tightly."""
    cfg = SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=0.6, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.3),))

    def analytic():
        solved = GangSchedulingModel(cfg).solve()
        rt = response_time_distribution(solved, 0)
        return rt.mean, rt.quantile(0.5), rt.quantile(0.95), rt.quantile(0.99)

    mean, q50, q95, q99 = benchmark.pedantic(analytic, rounds=1, iterations=1)
    horizon = 150_000.0 if full_grids else 80_000.0
    rep = GangSimulation(cfg, seed=23, warmup=horizon * 0.1).run(horizon)
    s50, s95, s99 = rep.response_quantiles[0]

    table = Table("quantile", ["analytic", "simulated"])
    table.add_row(0.50, [q50, s50])
    table.add_row(0.95, [q95, s95])
    table.add_row(0.99, [q99, s99])
    emit("extension_response_exact", table, notes=(
        "Response-time percentiles in the exact (single-class) regime: "
        "the tagged-job PH matches simulation at every quantile."))

    assert q50 == pytest.approx(s50, rel=0.06)
    assert q95 == pytest.approx(s95, rel=0.06)
    assert q99 == pytest.approx(s99, rel=0.10)
