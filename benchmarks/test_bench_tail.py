"""Distribution-metrics bench: the cost of asking for percentiles.

The gate for the distribution-first metrics layer: a Figure-2-style
quantum sweep that also reports ``p99`` and ``tail@5`` per class
(response-time laws extracted from every solved QBD) is timed against
the identical means-only sweep in the same process.  The measured
walls land in ``benchmarks/results/BENCH_tail.json`` —
``pipeline_seconds`` (with distributions) vs ``seed_seconds``
(means only) — which ``scripts/bench_compare.py`` gates against the
committed baseline (CI runs it with ``--threshold 0.10``).

The grid stays at moderate quanta: tagged-job constructions at
overhead-dominated quanta (< 0.1) blow the state space up and would
turn a smoke bench into a minutes-long soak.

Besides the wall clock, the bench asserts the numbers themselves:
means must be untouched by the extra extraction, every per-class
``p99`` must dominate its mean, and every law must come back
``"exact"`` on this all-exponential workload.
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.workloads import fig23_config, sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

GRID = [0.5, 1.0, 2.0, 3.0, 4.5]
SELECTORS = ("mean", "p99", "tail@5")


def factory(q):
    return fig23_config(0.4, q)


@pytest.mark.benchmark(group="tail")
def test_tail_metrics_overhead_and_parity(benchmark):
    t0 = time.perf_counter()
    seed = sweep("quantum_mean", GRID, factory)
    seed_seconds = time.perf_counter() - t0

    t0 = time.perf_counter()
    tail = benchmark.pedantic(
        sweep, args=("quantum_mean", GRID, factory),
        kwargs={"metrics": SELECTORS}, rounds=1, iterations=1)
    pipeline_seconds = time.perf_counter() - t0

    # -- parity: the distribution pass changes nothing it reports on --
    worst_mean_diff = 0.0
    for base_pt, tail_pt in zip(seed.points, tail.points):
        assert tail_pt.metrics is not None
        assert tail_pt.dist_kinds is not None
        assert all(k == "exact" for k in tail_pt.dist_kinds)
        for p, row in enumerate(tail_pt.metrics):
            mean, p99, tail_at_5 = row
            worst_mean_diff = max(
                worst_mean_diff,
                abs(mean - base_pt.mean_response_time[p]))
            assert p99 > mean
            assert 0.0 <= tail_at_5 <= 1.0
    assert worst_mean_diff < 1e-12

    payload = {
        "grid": GRID,
        "selectors": list(SELECTORS),
        "seed_seconds": round(seed_seconds, 4),
        "pipeline_seconds": round(pipeline_seconds, 4),
        "overhead_ratio": round(pipeline_seconds / seed_seconds, 3),
        "worst_mean_diff": worst_mean_diff,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_tail.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\nmeans-only {seed_seconds:.3f}s, with distributions "
          f"{pipeline_seconds:.3f}s (x{payload['overhead_ratio']})")
