"""Scaling bench: solver cost vs machine size.

The paper's target platform (IBM SP2) had dozens to hundreds of nodes.
This bench grows ``P`` with a fixed per-partition load and measures the
analytic solve time and state-space size — the capacity-planning
question for the *model itself* ("can I tune a 64-node machine with
it?").  The per-class boundary grows linearly in the partition count
``c_p = P / g(p)``, which dominates the cost.
"""

import time

import pytest

from repro.analysis import Table
from repro.core import ClassConfig, GangSchedulingModel, SystemConfig

SIZES = [8, 16, 32, 64]


def config_for(P: int) -> SystemConfig:
    """Two classes whose per-partition load is P-independent."""
    return SystemConfig(processors=P, classes=(
        ClassConfig.markovian(1, arrival_rate=0.15 * P, service_rate=0.5,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="small"),
        ClassConfig.markovian(P, arrival_rate=1.2, service_rate=4.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="huge"),
    ))


def run_scaling():
    rows = []
    for P in SIZES:
        cfg = config_for(P)
        t0 = time.perf_counter()
        solved = GangSchedulingModel(cfg).solve()
        dt = time.perf_counter() - t0
        boundary_states = sum(
            solved.classes[0].space.level_dim(i)
            for i in range(solved.classes[0].space.boundary_levels + 1))
        rows.append((P, boundary_states, dt, solved.mean_jobs(),
                     solved.iterations))
    return rows


@pytest.mark.benchmark(group="scaling")
def test_solver_scaling_with_machine_size(benchmark, emit):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    table = Table("processors", ["class0_boundary_states", "solve_seconds",
                                 "N_total", "iterations"])
    for P, states, dt, n, iters in rows:
        table.add_row(P, [states, dt, n, iters])
    emit("scaling", table, notes=(
        "Analytic solve cost vs machine size at constant per-partition "
        "load (rho_p = 0.3 per class, 0.6 total).  The small-job "
        "class's boundary grows linearly with the partition count."))

    # Everything solves, and a 64-way machine stays in interactive range.
    for P, states, dt, n, iters in rows:
        assert n > 0
        assert dt < 60.0, (P, dt)
    # Utilization is held constant, so per-partition congestion should
    # not blow up with size (economy of scale, if anything).
    assert rows[-1][3] / SIZES[-1] <= rows[0][3] / SIZES[0] * 1.5
