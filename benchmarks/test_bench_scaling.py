"""Scaling bench: solver cost vs machine size, dense vs sparse kernels.

The paper's target platform (IBM SP2) had dozens to hundreds of nodes.
This bench grows ``P`` with a fixed per-partition load and measures the
analytic solve time and state-space size — the capacity-planning
question for the *model itself* ("can I tune a 64-node machine with
it?").  The per-class boundary grows linearly in the partition count
``c_p = P / g(p)``, which dominates the cost.

The backend bench extends the grid to P=128/256 and races the dense
reference against the sparse kernel stack (``repro.kernels``).  Its
gate: at P=256 the sparse backend must solve >= 5x faster than the
dense path without ever materializing the full dense boundary system,
while P <= 64 results agree with dense to <= 1e-8 on mean response
time and queue-length moments.  Times, parity diffs and the series are
persisted to ``benchmarks/results/BENCH_scaling.json`` for the CI
smoke-bench artifact.
"""

import contextlib
import json
import pathlib
import time

import pytest

from repro.analysis import Table
from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.phasetype import erlang, exponential

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SIZES = [8, 16, 32, 64]

#: Grid for the dense-vs-sparse race.  P=128/256 are the sizes the
#: sparse kernels unlock; P<=64 double as the parity band.
BACKEND_SIZES = [8, 16, 32, 64, 128, 256]
PARITY_MAX = 64
GATE_P = 256
GATE_SPEEDUP = 5.0
#: Erlang-3 quanta (SCV 1/3, closer to the deterministic quantum of a
#: real gang scheduler) triple the phase dimension; at P=256 the dense
#: boundary solve is then firmly cubic-bound, which is the regime the
#: sparse backend exists for.
QUANTUM_STAGES = 3


def config_for(P: int, *, quantum_stages: int = 1) -> SystemConfig:
    """Two classes whose per-partition load is P-independent."""
    quantum = (exponential(mean=2.0) if quantum_stages == 1
               else erlang(quantum_stages, mean=2.0))
    return SystemConfig(processors=P, classes=(
        ClassConfig(partition_size=1, arrival=exponential(0.15 * P),
                    service=exponential(0.5), quantum=quantum,
                    overhead=exponential(mean=0.01), name="small"),
        ClassConfig(partition_size=P, arrival=exponential(1.2),
                    service=exponential(4.0), quantum=quantum,
                    overhead=exponential(mean=0.01), name="huge"),
    ))


def boundary_states(solved) -> int:
    space = solved.classes[0].space
    return sum(space.level_dim(i) for i in range(space.boundary_levels + 1))


def run_scaling():
    rows = []
    for P in SIZES:
        cfg = config_for(P)
        t0 = time.perf_counter()
        solved = GangSchedulingModel(cfg).solve()
        dt = time.perf_counter() - t0
        rows.append((P, boundary_states(solved), dt, solved.mean_jobs(),
                     solved.iterations))
    return rows


@pytest.mark.benchmark(group="scaling")
def test_solver_scaling_with_machine_size(benchmark, emit):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    table = Table("processors", ["class0_boundary_states", "solve_seconds",
                                 "N_total", "iterations"])
    for P, states, dt, n, iters in rows:
        table.add_row(P, [states, dt, n, iters])
    emit("scaling", table, notes=(
        "Analytic solve cost vs machine size at constant per-partition "
        "load (rho_p = 0.3 per class, 0.6 total).  The small-job "
        "class's boundary grows linearly with the partition count."))

    # Everything solves, and a 64-way machine stays in interactive range.
    for P, states, dt, n, iters in rows:
        assert n > 0
        assert dt < 60.0, (P, dt)
    # Utilization is held constant, so per-partition congestion should
    # not blow up with size (economy of scale, if anything).
    assert rows[-1][3] / SIZES[-1] <= rows[0][3] / SIZES[0] * 1.5


class _BlockSolveCounter:
    """Call/error counts for the block-tridiagonal boundary kernel."""

    def __init__(self):
        self.calls = 0
        self.errors = 0


@contextlib.contextmanager
def counted_block_solver():
    """Wrap the block kernel as seen by ``solve_boundary``.

    ``solve_boundary`` returns the block kernel's result *before* its
    dense ``n x n`` assembly, so ``calls > 0 and errors == 0`` proves
    the sparse run never materialized the full boundary system.
    """
    from repro.qbd import boundary as boundary_mod
    real = boundary_mod.solve_boundary_blocktridiag
    counter = _BlockSolveCounter()

    def wrapper(process, R, **kwargs):
        counter.calls += 1
        try:
            return real(process, R, **kwargs)
        except Exception:
            counter.errors += 1
            raise

    boundary_mod.solve_boundary_blocktridiag = wrapper
    try:
        yield counter
    finally:
        boundary_mod.solve_boundary_blocktridiag = real


def solve_timed(P: int, backend: str, rounds: int = 1):
    """Cold solve(s) of the size-``P`` system; best-of-``rounds`` time."""
    solved, best = None, float("inf")
    for _ in range(rounds):
        cfg = config_for(P, quantum_stages=QUANTUM_STAGES)
        t0 = time.perf_counter()
        solved = GangSchedulingModel(cfg, backend=backend).solve()
        best = min(best, time.perf_counter() - t0)
    return solved, best


def run_backend_race():
    points = []
    for P in BACKEND_SIZES:
        # Best-of-2 at the gate point: the 5x assertion should measure
        # the kernels, not scheduler jitter on a busy CI runner.
        rounds = 2 if P == GATE_P else 1
        dense, t_dense = solve_timed(P, "dense", rounds)
        with counted_block_solver() as counter:
            sparse, t_sparse = solve_timed(P, "sparse", rounds)
        points.append({
            "P": P, "dense": dense, "sparse": sparse,
            "t_dense": t_dense, "t_sparse": t_sparse,
            "block_calls": counter.calls, "block_errors": counter.errors,
        })
    return points


@pytest.mark.benchmark(group="scaling")
def test_backend_scaling_dense_vs_sparse(benchmark, emit):
    points = benchmark.pedantic(run_backend_race, rounds=1, iterations=1)

    table = Table("processors", [
        "boundary_states", "dense_seconds", "sparse_seconds", "speedup",
        "response_time_diff", "mean_jobs_diff"])
    records, worst_jobs, worst_parity = [], 0.0, 0.0
    for pt in points:
        P, dense, sparse = pt["P"], pt["dense"], pt["sparse"]
        n_classes = len(dense.classes)
        dt_resp = max(abs(sparse.mean_response_time(p)
                          - dense.mean_response_time(p))
                      for p in range(n_classes))
        dt_jobs = max(abs(sparse.mean_jobs(p) - dense.mean_jobs(p))
                      for p in range(n_classes))
        dt_m2 = max(abs(sparse.classes[p].stationary.second_moment_level
                        - dense.classes[p].stationary.second_moment_level)
                    for p in range(n_classes))
        speedup = pt["t_dense"] / pt["t_sparse"]
        records.append({
            "value": P,
            "mean_jobs": [sparse.mean_jobs(p) for p in range(n_classes)],
            "mean_response_time": [sparse.mean_response_time(p)
                                   for p in range(n_classes)],
            "iterations": sparse.iterations,
            "converged": sparse.converged,
            "error": None,
            "boundary_states": boundary_states(sparse),
            "dense_seconds": round(pt["t_dense"], 4),
            "sparse_seconds": round(pt["t_sparse"], 4),
            "speedup": round(speedup, 3),
            "mean_response_time_diff": dt_resp,
            "mean_jobs_diff": dt_jobs,
            "second_moment_diff": dt_m2,
            "block_solver_calls": pt["block_calls"],
            "block_solver_errors": pt["block_errors"],
        })
        table.add_row(P, [boundary_states(sparse), pt["t_dense"],
                          pt["t_sparse"], speedup, dt_resp, dt_jobs])

        assert sparse.converged and dense.converged, P
        # The sparse run must route every boundary solve through the
        # block-tridiagonal kernel and never fall through to the dense
        # n x n assembly.
        assert pt["block_calls"] > 0, P
        assert pt["block_errors"] == 0, P
        if P <= PARITY_MAX:
            # Parity band: dense and sparse agree to 1e-8 on mean
            # response time and queue-length moments.
            assert dt_resp <= 1e-8, (P, dt_resp)
            assert dt_jobs <= 1e-8, (P, dt_jobs)
            assert dt_m2 <= 1e-8, (P, dt_m2)
            worst_jobs = max(worst_jobs, dt_jobs)
            worst_parity = max(worst_parity, dt_resp, dt_jobs, dt_m2)

    emit("scaling_backends", table, notes=(
        "Dense vs sparse kernels over machine size, Erlang-%d quanta "
        "(constant per-partition load).  P<=64 is the parity band; "
        "P=128/256 are the sizes the block-tridiagonal boundary solver "
        "and matrix-free Newton unlock." % QUANTUM_STAGES))

    t_dense = sum(pt["t_dense"] for pt in points)
    t_sparse = sum(pt["t_sparse"] for pt in points)
    gate = next(r for r in records if r["value"] == GATE_P)
    payload = {
        "grid": BACKEND_SIZES,
        "workers": 1,
        "seed_seconds": round(t_dense, 4),
        "pipeline_seconds": round(t_sparse, 4),
        "speedup": round(t_dense / t_sparse, 3),
        "worst_mean_jobs_diff": worst_jobs,
        "quantum_stages": QUANTUM_STAGES,
        "parity_max_P": PARITY_MAX,
        "worst_parity_diff": worst_parity,
        "gate_P": GATE_P,
        "gate_speedup": gate["speedup"],
        "points": records,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_scaling.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\ndense total {t_dense:.2f}s  sparse total {t_sparse:.2f}s  "
          f"P={GATE_P} speedup {gate['speedup']:.2f}x  "
          f"worst parity diff {worst_parity:.2e}")

    # The tentpole gate: >= 5x at P=256 on identical results.
    assert gate["speedup"] >= GATE_SPEEDUP, (
        f"sparse backend only {gate['speedup']:.2f}x faster than dense at "
        f"P={GATE_P} ({gate['sparse_seconds']}s vs {gate['dense_seconds']}s)")
