"""Figure 3: mean jobs N_p vs mean quantum length, heavy load (rho = 0.9).

Same system as Figure 2 with lambda_p = 0.9.  The paper's claims: the
same drop-knee-rise shape, with the knee points of the four classes
drawn close together.  (Below quantum ~0.1 the system is genuinely
unstable — the overhead eats enough of the cycle that capacity falls
under the offered load — which is the extreme form of the paper's
"context switch overhead dominates" regime.)
"""

import numpy as np
import pytest

from repro.analysis import Table, is_u_shaped, knee_index
from repro.workloads import fig23_config, sweep

QUICK_GRID = [0.1, 0.15, 0.25, 0.4, 0.6, 1.0, 2.0, 4.0, 6.0]
FULL_GRID = [0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0,
             1.5, 2.0, 3.0, 4.0, 5.0, 6.0]


def run_fig3(grid):
    return sweep("quantum_mean", grid, lambda q: fig23_config(0.9, q))


@pytest.mark.benchmark(group="figures")
def test_fig3_quantum_sweep_heavy_load(benchmark, emit, full_grids):
    grid = FULL_GRID if full_grids else QUICK_GRID
    result = benchmark.pedantic(run_fig3, args=(grid,),
                                rounds=1, iterations=1)

    table = Table("quantum_mean", [f"N[class{p}]" for p in range(4)])
    for pt in result.points:
        table.add_row(pt.value, pt.mean_jobs)
    emit("fig3", table, notes=(
        "Figure 3 reproduction: N_p vs mean quantum length 1/gamma, "
        "rho = 0.9 (lambda_p = 0.9).\n"
        "Paper shape: same U curves as Figure 2; knee points of the four "
        "classes nearly coincide."))

    knees = []
    for p in range(4):
        ys = result.series(p)
        assert not any(np.isnan(ys)), f"class{p} has failed points: {ys}"
        assert is_u_shaped(ys, rel_tol=0.03), f"class{p} not U-shaped: {ys}"
        knees.append(grid[knee_index(ys)])

    # "The heavier the system load, the closer to each other are the
    # knee points of the curves": under rho = 0.9 every class's knee
    # falls in the same narrow band (at rho = 0.4 they span the whole
    # axis — class 0's knee is beyond 6; see the Figure 2 bench).
    assert max(knees) - min(knees) <= 0.6, knees
    assert all(0.1 < k <= 1.0 for k in knees), knees
