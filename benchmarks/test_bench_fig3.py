"""Figure 3: mean jobs N_p vs mean quantum length, heavy load (rho = 0.9).

Same system as Figure 2 with lambda_p = 0.9.  The paper's claims: the
same drop-knee-rise shape, with the knee points of the four classes
drawn close together.  (Below quantum ~0.1 the system is genuinely
unstable — the overhead eats enough of the cycle that capacity falls
under the offered load — which is the extreme form of the paper's
"context switch overhead dominates" regime.)

The swept grid lives in one place — the ``fig3`` preset scenario
(:mod:`repro.scenario.presets`), shared with the CLI's ``figure 3``.
"""

import numpy as np
import pytest

from repro.analysis import Table, is_u_shaped, knee_index
from repro.scenario import get_scenario
from repro.scenario import run as run_scenario


def run_fig3(tier):
    return run_scenario(get_scenario("fig3", grid=tier))


@pytest.mark.benchmark(group="figures")
def test_fig3_quantum_sweep_heavy_load(benchmark, emit, full_grids):
    tier = "full" if full_grids else "quick"
    result = benchmark.pedantic(run_fig3, args=(tier,),
                                rounds=1, iterations=1)
    grid = result.values()

    table = Table("quantum_mean", [f"N[class{p}]" for p in range(4)])
    for pt in result.points:
        table.add_row(pt.value, pt.mean_jobs)
    emit("fig3", table, notes=(
        "Figure 3 reproduction: N_p vs mean quantum length 1/gamma, "
        "rho = 0.9 (lambda_p = 0.9).\n"
        "Paper shape: same U curves as Figure 2; knee points of the four "
        "classes nearly coincide."))

    knees = []
    for p in range(4):
        ys = result.series(p)
        assert not any(np.isnan(ys)), f"class{p} has failed points: {ys}"
        assert is_u_shaped(ys, rel_tol=0.03), f"class{p} not U-shaped: {ys}"
        knees.append(grid[knee_index(ys)])

    # "The heavier the system load, the closer to each other are the
    # knee points of the curves": under rho = 0.9 every class's knee
    # falls in the same narrow band (at rho = 0.4 they span the whole
    # axis — class 0's knee is beyond 6; see the Figure 2 bench).
    assert max(knees) - min(knees) <= 0.6, knees
    assert all(0.1 < k <= 1.0 for k in knees), knees
