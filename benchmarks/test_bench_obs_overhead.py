"""Disabled-path observability overhead guard.

The acceptance bar for ``repro.obs``: with both collectors off (the
default), the instrumentation threaded through the solve pipeline must
cost <= 2% of pipeline wall time.  Timing two full pipeline runs
against each other at the 2% level is hopelessly noisy on shared CI
hardware, so the guard is computed instead:

* run one instrumented Figure-2-style sweep with tracing + metrics ON
  and count how many instrumented sites actually fire (spans from the
  trace, metric calls from the registry snapshot);
* micro-benchmark the per-call cost of the disabled ``span()`` and
  disabled ``metrics.inc()`` fast paths;
* bound the total disabled overhead as ``sites x per-call cost`` and
  require it under 2% of the measured sweep wall time.

The measured numbers land in
``benchmarks/results/BENCH_obs_overhead.json`` for the CI smoke-bench
artifact.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import obs
from repro.obs import metrics
from repro.obs.log import StructuredLog
from repro.obs.trace import span
from repro.workloads import fig23_config, sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

GRID = [0.25, 1.0, 3.0]
CALIBRATION_CALLS = 200_000
LOG_CALLS = 20_000


def run_sweep():
    return sweep("quantum_mean", GRID, lambda q: fig23_config(0.4, q))


def per_call_cost(fn, calls=CALIBRATION_CALLS):
    """Best-of-3 per-call seconds (min damps scheduler noise)."""
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(calls):
            fn()
        best = min(best, time.perf_counter() - t0)
    return best / calls


def disabled_span():
    with span("bench.overhead", klass=0):
        pass


def disabled_inc():
    metrics.inc("bench.overhead", method="x")


def test_disabled_obs_overhead_under_two_percent(tmp_path):
    assert not obs.tracing_enabled() and not metrics.enabled()

    # How many instrumented sites does one sweep actually exercise?
    # (Timed too: the enabled/disabled pair feeds the CI regression
    # gate, host-calibrated via the disabled run.)
    trace_path = tmp_path / "calib.jsonl"
    t0 = time.perf_counter()
    with obs.session(trace_path=trace_path):
        run_sweep()
        snap = metrics.snapshot()
    enabled_seconds = time.perf_counter() - t0
    spans = sum(1 for line in trace_path.read_text().splitlines()
                if '"kind":"B"' in line)
    metric_calls = (sum(snap["counters"].values())
                    + sum(h["count"] for h in snap["histograms"].values())
                    + len(snap["gauges"]))

    # Baseline wall time with the collectors off (the shipped default).
    t0 = time.perf_counter()
    run_sweep()
    base_seconds = time.perf_counter() - t0

    span_cost = per_call_cost(disabled_span)
    inc_cost = per_call_cost(disabled_inc)
    overhead = spans * span_cost + metric_calls * inc_cost
    ratio = overhead / base_seconds

    # Enabled-path costs, recorded (not gated: opting in buys the
    # overhead).  The structured log is the new per-event sink; size it
    # so 3x20k events cannot trip rotation mid-measurement.
    log = StructuredLog(tmp_path / "bench.log", max_bytes=1 << 30)
    log_cost = per_call_cost(
        lambda: log.write("info", "bench.tick", i=1), calls=LOG_CALLS)
    log.close()
    enabled_ratio = max(0.0, enabled_seconds - base_seconds) / base_seconds

    payload = {
        "grid": GRID,
        "spans_per_sweep": spans,
        "metric_calls_per_sweep": metric_calls,
        "disabled_span_ns": round(span_cost * 1e9, 1),
        "disabled_inc_ns": round(inc_cost * 1e9, 1),
        "bound_overhead_seconds": round(overhead, 6),
        "bound_overhead_ratio": round(ratio, 6),
        "log_write_ns": round(log_cost * 1e9, 1),
        "enabled_overhead_ratio": round(enabled_ratio, 4),
        # bench_compare.py fields: gate the collectors-ON sweep,
        # host-calibrated by the collectors-OFF sweep.
        "pipeline_seconds": round(enabled_seconds, 4),
        "seed_seconds": round(base_seconds, 4),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs_overhead.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\n{spans} spans + {metric_calls:.0f} metric calls/sweep, "
          f"span {span_cost * 1e9:.0f}ns inc {inc_cost * 1e9:.0f}ns -> "
          f"{100 * ratio:.3f}% of {base_seconds:.2f}s baseline")

    assert ratio <= 0.02, (
        f"disabled observability costs {100 * ratio:.2f}% of the sweep "
        f"({overhead:.4f}s of {base_seconds:.2f}s)")
