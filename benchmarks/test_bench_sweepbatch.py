"""Batched sweep engine acceptance bench: Figure 2 full grid race.

The gate for the batched continuation engine
(:mod:`repro.workloads.batched`): the Figure 2 quantum sweep on the
paper-resolution (``full``) grid, solved with ``batch_points=8``, must

* beat the per-point serial path's wall clock (the committed baseline
  records ~1.4x on this grid; the in-test floor is deliberately looser
  to absorb single-run timing noise),
* reproduce the per-point mean-jobs series to 1e-8 at every grid
  point (in practice the R solves are bitwise identical and the
  figures agree below 1e-11),
* warm-start every non-head point (continuation hit rate ``(n - ceil(n
  / batch)) / n``).

Times, speedup, parity, and the warm/cold split persist to
``benchmarks/results/BENCH_sweepbatch.json``; the CI smoke-bench job
regenerates the file and ``scripts/bench_compare.py`` fails the build
when the batched path's host-calibrated wall clock regresses >20%
against the committed baseline.
"""

import dataclasses
import json
import pathlib
import time

import pytest

from repro.scenario import get_scenario
from repro.workloads.sweeps import sweep_scenario

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BATCH = 8


@pytest.fixture(autouse=True)
def isolated_calibration(tmp_path, monkeypatch):
    """Keep probe timings out of the user's calibration sidecar."""
    monkeypatch.setenv("REPRO_GANG_CALIBRATION",
                       str(tmp_path / "calibration.json"))


def run_fig2(batch_points):
    sc = get_scenario("fig2", grid="full").with_engine(
        batch_points=batch_points)
    return sweep_scenario(sc)


@pytest.mark.benchmark(group="sweepbatch")
def test_fig2_batched_race_and_parity(benchmark, emit):
    t0 = time.perf_counter()
    serial = run_fig2(0)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = benchmark.pedantic(run_fig2, args=(BATCH,),
                                 rounds=1, iterations=1)
    t_batched = time.perf_counter() - t0

    # Parity: batching is an execution strategy, not a model change.
    worst = 0.0
    for a, b in zip(serial.points, batched.points):
        assert a.value == b.value and a.error is None and b.error is None
        for x, y in zip(a.mean_jobs + a.mean_response_time,
                        b.mean_jobs + b.mean_response_time):
            worst = max(worst, abs(x - y))
    assert worst <= 1e-8, f"batched sweep diverged by {worst:.3e}"

    # Continuation coverage: only chunk heads solve cold.
    n = len(batched.points)
    warm = sum(1 for pt in batched.points if pt.warm)
    cold = n - warm
    assert cold == -(-n // BATCH), (warm, cold, n)

    speedup = t_serial / t_batched
    payload = {
        "grid": [pt.value for pt in serial.points],
        "batch_points": BATCH,
        "seed_seconds": round(t_serial, 4),
        "pipeline_seconds": round(t_batched, 4),
        "speedup": round(speedup, 3),
        "worst_parity_diff": worst,
        "warm_points": warm,
        "cold_points": cold,
        "points": [dataclasses.asdict(pt) for pt in batched.points],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_sweepbatch.json").write_text(
        json.dumps(payload, indent=2) + "\n")
    print(f"\nper-point {t_serial:.2f}s  batched x{BATCH} {t_batched:.2f}s  "
          f"speedup {speedup:.2f}x  worst diff {worst:.2e}  "
          f"continuation {warm}/{n} warm")

    assert speedup >= 1.1, (
        f"batched sweep only {speedup:.2f}x faster than per-point "
        f"({t_batched:.2f}s vs {t_serial:.2f}s)")
