"""Ablation: fixed-point refinement vs heavy-traffic-only solution.

The heavy-traffic model (Theorem 4.1) assumes every class exhausts its
quantum; the fixed point (Theorem 4.3) lets vacations shrink to the
effective quanta.  This bench quantifies the difference across loads
and times both solves — at light load the heavy-traffic model grossly
overestimates congestion, while near saturation the two converge
(queues really do stay busy).
"""

import pytest

from repro.analysis import Table
from repro.core import GangSchedulingModel
from repro.workloads import fig23_config

LOADS = [0.2, 0.4, 0.6, 0.8, 0.9]


def solve_both(lam):
    model = GangSchedulingModel(fig23_config(lam, 2.0))
    ht = model.solve_heavy_traffic()
    fp = model.solve()
    return ht, fp


@pytest.mark.benchmark(group="ablation")
def test_heavy_traffic_solve_speed(benchmark):
    model = GangSchedulingModel(fig23_config(0.6, 2.0))
    solved = benchmark.pedantic(model.solve_heavy_traffic,
                                rounds=3, iterations=1)
    assert solved.converged


@pytest.mark.benchmark(group="ablation")
def test_fixed_point_solve_speed(benchmark):
    model = GangSchedulingModel(fig23_config(0.6, 2.0))
    solved = benchmark.pedantic(model.solve, rounds=1, iterations=1)
    assert solved.converged


@pytest.mark.benchmark(group="ablation")
def test_acceleration_ablation(benchmark, emit):
    """Aitken extrapolation vs the plain iteration, across loads."""
    from repro.analysis import Table as _Table
    from repro.core.fixed_point import FixedPointOptions, run_fixed_point

    def run_all():
        rows = []
        for lam in (0.4, 0.9):
            cfg = fig23_config(lam, 2.0)
            plain = run_fixed_point(cfg,
                                    FixedPointOptions(acceleration="none"))
            acc = run_fixed_point(cfg,
                                  FixedPointOptions(acceleration="aitken"))
            diff = max(abs(a - b) / b for a, b in
                       zip(acc.history[-1].mean_jobs,
                           plain.history[-1].mean_jobs))
            rows.append((lam, plain.iterations, acc.iterations, diff))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = _Table("rho", ["iters_plain", "iters_aitken", "max_rel_diff"])
    for lam, ip, ia, diff in rows:
        table.add_row(lam, [ip, ia, diff])
        assert ia <= ip
        assert diff < 1e-3
    emit("ablation_acceleration", table, notes=(
        "Aitken delta-squared acceleration of the effective-quantum "
        "fixed point (fig2/3 system, quantum 2): same answers, fewer "
        "iterations."))


@pytest.mark.benchmark(group="ablation")
def test_fixed_point_vs_heavy_traffic(benchmark, emit):
    table = Table("rho", ["N_ht_total", "N_fp_total", "ht_over_fp",
                          "fp_iterations"])
    pairs = benchmark.pedantic(
        lambda: [solve_both(lam) for lam in LOADS], rounds=1, iterations=1)
    ratios = []
    for lam, (ht, fp) in zip(LOADS, pairs):
        ratio = ht.mean_jobs() / fp.mean_jobs()
        ratios.append(ratio)
        table.add_row(lam, [ht.mean_jobs(), fp.mean_jobs(), ratio,
                            fp.iterations])
    emit("ablation_fixed_point", table, notes=(
        "Heavy-traffic-only solution (Theorem 4.1) vs full fixed point "
        "(Theorem 4.3) on the fig2/3 system, quantum mean 2.\n"
        "The heavy-traffic model is a conservative upper bound that "
        "tightens with load (exact only in the strict rho -> 1 limit; "
        "at rho = 0.9 queues still empty often enough to leave a ~2.4x "
        "gap)."))

    # Heavy traffic is an upper bound everywhere...
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    # ...and the bound tightens monotonically with load.
    assert all(a >= b - 1e-9 for a, b in zip(ratios, ratios[1:])), ratios
    assert ratios[-1] < 3.0
