"""Figure 2: mean jobs N_p vs mean quantum length, light load (rho = 0.4).

Paper: 8 processors, four classes with 2^(3-p) partitions of g = 2^p,
mu = (0.5, 1, 2, 4), overhead 0.01, lambda_p = 0.4.  The paper reports
a steep drop as quanta grow away from zero (overhead amortization), a
knee, then a monotone rise (exhaustive-service effect).  We assert the
same shape and print the series.

The swept grid lives in one place — the ``fig2`` preset scenario
(:mod:`repro.scenario.presets`), shared with the CLI's ``figure 2``.
"""

import pytest

from repro.analysis import Table, is_u_shaped
from repro.scenario import get_scenario
from repro.scenario import run as run_scenario


def run_fig2(tier):
    return run_scenario(get_scenario("fig2", grid=tier))


@pytest.mark.benchmark(group="figures")
def test_fig2_quantum_sweep_light_load(benchmark, emit, full_grids):
    tier = "full" if full_grids else "quick"
    result = benchmark.pedantic(run_fig2, args=(tier,),
                                rounds=1, iterations=1)

    table = Table("quantum_mean", [f"N[class{p}]" for p in range(4)])
    for pt in result.points:
        table.add_row(pt.value, pt.mean_jobs)
    emit("fig2", table, notes=(
        "Figure 2 reproduction: N_p vs mean quantum length 1/gamma, "
        "rho = 0.4 (lambda_p = 0.4).\n"
        "Paper shape: steep drop from tiny quanta, knee, then monotone "
        "rise (longer quanta hold idling partitions)."))

    # Shape assertions (the reproduction criterion).  At rho = 0.4 the
    # coarse-partition classes (1-3) show the full drop-knee-rise; the
    # 8-partition class 0 rarely saturates, so its knee falls beyond the
    # plotted range and it only exhibits the initial drop.
    for p in (1, 2, 3):
        ys = result.series(p)
        assert is_u_shaped(ys, rel_tol=0.03), f"class{p} not U-shaped: {ys}"
    for p in range(4):
        ys = result.series(p)
        assert ys[0] > 1.5 * min(ys), (
            f"class{p}: overhead-dominated regime missing: {ys}")
    # The whole-machine class keeps rising at the right edge.
    assert result.series(3)[-1] > result.series(3)[-3]
