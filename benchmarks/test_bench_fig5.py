"""Figure 5: mean jobs N_p vs the fraction of the timeplexing cycle
devoted to class p's quantum.

Paper: lambda_p = 0.6 (rho = 0.6); for every class the mean number of
jobs decreases monotonically as that class's share of the cycle grows.
Implementation (documented in DESIGN.md): a fixed quantum budget per
cycle; the focus class receives fraction f of it, the other three
split the rest evenly.
"""

import pytest

from repro.analysis import Series, Table, is_monotone_decreasing
from repro.workloads import fig5_config

QUICK_GRID = [0.15, 0.3, 0.45, 0.6, 0.75, 0.9]
FULL_GRID = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]


def run_fig5(grid):
    """For each class p, N_p as a function of its own cycle fraction."""
    from repro.core import GangSchedulingModel
    curves = {p: Series(f"class{p}") for p in range(4)}
    for f in grid:
        for p in range(4):
            solved = GangSchedulingModel(
                fig5_config(focus_class=p, fraction=f)).solve()
            curves[p].append(f, solved.mean_jobs(p))
    return curves


@pytest.mark.benchmark(group="figures")
def test_fig5_cycle_fraction_sweep(benchmark, emit, full_grids):
    grid = QUICK_GRID if not full_grids else FULL_GRID
    curves = benchmark.pedantic(run_fig5, args=(grid,),
                                rounds=1, iterations=1)

    table = Table("fraction", [f"N[class{p}]" for p in range(4)])
    for i, f in enumerate(grid):
        table.add_row(f, [curves[p].y[i] for p in range(4)])
    emit("fig5", table, notes=(
        "Figure 5 reproduction: N_p vs the fraction of the timeplexing "
        "cycle devoted to class p (lambda_p = 0.6, rho = 0.6).\n"
        "Paper shape: monotone decrease for every class."))

    for p in range(4):
        assert is_monotone_decreasing(curves[p].y, rel_tol=0.01), (
            f"class{p}: {curves[p].y}")
