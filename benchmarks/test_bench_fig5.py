"""Figure 5: mean jobs N_p vs the fraction of the timeplexing cycle
devoted to class p's quantum.

Paper: lambda_p = 0.6 (rho = 0.6); for every class the mean number of
jobs decreases monotonically as that class's share of the cycle grows.
Implementation (documented in DESIGN.md): a fixed quantum budget per
cycle; the focus class receives fraction f of it, the other three
split the rest evenly.

The swept grid lives in one place — the ``fig5-class*`` preset
scenarios (:mod:`repro.scenario.presets`), one per focus class, shared
with the CLI's ``figure 5``.
"""

import pytest

from repro.analysis import Table, is_monotone_decreasing
from repro.scenario import figure_scenarios
from repro.scenario import run as run_scenario


def run_fig5(tier):
    """For each class p, the fig5-classp sweep of its own cycle fraction."""
    return [run_scenario(s) for s in figure_scenarios(5, grid=tier)]


@pytest.mark.benchmark(group="figures")
def test_fig5_cycle_fraction_sweep(benchmark, emit, full_grids):
    tier = "full" if full_grids else "quick"
    results = benchmark.pedantic(run_fig5, args=(tier,),
                                 rounds=1, iterations=1)
    grid = results[0].values()

    table = Table("fraction", [f"N[class{p}]" for p in range(4)])
    for i, f in enumerate(grid):
        table.add_row(f, [results[p].points[i].mean_jobs[p]
                          for p in range(4)])
    emit("fig5", table, notes=(
        "Figure 5 reproduction: N_p vs the fraction of the timeplexing "
        "cycle devoted to class p (lambda_p = 0.6, rho = 0.6).\n"
        "Paper shape: monotone decrease for every class."))

    for p in range(4):
        ys = results[p].series(p)
        assert is_monotone_decreasing(ys, rel_tol=0.01), f"class{p}: {ys}"
