"""Figure 4: mean jobs vs mean service rate.

Paper: 1/gamma_p = 5, lambda_p = 0.6, mu_p = mu for every class, mu
swept over [2, 20].  Claim: N drops dramatically as mu grows, then the
rate of decrease becomes very low — no significant benefit from
further service-rate increases.

The swept grid lives in one place — the ``fig4`` preset scenario
(:mod:`repro.scenario.presets`), shared with the CLI's ``figure 4``.
"""

import pytest

from repro.analysis import Table, is_monotone_decreasing
from repro.scenario import get_scenario
from repro.scenario import run as run_scenario


def run_fig4(tier):
    return run_scenario(get_scenario("fig4", grid=tier))


@pytest.mark.benchmark(group="figures")
def test_fig4_service_rate_sweep(benchmark, emit, full_grids):
    tier = "full" if full_grids else "quick"
    result = benchmark.pedantic(run_fig4, args=(tier,),
                                rounds=1, iterations=1)

    table = Table("service_rate", [f"N[class{p}]" for p in range(4)])
    for pt in result.points:
        table.add_row(pt.value, pt.mean_jobs)
    emit("fig4", table, notes=(
        "Figure 4 reproduction: N_p vs common service rate mu; "
        "1/gamma = 5, lambda_p = 0.6.\n"
        "Paper shape: dramatic initial drop, then diminishing returns."))

    for p in range(4):
        ys = result.series(p)
        assert is_monotone_decreasing(ys, rel_tol=0.01), f"class{p}: {ys}"
        # Diminishing returns: the first halving of the grid removes far
        # more jobs than the last.
        first_drop = ys[0] - ys[1]
        last_drop = ys[-2] - ys[-1]
        assert first_drop > 5 * max(last_drop, 0.0), f"class{p}: {ys}"
