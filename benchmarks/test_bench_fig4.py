"""Figure 4: mean jobs vs mean service rate.

Paper: 1/gamma_p = 5, lambda_p = 0.6, mu_p = mu for every class, mu
swept over [2, 20].  Claim: N drops dramatically as mu grows, then the
rate of decrease becomes very low — no significant benefit from
further service-rate increases.
"""

import pytest

from repro.analysis import Table, is_monotone_decreasing
from repro.workloads import fig4_config, sweep

QUICK_GRID = [2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0]
FULL_GRID = [2.0, 2.5, 3.0, 3.5, 4.0, 5.0, 6.0, 8.0, 10.0, 12.0,
             14.0, 16.0, 18.0, 20.0]


def run_fig4(grid):
    return sweep("service_rate", grid, fig4_config)


@pytest.mark.benchmark(group="figures")
def test_fig4_service_rate_sweep(benchmark, emit, full_grids):
    grid = FULL_GRID if full_grids else QUICK_GRID
    result = benchmark.pedantic(run_fig4, args=(grid,),
                                rounds=1, iterations=1)

    table = Table("service_rate", [f"N[class{p}]" for p in range(4)])
    for pt in result.points:
        table.add_row(pt.value, pt.mean_jobs)
    emit("fig4", table, notes=(
        "Figure 4 reproduction: N_p vs common service rate mu; "
        "1/gamma = 5, lambda_p = 0.6.\n"
        "Paper shape: dramatic initial drop, then diminishing returns."))

    for p in range(4):
        ys = result.series(p)
        assert is_monotone_decreasing(ys, rel_tol=0.01), f"class{p}: {ys}"
        # Diminishing returns: the first halving of the grid removes far
        # more jobs than the last.
        first_drop = ys[0] - ys[1]
        last_drop = ys[-2] - ys[-1]
        assert first_drop > 5 * max(last_drop, 0.0), f"class{p}: {ys}"
