"""Extension bench: batch arrivals (the paper's Section 3 remark).

Sweeps the batch-size distribution at *constant offered job load* and
reports the congestion cost of burstiness, analytically (banded ->
re-blocked QBD model) and via simulation.  Not a paper figure — the
paper only claims the extension is possible; this bench demonstrates
it working end to end.
"""

import numpy as np
import pytest

from repro.analysis import Table
from repro.core import BatchGangSchedulingModel, ClassConfig, SystemConfig
from repro.sim import BatchArrivalGangSimulation

JOB_RATE = 0.5          # jobs per unit time, held constant
BATCH_SIZES = [1, 2, 3, 4]


def config_for(batch_size: int) -> SystemConfig:
    return SystemConfig(processors=2, classes=(
        ClassConfig.markovian(1, arrival_rate=JOB_RATE / batch_size,
                              service_rate=1.0, quantum_mean=2.0,
                              overhead_mean=0.1),))


def pmf_for(batch_size: int) -> list[float]:
    return [0.0] * (batch_size - 1) + [1.0]


def run_sweep():
    rows = []
    for b in BATCH_SIZES:
        cfg = config_for(b)
        pmf = pmf_for(b)
        model = BatchGangSchedulingModel(cfg, [pmf]).solve()
        sims = [BatchArrivalGangSimulation(cfg, [pmf], seed=s,
                                           warmup=1500.0).run(20_000.0)
                .mean_jobs[0] for s in range(3)]
        rows.append((b, model.mean_jobs(0), float(np.mean(sims))))
    return rows


@pytest.mark.benchmark(group="extensions")
def test_batch_arrival_extension(benchmark, emit):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = Table("batch_size", ["N_model", "N_sim"])
    for b, n_model, n_sim in rows:
        table.add_row(b, [n_model, n_sim])
    emit("extension_batch", table, notes=(
        "Batch-arrival extension (paper Section 3 remark): mean jobs vs "
        f"fixed batch size at constant job rate {JOB_RATE} on a "
        "2-partition class.  Burstiness alone grows the queue; the "
        "banded/re-blocked analytic model tracks the simulation (single "
        "class: no decomposition approximation)."))

    model_ns = [r[1] for r in rows]
    sim_ns = [r[2] for r in rows]
    # Congestion strictly grows with burstiness at constant load.
    assert all(a < b for a, b in zip(model_ns, model_ns[1:])), model_ns
    # Model tracks simulation within a few percent in the exact regime.
    for (b, n_model, n_sim) in rows:
        assert n_model == pytest.approx(n_sim, rel=0.08), (b, n_model, n_sim)
