"""Shared helpers for the benchmark harness.

Every bench regenerates one of the paper's evaluation artifacts
(Figures 2-5, plus ablations).  Results are printed as fixed-width
tables *and* persisted under ``benchmarks/results/`` (CSV + text) so
``pytest benchmarks/ --benchmark-only`` leaves the reproduced series on
disk even though pytest captures stdout.

Grids are trimmed relative to the paper's plots to keep the full
harness in the minutes range; pass ``--full-grids`` for denser sweeps.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis import Table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--full-grids", action="store_true", default=False,
        help="run benchmark sweeps on dense (paper-resolution) grids",
    )


@pytest.fixture(scope="session")
def full_grids(request) -> bool:
    return request.config.getoption("--full-grids")


@pytest.fixture(scope="session")
def emit():
    """Persist and print a result table: ``emit('fig2', table, notes)``."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, table: Table, notes: str = "") -> None:
        text = table.render()
        (RESULTS_DIR / f"{name}.csv").write_text(table.to_csv())
        body = (notes.rstrip() + "\n\n" if notes else "") + text + "\n"
        (RESULTS_DIR / f"{name}.txt").write_text(body)
        print(f"\n=== {name} ===")
        if notes:
            print(notes)
        print(text)

    return _emit
