#!/usr/bin/env python
"""Quickstart: model a gang-scheduled machine and read off performance.

Builds the paper's running example — an 8-processor system with four
job classes of partition sizes 1, 2, 4, 8 — solves the analytic model,
cross-checks it with the discrete-event simulator, and prints both.

Run:  python examples/quickstart.py
"""

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.sim import GangSimulation


def main() -> None:
    # ---- describe the system -----------------------------------------
    # Class p needs a partition of 2^p processors; service rates chosen
    # so each class offers the same load (see the paper's Section 5).
    service_rates = [0.5, 1.0, 2.0, 4.0]
    classes = tuple(
        ClassConfig.markovian(
            partition_size=2 ** p,
            arrival_rate=0.4,          # lambda_p
            service_rate=service_rates[p],
            quantum_mean=2.0,          # 1/gamma_p
            overhead_mean=0.01,        # context-switch cost
            name=f"class{p}",
        )
        for p in range(4)
    )
    config = SystemConfig(processors=8, classes=classes)
    print(config.describe())
    print()

    # ---- solve the analytic model -------------------------------------
    model = GangSchedulingModel(config)
    solved = model.solve()
    print("Analytic solution (matrix-geometric fixed point):")
    print(solved.describe())
    print()

    # Per-class detail: tails and operational measures.
    for p, cr in enumerate(solved.classes):
        print(f"{cr.name}: P(N > 4) = {solved.tail_probability(p, 4):.4f}  "
              f"service fraction = {cr.measures.service_fraction:.3f}")
    print()

    # ---- cross-check with the simulator --------------------------------
    print("Simulating the same system (one replication, 30k time units):")
    report = GangSimulation(config, seed=7, warmup=2000.0).run(30_000.0)
    print(report.describe(config.class_names))
    print()
    print("The simulator exercises the literal policy; the analytic model")
    print("decomposes classes with independent vacations (paper, Sec. 4.3),")
    print("so expect close-but-not-identical numbers at moderate load.")


if __name__ == "__main__":
    main()
