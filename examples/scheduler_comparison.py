#!/usr/bin/env python
"""Gang scheduling vs the two pure disciplines it combines.

Reproduces the introduction's argument with numbers: pure time-sharing
gives responsiveness but wastes processors on small jobs; pure
space-sharing keeps processors busy but blocks interactive work behind
long jobs; gang scheduling takes both halves.  Also runs the SP2-style
partition-lending variant described in the paper's conclusion.

Run:  python examples/scheduler_comparison.py
"""

from repro.core import ClassConfig, SystemConfig
from repro.sim import (
    GangSimulation,
    PartitionLendingSimulation,
    SpaceSharingSimulation,
    TimeSharingSimulation,
)

HORIZON = 30_000.0
WARMUP = 3_000.0
SEEDS = (1, 2, 3)


def workload() -> SystemConfig:
    """Interactive, medium, and whole-machine batch jobs on 8 processors.

    The 2-processor medium class matters for the lending variant: its
    queued jobs are what idle interactive partitions can be lent to.
    """
    return SystemConfig(processors=8, classes=(
        ClassConfig.markovian(1, arrival_rate=2.0, service_rate=1.0,
                              quantum_mean=1.0, overhead_mean=0.01,
                              name="interactive"),
        ClassConfig.markovian(2, arrival_rate=0.8, service_rate=1.0,
                              quantum_mean=2.0, overhead_mean=0.01,
                              name="medium"),
        ClassConfig.markovian(8, arrival_rate=0.2, service_rate=1.0,
                              quantum_mean=4.0, overhead_mean=0.01,
                              name="batch"),
    ))


def average(reports, getter):
    vals = [getter(r) for r in reports]
    return sum(vals) / len(vals)


def main() -> None:
    cfg = workload()
    print(cfg.describe())
    print()

    policies = {
        "gang scheduling": lambda s: GangSimulation(cfg, seed=s,
                                                    warmup=WARMUP),
        "gang + partition lending": lambda s: PartitionLendingSimulation(
            cfg, seed=s, warmup=WARMUP),
        "pure space-sharing (FCFS)": lambda s: SpaceSharingSimulation(
            cfg, seed=s, warmup=WARMUP),
        "pure time-sharing (RR)": lambda s: TimeSharingSimulation(
            cfg, seed=s, warmup=WARMUP, quantum=1.0, overhead=0.01),
    }

    print(f"{'policy':<28}{'T_interactive':>15}{'T_medium':>10}"
          f"{'T_batch':>10}{'N_total':>10}")
    for name, factory in policies.items():
        reports = [factory(seed).run(HORIZON) for seed in SEEDS]
        t_int = average(reports, lambda r: r.mean_response_time[0])
        t_med = average(reports, lambda r: r.mean_response_time[1])
        t_bat = average(reports, lambda r: r.mean_response_time[2])
        n_tot = average(reports, lambda r: r.total_mean_jobs)
        print(f"{name:<28}{t_int:>15.3f}{t_med:>10.3f}{t_bat:>10.3f}"
              f"{n_tot:>10.3f}")

    print()
    print("Gang scheduling holds interactive response near the cycle")
    print("length while pure time-sharing pays the full serialization")
    print("cost and pure space-sharing makes interactive jobs wait for")
    print("whole-machine batch jobs to drain.")


if __name__ == "__main__":
    main()
