#!/usr/bin/env python
"""Batch arrivals: the extension the paper sketches, working end to end.

Section 3 of the paper remarks that the analysis "is easily extended to
handle batch arrivals and/or departures as long as the batch sizes are
bounded".  This example exercises that extension both ways:

* analytically — the per-class level process becomes banded (jumps of
  1..K), is re-blocked into an ordinary QBD, and solved with the same
  matrix-geometric machinery;
* by simulation — the gang simulator with batched arrival epochs.

It then answers an operational question: at the *same* job throughput,
how much does burstiness (users submitting job arrays instead of single
jobs) cost in response time, and does a longer quantum mitigate it?

Run:  python examples/batch_arrivals.py
"""

import numpy as np

from repro.core import BatchGangSchedulingModel, ClassConfig, SystemConfig
from repro.sim import BatchArrivalGangSimulation

JOB_RATE = 0.6   # jobs per unit time, held constant across batch sizes


def config(batch_size: int, quantum_mean: float) -> SystemConfig:
    return SystemConfig(processors=4, classes=(
        ClassConfig.markovian(1, arrival_rate=JOB_RATE / batch_size,
                              service_rate=0.5, quantum_mean=quantum_mean,
                              overhead_mean=0.05, name="array-jobs"),
        ClassConfig.markovian(4, arrival_rate=0.2, service_rate=1.5,
                              quantum_mean=quantum_mean,
                              overhead_mean=0.05, name="big"),
    ))


def solve_point(batch_size: int, quantum_mean: float):
    cfg = config(batch_size, quantum_mean)
    pmfs = [[0.0] * (batch_size - 1) + [1.0], [1.0]]
    model = BatchGangSchedulingModel(cfg, pmfs).solve()
    sims = [BatchArrivalGangSimulation(cfg, pmfs, seed=s, warmup=1500.0)
            .run(15_000.0).mean_jobs[0] for s in range(3)]
    return model, float(np.mean(sims))


def main() -> None:
    print(f"Constant job rate {JOB_RATE}; jobs arrive in arrays of size B.")
    print()
    print(f"{'B':>3}{'quantum':>9}{'N model':>10}{'N sim':>10}"
          f"{'T model':>10}")
    for quantum in (1.0, 4.0):
        for b in (1, 2, 4):
            model, sim_n = solve_point(b, quantum)
            cls = model.classes[0]
            print(f"{b:>3}{quantum:>9.1f}{cls.mean_jobs:>10.3f}"
                  f"{sim_n:>10.3f}{cls.mean_response_time:>10.3f}")
        print()
    print("Burstiness alone (same throughput!) inflates the queue; longer")
    print("quanta absorb bursts better because a whole array can drain")
    print("within one time slice instead of waiting out extra cycles.")


if __name__ == "__main__":
    main()
