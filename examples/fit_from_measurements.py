#!/usr/bin/env python
"""Measure → fit → model → tune: the full operator workflow.

The paper assumes phase-type parameter distributions precisely because
PH families can be *fitted to measurements* (its Section 3.2 cites the
EM-fitting literature).  This example walks the whole loop:

1. "measure" service times on a running system (here: synthesized from
   a lognormal the library does NOT contain — a genuinely foreign
   distribution);
2. fit a phase-type law to the samples with hyper-Erlang EM;
3. plug the fit into the analytic model;
4. validate the fitted model against a simulation driven by the *real*
   (lognormal) samples, via a trace;
5. tune the quantum on the fitted model.

Run:  python examples/fit_from_measurements.py
"""

import numpy as np

from repro.core import (
    ClassConfig,
    GangSchedulingModel,
    SystemConfig,
    optimize_quantum,
)
from repro.phasetype import exponential, fit_ph_em
from repro.workloads import ClassTrace, TraceDrivenGangSimulation, WorkloadTrace

RNG = np.random.default_rng(2024)
HORIZON = 40_000.0
ARRIVAL_RATE = 0.5


def measure_service_times(n: int) -> np.ndarray:
    """The 'real' system's service times: lognormal, unknown to us."""
    return RNG.lognormal(mean=0.0, sigma=0.8, size=n)


def build_system(service_dist, quantum_mean: float) -> SystemConfig:
    return SystemConfig(processors=4, classes=(
        ClassConfig(partition_size=2,
                    arrival=exponential(ARRIVAL_RATE),
                    service=service_dist,
                    quantum=exponential(mean=quantum_mean),
                    overhead=exponential(mean=0.05),
                    name="measured"),))


def main() -> None:
    # 1. measure
    samples = measure_service_times(6000)
    print(f"measured {samples.size} service times: "
          f"mean={samples.mean():.3f}, scv="
          f"{samples.var() / samples.mean() ** 2:.3f}")

    # 2. fit
    fit = fit_ph_em(samples, total_order=4)
    d = fit.distribution
    print(f"fitted PH: order={d.order}, branches={fit.orders}, "
          f"mean={d.mean:.3f}, scv={d.scv:.3f}, "
          f"avg log-lik={fit.log_likelihood:.4f}")

    # 3. model with the fit
    quantum = 2.0
    solved = GangSchedulingModel(build_system(d, quantum)).solve()
    print(f"\nanalytic (fitted service): N={solved.mean_jobs(0):.3f}, "
          f"T={solved.mean_response_time(0):.3f}")

    # 4. validate against the REAL service times via a trace
    n_jobs = int(ARRIVAL_RATE * HORIZON * 1.2)
    gaps = RNG.exponential(1.0 / ARRIVAL_RATE, size=n_jobs)
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals <= HORIZON]
    trace = WorkloadTrace(classes=(ClassTrace(
        arrivals, measure_service_times(arrivals.size)),), horizon=HORIZON)
    sim = TraceDrivenGangSimulation(build_system(d, quantum), trace,
                                    seed=7, warmup=HORIZON * 0.1)
    rep = sim.run(HORIZON)
    gap = (solved.mean_jobs(0) - rep.mean_jobs[0]) / rep.mean_jobs[0]
    print(f"trace-driven sim (real lognormal services): "
          f"N={rep.mean_jobs[0]:.3f}  (model gap {gap:+.1%})")

    # 5. tune on the fitted model
    best = optimize_quantum(lambda q: build_system(d, q),
                            bounds=(0.2, 8.0), tol=0.02)
    print(f"\noptimal quantum on the fitted model: {best.quantum:.2f} "
          f"(total N {best.objective_value:.3f}, "
          f"{best.evaluations} solves)")
    print("\nThe PH fit stands in for a distribution the library has no")
    print("closed form for, and the model built on it tracks the real-")
    print("trace simulation — the fitting loop the paper's Section 3.2")
    print("points to.")


if __name__ == "__main__":
    main()
