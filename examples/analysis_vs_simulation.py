#!/usr/bin/env python
"""Where the paper's decomposition is exact, and where it bends.

The analysis treats each class as a queue with i.i.d. PH vacations
(Section 4.3); footnote 2 of the paper notes the exact treatment would
condition vacations on the other classes' populations.  This example
makes the approximation structure visible:

1. the per-class chain vs a simulation of *its own* decomposed model —
   exact agreement (validates the machinery);
2. the model vs the *full* gang simulation at heavy load — near
   agreement (heavy-traffic regime);
3. the same at moderate load — the documented independence bias.

Run:  python examples/analysis_vs_simulation.py
"""

import numpy as np

from repro.core import GangSchedulingModel
from repro.sim import GangSimulation, VacationServerSimulation, run_replications
from repro.workloads import fig23_config


def decomposed_check(cfg, solved, seeds=3, horizon=20_000.0):
    print("  class   model N   decomposed-sim N")
    for p, cr in enumerate(solved.classes):
        cls = cfg.classes[p]
        means = []
        for seed in range(seeds):
            sim = VacationServerSimulation(
                cfg.partitions(p), cls.arrival, cls.service, cls.quantum,
                cr.vacation, seed=seed, warmup=horizon * 0.1)
            means.append(sim.run(horizon).mean_jobs[0])
        print(f"  {cr.name:>6}  {cr.mean_jobs:>8.3f}   "
              f"{np.mean(means):>8.3f}  (exact tier)")


def full_check(cfg, solved, label, horizon=25_000.0):
    summary = run_replications(
        lambda s, w: GangSimulation(cfg, seed=s, warmup=w),
        replications=4, horizon=horizon, warmup=horizon * 0.1)["mean_jobs"]
    print(f"  class   model N      sim N      rel err   ({label})")
    for p, cr in enumerate(solved.classes):
        rel = (cr.mean_jobs - summary.mean[p]) / summary.mean[p]
        print(f"  {cr.name:>6}  {cr.mean_jobs:>8.3f}   "
              f"{summary.mean[p]:>7.3f}+-{summary.half_width[p]:.3f} "
              f"{rel:>+8.1%}")


def main() -> None:
    print("=" * 64)
    print("Tier 1 — decomposed model vs its own simulation (must match)")
    print("=" * 64)
    cfg = fig23_config(0.4, 2.0)
    solved = GangSchedulingModel(cfg).solve()
    decomposed_check(cfg, solved)

    print()
    print("=" * 64)
    print("Tier 2 — full system, heavy load (rho = 0.9): near-exact")
    print("=" * 64)
    cfg_heavy = fig23_config(0.9, 1.0)
    solved_heavy = GangSchedulingModel(cfg_heavy).solve()
    full_check(cfg_heavy, solved_heavy, "heavy traffic", horizon=40_000.0)

    print()
    print("=" * 64)
    print("Tier 3 — full system, moderate load (rho = 0.4): the")
    print("independence assumption biases the model low by ~10-20%")
    print("=" * 64)
    full_check(cfg, solved, "moderate load")

    print()
    print("This is the approximation the paper's footnote 2 defers to an")
    print("extended version; the reproduction implements the published")
    print("fixed point and quantifies its error with the simulator.")


if __name__ == "__main__":
    main()
