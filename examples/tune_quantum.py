#!/usr/bin/env python
"""Tuning the time quantum — the paper's headline use case.

"Our model and analysis can be used to tune our scheduler in order to
maximize its performance on each hardware platform."  This example
sweeps the quantum length for an SP2-style interactive/batch mix,
locates the quantum minimizing total mean jobs (the Figure 2/3 knee),
and shows how the optimum moves with the context-switch cost — the
actual tuning question an operator faces (faster switch hardware ->
shorter optimal quanta).

Run:  python examples/tune_quantum.py
"""

from repro.analysis import Series
from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.errors import UnstableSystemError


def build_system(quantum_mean: float, overhead_mean: float) -> SystemConfig:
    """A 16-processor machine: many small interactive jobs + big batch."""
    return SystemConfig(processors=16, classes=(
        ClassConfig.markovian(1, arrival_rate=4.0, service_rate=1.0,
                              quantum_mean=quantum_mean,
                              overhead_mean=overhead_mean,
                              name="interactive"),
        ClassConfig.markovian(8, arrival_rate=0.5, service_rate=1.0,
                              quantum_mean=quantum_mean,
                              overhead_mean=overhead_mean,
                              name="batch"),
    ))


def sweep_quantum(overhead_mean: float, grid) -> Series:
    curve = Series(f"overhead={overhead_mean}")
    for q in grid:
        try:
            solved = GangSchedulingModel(
                build_system(q, overhead_mean)).solve()
            curve.append(q, solved.mean_jobs())
        except UnstableSystemError:
            # Quanta so short the overhead eats the capacity: the
            # system saturates (the extreme left of the Figure 2 curve).
            curve.append(q, float("inf"))
    return curve


def main() -> None:
    grid = [0.05, 0.1, 0.2, 0.4, 0.8, 1.5, 3.0, 6.0]
    print(f"{'quantum':>9}", end="")
    overheads = [0.002, 0.02, 0.2]
    curves = []
    for oh in overheads:
        print(f"{'N(oh=' + str(oh) + ')':>14}", end="")
    print()
    for oh in overheads:
        curves.append(sweep_quantum(oh, grid))
    for i, q in enumerate(grid):
        print(f"{q:>9.2f}" + "".join(f"{c.y[i]:>14.3f}" for c in curves))
    print()
    for oh, curve in zip(overheads, curves):
        best = curve.argmin()
        print(f"overhead {oh:>6}: best quantum = {grid[best]:>5.2f} "
              f"(total mean jobs {curve.y[best]:.3f})")
    print()
    print("Cheaper context switches pull the optimal quantum toward zero;")
    print("expensive ones push it out — the trade-off behind the paper's")
    print("Figure 2/3 knee, quantified for this machine.")


if __name__ == "__main__":
    main()
