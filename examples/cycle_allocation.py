#!/usr/bin/env python
"""Dividing the timeplexing cycle between competing classes (Figure 5).

An operator question the paper's third experiment answers: given a
fixed cycle length, how should it be split between an interactive
class and a batch class?  This example sweeps the split, shows the
per-class response-time trade-off, and picks the allocation meeting an
interactive SLO at minimal batch cost.  Distributions beyond
exponential are exercised too (Erlang quanta — low-jitter slices).

Run:  python examples/cycle_allocation.py
"""

from repro.core import ClassConfig, GangSchedulingModel, SystemConfig
from repro.phasetype import erlang, exponential

CYCLE_BUDGET = 6.0      # total quantum time per cycle
SLO_INTERACTIVE = 4.0   # target mean response time


def build(fraction: float) -> SystemConfig:
    """Interactive gets ``fraction`` of the budget, batch the rest.

    Quanta are Erlang-4 (SCV 1/4): schedulers usually implement nearly
    deterministic slices, which the PH machinery captures directly.
    """
    q_int = CYCLE_BUDGET * fraction
    q_bat = CYCLE_BUDGET * (1.0 - fraction)
    return SystemConfig(processors=8, classes=(
        ClassConfig(partition_size=1,
                    arrival=exponential(2.4),
                    service=exponential(1.0),
                    quantum=erlang(4, mean=q_int),
                    overhead=exponential(mean=0.02),
                    name="interactive"),
        ClassConfig(partition_size=4,
                    arrival=exponential(0.5),
                    service=exponential(0.8),
                    quantum=erlang(4, mean=q_bat),
                    overhead=exponential(mean=0.02),
                    name="batch"),
    ))


def main() -> None:
    grid = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]
    print(f"{'frac_int':>9}{'T_interactive':>15}{'T_batch':>10}"
          f"{'meets SLO':>11}")
    best = None
    for f in grid:
        solved = GangSchedulingModel(build(f)).solve()
        t_int = solved.mean_response_time(0)
        t_bat = solved.mean_response_time(1)
        ok = t_int <= SLO_INTERACTIVE
        print(f"{f:>9.2f}{t_int:>15.3f}{t_bat:>10.3f}{str(ok):>11}")
        if ok and (best is None or t_bat < best[2]):
            best = (f, t_int, t_bat)

    print()
    if best:
        print(f"Smallest interactive share meeting the SLO of "
              f"{SLO_INTERACTIVE}: fraction {best[0]:.2f} "
              f"(T_int={best[1]:.2f}, T_batch={best[2]:.2f})")
    else:
        print("No split meets the interactive SLO; shorten the cycle or "
              "add capacity.")
    print()
    print("Figure 5's monotone trade-off, turned into an allocation rule.")


if __name__ == "__main__":
    main()
