"""Lockstep batched sweep engine: many grid points, stacked BLAS.

:func:`repro.workloads.sweeps.sweep` solves grid points one at a time;
profiling shows the per-point cost is dominated by Python call
overhead around small dense BLAS calls — exactly the workload shape
that batching fixes.  This engine advances *all pending points of a
sweep chunk through the same fixed-point iteration simultaneously*:

* Each point keeps its own :class:`~repro.pipeline.context.SolveContext`
  and follows the exact control flow of
  :func:`repro.core.fixed_point._run_fixed_point` (bootstrap,
  per-class saturation, Aitken windows, identical convergence tests),
  so a batched point's trajectory is the serial trajectory.
* The per-class linear algebra of one lockstep iteration — drift
  tests, warm Newton refinements, logarithmic reductions, dense
  boundary solves — is gathered across points, grouped by matrix
  shape, and dispatched as ``(njobs, m, m)`` stacked kernels
  (:mod:`repro.kernels.batched`).  Points converge and drop out of the
  batch individually; any per-slice failure falls back to the serial
  resilience chain for just that point.

Continuation
------------
Chunks are anchored to the *sorted unique grid*: chunk ``k`` covers
sorted values ``[k*batch, (k+1)*batch)``.  The chunk head (its lowest
value) solves cold and its converged per-class ``R`` matrices seed the
``R0`` warm starts of every other point in the chunk via the existing
``solve_R(..., R0=)`` hook.  Seeding ``R`` (solved to ``1e-12``) does
not move the fixed point's ``1e-5`` stopping test, so batched results
match cold per-point solves to well under ``1e-8``; vacation-level
continuation would shift the stopping iterate and is deliberately not
done.  Head seeds are journaled (``cont`` field on the head's point
record), so a killed-and-resumed batched sweep reseeds pending points
with the exact numbers the interrupted run used — chunk anchoring plus
composition-independent kernels make the resume byte-identical.  The
chunk-local lineage (a chunk never seeds from outside itself) is what
lets the service daemon shard a batched sweep by chunk without
changing any point's bytes.

Adaptive backend crossover
--------------------------
In ``backend="auto"`` mode on grids with at least three chunks, the
first two chunks act as probes: chunk 0's head solves with the dense
kernels, chunk 1's head with the sparse ones (tail points stay on the
static policy), and the heads' per-stage timings pick
a per-site winner (:func:`repro.kernels.adaptive.pick_winners`) that
is armed for every later chunk.  Probe timings ride on the heads'
journal records, so a resumed sweep re-derives the same winners; a
sidecar (:func:`repro.kernels.adaptive.store_calibration`) lets later
runs skip probing entirely.  On systems below the sparse kernels'
minimum operand size the winner cannot change any result — both
probes degrade to dense — so calibration is always safe to engage.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.core.fixed_point import (
    FixedPointResult,
    IterationRecord,
    _aitken_target,
    _optimistic_quanta,
)
from repro.core.model import GangSchedulingModel
from repro.core.vacation import fixed_point_vacation, heavy_traffic_vacation, reduce_order
from repro.errors import UnstableSystemError, ValidationError
from repro.kernels import adaptive, to_dense
from repro.kernels import batched as bk
from repro.kernels.backend import resolve_backend, select_backend
from repro.obs import metrics
from repro.obs.trace import span
from repro.phasetype import PhaseType
from repro.pipeline.assembly import build_class_qbd_fast
from repro.pipeline.context import SolveContext
from repro.pipeline.extract import _off_diag, extract_effective_quantum
from repro.policy import resolve_policy
from repro.kernels.sparse import row_sums, sub_dense
from repro.qbd.boundary import solve_boundary
from repro.qbd.stability import DriftReport, drift
from repro.qbd.stationary import QBDStationaryDistribution
from repro.resilience.fallback import resilient_solve_R
from repro.resilience.faults import maybe_fault

__all__ = ["plan_chunks", "run_batched_pending"]


def plan_chunks(values, batch: int) -> list[list[float]]:
    """Anchored continuation chunks of a grid.

    Chunks partition the *sorted unique* values into runs of ``batch``
    adjacent points.  The anchoring is positional, so the chunk layout
    of a grid never depends on which points are already solved — the
    invariant behind byte-identical resume and service sharding.
    """
    order = sorted({float(v) for v in values})
    batch = max(1, int(batch))
    return [order[i:i + batch] for i in range(0, len(order), batch)]


class _Task:
    """One grid point advancing through the lockstep iteration."""

    def __init__(self, value: float, config, model: GangSchedulingModel,
                 opts, seed: list | None):
        self.value = value
        self.config = config
        self.model = model
        self.opts = opts
        self.ctx = SolveContext.create(config, opts)
        self.pol = resolve_policy(model.policy)
        self.seed = seed
        self.warm = False
        if seed is not None:
            for p, R in enumerate(seed):
                if R is not None and p < len(self.ctx.classes):
                    self.ctx.classes[p].R = np.asarray(R, dtype=np.float64)
                    self.warm = True
        self.vacations: list[PhaseType] = []
        self.result = FixedPointResult(spaces=[], processes=[], solutions=[],
                                       vacations=[])
        self.state = None
        self.prev_means = None
        self.prev_sat = None
        self.eff_hist: list[np.ndarray] = []
        self.error: BaseException | None = None
        self.finished = False
        self.started = time.perf_counter()
        self.elapsed = 0.0

    @property
    def L(self) -> int:
        return self.config.num_classes

    def fail(self, exc: BaseException) -> None:
        self.error = exc
        self.finished = True
        self.elapsed = time.perf_counter() - self.started

    def finish(self) -> None:
        self.finished = True
        self.elapsed = time.perf_counter() - self.started


class _Job:
    """One (task, class) solve inside a lockstep iteration."""

    __slots__ = ("task", "p", "art", "report", "R", "sol", "sat", "done")

    def __init__(self, task: _Task, p: int):
        self.task = task
        self.p = p
        self.art = task.ctx.classes[p]
        self.report = None
        self.R = None
        self.sol = None
        self.sat = False
        self.done = False


def _live(tasks: list[_Task]) -> list[_Task]:
    return [t for t in tasks if not t.finished]


def _solve_all_batched(tasks: list[_Task]) -> None:
    """Batched mirror of :func:`repro.pipeline.stages.solve_all`.

    Assembles every (task, class) QBD, then runs drift, ``R`` and
    boundary solves grouped by shape as stacked kernels.  Per-class
    ``UnstableSystemError`` marks the class saturated (exactly the
    serial guard); any other per-task exception fails that task only.
    """
    tasks = _live(tasks)
    if not tasks:
        return
    jobs: list[_Job] = []
    t0 = time.perf_counter()
    for t in tasks:
        try:
            for p in range(t.L):
                view = t.ctx.views[p]
                art = t.ctx.classes[p]
                process, space, art.assembly = build_class_qbd_fast(
                    view.partitions, view.arrival, view.service,
                    view.quantum, t.vacations[p],
                    policy=t.config.empty_queue_policy,
                    workspace=art.assembly,
                    backend=getattr(t.opts, "backend", None),
                )
                art.process, art.space, art.vacation = (process, space,
                                                        t.vacations[p])
                jobs.append(_Job(t, p))
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            t.fail(exc)
    _charge(tasks, "assemble", time.perf_counter() - t0)
    jobs = [j for j in jobs if not j.task.finished]

    # Fault sites fire per (task, class) in deterministic order, with
    # the serial semantics: an UnstableSystemError saturates the class,
    # anything else fails the point.
    for j in jobs:
        if j.task.finished:
            continue
        try:
            maybe_fault("fixed_point.class_solve", key=j.p)
            maybe_fault("qbd.solve")
        except UnstableSystemError:
            _saturate(j)
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            j.task.fail(exc)
    jobs = [j for j in jobs if not j.task.finished and not j.done]

    _stage_stability(tasks, jobs)
    jobs = [j for j in jobs if not j.task.finished and not j.done]
    _stage_rsolve(tasks, jobs)
    jobs = [j for j in jobs if not j.task.finished and not j.done]
    _stage_boundary(tasks, jobs)

    for t in tasks:
        if t.finished:
            continue
        spaces, processes, solutions, saturated = [], [], [], []
        for p in range(t.L):
            art = t.ctx.classes[p]
            spaces.append(art.space)
            processes.append(art.process)
            solutions.append(art.solution)
            saturated.append(art.saturated)
        t.state = (spaces, processes, solutions, saturated)


def _saturate(j: _Job) -> None:
    j.sat = True
    j.done = True
    j.art.saturated = True
    j.art.solution = None


def _complete(j: _Job) -> None:
    j.art.saturated = False
    j.art.solution = j.sol
    j.art.R = j.R
    j.done = True


def _charge(tasks: list[_Task], stage: str, seconds: float) -> None:
    """Split a batched stage's wall time across its live tasks."""
    live = _live(tasks)
    if not live:
        return
    share = seconds / len(live)
    for t in live:
        t.ctx.timings.add(stage, share)


def _dense_blocks(j: _Job):
    p = j.art.process
    return (to_dense(p.A0), to_dense(p.A1), to_dense(p.A2))


def _stage_stability(tasks: list[_Task], jobs: list[_Job]) -> None:
    t0 = time.perf_counter()
    groups: dict[int, list[_Job]] = {}
    for j in jobs:
        groups.setdefault(j.art.process.phase_dim, []).append(j)
    for group in groups.values():
        blocks = [_dense_blocks(j) for j in group]
        A0 = bk.stack_blocks([b[0] for b in blocks])
        A1 = bk.stack_blocks([b[1] for b in blocks])
        A2 = bk.stack_blocks([b[2] for b in blocks])
        up, down, y, ok = bk.batched_drift(A0, A1, A2)
        for i, j in enumerate(group):
            if not ok[i]:
                # Reducible chain (or numerical trouble): the serial
                # path owns the proper error.
                try:
                    j.report = drift(*blocks[i])
                except Exception as exc:  # noqa: BLE001 - per-task
                    j.task.fail(exc)
                    continue
            else:
                j.report = DriftReport(up=float(up[i]), down=float(down[i]),
                                       phase_stationary=y[i])
            if not j.report.stable:
                _saturate(j)
    _charge(tasks, "stability", time.perf_counter() - t0)


def _stage_rsolve(tasks: list[_Task], jobs: list[_Job]) -> None:
    """Cold solves are batched; warm solves follow the serial refine.

    A job with a warm ``R`` from the previous fixed-point iteration is
    what the serial path hands to its Newton refinement — whose route
    (dense Kronecker solve vs matrix-free GMRES) depends on the backend
    policy.  Replicating that per job keeps the batched trajectory on
    the serial one bit for bit; near saturation the output is sensitive
    enough that even a ``1e-12`` difference in a converged ``R`` shows
    up at ``1e-8`` in the response times.  Cold solves (the first
    iterations) run the stacked logarithmic reduction, which mirrors
    the serial cold recurrence exactly.
    """
    t0 = time.perf_counter()
    groups: dict[int, list[_Job]] = {}
    serial: list[_Job] = []
    for j in jobs:
        opts = j.task.opts
        if opts.rmatrix_method != "logreduction":
            serial.append(j)
            continue
        d = j.art.process.phase_dim
        prev = j.art.R if getattr(opts, "warm_start", True) else None
        if prev is not None and (prev.shape != (d, d)
                                 or not np.all(np.isfinite(prev))):
            prev = None  # serial solve_R silently discards such seeds
        if prev is not None and select_backend(
                getattr(opts, "backend", None), d * d) == "sparse":
            # Serial refines this seed matrix-free (GMRES); there is no
            # bitwise batched twin, so the serial path keeps the bits.
            serial.append(j)
            continue
        groups.setdefault(d, []).append((j, prev))
    for group in groups.values():
        blocks = [_dense_blocks(j) for j, _ in group]
        A0 = bk.stack_blocks([b[0] for b in blocks])
        A1 = bk.stack_blocks([b[1] for b in blocks])
        A2 = bk.stack_blocks([b[2] for b in blocks])
        R0 = np.zeros_like(A1)
        seeded = np.zeros(len(group), dtype=bool)
        for i, (j, prev) in enumerate(group):
            if prev is not None:
                R0[i] = prev
                seeded[i] = True
        R, refined, ok = bk.batched_solve_R(A0, A1, A2, R0=R0, seeded=seeded)
        n_ref = int((ok & refined).sum())
        n_cold = int((ok & ~refined).sum())
        if n_ref:
            metrics.inc("rsolve.solves", n_ref, method="logreduction",
                        refined=True, batched=True)
        if n_cold:
            metrics.inc("rsolve.solves", n_cold, method="logreduction",
                        refined=False, batched=True)
        for i, (j, _) in enumerate(group):
            if ok[i]:
                j.R = R[i]
            else:
                serial.append(j)
    for j in serial:
        try:
            opts = j.task.opts
            process = j.art.process
            R0 = j.art.R if getattr(opts, "warm_start", True) else None
            if opts.resilience is None:
                from repro.qbd.rmatrix import solve_R
                j.R = solve_R(process.A0, process.A1, process.A2,
                              method=opts.rmatrix_method, tol=1e-12, R0=R0,
                              backend=getattr(opts, "backend", None))
            else:
                j.R, _ = resilient_solve_R(
                    process.A0, process.A1, process.A2,
                    method=opts.rmatrix_method, tol=1e-12,
                    policy=opts.resilience, R0=R0,
                    backend=getattr(opts, "backend", None))
        except UnstableSystemError:
            _saturate(j)
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            j.task.fail(exc)
    _charge(tasks, "rsolve", time.perf_counter() - t0)


def _stage_boundary(tasks: list[_Task], jobs: list[_Job]) -> None:
    t0 = time.perf_counter()
    groups: dict[tuple, list[_Job]] = {}
    serial: list[_Job] = []
    for j in jobs:
        if j.task.finished or j.done:
            continue
        process = j.art.process
        dims = tuple(process.boundary_dims())
        n = int(sum(dims))
        backend = getattr(j.task.opts, "backend", None)
        if process.boundary_levels >= 1 and \
                select_backend(backend, n, site="boundary") == "sparse":
            serial.append(j)  # block-tridiagonal kernel, per point
        else:
            groups.setdefault((dims, process.phase_dim), []).append(j)
    for (dims, d), group in groups.items():
        offsets = np.concatenate([[0], np.cumsum(dims)]).astype(int)
        N = int(offsets[-1])
        b = len(dims) - 1
        M = np.zeros((len(group), N, N))
        A2 = np.empty((len(group), d, d))
        R = np.empty((len(group), d, d))
        for i, j in enumerate(group):
            process = j.art.process
            for col in range(b + 1):
                cols = slice(offsets[col], offsets[col + 1])
                for row in (col - 1, col, col + 1):
                    if row < 0 or row > b:
                        continue
                    blk = process.boundary[row][col]
                    if blk is None:
                        continue
                    M[i, offsets[row]:offsets[row + 1], cols] += to_dense(blk)
            A2[i] = to_dense(process.A2)
            R[i] = j.R
        x, ok = bk.batched_boundary_solve(M, A2, R, offsets, b)
        n_ok = int(ok.sum())
        if n_ok:
            metrics.inc("boundary.solves", n_ok, path="batched-dense")
        for i, j in enumerate(group):
            if ok[i]:
                pi = [x[i, offsets[k]:offsets[k + 1]].copy()
                      for k in range(b + 1)]
                _finish_boundary(j, pi)
            else:
                serial.append(j)
    for j in serial:
        try:
            pi = solve_boundary(j.art.process, j.R,
                                backend=getattr(j.task.opts, "backend", None))
            _finish_boundary(j, pi)
        except UnstableSystemError:
            _saturate(j)
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            j.task.fail(exc)
    _charge(tasks, "boundary", time.perf_counter() - t0)


def _finish_boundary(j: _Job, pi) -> None:
    j.sol = QBDStationaryDistribution(boundary_pi=tuple(pi), R=j.R,
                                      drift_report=j.report,
                                      solve_report=None)
    _complete(j)


def _batched_extract(tasks: list[_Task]) -> dict:
    """Effective-quantum extraction for every live (task, class) job.

    Batched mirror of
    :func:`repro.pipeline.extract.extract_effective_quantum`: jobs are
    grouped by state space, the truncation tail-walk runs lockstep
    across the group, and within each truncation-depth subgroup the
    repeating-level band placement and the ``pi R^n`` entry-flow
    recurrence are stacked across jobs.  The boundary-level code is the
    serial code verbatim per job (it is a handful of levels).  Any
    group-level surprise falls back to the serial extractor per job;
    per-job failures fail only that task.

    Returns ``{(id(task), class): raw PhaseType}``.
    """
    t0 = time.perf_counter()
    raws: dict[tuple[int, int], PhaseType] = {}
    groups: dict = {}
    for t in tasks:
        saturated = t.state[3]
        for p in range(t.L):
            if not saturated[p]:
                art = t.ctx.classes[p]
                groups.setdefault(art.space, []).append((t, p, art))
    for space, group in groups.items():
        try:
            _extract_group(space, group, raws)
        except Exception:  # noqa: BLE001 - serial path owns the error
            for t, p, art in group:
                if t.finished or (id(t), p) in raws:
                    continue
                try:
                    raws[(id(t), p)] = extract_effective_quantum(
                        art.space, art.process, art.solution, art.vacation,
                        truncation_mass=t.opts.truncation_mass,
                        max_levels=t.opts.max_truncation_levels,
                        workspace=art.extraction)
                except Exception as exc:  # noqa: BLE001 - per-task
                    t.fail(exc)
    _charge(tasks, "extract", time.perf_counter() - t0)
    return raws


def _extract_group(space, group: list, raws: dict) -> None:
    """Extract one space-group of jobs (see :func:`_batched_extract`)."""
    plan = group[0][2].extraction.plan(space)
    c = space.boundary_levels
    lvl_start = plan.lvl_start
    rep = plan.repeating
    rs = rep.svc
    nrep = len(rs)
    n = len(group)
    sols = [art.solution for _, _, art in group]

    Rs = np.stack([np.asarray(s.R, dtype=np.float64) for s in sols])
    d = Rs.shape[1]
    pib = np.stack([np.asarray(s.boundary_pi[s.boundary_levels],
                               dtype=np.float64) for s in sols])
    mass = np.array([t.opts.truncation_mass for t, _, _ in group])
    max_levels = np.array([t.opts.max_truncation_levels
                           for t, _, _ in group], dtype=np.intp)

    # Lockstep truncation tail-walk: every slice follows the serial
    # rule (tail(K) = pi_b R^{K-c+1} (I - R)^{-1} e) and freezes as its
    # own threshold is met.  The powers pi_b R^j generated along the
    # way are exactly the entry-flow vectors the repeating levels need,
    # so they are kept.
    w = np.linalg.solve(np.eye(d)[None] - Rs, np.ones((n, d, 1)))[..., 0]
    cur = np.matmul(pib[:, None, :], Rs)
    powers = [cur[:, 0, :]]                  # powers[j] = pi_b R^{j+1}
    cur = np.matmul(cur, Rs)
    powers.append(cur[:, 0, :])
    K = np.full(n, c + 1, dtype=np.intp)
    tail = np.einsum("nd,nd->n", powers[-1], w)
    done = ~((K < max_levels) & (tail > mass))
    while not done.all():
        # Speculative block of 8 steps: the powers are the same
        # sequential matmuls (bitwise), the tails are evaluated in one
        # stacked einsum, and the per-step freeze rule replays in order
        # below.  Powers past the stopping step are computed but never
        # used (downstream slices by depth, not by count).
        block = []
        for _ in range(8):
            cur = np.matmul(cur, Rs)
            block.append(cur[:, 0, :])
        tails = np.einsum("nbd,nd->nb", np.stack(block, axis=1), w)
        powers.extend(block)
        for s in range(8):
            K[~done] += 1
            done |= ~((K < max_levels) & (tails[:, s] > mass))
            if done.all():
                break
    P = np.stack(powers, axis=1) if rep.wait.size else None

    by_depth: dict[int, list[int]] = {}
    for i in range(n):
        by_depth.setdefault(int(K[i]), []).append(i)

    def indices(lvl: int):
        return rep if lvl > c else plan.boundary[lvl - lvl_start]

    for Kv, idxs in by_depth.items():
        ns = len(idxs)
        offsets: dict[int, int] = {}
        pos = 0
        for lvl in range(lvl_start, Kv + 1):
            offsets[lvl] = pos
            pos += len(indices(lvl).svc)
        order = pos
        if order == 0:
            raise ValidationError(
                "no service states found; is m_quantum zero?")
        nlev = Kv - c
        if nlev > 0 and (c < lvl_start
                         or offsets[c + 1] - nrep != offsets[c]):
            # The down band of level c+1 must land exactly on level c's
            # block; anything else is a layout the serial extractor
            # should handle (and error on) itself.
            raise RuntimeError("repeating layout mismatch")

        T = np.zeros((ns, order, order))
        absorb = np.zeros((ns, order))
        xi = np.zeros((ns, order))
        rep_local = np.empty((ns, nrep, nrep))
        rep_up = np.empty((ns, nrep, nrep))
        rep_down = np.empty((ns, nrep, nrep))
        labs = np.zeros((ns, nrep))
        dabs = np.zeros((ns, nrep))
        Wm = np.empty((ns, rep.wait.size, nrep))

        # Boundary levels: the serial per-level slice adds, but each
        # level's blocks are stacked across the subgroup so one fancy
        # gather (pure element copies — bitwise) replaces the per-job
        # ``sub_dense`` calls.  A level whose blocks are not all dense
        # falls back to the per-job serial gathers for that level.
        procs = [group[gi][2].process for gi in idxs]
        for lvl in range(lvl_start, c + 1):
            idx = indices(lvl)
            rows = idx.svc
            nr = len(rows)
            base = offsets[lvl]
            blocks = [pr.block(lvl, lvl) for pr in procs]
            dense = all(isinstance(b, np.ndarray) for b in blocks)
            loc = np.stack(blocks) if dense else None
            if dense:
                sub = loc[:, rows[:, None], rows[None, :]]
                sub[:, np.arange(nr), np.arange(nr)] = 0.0
                T[:, base:base + nr, base:base + nr] += sub
                if idx.wait.size:
                    absorb[:, base:base + nr] += \
                        loc[:, rows[:, None], idx.wait[None, :]].sum(axis=2)
            else:
                for si, b in enumerate(blocks):
                    T[si, base:base + nr, base:base + nr] += \
                        _off_diag(sub_dense(b, rows, rows))
                    if idx.wait.size:
                        absorb[si, base:base + nr] += \
                            sub_dense(b, rows, idx.wait).sum(axis=1)
            if lvl < Kv and lvl < c + 1:
                up_rows = indices(lvl + 1).svc
                o1 = offsets[lvl + 1]
                ubs = [pr.block(lvl, lvl + 1) for pr in procs]
                if all(isinstance(b, np.ndarray) for b in ubs):
                    T[:, base:base + nr, o1:o1 + len(up_rows)] += \
                        np.stack(ubs)[:, rows[:, None], up_rows[None, :]]
                else:
                    for si, b in enumerate(ubs):
                        T[si, base:base + nr, o1:o1 + len(up_rows)] += \
                            sub_dense(b, rows, up_rows)
            if lvl > lvl_start:
                dn = indices(lvl - 1)
                o0 = offsets[lvl - 1]
                dbs = [pr.block(lvl, lvl - 1) for pr in procs]
                if all(isinstance(b, np.ndarray) for b in dbs):
                    dstack = np.stack(dbs)
                    T[:, base:base + nr, o0:o0 + len(dn.svc)] += \
                        dstack[:, rows[:, None], dn.svc[None, :]]
                    if dn.wait.size:
                        absorb[:, base:base + nr] += \
                            dstack[:, rows[:, None], dn.wait[None, :]].sum(axis=2)
                else:
                    for si, b in enumerate(dbs):
                        T[si, base:base + nr, o0:o0 + len(dn.svc)] += \
                            sub_dense(b, rows, dn.svc)
                        if dn.wait.size:
                            absorb[si, base:base + nr] += \
                                sub_dense(b, rows, dn.wait).sum(axis=1)
            elif lvl == 1 and lvl_start == 1:
                dbs = [pr.block(1, 0) for pr in procs]
                if all(isinstance(b, np.ndarray) for b in dbs):
                    absorb[:, base:base + nr] += \
                        np.stack(dbs).sum(axis=2)[:, rows]
                else:
                    for si, b in enumerate(dbs):
                        absorb[si, base:base + nr] += row_sums(b)[rows]
            if idx.wait.size:
                pis = np.stack([sols[gi].level(lvl) for gi in idxs])
                if dense:
                    wsub = loc[:, idx.wait[:, None], idx.svc[None, :]]
                else:
                    wsub = np.stack([sub_dense(b, idx.wait, idx.svc)
                                     for b in blocks])
                flow = np.matmul(pis[:, None, idx.wait], wsub)[:, 0, :]
                xi[:, offsets[lvl]:offsets[lvl] + len(idx.svc)] += flow

        if nlev > 0:
            for si, gi in enumerate(idxs):
                process = group[gi][2].process
                A0, A1, A2 = process.A0, process.A1, process.A2
                rep_local[si] = _off_diag(A1[np.ix_(rs, rs)])
                rep_up[si] = A0[np.ix_(rs, rs)]
                rep_down[si] = A2[np.ix_(rs, rs)]
                if rep.wait.size:
                    labs[si] = A1[np.ix_(rs, rep.wait)].sum(axis=1)
                    dabs[si] = A2[np.ix_(rs, rep.wait)].sum(axis=1)
                    Wm[si] = A1[np.ix_(rep.wait, rs)]

        if nlev > 0:
            # Repeating levels: the three bands are diagonal block
            # runs, so a strided view places all K - c levels of every
            # job with three block copies (values identical to the
            # serial per-level slice adds — each location is written
            # exactly once onto zeros).
            off0 = offsets[c + 1]
            s0, s1, s2 = T.strides
            lstep = (order + 1) * nrep * s2
            dview = np.lib.stride_tricks.as_strided(
                T[:, off0:, off0:], shape=(ns, nlev, nrep, nrep),
                strides=(s0, lstep, s1, s2))
            dview += rep_local[:, None]
            if nlev > 1:
                uview = np.lib.stride_tricks.as_strided(
                    T[:, off0:, off0 + nrep:],
                    shape=(ns, nlev - 1, nrep, nrep),
                    strides=(s0, lstep, s1, s2))
                uview += rep_up[:, None]
            dnview = np.lib.stride_tricks.as_strided(
                T[:, off0:, off0 - nrep:], shape=(ns, nlev, nrep, nrep),
                strides=(s0, lstep, s1, s2))
            dnview += rep_down[:, None]
            absorb[:, off0:off0 + nlev * nrep] += np.tile(labs + dabs,
                                                          (1, nlev))

        diag = np.arange(order)
        T[:, diag, diag] = 0.0
        T[:, diag, diag] = -(T.sum(axis=2) + absorb)

        if nlev > 0 and rep.wait.size:
            # Entry flows of the repeating levels: levels c+1..K need
            # pi_b R^1 .. R^{nlev} restricted to waiting phases — the
            # collected powers, pushed through one stacked matmul.
            flows = np.matmul(P[idxs][:, :nlev][:, :, rep.wait], Wm)
            xi[:, off0:off0 + nlev * nrep] += flows.reshape(
                ns, nlev * nrep)

        for si, gi in enumerate(idxs):
            t, p, art = group[gi]
            atom_flow = 0.0
            if lvl_start == 1:
                pi0 = sols[gi].level(0)
                v0 = art.vacation.exit_rates
                atom_flow = float(
                    (pi0.reshape(-1, space.m_vacation) @ v0).sum())
            total = xi[si].sum() + atom_flow
            if total <= 0:
                t.fail(ValidationError(
                    "no probability flow into quantum starts; the chain "
                    "never serves"))
                continue
            raws[(id(t), p)] = PhaseType.from_trusted(xi[si] / total, T[si])


def _iteration_top(t: _Task, it: int) -> None:
    """Convergence bookkeeping: the head of the serial iteration body."""
    spaces, processes, solutions, saturated = t.state
    L = t.L
    means = np.array([sol.mean_level if sol is not None else np.inf
                      for sol in solutions])
    stable_idx = [p for p in range(L) if not saturated[p]]
    if t.prev_means is None or t.prev_sat != saturated:
        change = float("inf")
    elif stable_idx:
        diffs = [abs(means[p] - t.prev_means[p]) / max(1.0, abs(means[p]))
                 for p in stable_idx]
        change = float(max(diffs))
    else:  # pragma: no cover - guarded by the all-saturated failure
        change = 0.0
    t.result.history.append(IterationRecord(
        iteration=it,
        mean_jobs=tuple(float(m) for m in means),
        vacation_means=tuple(v.mean for v in t.vacations),
        max_rel_change=change,
    ))
    t.result.spaces, t.result.processes = spaces, processes
    t.result.solutions, t.result.vacations = solutions, t.vacations
    t.result.saturated = saturated
    if t.opts.heavy_traffic_only:
        t.result.converged = True
        t.finish()
    elif t.prev_means is not None and t.prev_sat == saturated \
            and change < t.opts.tol:
        t.result.converged = True
        t.finish()
    else:
        t.prev_means, t.prev_sat = means, saturated


def _iteration_bottom(t: _Task, it: int, raws: dict) -> None:
    """Effective quanta, Aitken, recombination: the iteration's tail."""
    saturated = t.state[3]
    L = t.L
    eff: dict[int, PhaseType] = {}
    for p in range(L):
        if saturated[p]:
            eff[p] = t.ctx.views[p].quantum
        else:
            t0r = time.perf_counter()
            eff[p] = reduce_order(raws[(id(t), p)], t.opts.reduction,
                                  backend=getattr(t.opts, "backend", None))
            t.ctx.timings.add("reduce", time.perf_counter() - t0r)
    t.eff_hist.append(np.array([eff[p].mean for p in range(L)]))
    if t.opts.acceleration == "aitken" and len(t.eff_hist) >= 3 \
            and it % 3 == 2 and not any(saturated):
        target, ok = _aitken_target(*t.eff_hist[-3:], t.opts.tol)
        if ok:
            for p in range(L):
                if eff[p].mean > 0 and target[p] != eff[p].mean:
                    eff[p] = PhaseType.from_trusted(
                        eff[p].alpha,
                        np.asarray(eff[p].S) * (eff[p].mean / target[p]))
            t.eff_hist.clear()
    t0 = time.perf_counter()
    t.vacations = [fixed_point_vacation(t.config, p, eff, policy=t.pol)
                   for p in range(L)]
    t.ctx.timings.add("recombine", time.perf_counter() - t0)


def _solve_tasks(tasks: list[_Task]) -> None:
    """Run a set of points through the lockstep fixed-point iteration.

    Control flow is :func:`repro.core.fixed_point._run_fixed_point`
    applied to every task simultaneously; a finished (converged or
    failed) task drops out of the lockstep while the rest continue.
    """
    for t in tasks:
        try:
            t.vacations = [heavy_traffic_vacation(t.config, p, policy=t.pol)
                           for p in range(t.L)]
            t.result.vacations = t.vacations
        except Exception as exc:  # noqa: BLE001 - per-task isolation
            t.fail(exc)
    _solve_all_batched(tasks)

    bootstrap: list[_Task] = []
    for t in _live(tasks):
        saturated = t.state[3]
        if t.opts.heavy_traffic_only and any(saturated):
            bad = [p for p, s in enumerate(saturated) if s]
            t.fail(UnstableSystemError(
                f"heavy-traffic model unstable for class(es) {bad} "
                f"({', '.join(t.config.class_names[p] for p in bad)})"))
            continue
        if any(saturated) and t.opts.allow_optimistic_bootstrap \
                and not t.opts.heavy_traffic_only:
            t.result.used_bootstrap = True
            eff0 = _optimistic_quanta(t.ctx.views)
            t.vacations = [fixed_point_vacation(t.config, p, eff0,
                                                policy=t.pol)
                           for p in range(t.L)]
            bootstrap.append(t)
    _solve_all_batched(bootstrap)
    for t in _live(tasks):
        if all(t.state[3]):
            t.fail(UnstableSystemError(
                "every class is saturated: the offered load exceeds the "
                "system's capacity under any vacation assignment"))

    max_iterations = max((max(1, t.opts.max_iterations)
                          for t in _live(tasks)), default=0)
    for it in range(max_iterations):
        live = [t for t in _live(tasks) if it < max(1, t.opts.max_iterations)]
        if not live:
            break
        for t in live:
            _iteration_top(t, it)
        live = _live(live)
        if not live:
            break
        raws = _batched_extract(live)
        for t in _live(live):
            try:
                _iteration_bottom(t, it, raws)
            except Exception as exc:  # noqa: BLE001 - per-task isolation
                t.fail(exc)
        _solve_all_batched(live)
        for t in _live(live):
            if all(t.state[3]):
                t.fail(UnstableSystemError(
                    "every class became saturated during the fixed-point "
                    "iteration: the system is over capacity"))
    for t in tasks:
        if not t.finished:  # iteration budget exhausted: not converged
            t.finish()
        if t.error is None:
            t.result.timings = t.ctx.timings.as_dict()
            t.result.cache_stats = t.ctx.cache.stats()
            metrics.inc("fixed_point.runs", converged=t.result.converged,
                        bootstrap=t.result.used_bootstrap, policy=t.pol.kind)
            metrics.observe("fixed_point.iterations", t.result.iterations)


def _final_rs(t: _Task) -> list:
    """The converged per-class ``R`` matrices (continuation seeds)."""
    out = []
    for p in range(t.L):
        R = t.ctx.classes[p].R
        out.append(None if R is None else np.asarray(R, dtype=np.float64))
    return out


def _cont_payload(rs: list) -> list:
    return [None if R is None else R.tolist() for R in rs]


def _cont_from_record(rec: dict | None) -> list | None:
    if not rec:
        return None
    cont = rec.get("cont")
    if not cont:
        return None
    try:
        return [None if R is None else np.asarray(R, dtype=np.float64)
                for R in cont]
    except Exception:  # noqa: BLE001 - journal written by another engine
        return None


def _shape_signature(config, pol) -> dict:
    views = pol.views(config)
    return {"P": int(config.processors),
            "classes": [[int(v.partitions), int(v.arrival.order),
                         int(v.service.order), int(v.quantum.order)]
                        for v in views]}


class _Calibration:
    """Probe / sidecar bookkeeping for one batched sweep."""

    def __init__(self, mode: str, chunks: list[list[float]],
                 done_records: dict):
        self.engaged = mode == "auto" and len(chunks) >= 3
        self.probe_values = ([chunks[0][0], chunks[1][0]]
                             if self.engaged else [])
        self.timings: dict[str, dict] = {}   # backend -> stage seconds
        self.decisions: dict[str, str] = {}
        self.from_sidecar = False
        self.key: str | None = None
        if not self.engaged:
            return
        journaled = False
        for v, forced in zip(self.probe_values, ("dense", "sparse")):
            rec = done_records.get(v) or {}
            probe = rec.get("probe")
            if probe and probe.get("backend") == forced:
                self.timings[forced] = dict(probe.get("stage_seconds") or {})
                journaled = True
        self.journal_has_probes = journaled

    def prepare(self, config, pol) -> None:
        """Consult the sidecar (journal probe data outranks it)."""
        if not self.engaged:
            return
        self.key = adaptive.calibration_key(_shape_signature(config, pol))
        if not self.journal_has_probes:
            stored = adaptive.load_calibration(self.key)
            if stored is not None:
                self.decisions = stored
                self.from_sidecar = True

    def forced_backend(self, chunk_index: int) -> str | None:
        """Probe chunks pin their head's backend; others run armed."""
        if not self.engaged or self.from_sidecar:
            return None
        return ("dense", "sparse")[chunk_index] if chunk_index < 2 else None

    def record_probe(self, chunk_index: int, stage_seconds: dict) -> dict:
        forced = ("dense", "sparse")[chunk_index]
        self.timings[forced] = dict(stage_seconds)
        return {"backend": forced, "stage_seconds": dict(stage_seconds)}

    def resolve(self) -> dict[str, str]:
        """Winners for chunks past the probes (may be empty)."""
        if not self.engaged or self.from_sidecar:
            return self.decisions
        if not self.decisions and "dense" in self.timings \
                and "sparse" in self.timings:
            self.decisions = adaptive.pick_winners(self.timings["dense"],
                                                   self.timings["sparse"])
            if self.decisions and self.key is not None:
                adaptive.store_calibration(self.key, self.decisions,
                                           self.timings)
        return self.decisions


def run_batched_pending(*, grid, pending, batch: int,
                        heavy_traffic_only: bool,
                        model_kwargs: dict | None,
                        solve_kwargs: dict | None,
                        skip_errors: bool,
                        finish, done_records: dict) -> None:
    """Solve a sweep's pending points through the batched engine.

    Parameters mirror the serial loop of
    :func:`repro.workloads.sweeps.sweep`; ``finish(slot, point, extra)``
    journals a completed point (``extra`` carries continuation seeds
    and probe timings on chunk-head records) and ``done_records`` maps
    already-journaled values to their raw records (the source of seeds
    and probe timings on resume).
    """
    from repro.workloads.sweeps import SweepPoint, _error_point

    model_kwargs = dict(model_kwargs or {})
    solve_kwargs = dict(solve_kwargs or {})
    max_iterations = int(solve_kwargs.get("max_iterations", 200))
    tol = float(solve_kwargs.get("tol", 1e-5))

    by_value: dict[float, list[tuple[int, object]]] = {}
    for slot, v, config in pending:
        by_value.setdefault(float(v), []).append((slot, config))

    chunks = plan_chunks(grid, batch)
    mode = resolve_backend(model_kwargs.get("backend") or "auto")
    calib = _Calibration(mode, chunks, done_records)

    def make_task(v: float, config, seed, forced: str | None) -> _Task:
        kwargs = dict(model_kwargs)
        if forced is not None:
            kwargs["backend"] = forced
        model = GangSchedulingModel(config, **kwargs)
        opts = model._options(max_iterations, tol, heavy_traffic_only)
        return _Task(v, config, model, opts, seed)

    def emit(t: _Task, extra: dict | None) -> BaseException | None:
        """Turn a finished task into points for all its slots."""
        slots = by_value[t.value]
        if t.error is not None:
            if not skip_errors:
                return t.error
            point = dataclasses.replace(
                _error_point(t.value, t.config.class_names, t.error),
                solve_seconds=t.elapsed, warm=t.warm)
        else:
            solved = t.model._package(t.result)
            point = SweepPoint(
                value=t.value,
                mean_jobs=tuple(c.mean_jobs for c in solved.classes),
                mean_response_time=tuple(c.mean_response_time
                                         for c in solved.classes),
                iterations=solved.iterations,
                converged=solved.converged,
                solve_seconds=t.elapsed,
                warm=t.warm,
            )
        metrics.inc("sweep.points", len(slots),
                    start="warm" if t.warm else "cold")
        metrics.observe("sweep.point.seconds", t.elapsed)
        for slot, _ in slots:
            finish(slot, point, extra)
            extra = None  # journal head payloads once, not per duplicate
        return None

    abort: BaseException | None = None
    first_config = pending[0][2]
    probe_model = GangSchedulingModel(first_config, **model_kwargs)
    calib.prepare(first_config, resolve_policy(probe_model.policy))

    for ci, chunk in enumerate(chunks):
        todo = [v for v in chunk if v in by_value
                and done_records.get(v) is None]
        if not todo:
            continue
        forced = calib.forced_backend(ci)
        decisions = calib.resolve() if forced is None else {}

        # Fire the sweep-level fault site for every value about to be
        # solved, in ascending order (the serial driver's ordering).
        solvable = []
        for v in todo:
            try:
                maybe_fault("sweeps.point", key=v)
            except Exception as exc:  # noqa: BLE001 - per point
                if not skip_errors:
                    raise
                point = _error_point(v, by_value[v][0][1].class_names, exc)
                for slot, _ in by_value[v]:
                    finish(slot, point, None)
                continue
            solvable.append(v)
        if not solvable:
            continue

        head_v = chunk[0]
        head_rs = _cont_from_record(done_records.get(head_v))
        with adaptive.calibrated(decisions or None), \
                span("sweep.chunk", index=ci, size=len(solvable)):
            if head_v in solvable:
                head_task = make_task(head_v, by_value[head_v][0][1],
                                      None, forced)
                _solve_tasks([head_task])
                extra: dict = {}
                if head_task.error is None:
                    head_rs = _final_rs(head_task)
                    if len(chunk) > 1:
                        extra["cont"] = _cont_payload(head_rs)
                if forced is not None:
                    extra["probe"] = calib.record_probe(
                        ci, head_task.ctx.timings.as_dict())
                abort = abort or emit(head_task, extra or None)
                if abort is not None:
                    break
            elif forced is not None and forced not in calib.timings:
                # The journaled head lacks probe timings (written by a
                # per-point run): calibration stays static for safety.
                pass
            # Only the head is pinned during probe chunks: it alone
            # feeds the calibration timings, and leaving the tails on
            # the static policy keeps their numbers on the serial
            # path's backend choices.
            tail = [make_task(v, by_value[v][0][1], head_rs, None)
                    for v in solvable if v != head_v]
            if tail:
                _solve_tasks(tail)
                for t in tail:
                    abort = abort or emit(t, None)
        if abort is not None:
            break
    if abort is not None:
        raise abort
