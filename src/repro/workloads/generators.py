"""Workload trace generation and trace-driven simulation.

Production scheduler studies replay recorded traces.  This module
closes that loop synthetically: generate a per-class trace of
(arrival time, service requirement) pairs from the configured PH
distributions — or construct one by hand — and drive the gang
simulator with it.  Replaying the *same* trace under different
policies gives common-random-number comparisons with far lower
variance than independent sampling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.errors import ValidationError
from repro.phasetype.random import sampler_for
from repro.sim.gang import GangSimulation
from repro.sim.jobs import Job
from repro.utils.rng import StreamFactory

__all__ = ["ClassTrace", "WorkloadTrace", "generate_trace",
           "TraceDrivenGangSimulation"]


@dataclass(frozen=True)
class ClassTrace:
    """One class's job stream: parallel arrays of times and demands."""

    arrival_times: np.ndarray
    service_requirements: np.ndarray

    def __post_init__(self):
        at = np.asarray(self.arrival_times, dtype=np.float64)
        sr = np.asarray(self.service_requirements, dtype=np.float64)
        if at.shape != sr.shape or at.ndim != 1:
            raise ValidationError("trace arrays must be 1-D of equal length")
        if at.size and (np.any(np.diff(at) < 0) or at[0] < 0):
            raise ValidationError("arrival times must be non-decreasing, >= 0")
        if np.any(sr <= 0):
            raise ValidationError("service requirements must be positive")
        object.__setattr__(self, "arrival_times", at)
        object.__setattr__(self, "service_requirements", sr)

    def __len__(self) -> int:
        return int(self.arrival_times.size)


@dataclass(frozen=True)
class WorkloadTrace:
    """A full multi-class trace."""

    classes: tuple[ClassTrace, ...]
    horizon: float

    @property
    def num_jobs(self) -> int:
        return sum(len(c) for c in self.classes)

    def to_arrays(self) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        return {p: (c.arrival_times, c.service_requirements)
                for p, c in enumerate(self.classes)}


def generate_trace(config: SystemConfig, horizon: float,
                   *, seed: int | None = None) -> WorkloadTrace:
    """Sample a trace from the configuration's PH distributions.

    Interarrival times and service requirements are drawn i.i.d. per
    class, exactly as the live simulator would — a trace-driven run on
    the output is statistically identical to a live run (different
    stream usage, so not sample-path identical).
    """
    if horizon <= 0:
        raise ValidationError(f"horizon must be positive, got {horizon}")
    streams = StreamFactory(seed)
    traces = []
    for p, cls in enumerate(config.classes):
        rng_a = streams.get(f"trace.arrival.{p}")
        rng_s = streams.get(f"trace.service.{p}")
        arr_sampler = sampler_for(cls.arrival)
        # Draw in growing batches until the horizon is covered.
        gaps = []
        total = 0.0
        while total < horizon:
            batch = arr_sampler.draw_batch(rng_a, 1024)
            gaps.append(batch)
            total += float(batch.sum())
        times = np.cumsum(np.concatenate(gaps))
        times = times[times <= horizon]
        services = sampler_for(cls.service).draw_batch(rng_s, times.size)
        traces.append(ClassTrace(times, services))
    return WorkloadTrace(classes=tuple(traces), horizon=horizon)


class TraceDrivenGangSimulation(GangSimulation):
    """Gang simulation fed by a fixed :class:`WorkloadTrace`.

    The scheduler's own randomness (quantum lengths, overheads) still
    comes from the seeded streams; only the workload is frozen.  Replay
    the same trace under different configurations for common-random-
    number comparisons.
    """

    def __init__(self, config: SystemConfig, trace: WorkloadTrace, *,
                 seed: int | None = None, warmup: float = 0.0):
        if len(trace.classes) != config.num_classes:
            raise ValidationError(
                f"trace has {len(trace.classes)} classes, config "
                f"{config.num_classes}")
        super().__init__(config, seed=seed, warmup=warmup)
        self._trace = trace
        self._cursor = [0] * config.num_classes

    def _start(self) -> None:
        # Replace renewal arrivals by the trace schedule.
        for p, ct in enumerate(self._trace.classes):
            if len(ct):
                self.sim.schedule_at(float(ct.arrival_times[0]),
                                     self._on_trace_arrival, p)
        self.sim.schedule(0.0, self._begin_class_turn, 0)

    def _on_trace_arrival(self, p: int) -> None:
        ct = self._trace.classes[p]
        i = self._cursor[p]
        self._cursor[p] += 1
        now = self.sim.now
        self._job_counter += 1
        job = Job(job_id=self._job_counter, class_id=p, arrival_time=now,
                  service_requirement=float(ct.service_requirements[i]))
        self.stats[p].on_arrival(now)
        if len(self._active[p]) < self.config.partitions(p):
            self._active[p].append(job)
            if self._current_class == p:
                self._start_job(job)
        else:
            self._queue[p].append(job)
        if self._cursor[p] < len(ct):
            self.sim.schedule_at(float(ct.arrival_times[self._cursor[p]]),
                                 self._on_trace_arrival, p)
        if self._parked is not None:
            self._unpark()
