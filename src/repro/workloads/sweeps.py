"""Generic one-parameter sweep driver.

Every figure of the paper is "solve the model along a grid of one
parameter and plot ``N_p``".  :func:`sweep` runs that loop for any
``value -> SystemConfig`` factory, via the analytic model and/or the
simulator, and returns a :class:`SweepResult` table the benches print.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.model import GangSchedulingModel

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """Solved metrics at one sweep value."""

    value: float
    mean_jobs: tuple[float, ...]
    mean_response_time: tuple[float, ...]
    iterations: int
    converged: bool
    error: str | None = None


@dataclass
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per grid value."""

    parameter: str
    class_names: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)

    def values(self) -> list[float]:
        return [pt.value for pt in self.points]

    def series(self, p: int) -> list[float]:
        """The ``N_p`` curve for class ``p`` (``nan`` for failed points)."""
        return [pt.mean_jobs[p] if pt.error is None else float("nan")
                for pt in self.points]

    def to_rows(self) -> list[list]:
        """Header + rows, ready for CSV or pretty printing."""
        header = [self.parameter] + [f"N[{n}]" for n in self.class_names]
        rows: list[list] = [header]
        for pt in self.points:
            if pt.error is None:
                rows.append([pt.value] + list(pt.mean_jobs))
            else:
                rows.append([pt.value] + [float("nan")] * len(self.class_names))
        return rows

    def render(self, *, fmt: str = "{:>10.4f}") -> str:
        """Fixed-width text table mirroring the paper's figure series."""
        rows = self.to_rows()
        out = ["  ".join(f"{h:>10}" for h in rows[0])]
        for row in rows[1:]:
            out.append("  ".join(fmt.format(v) for v in row))
        return "\n".join(out)


def sweep(parameter: str, values: Sequence[float],
          config_factory: Callable[[float], SystemConfig],
          *, heavy_traffic_only: bool = False,
          model_kwargs: dict | None = None,
          solve_kwargs: dict | None = None,
          skip_errors: bool = True) -> SweepResult:
    """Solve the analytic model along a parameter grid.

    Parameters
    ----------
    parameter:
        Display name of the swept quantity (table header).
    values:
        Grid values, passed to ``config_factory`` one at a time.
    config_factory:
        ``value -> SystemConfig``.
    heavy_traffic_only:
        Solve only the Theorem 4.1 model (no fixed point).
    model_kwargs, solve_kwargs:
        Extra keyword arguments for :class:`GangSchedulingModel` /
        its ``solve``.
    skip_errors:
        Record unstable/failed points (with the error message) instead
        of aborting the sweep.
    """
    result: SweepResult | None = None
    for v in values:
        config = config_factory(v)
        names = config.class_names
        if result is None:
            result = SweepResult(parameter=parameter, class_names=names)
        try:
            model = GangSchedulingModel(config, **(model_kwargs or {}))
            solved = model.solve(heavy_traffic_only=heavy_traffic_only,
                                 **(solve_kwargs or {}))
            result.points.append(SweepPoint(
                value=float(v),
                mean_jobs=tuple(c.mean_jobs for c in solved.classes),
                mean_response_time=tuple(c.mean_response_time
                                         for c in solved.classes),
                iterations=solved.iterations,
                converged=solved.converged,
            ))
        except Exception as exc:  # noqa: BLE001 - reported per point
            if not skip_errors:
                raise
            result.points.append(SweepPoint(
                value=float(v),
                mean_jobs=tuple(float("nan") for _ in names),
                mean_response_time=tuple(float("nan") for _ in names),
                iterations=0, converged=False,
                error=f"{type(exc).__name__}: {exc}",
            ))
    if result is None:
        raise ValueError("sweep requires at least one grid value")
    return result
