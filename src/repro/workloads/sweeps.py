"""Generic one-parameter sweep driver.

Every figure of the paper is "solve the model along a grid of one
parameter and plot ``N_p``".  :func:`sweep` runs that loop for any
``value -> SystemConfig`` factory, via the analytic model and/or the
simulator, and returns a :class:`SweepResult` table the benches print.

Crash safety
------------
Pass ``checkpoint="path/to/run.jsonl"`` and every completed point —
including *failed* points, which are recorded with their error class —
is journaled durably as it finishes.  Re-running the same sweep with
the same checkpoint resumes: journaled points are loaded instead of
re-solved, so a killed-and-resumed sweep reproduces the uninterrupted
run exactly.  Journaled points whose value is no longer on the grid
are ignored and counted on ``SweepResult.stale`` (with a warning).
See :mod:`repro.resilience.checkpoint`.

Parallelism
-----------
Pass ``workers=N`` to solve grid points in ``N`` OS processes.  Each
point is an independent model solve (its own artifact cache, its own
warm starts), so a parallel sweep produces bit-identical points to a
serial one; journaling stays in the parent, appending points as they
complete (in any order — resume is keyed by value, not position), so
parallel sweeps compose with checkpointing unchanged.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.model import GangSchedulingModel
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.resilience.checkpoint import SweepJournal
from repro.resilience.faults import maybe_fault

__all__ = ["SweepPoint", "SweepResult", "sweep", "sweep_scenario"]


@dataclass(frozen=True)
class SweepPoint:
    """Solved metrics at one sweep value."""

    value: float
    mean_jobs: tuple[float, ...]
    mean_response_time: tuple[float, ...]
    iterations: int
    converged: bool
    error: str | None = None
    #: Per-class metric selector values — ``metrics[p][j]`` is class
    #: ``p`` evaluated at the sweep's ``j``-th requested selector
    #: (``"mean"``, ``"p99"``, ``"tail@t"``, …).  ``None`` unless the
    #: sweep asked for distribution metrics, so default sweeps (and
    #: their journals) are byte-identical to pre-distribution runs.
    metrics: tuple[tuple[float, ...], ...] | None = None
    #: Per-class distribution kinds backing ``metrics`` (``"exact"``,
    #: ``"moment"``, ``"saturated"``, ``"unsupported"``).
    dist_kinds: tuple[str, ...] | None = None
    #: Wall-clock seconds spent solving this point (``None`` when the
    #: point predates the field or errored before solving).  Not
    #: part of equality: two runs of the same sweep produce equal
    #: points even though their timings differ.
    solve_seconds: float | None = field(default=None, compare=False)
    #: Whether the solve was continuation-seeded (``True``), cold
    #: (``False``) or solved by an engine that does not track warm
    #: starts (``None``).  Not part of equality either: a warm solve
    #: and a cold solve of the same point agree to solver tolerance.
    warm: bool | None = field(default=None, compare=False)


@dataclass
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per grid value."""

    parameter: str
    class_names: tuple[str, ...]
    points: list[SweepPoint] = field(default_factory=list)
    #: Points loaded from a checkpoint journal instead of re-solved.
    resumed: int = 0
    #: Journaled points whose value is no longer on the grid (the grid
    #: changed between runs); they are ignored, not resumed.
    stale: int = 0

    def values(self) -> list[float]:
        return [pt.value for pt in self.points]

    def series(self, p: int) -> list[float]:
        """The ``N_p`` curve for class ``p`` (``nan`` for failed points)."""
        return [pt.mean_jobs[p] if pt.error is None else float("nan")
                for pt in self.points]

    def to_rows(self) -> list[list]:
        """Header + rows, ready for CSV or pretty printing."""
        header = [self.parameter] + [f"N[{n}]" for n in self.class_names]
        rows: list[list] = [header]
        for pt in self.points:
            if pt.error is None:
                rows.append([pt.value] + list(pt.mean_jobs))
            else:
                rows.append([pt.value] + [float("nan")] * len(self.class_names))
        return rows

    def render(self, *, fmt: str = "{:>10.4f}") -> str:
        """Fixed-width text table mirroring the paper's figure series."""
        rows = self.to_rows()
        out = ["  ".join(f"{h:>10}" for h in rows[0])]
        for row in rows[1:]:
            out.append("  ".join(fmt.format(v) for v in row))
        return "\n".join(out)


def _point_record(pt: SweepPoint) -> dict:
    # ``solve_seconds`` / ``warm`` are run-local provenance and are
    # deliberately NOT journaled: the journal of a resumed run must be
    # byte-identical to an uninterrupted one, and wall times are not.
    rec = {
        "value": pt.value,
        "mean_jobs": list(pt.mean_jobs),
        "mean_response_time": list(pt.mean_response_time),
        "iterations": pt.iterations,
        "converged": pt.converged,
        "error": pt.error,
    }
    # Emitted only when present, so journals of default sweeps keep
    # their pre-distribution bytes.
    if pt.metrics is not None:
        rec["metrics"] = [list(row) for row in pt.metrics]
    if pt.dist_kinds is not None:
        rec["dist_kinds"] = list(pt.dist_kinds)
    return rec


def _point_from_record(rec: dict) -> SweepPoint:
    metrics_rows = rec.get("metrics")
    dist_kinds = rec.get("dist_kinds")
    return SweepPoint(
        value=float(rec["value"]),
        mean_jobs=tuple(float(v) for v in rec["mean_jobs"]),
        mean_response_time=tuple(float(v) for v in rec["mean_response_time"]),
        iterations=int(rec["iterations"]),
        converged=bool(rec["converged"]),
        error=rec.get("error"),
        metrics=(tuple(tuple(float(v) for v in row) for row in metrics_rows)
                 if metrics_rows is not None else None),
        dist_kinds=(tuple(str(k) for k in dist_kinds)
                    if dist_kinds is not None else None),
    )


def _worker_obs_begin(obs_cfg: tuple | None):
    """Arm per-worker collectors inside a pool process.

    ``obs_cfg`` is ``(parent_trace_path | None, collect_metrics)``.
    The worker writes spans to its own ``<base>.w<pid>`` sibling file
    (merged into the parent trace after the pool joins) and starts
    every point from a clean metrics registry so the per-point
    snapshots it embeds in the trace stay disjoint.
    """
    if obs_cfg is None:
        return None
    base, collect = obs_cfg
    tracer = obs_trace.ensure_worker_tracer(base) if base is not None else None
    if collect:
        obs_metrics.reset()
        obs_metrics.enable()
    return tracer


def _worker_obs_end(obs_cfg: tuple | None, tracer, value: float) -> None:
    """Flush one point's metrics snapshot into the worker trace file."""
    if obs_cfg is None or not obs_cfg[1]:
        return
    snap = obs_metrics.snapshot()
    obs_metrics.reset()
    if tracer is not None and (snap.get("counters") or snap.get("gauges")
                               or snap.get("histograms")):
        tracer.emit({"kind": "metrics", "pid": os.getpid(), "scope": "point",
                     "value": value, **snap})


def _solve_point(v: float, config: SystemConfig, heavy_traffic_only: bool,
                 model_kwargs: dict | None, solve_kwargs: dict | None,
                 raise_errors: bool = False,
                 obs_cfg: tuple | None = None,
                 metrics_sel: tuple[str, ...] | None = None) -> SweepPoint:
    """Solve one grid point; errors become error-points by default.

    Module-level (and closure-free) so it pickles into worker
    processes, where errors must travel back as error-points; the
    serial path passes ``raise_errors=True`` under ``skip_errors=False``
    so the original exception object propagates.  ``obs_cfg`` carries
    the parent's observability state into worker processes (the serial
    path leaves it ``None`` — the parent's collectors are already
    armed).  ``metrics_sel`` asks for per-class distribution metrics
    (quantiles/tails) on top of the means; saturated classes degrade
    to the ``saturated`` marker kind instead of failing the point.
    """
    tracer = _worker_obs_begin(obs_cfg)
    try:
        with span("sweep.point", value=v):
            t0 = time.perf_counter()
            model = GangSchedulingModel(config, **(model_kwargs or {}))
            solved = model.solve(heavy_traffic_only=heavy_traffic_only,
                                 **(solve_kwargs or {}))
            point_metrics = dist_kinds = None
            if metrics_sel:
                from repro.metrics.distributions import metric_values
                with span("sweep.point_metrics", value=v):
                    point_metrics = tuple(
                        metric_values(solved, p, metrics_sel)
                        for p in range(len(solved.classes)))
                    dist_kinds = tuple(
                        solved.distributions(p).kind
                        for p in range(len(solved.classes)))
            return SweepPoint(
                value=v,
                mean_jobs=tuple(c.mean_jobs for c in solved.classes),
                mean_response_time=tuple(c.mean_response_time
                                         for c in solved.classes),
                iterations=solved.iterations,
                converged=solved.converged,
                solve_seconds=time.perf_counter() - t0,
                metrics=point_metrics,
                dist_kinds=dist_kinds,
            )
    except Exception as exc:  # noqa: BLE001 - reported per point
        if raise_errors:
            raise
        return _error_point(v, config.class_names, exc)
    finally:
        _worker_obs_end(obs_cfg, tracer, v)


def _error_point(v: float, names: Sequence[str],
                 exc: Exception) -> SweepPoint:
    return SweepPoint(
        value=v,
        mean_jobs=tuple(float("nan") for _ in names),
        mean_response_time=tuple(float("nan") for _ in names),
        iterations=0, converged=False,
        error=f"{type(exc).__name__}: {exc}",
    )


def _reraise_point_error(err: str):
    """Re-raise a worker-side error in the parent (``skip_errors=False``).

    The original exception object stayed in the worker; rebuild it from
    the journaled ``"TypeName: message"`` form — as the repro error
    class when the name matches one, else a ``RuntimeError`` carrying
    the full string.
    """
    import repro.errors as _errors

    name, _, msg = err.partition(": ")
    exc_type = getattr(_errors, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        raise exc_type(msg)
    raise RuntimeError(err)


def sweep(parameter: str, values: Sequence[float],
          config_factory: Callable[[float], SystemConfig],
          *, heavy_traffic_only: bool = False,
          model_kwargs: dict | None = None,
          solve_kwargs: dict | None = None,
          skip_errors: bool = True,
          checkpoint: str | os.PathLike | None = None,
          resume: bool = True,
          workers: int | None = None,
          batch: int | None = None,
          metrics: Sequence[str] | None = None) -> SweepResult:
    """Solve the analytic model along a parameter grid.

    Parameters
    ----------
    parameter:
        Display name of the swept quantity (table header).
    values:
        Grid values, passed to ``config_factory`` one at a time.
    config_factory:
        ``value -> SystemConfig``.
    heavy_traffic_only:
        Solve only the Theorem 4.1 model (no fixed point).
    model_kwargs, solve_kwargs:
        Extra keyword arguments for :class:`GangSchedulingModel` /
        its ``solve``.
    skip_errors:
        Record unstable/failed points (with the error class and
        message) instead of aborting the sweep.
    checkpoint:
        Path of a JSONL journal.  Every completed point is appended
        durably, so a crash loses at most the points in flight.
    resume:
        With ``checkpoint``, load journaled points and skip their
        solves (default).  ``False`` ignores an existing journal and
        overwrites it.
    batch:
        Solve up to this many adjacent grid points at once through the
        batched lockstep engine (:mod:`repro.workloads.batched`):
        stacked BLAS across points, continuation warm-starts within
        each chunk, and (in ``backend="auto"`` mode) an adaptive
        dense/sparse crossover calibrated on the first chunks.
        ``None``/``0``/``1`` keeps the per-point path; ``workers``
        takes precedence (worker processes already amortize the
        per-point overhead the batch engine targets).
    workers:
        Solve points in this many OS processes (``None``/``0``/``1``:
        serially in-process).  Configs are built — and fault-injection
        sites fired — in the parent, in grid order; results are
        journaled as they complete.  Falls back to the serial path when
        worker processes cannot be spawned.
    metrics:
        Metric selectors (see :mod:`repro.metrics.selectors`) to
        evaluate per class at every point, populating
        :attr:`SweepPoint.metrics` / :attr:`SweepPoint.dist_kinds`
        from the solved model's response-time distributions.
        Saturated points degrade to the ``saturated`` marker instead
        of erroring.  Selectors force the per-point engine (the
        batched engine keeps only the R-iterates, not the full
        stationary laws the distributions need).

    Raises
    ------
    CheckpointError
        The checkpoint journal belongs to a different sweep (its
        parameter or class names disagree) or is corrupt beyond its
        final line.
    """
    if len(values) == 0:
        raise ValueError("sweep requires at least one grid value")
    metrics_sel = None
    if metrics is not None and any(m != "mean" for m in metrics):
        metrics_sel = tuple(str(m) for m in metrics)
    journal = SweepJournal(checkpoint) if checkpoint is not None else None
    done: dict[float, SweepPoint] = {}
    #: Raw journal records by value — the batched engine reads its
    #: continuation seeds and probe timings back from these on resume.
    done_records: dict[float, dict] = {}
    result: SweepResult | None = None
    header_written = False
    if journal is not None:
        if resume and journal.exists():
            journal.repair()
            header, records = journal.load()
            if header is not None or records:
                journal.validate_header(header, parameter=parameter)
                done = {pt.value: pt
                        for pt in map(_point_from_record, records)}
                done_records = {float(rec["value"]): rec for rec in records}
                result = SweepResult(parameter=parameter,
                                     class_names=tuple(header["class_names"]))
                header_written = True
            # An empty journal (crash before the header landed) is a
            # fresh start.
        elif journal.exists():
            journal.path.unlink()
        # Otherwise the header is written lazily, once the first config
        # names the classes.

    # Grid-order pass: resumed points land immediately; the rest get a
    # slot plus a parent-built config (the factory is often a lambda,
    # which would not survive pickling anyway).
    grid = [float(v) for v in values]
    points: list[SweepPoint | None] = []
    pending: list[tuple[int, float, SystemConfig]] = []
    resumed = 0
    for v in grid:
        if v in done:
            points.append(done[v])
            resumed += 1
            continue
        config = config_factory(v)
        names = config.class_names
        if result is None:
            result = SweepResult(parameter=parameter, class_names=names)
        elif journal is not None and names != result.class_names:
            from repro.errors import CheckpointError
            raise CheckpointError(
                f"checkpoint journal {journal.path} belongs to a different "
                f"sweep: class names {list(result.class_names)!r}, "
                f"factory produced {list(names)!r}")
        if journal is not None and not header_written:
            journal.write_header(parameter=parameter,
                                 class_names=list(result.class_names))
            header_written = True
        points.append(None)
        pending.append((len(points) - 1, v, config))

    result.resumed = resumed
    if done:
        gridset = set(grid)
        stale = sum(1 for value in done if value not in gridset)
        if stale:
            result.stale = stale
            warnings.warn(
                f"checkpoint {journal.path} holds {stale} point(s) whose "
                f"value is no longer on the grid; they were ignored",
                stacklevel=2)

    if resumed:
        obs_metrics.inc("sweep.points", resumed, status="resumed")
    if result.stale:
        obs_metrics.inc("sweep.points", result.stale, status="stale")

    def finish(slot: int, point: SweepPoint,
               extra: dict | None = None) -> None:
        if points[slot] is not None:
            return
        points[slot] = point
        obs_metrics.inc("sweep.points",
                    status="ok" if point.error is None else "error")
        if point.error is not None and not skip_errors:
            _reraise_point_error(point.error)
        if journal is not None:
            rec = _point_record(point)
            if extra:
                # Batched-engine payloads (continuation seeds, probe
                # timings) ride on the point record; resume hands them
                # back through ``done_records``.
                rec.update(extra)
            journal.append(rec)

    parallel = workers is not None and int(workers) > 1 and len(pending) > 1
    if parallel:
        # Ship the parent's observability state to the workers: spans
        # land in per-worker sibling trace files, merged below.
        tracer = obs_trace.current_tracer()
        obs_cfg = None
        if tracer is not None or obs_metrics.enabled():
            obs_cfg = (os.fspath(tracer.path) if tracer is not None else None,
                       obs_metrics.enabled())
        try:
            _run_parallel(pending, int(workers), heavy_traffic_only,
                          model_kwargs, solve_kwargs, skip_errors, finish,
                          obs_cfg, metrics_sel)
        except OSError:
            # No process support here (restricted sandboxes); the
            # points already journaled above stay journaled, and the
            # serial loop below picks up the unfilled slots.
            parallel = False
        finally:
            if tracer is not None:
                obs_trace.merge_worker_traces(tracer)
    batched = (not parallel and batch is not None and int(batch) > 1
               and pending and metrics_sel is None)
    if batched:
        from repro.workloads.batched import run_batched_pending

        run_batched_pending(
            grid=grid,
            pending=[job for job in pending if points[job[0]] is None],
            batch=int(batch),
            heavy_traffic_only=heavy_traffic_only,
            model_kwargs=model_kwargs,
            solve_kwargs=solve_kwargs,
            skip_errors=skip_errors,
            finish=finish,
            done_records=done_records,
        )
    elif not parallel:
        for slot, v, config in pending:
            if points[slot] is not None:
                continue
            try:
                maybe_fault("sweeps.point", key=v)
                point = _solve_point(v, config, heavy_traffic_only,
                                     model_kwargs, solve_kwargs,
                                     raise_errors=True,
                                     metrics_sel=metrics_sel)
            except Exception as exc:  # noqa: BLE001 - reported per point
                if not skip_errors:
                    raise
                point = _error_point(v, config.class_names, exc)
            finish(slot, point)

    result.points = points
    return result


def sweep_scenario(scenario) -> SweepResult:
    """Run a swept scenario's analytic side through :func:`sweep`.

    ``scenario`` is a :class:`repro.scenario.spec.Scenario` with a
    sweep axis; its engine spec supplies the model/solve kwargs, the
    checkpoint journal and the worker count, so a scenario-driven sweep
    inherits crash safety and parallelism unchanged.  (Duck-typed to
    keep this layer import-free of :mod:`repro.scenario`, which sits
    above it.)
    """
    axis = scenario.system.axis
    if axis is None:
        from repro.errors import ValidationError
        raise ValidationError(
            f"scenario {scenario.name!r} has no sweep axis; "
            "solve it directly with repro.scenario.run")
    eng = scenario.engine
    solve_kwargs = eng.solve_kwargs()
    heavy_traffic_only = solve_kwargs.pop("heavy_traffic_only")
    model_kwargs = eng.model_kwargs()
    policy = getattr(scenario.system, "policy", None)
    if policy is not None:
        # Policies are frozen dataclasses: they pickle cleanly to the
        # sweep worker processes alongside the rest of the kwargs.
        model_kwargs["policy"] = policy
    out = getattr(scenario, "output", None)
    metrics_sel = (tuple(out.metrics)
                   if out is not None
                   and getattr(out, "wants_distributions", False) else None)
    return sweep(axis.parameter, axis.values, scenario.system.config_for,
                 heavy_traffic_only=heavy_traffic_only,
                 model_kwargs=model_kwargs,
                 solve_kwargs=solve_kwargs,
                 checkpoint=eng.checkpoint,
                 workers=eng.workers,
                 batch=getattr(eng, "batch_points", 0),
                 metrics=metrics_sel)


def _run_parallel(pending, workers: int, heavy_traffic_only: bool,
                  model_kwargs: dict | None, solve_kwargs: dict | None,
                  skip_errors: bool, finish,
                  obs_cfg: tuple | None = None,
                  metrics_sel: tuple[str, ...] | None = None) -> None:
    """Fan the pending points over a process pool.

    Fault-injection sites fire in the parent at submission, in grid
    order; completed points are handed to ``finish`` (which journals
    them) as they arrive, in completion order.  On any abort — a fault,
    ``skip_errors=False``, a SIGINT — pending futures are cancelled and
    the already-completed ones are journaled before re-raising, so a
    killed parallel sweep resumes just like a killed serial one.
    """
    import concurrent.futures as cf

    with cf.ProcessPoolExecutor(max_workers=workers) as pool:
        futures: dict = {}
        try:
            for slot, v, config in pending:
                try:
                    maybe_fault("sweeps.point", key=v)
                except Exception as exc:  # noqa: BLE001 - per point
                    if not skip_errors:
                        raise
                    finish(slot, _error_point(v, config.class_names, exc))
                    continue
                futures[pool.submit(_solve_point, v, config,
                                    heavy_traffic_only, model_kwargs,
                                    solve_kwargs, False, obs_cfg,
                                    metrics_sel)] = slot
            for fut in cf.as_completed(futures):
                finish(futures[fut], fut.result())
        except BaseException:
            # Cancel what hasn't started; wait out (and journal) what
            # has — losing at most the points in flight matches the
            # serial crash guarantee.
            for fut in futures:
                fut.cancel()
            for fut, slot in futures.items():
                if not fut.cancelled():
                    try:
                        finish(slot, fut.result())
                    except Exception:  # noqa: BLE001 - already aborting
                        pass
            raise
