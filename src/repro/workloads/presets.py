"""The paper's experiment configurations (Section 5).

All of Figures 2-5 use an 8-processor system with four classes
``p = 0..3`` where class ``p`` has ``2^(3-p)`` partitions of
``g(p) = 2^p`` processors, service rates in the ratio
``mu_0 : mu_1 : mu_2 : mu_3 = 0.5 : 1 : 2 : 4`` and a context-switch
overhead of mean ``0.01``.  All distributions are exponential unless a
``quantum_stages`` argument asks for Erlang quanta (Figure 1's example
uses an Erlang-K quantum).

With these rates, ``g(p) / mu_p = 2`` for every class, so the total
utilization ``rho = sum_p lambda_p g(p) / (P mu_p)`` equals the common
per-class arrival rate ``lambda`` — which is how the paper can say
"``lambda_p = 0.4`` and therefore ``rho = 0.4``".
"""

from __future__ import annotations

from repro.core.config import ClassConfig, SystemConfig
from repro.errors import ValidationError
from repro.phasetype import erlang, exponential

__all__ = [
    "PAPER_SERVICE_RATES",
    "fig23_config",
    "fig4_config",
    "fig5_config",
    "fig1_example_config",
    "sp2_like_config",
]

#: ``mu_p`` for the four classes of Figures 2/3/5.
PAPER_SERVICE_RATES = (0.5, 1.0, 2.0, 4.0)

#: Mean context-switch overhead used throughout Section 5.
PAPER_OVERHEAD_MEAN = 0.01

#: Processors in the evaluation system.
PAPER_PROCESSORS = 8


def _quantum(mean: float, stages: int):
    if stages < 1:
        raise ValidationError(f"quantum_stages must be >= 1, got {stages}")
    if stages == 1:
        return exponential(mean=mean)
    return erlang(stages, mean=mean)


def _paper_classes(arrival_rates, service_rates, quantum_means,
                   *, quantum_stages: int = 1,
                   overhead_mean: float = PAPER_OVERHEAD_MEAN):
    classes = []
    for p, (lam, mu, qm) in enumerate(zip(arrival_rates, service_rates,
                                          quantum_means)):
        classes.append(ClassConfig(
            partition_size=2 ** p,
            arrival=exponential(lam),
            service=exponential(mu),
            quantum=_quantum(qm, quantum_stages),
            overhead=exponential(mean=overhead_mean),
            name=f"class{p}",
        ))
    return tuple(classes)


def fig23_config(arrival_rate: float, quantum_mean: float,
                 *, quantum_stages: int = 1,
                 overhead_mean: float = PAPER_OVERHEAD_MEAN,
                 policy: str = "switch") -> SystemConfig:
    """One point of Figure 2 (``arrival_rate=0.4``) or 3 (``0.9``).

    ``quantum_mean`` is the swept ``1/gamma``, identical for all
    classes.
    """
    return SystemConfig(
        processors=PAPER_PROCESSORS,
        classes=_paper_classes([arrival_rate] * 4, PAPER_SERVICE_RATES,
                               [quantum_mean] * 4,
                               quantum_stages=quantum_stages,
                               overhead_mean=overhead_mean),
        empty_queue_policy=policy,
    )


def fig4_config(service_rate: float, *, arrival_rate: float = 0.6,
                quantum_mean: float = 5.0,
                overhead_mean: float = PAPER_OVERHEAD_MEAN) -> SystemConfig:
    """One point of Figure 4: every class has service rate ``mu``.

    The paper fixes ``1/gamma_p = 5`` and ``lambda_p = 0.6`` and sweeps
    the common service rate.
    """
    return SystemConfig(
        processors=PAPER_PROCESSORS,
        classes=_paper_classes([arrival_rate] * 4, [service_rate] * 4,
                               [quantum_mean] * 4,
                               overhead_mean=overhead_mean),
    )


def fig5_config(focus_class: int, fraction: float, *,
                cycle_quantum_budget: float = 8.0,
                arrival_rate: float = 0.6,
                overhead_mean: float = PAPER_OVERHEAD_MEAN) -> SystemConfig:
    """One point of Figure 5: class ``focus_class`` gets ``fraction`` of
    the cycle's quantum budget; the others split the rest evenly.

    The paper plots ``N_p`` against the fraction of the timeplexing
    cycle devoted to class ``p`` at ``lambda_p = 0.6`` (``rho = 0.6``).
    ``cycle_quantum_budget`` is the total quantum time per cycle
    (the cycle length minus the fixed overheads); the default ``8``
    gives the same mid-sweep quanta as Figures 2/3's x-axis.
    """
    if not 0 <= focus_class < 4:
        raise ValidationError(f"focus_class must be 0..3, got {focus_class}")
    if not 0.0 < fraction < 1.0:
        raise ValidationError(f"fraction must lie strictly in (0, 1), got {fraction}")
    quanta = [cycle_quantum_budget * (1.0 - fraction) / 3.0] * 4
    quanta[focus_class] = cycle_quantum_budget * fraction
    return SystemConfig(
        processors=PAPER_PROCESSORS,
        classes=_paper_classes([arrival_rate] * 4, PAPER_SERVICE_RATES, quanta,
                               overhead_mean=overhead_mean),
    )


def fig1_example_config(*, quantum_stages: int = 4) -> SystemConfig:
    """The small system of the paper's Figure 1 state diagram.

    One class with 3 servers (partitions), Poisson arrivals,
    exponential service and overhead, and an Erlang-``K`` quantum.  A
    second class provides the vacation period.
    """
    return SystemConfig(
        processors=6,
        classes=(
            ClassConfig(
                partition_size=2,
                arrival=exponential(0.5),
                service=exponential(1.0),
                quantum=erlang(quantum_stages, mean=2.0),
                overhead=exponential(mean=0.05),
                name="figure1",
            ),
            ClassConfig.markovian(3, arrival_rate=0.3, service_rate=1.0,
                                  quantum_mean=2.0, overhead_mean=0.05,
                                  name="background"),
        ),
    )


def sp2_like_config(*, interactive_load: float = 0.5,
                    batch_load: float = 0.4) -> SystemConfig:
    """A stylized SP2 multiprogramming mix (the paper's motivating target).

    Class ``interactive``: many small partitions, short jobs, short
    quanta — needs responsiveness.  Class ``batch``: whole-machine
    jobs, long service, long quanta — needs throughput.  Used by the
    quantum-tuning example.
    """
    P = 16
    interactive = ClassConfig(
        partition_size=1,
        arrival=exponential(interactive_load * P * 2.0 / 4.0),
        service=exponential(2.0),
        quantum=exponential(mean=1.0),
        overhead=exponential(mean=0.02),
        name="interactive",
    )
    batch = ClassConfig(
        partition_size=16,
        arrival=exponential(batch_load * 0.25),
        service=exponential(0.25),
        quantum=exponential(mean=6.0),
        overhead=exponential(mean=0.02),
        name="batch",
    )
    return SystemConfig(processors=P, classes=(interactive, batch))
