"""Workload construction: the paper's figure presets and sweep helpers.

:mod:`~repro.workloads.presets` builds the exact configurations of the
paper's Section 5 experiments (Figures 2-5);
:mod:`~repro.workloads.sweeps` provides the generic one-parameter sweep
driver used by the benchmark harness;
:mod:`~repro.workloads.batched` is the batched continuation engine the
driver dispatches to when ``batch > 1``.
"""

from repro.workloads.batched import plan_chunks
from repro.workloads.generators import (
    ClassTrace,
    TraceDrivenGangSimulation,
    WorkloadTrace,
    generate_trace,
)
from repro.workloads.presets import (
    PAPER_SERVICE_RATES,
    fig1_example_config,
    fig23_config,
    fig4_config,
    fig5_config,
    sp2_like_config,
)
from repro.workloads.sweeps import (
    SweepPoint,
    SweepResult,
    sweep,
    sweep_scenario,
)

__all__ = [
    "PAPER_SERVICE_RATES",
    "fig1_example_config",
    "fig23_config",
    "fig4_config",
    "fig5_config",
    "sp2_like_config",
    "plan_chunks",
    "sweep",
    "sweep_scenario",
    "SweepPoint",
    "SweepResult",
    "ClassTrace",
    "WorkloadTrace",
    "generate_trace",
    "TraceDrivenGangSimulation",
]
