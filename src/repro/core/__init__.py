"""The paper's contribution: the gang-scheduling queueing model.

The model of Section 3: ``P`` identical processors, ``L`` job classes,
class ``p`` running on partitions of ``g(p)`` processors
(``c_p = P / g(p)`` partitions available during its time slice), FCFS
queues, and a timeplexing cycle of PH quanta separated by PH
context-switch overheads, with an early switch when a queue empties.

Public surface:

* :class:`~repro.core.config.ClassConfig` /
  :class:`~repro.core.config.SystemConfig` — model description;
* :class:`~repro.core.model.GangSchedulingModel` — the solver façade
  (heavy-traffic initialization + fixed-point iteration over the
  vacation distributions);
* :class:`~repro.core.model.SolvedModel` — per-class stationary
  results, mean jobs ``N_p`` (eq. 37), response times ``T_p``
  (Little's law), tails and diagnostics.
"""

from repro.core.batchmodel import BatchGangSchedulingModel, BatchSolvedModel
from repro.core.config import ClassConfig, SystemConfig
from repro.core.model import GangSchedulingModel, SolvedModel
from repro.core.optimize import (
    SLOTarget,
    optimize_cycle_split,
    optimize_priority_order,
    optimize_quantum,
    optimize_quantum_for_slo,
    optimize_weights,
    parse_slo_target,
    slo_objective,
    total_jobs_objective,
    weighted_response_objective,
)
from repro.core.response import (
    response_time_distribution,
    waiting_time_distribution,
)
from repro.core.statespace import ClassStateSpace
from repro.core.transient import TransientResult, transient_mean_jobs
from repro.core.vacation import heavy_traffic_vacation

__all__ = [
    "ClassConfig",
    "SystemConfig",
    "GangSchedulingModel",
    "SolvedModel",
    "BatchGangSchedulingModel",
    "BatchSolvedModel",
    "ClassStateSpace",
    "heavy_traffic_vacation",
    "response_time_distribution",
    "waiting_time_distribution",
    "transient_mean_jobs",
    "TransientResult",
    "optimize_quantum",
    "optimize_quantum_for_slo",
    "optimize_cycle_split",
    "optimize_weights",
    "optimize_priority_order",
    "total_jobs_objective",
    "weighted_response_objective",
    "slo_objective",
    "SLOTarget",
    "parse_slo_target",
]
