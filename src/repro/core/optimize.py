"""Scheduler tuning on top of the analytic model.

The paper's stated purpose: *"Our model and analysis can be used to
tune our scheduler in order to maximize its performance on each
hardware platform."*  This module turns the solved model into that
tuning loop:

* :func:`optimize_quantum` — pick the quantum length minimizing a
  congestion objective (the Figures 2/3 knee), by golden-section
  search on the empirically unimodal curve;
* :func:`optimize_cycle_split` — divide the timeplexing cycle among
  classes (the Figure 5 trade-off) to minimize a weighted objective,
  by Nelder-Mead on a softmax parameterization of the simplex;
* :func:`optimize_weights` — search the *policy* space: the best
  :class:`~repro.policy.WeightedQuantum` weight vector for a fixed
  system, same softmax/Nelder-Mead machinery but turning a policy knob
  instead of rebuilding the system;
* :func:`optimize_priority_order` — exhaustive search over
  :class:`~repro.policy.PriorityCycle` orderings (``L!`` solves, so
  guarded to small ``L`` — the paper's systems have 4 classes);
* :func:`optimize_quantum_for_slo` — *tail-SLO* tuning: the smallest
  quantum whose worst-class distribution metric (``p99``, ``P{T > t}``)
  meets a bound like ``p99<=2.5``, built from a golden-section
  feasibility probe plus a bisection on the left feasibility edge.

Objectives receive the :class:`~repro.core.model.SolvedModel` and
return a scalar; saturated classes contribute ``inf``, which steers
the search away from infeasible allocations automatically.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Sequence

import numpy as np
from scipy import optimize as sciopt

from repro.core.config import SystemConfig
from repro.core.model import GangSchedulingModel, SolvedModel
from repro.errors import UnstableSystemError, ValidationError
from repro.policy import PriorityCycle, SchedulingPolicy, WeightedQuantum

__all__ = [
    "total_jobs_objective",
    "weighted_response_objective",
    "slo_objective",
    "optimize_quantum",
    "optimize_quantum_for_slo",
    "optimize_cycle_split",
    "optimize_weights",
    "optimize_priority_order",
    "QuantumOptimum",
    "SLOTarget",
    "parse_slo_target",
    "SLOOptimum",
    "CycleSplitOptimum",
    "PolicyOptimum",
]


def total_jobs_objective(solved: SolvedModel) -> float:
    """``sum_p N_p`` — overall congestion (Little: total delay rate)."""
    return solved.mean_jobs()


def weighted_response_objective(weights: Sequence[float]
                                ) -> Callable[[SolvedModel], float]:
    """``sum_p w_p T_p`` — class-weighted mean response time."""
    w = [float(x) for x in weights]

    def objective(solved: SolvedModel) -> float:
        if len(w) != len(solved.classes):
            raise ValidationError(
                f"{len(w)} weights for {len(solved.classes)} classes")
        return sum(wi * c.mean_response_time
                   for wi, c in zip(w, solved.classes))

    return objective


def slo_objective(selector: str) -> Callable[[SolvedModel], float]:
    """Worst-class value of one distribution metric selector.

    ``slo_objective("p99")(solved)`` is ``max_p Q_p(0.99)`` over the
    per-class response-time distributions
    (:meth:`repro.core.model.SolvedModel.distributions`); an SLO holds
    exactly when this objective is below the bound.  ``mean`` falls
    back to the scalar measures.  Saturated classes evaluate to
    ``inf`` (quantile) / ``1.0`` (tail), steering searches away.
    """
    from repro.metrics.selectors import parse_metric

    sel = parse_metric(selector)

    def objective(solved: SolvedModel) -> float:
        values = []
        for p in range(len(solved.classes)):
            if sel.kind == "mean":
                values.append(solved.classes[p].mean_response_time)
            elif sel.kind == "quantile":
                values.append(solved.distributions(p).quantile(sel.value))
            else:
                values.append(solved.distributions(p).tail(sel.value))
        return max(values)

    return objective


def _evaluate(config: SystemConfig, objective, model_kwargs,
              policy: SchedulingPolicy | None = None,
              cache=None) -> float:
    kwargs = dict(model_kwargs or {})
    if policy is not None:
        kwargs["policy"] = policy
    if cache is not None:
        kwargs["cache"] = cache
    try:
        solved = GangSchedulingModel(config, **kwargs).solve()
    except UnstableSystemError:
        return math.inf
    return float(objective(solved))


def _config_key(config: SystemConfig) -> str:
    """Content key of a system configuration (canonical JSON hash)."""
    import hashlib
    import json

    from repro.serialize import system_to_dict

    blob = json.dumps(system_to_dict(config), sort_keys=True,
                      separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class QuantumOptimum:
    """Result of :func:`optimize_quantum`."""

    def __init__(self, quantum: float, objective_value: float,
                 evaluations: int):
        #: The optimal mean quantum length.
        self.quantum = quantum
        #: Objective at the optimum.
        self.objective_value = objective_value
        #: Number of model solves performed.
        self.evaluations = evaluations

    def __repr__(self) -> str:
        return (f"QuantumOptimum(quantum={self.quantum:.6g}, "
                f"objective={self.objective_value:.6g}, "
                f"evaluations={self.evaluations})")


def optimize_quantum(config_factory: Callable[[float], SystemConfig],
                     *, bounds: tuple[float, float],
                     objective: Callable[[SolvedModel], float] = total_jobs_objective,
                     tol: float = 1e-3, max_evaluations: int = 60,
                     model_kwargs: dict | None = None,
                     memo: dict | None = None) -> QuantumOptimum:
    """Golden-section search for the best quantum length.

    Parameters
    ----------
    config_factory:
        ``quantum_mean -> SystemConfig``.
    bounds:
        Search interval ``(lo, hi)``, ``0 < lo <= hi``.  A degenerate
        bracket ``lo == hi`` evaluates that single quantum and returns
        it (so sweep scripts can pin the quantum without special-casing).
    objective:
        Scalar objective over the solved model (default: total mean
        jobs).  The Figure 2/3 curves are unimodal in the quantum, so
        golden-section is appropriate; for a non-unimodal custom
        objective, grid-search first.
    tol:
        Relative interval width at which to stop.
    memo:
        Optional content-keyed objective memo, keyed by the *built
        configuration* rather than the raw quantum: bracket endpoints
        that collapse to bit-identical configs (ulp-different quanta, a
        quantizing factory, repeated searches sharing the dict) cost
        zero solves.  Entries assume the same ``objective`` and
        ``model_kwargs``; pass a fresh dict when either changes.
        ``evaluations`` counts actual model solves only.

    All evaluations in one search also share one
    :class:`~repro.pipeline.cache.ArtifactCache`, so bit-identical
    per-class QBD sub-solves across bracket points are served from
    cache instead of re-solved.
    """
    from repro.pipeline.cache import ArtifactCache

    lo, hi = bounds
    if not 0 < lo <= hi:
        raise ValidationError(
            f"bounds must satisfy 0 < lo <= hi, got {bounds}")
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    evals = 0

    cache: dict[float, float] = {}
    content_memo = memo if memo is not None else {}
    artifacts = ArtifactCache()

    def f(q: float) -> float:
        nonlocal evals
        if q not in cache:
            config = config_factory(q)
            ck = _config_key(config)
            if ck not in content_memo:
                content_memo[ck] = _evaluate(config, objective,
                                             model_kwargs, cache=artifacts)
                evals += 1
            cache[q] = content_memo[ck]
        return cache[q]

    if lo == hi:
        return QuantumOptimum(quantum=lo, objective_value=f(lo),
                              evaluations=evals)

    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    while (b - a) > tol * max(1.0, b) and evals < max_evaluations:
        if f(c) <= f(d):
            b, d = d, c
            c = b - invphi * (b - a)
        else:
            a, c = c, d
            d = a + invphi * (b - a)
    best_q = min(cache, key=cache.get)
    return QuantumOptimum(quantum=best_q, objective_value=cache[best_q],
                          evaluations=evals)


class SLOTarget:
    """A parsed tail-SLO bound: ``<selector> <= <bound>``."""

    def __init__(self, selector: str, bound: float):
        from repro.metrics.selectors import parse_metric

        #: The metric selector the bound constrains (``"p99"``,
        #: ``"tail@5"``, ``"mean"``) — validated on construction.
        self.selector = parse_metric(selector).raw
        #: The bound the worst class must stay at or below.
        self.bound = float(bound)
        if not math.isfinite(self.bound) or self.bound < 0:
            raise ValidationError(
                f"SLO bound must be finite and >= 0, got {bound!r}")

    def __repr__(self) -> str:
        return f"SLOTarget({self.selector}<={self.bound:g})"


def parse_slo_target(spec: str) -> SLOTarget:
    """Parse an SLO spec like ``"p99<=2.5"`` or ``"tail@5<=0.01"``.

    The left side is any metric selector accepted by
    :func:`repro.metrics.selectors.parse_metric`; the right side the
    numeric bound the worst class must meet.
    """
    parts = str(spec).split("<=")
    if len(parts) != 2:
        raise ValidationError(
            f"SLO target must look like 'p99<=2.5', got {spec!r}")
    selector, bound_text = parts[0].strip(), parts[1].strip()
    try:
        bound = float(bound_text)
    except ValueError:
        raise ValidationError(
            f"SLO bound {bound_text!r} is not a number") from None
    return SLOTarget(selector, bound)


class SLOOptimum:
    """Result of :func:`optimize_quantum_for_slo`."""

    def __init__(self, quantum: float, metric_value: float,
                 target: SLOTarget, feasible: bool, evaluations: int,
                 best_quantum: float, best_metric_value: float):
        #: Smallest quantum meeting the bound (the unconstrained
        #: optimum when the search was infeasible).
        self.quantum = quantum
        #: The worst-class metric at :attr:`quantum`.
        self.metric_value = metric_value
        #: The parsed constraint.
        self.target = target
        #: Whether any quantum in the bracket met the bound.
        self.feasible = feasible
        #: Total model solves across probe and bisection.
        self.evaluations = evaluations
        #: The unconstrained minimizer (and its metric) — reported so
        #: an infeasible search still says how close it got.
        self.best_quantum = best_quantum
        self.best_metric_value = best_metric_value

    def __repr__(self) -> str:
        state = "feasible" if self.feasible else "INFEASIBLE"
        return (f"SLOOptimum({self.target.selector}<={self.target.bound:g} "
                f"{state}: quantum={self.quantum:.6g}, "
                f"{self.target.selector}={self.metric_value:.6g}, "
                f"evaluations={self.evaluations})")


def optimize_quantum_for_slo(config_factory: Callable[[float], SystemConfig],
                             *, target: SLOTarget | str,
                             bounds: tuple[float, float],
                             tol: float = 1e-3, max_evaluations: int = 80,
                             model_kwargs: dict | None = None,
                             memo: dict | None = None) -> SLOOptimum:
    """Smallest quantum meeting a tail-SLO bound.

    Two stages on the same content-keyed memo (so no configuration is
    ever solved twice):

    1. a golden-section probe (:func:`optimize_quantum` with
       :func:`slo_objective`) locates the quantum minimizing the
       worst-class metric — if even that minimum violates the bound,
       the SLO is infeasible on this bracket and the probe's optimum
       is returned with ``feasible=False``;
    2. the metric curve is unimodal in the quantum (same empirical
       fact Figures 2/3 rest on), so the feasible set is an interval
       around the minimizer; a bisection on ``[lo, q*]`` walks to its
       left edge — the *smallest* feasible quantum.
    """
    if isinstance(target, str):
        target = parse_slo_target(target)
    lo, hi = bounds
    if not 0 < lo <= hi:
        raise ValidationError(
            f"bounds must satisfy 0 < lo <= hi, got {bounds}")
    objective = slo_objective(target.selector)
    content_memo = memo if memo is not None else {}

    probe = optimize_quantum(config_factory, bounds=bounds,
                             objective=objective, tol=tol,
                             max_evaluations=max_evaluations,
                             model_kwargs=model_kwargs, memo=content_memo)
    evals = probe.evaluations
    if not probe.objective_value <= target.bound:
        return SLOOptimum(quantum=probe.quantum,
                          metric_value=probe.objective_value,
                          target=target, feasible=False, evaluations=evals,
                          best_quantum=probe.quantum,
                          best_metric_value=probe.objective_value)

    from repro.pipeline.cache import ArtifactCache

    artifacts = ArtifactCache()

    def g(q: float) -> float:
        nonlocal evals
        config = config_factory(q)
        ck = _config_key(config)
        if ck not in content_memo:
            content_memo[ck] = _evaluate(config, objective, model_kwargs,
                                         cache=artifacts)
            evals += 1
        return content_memo[ck]

    best_q, best_v = probe.quantum, probe.objective_value
    if g(lo) <= target.bound:
        return SLOOptimum(quantum=lo, metric_value=g(lo), target=target,
                          feasible=True, evaluations=evals,
                          best_quantum=best_q, best_metric_value=best_v)
    # g(lo) violates, g(best_q) meets: bisect the crossing.
    a, b = lo, best_q
    while (b - a) > tol * max(1.0, b) and evals < max_evaluations:
        mid = 0.5 * (a + b)
        if g(mid) <= target.bound:
            b = mid
        else:
            a = mid
    return SLOOptimum(quantum=b, metric_value=g(b), target=target,
                      feasible=True, evaluations=evals,
                      best_quantum=best_q, best_metric_value=best_v)


class CycleSplitOptimum:
    """Result of :func:`optimize_cycle_split`."""

    def __init__(self, fractions: tuple[float, ...], objective_value: float,
                 evaluations: int):
        #: Optimal cycle fractions, summing to 1.
        self.fractions = fractions
        self.objective_value = objective_value
        self.evaluations = evaluations

    def __repr__(self) -> str:
        fr = ", ".join(f"{f:.4f}" for f in self.fractions)
        return (f"CycleSplitOptimum(fractions=({fr}), "
                f"objective={self.objective_value:.6g}, "
                f"evaluations={self.evaluations})")


def optimize_cycle_split(config_factory: Callable[[tuple[float, ...]], SystemConfig],
                         num_classes: int, *,
                         objective: Callable[[SolvedModel], float] = total_jobs_objective,
                         initial: Sequence[float] | None = None,
                         max_evaluations: int = 200,
                         model_kwargs: dict | None = None) -> CycleSplitOptimum:
    """Optimize the division of the cycle's quantum budget.

    Parameters
    ----------
    config_factory:
        ``fractions -> SystemConfig`` where ``fractions`` is a tuple of
        ``num_classes`` positive numbers summing to 1.
    num_classes:
        ``L``.
    initial:
        Starting fractions (default: even split).
    """
    if num_classes < 2:
        raise ValidationError("cycle-split optimization needs >= 2 classes")
    x0 = np.log(np.asarray(initial if initial is not None
                           else [1.0 / num_classes] * num_classes))
    evals = 0

    def unpack(z: np.ndarray) -> tuple[float, ...]:
        w = np.exp(z - z.max())
        w = w / w.sum()
        return tuple(float(v) for v in w)

    def f(z: np.ndarray) -> float:
        nonlocal evals
        evals += 1
        fractions = unpack(z)
        return _evaluate(config_factory(fractions), objective, model_kwargs)

    res = sciopt.minimize(f, x0, method="Nelder-Mead",
                          options={"maxfev": max_evaluations,
                                   "xatol": 1e-3, "fatol": 1e-4})
    fractions = unpack(res.x)
    return CycleSplitOptimum(fractions=fractions,
                             objective_value=float(res.fun),
                             evaluations=evals)


class PolicyOptimum:
    """Result of a policy-knob search (:func:`optimize_weights` /
    :func:`optimize_priority_order`)."""

    def __init__(self, policy: SchedulingPolicy, objective_value: float,
                 evaluations: int):
        #: The best policy found.
        self.policy = policy
        self.objective_value = objective_value
        self.evaluations = evaluations

    def __repr__(self) -> str:
        return (f"PolicyOptimum(policy={self.policy.describe()}, "
                f"objective={self.objective_value:.6g}, "
                f"evaluations={self.evaluations})")


def optimize_weights(config: SystemConfig, *,
                     objective: Callable[[SolvedModel], float] = total_jobs_objective,
                     initial: Sequence[float] | None = None,
                     max_evaluations: int = 200,
                     model_kwargs: dict | None = None) -> PolicyOptimum:
    """Find the best :class:`~repro.policy.WeightedQuantum` weights.

    The system is fixed; only the policy's weight vector moves.
    Nelder-Mead runs on log-weights (softmax keeps them positive and
    scale-free — ``WeightedQuantum`` itself normalizes to the cycle).
    """
    L = config.num_classes
    if L < 2:
        raise ValidationError("weight optimization needs >= 2 classes")
    if initial is not None and len(initial) != L:
        raise ValidationError(
            f"{len(initial)} initial weights for {L} classes")
    x0 = np.log(np.asarray(initial if initial is not None else [1.0] * L,
                           dtype=float))
    evals = 0

    def unpack(z: np.ndarray) -> tuple[float, ...]:
        w = np.exp(z - z.max())
        return tuple(float(v) for v in w / w.sum())

    def f(z: np.ndarray) -> float:
        nonlocal evals
        evals += 1
        policy = WeightedQuantum(weights=unpack(z))
        return _evaluate(config, objective, model_kwargs, policy=policy)

    res = sciopt.minimize(f, x0, method="Nelder-Mead",
                          options={"maxfev": max_evaluations,
                                   "xatol": 1e-3, "fatol": 1e-4})
    best = WeightedQuantum(weights=unpack(res.x))
    return PolicyOptimum(policy=best, objective_value=float(res.fun),
                         evaluations=evals)


def optimize_priority_order(config: SystemConfig, *,
                            decay: float = 0.5, floor: float = 0.05,
                            objective: Callable[[SolvedModel], float] = total_jobs_objective,
                            model_kwargs: dict | None = None,
                            max_classes: int = 6) -> PolicyOptimum:
    """Find the best :class:`~repro.policy.PriorityCycle` ordering.

    Exhaustive over all ``L!`` permutations with fixed ``decay`` and
    ``floor`` — exact, and cheap for the paper's class counts; refuses
    systems beyond ``max_classes`` rather than silently exploding.
    """
    L = config.num_classes
    if L > max_classes:
        raise ValidationError(
            f"priority-order search is exhaustive (L! solves); "
            f"{L} classes exceeds the limit of {max_classes}")
    best_policy = None
    best_value = math.inf
    evals = 0
    for order in itertools.permutations(range(L)):
        policy = PriorityCycle(order=order, decay=decay, floor=floor)
        value = _evaluate(config, objective, model_kwargs, policy=policy)
        evals += 1
        if value < best_value:
            best_policy, best_value = policy, value
    if best_policy is None or math.isinf(best_value):
        raise UnstableSystemError(
            "no priority ordering keeps every class stable")
    return PolicyOptimum(policy=best_policy, objective_value=best_value,
                         evaluations=evals)
