"""Per-class state-space enumeration.

Section 4.1 of the paper: the class-``p`` chain tracks

* ``i`` — the number of class-``p`` jobs in the system (the *level*);
* ``a`` — the phase of the interarrival PH (``1..m_A``);
* ``v = (j_1, ..., j_{m_B})`` — how many of the ``min(i, c_p)``
  in-service jobs sit in each service phase (a weak composition);
* ``k`` — the phase of the timeplexing cycle as seen by class ``p``:
  ``k < M_p`` means class ``p`` holds the processors (quantum phases),
  ``k >= M_p`` means some other class does (vacation phases
  ``M_p .. M_p + N_p - 1``).

Under the paper's switch-on-empty policy, "class p in its quantum with
an empty system" is unreachable — the chain switches away the moment
the queue empties — so level 0 carries only the vacation phases.
Under the ``"idle"`` ablation policy level 0 keeps all cycle phases.

States within a level are ordered lexicographically by
``(a, v, k)`` with ``v`` in the deterministic order of
:func:`repro.utils.combinatorics.compositions`.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ValidationError
from repro.utils.combinatorics import composition_index_map, compositions

__all__ = ["ClassStateSpace"]


@dataclass(frozen=True)
class ClassStateSpace:
    """Index arithmetic for one class's QBD state space.

    Parameters
    ----------
    partitions:
        ``c_p``: the maximum number of class-``p`` jobs in service.
    m_arrival, m_service, m_quantum, m_vacation:
        Orders of the arrival, service, quantum and vacation PH
        representations (``m_A``, ``m_B``, ``M_p``, ``N_p``).
    policy:
        ``"switch"`` or ``"idle"`` (see
        :data:`repro.core.config.EMPTY_QUEUE_POLICIES`).
    """

    partitions: int
    m_arrival: int
    m_service: int
    m_quantum: int
    m_vacation: int
    policy: str = "switch"

    def __post_init__(self):
        for name in ("partitions", "m_arrival", "m_service", "m_quantum", "m_vacation"):
            val = getattr(self, name)
            if int(val) != val or val < 1:
                raise ValidationError(f"{name} must be a positive integer, got {val}")
            object.__setattr__(self, name, int(val))
        if self.policy not in ("switch", "idle"):
            raise ValidationError(f"unknown policy {self.policy!r}")

    # ------------------------------------------------------------------
    # Cycle phases
    # ------------------------------------------------------------------

    @property
    def num_cycle_phases(self) -> int:
        """Total cycle phases ``M_p + N_p`` (levels >= 1)."""
        return self.m_quantum + self.m_vacation

    def is_quantum_phase(self, k: int) -> bool:
        """Whether global cycle phase ``k`` is a quantum (service) phase."""
        return 0 <= k < self.m_quantum

    def cycle_phases_at(self, level: int) -> range:
        """Global cycle-phase indices valid at ``level``."""
        if level == 0 and self.policy == "switch":
            return range(self.m_quantum, self.num_cycle_phases)
        return range(self.num_cycle_phases)

    # ------------------------------------------------------------------
    # Service occupancy
    # ------------------------------------------------------------------

    def in_service(self, level: int) -> int:
        """Jobs holding a partition at ``level``: ``min(level, c_p)``."""
        return min(level, self.partitions)

    def service_vectors(self, level: int) -> tuple[tuple[int, ...], ...]:
        """All service-phase occupancy vectors valid at ``level``."""
        return compositions(self.in_service(level), self.m_service)

    def service_vector_index(self, level: int) -> dict[tuple[int, ...], int]:
        """Occupancy vector -> enumeration index at ``level``."""
        return composition_index_map(self.in_service(level), self.m_service)

    # ------------------------------------------------------------------
    # Level-wide indexing
    # ------------------------------------------------------------------

    @lru_cache(maxsize=None)
    def level_dim(self, level: int) -> int:
        """Number of states at ``level``."""
        return (self.m_arrival * len(self.service_vectors(level))
                * len(self.cycle_phases_at(level)))

    @property
    def repeating_dim(self) -> int:
        """Phase dimension of the repeating levels (``level >= c_p``)."""
        return self.level_dim(self.partitions)

    @property
    def boundary_levels(self) -> int:
        """The paper's boundary: levels ``0 .. c_p``."""
        return self.partitions

    def index(self, level: int, a: int, v: tuple[int, ...], k: int) -> int:
        """Flat index of state ``(a, v, k)`` within its level block."""
        phases = self.cycle_phases_at(level)
        nk = len(phases)
        k_local = k - phases.start
        if not 0 <= k_local < nk:
            raise ValidationError(
                f"cycle phase {k} invalid at level {level} (policy {self.policy})"
            )
        vmap = self.service_vector_index(level)
        try:
            vidx = vmap[tuple(v)]
        except KeyError:
            raise ValidationError(
                f"service vector {v} invalid at level {level} "
                f"(needs sum {self.in_service(level)})"
            ) from None
        if not 0 <= a < self.m_arrival:
            raise ValidationError(f"arrival phase {a} out of range")
        return (a * len(vmap) + vidx) * nk + k_local

    def states(self, level: int):
        """Iterate ``(a, v, k)`` tuples in index order at ``level``."""
        phases = self.cycle_phases_at(level)
        vecs = self.service_vectors(level)
        for a in range(self.m_arrival):
            for v in vecs:
                for k in phases:
                    yield (a, v, k)

    def labels(self, level: int) -> list[str]:
        """Human-readable state labels (used by the Figure 1 export)."""
        out = []
        for a, v, k in self.states(level):
            kind = "Q" if self.is_quantum_phase(k) else "V"
            kk = k if self.is_quantum_phase(k) else k - self.m_quantum
            out.append(f"i={level} a={a} v={v} {kind}{kk}")
        return out
