"""The fixed-point iteration of Section 4.3.

One iteration:

1. For each class ``p``, build the QBD with the current vacation
   distribution ``F_p`` and solve it (Theorem 4.2 machinery).
2. From each solved chain, extract the effective-quantum distribution
   (Theorem 4.3), optionally compressing it by moment matching.
3. Reassemble every ``F_p`` from the other classes' effective quanta
   and repeat until the per-class mean job counts stop moving.

The per-class work runs through the staged pipeline of
:mod:`repro.pipeline`: one :class:`~repro.pipeline.context.SolveContext`
per run carries reusable assembly/extraction workspaces, the previous
iteration's ``R`` matrices (warm starts for the next solve), a
content-keyed cache of solved chains, and per-stage wall-clock
timings.  ``FixedPointOptions(warm_start=False, reuse_artifacts=False)``
routes every stage through the reference implementations instead.

Initialization and saturation handling
--------------------------------------
The natural initialization is the heavy-traffic vacation of
Theorem 4.1 (every class exhausts its quantum) — an upper bound on
vacation lengths, from which the iteration descends monotonically.
Two refinements make the driver robust across the whole parameter
space of the paper's figures:

* **Optimistic bootstrap.**  The heavy-traffic vacations can fail the
  Theorem 4.4 drift test even when the true fixed point is stable
  (e.g. one class is granted most of the cycle, making the raw
  vacations of the others too long).  The driver then restarts from
  near-zero effective quanta and approaches the fixed point from
  below.
* **Partial (per-class) saturation.**  A class can be *genuinely*
  saturated — its share of the cycle cannot carry its load no matter
  how much the other classes shrink.  Such a class never empties, so
  its effective quantum is exactly its full quantum; the driver pins
  it there, reports ``inf`` mean jobs for it, and keeps solving the
  others (this is how the paper's Figure 5 can plot the focus class
  at cycle fractions that starve the rest).  Only when *every* class
  is saturated does the driver raise
  :class:`~repro.errors.UnstableSystemError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import SystemConfig
from repro.core.statespace import ClassStateSpace
from repro.core.vacation import (
    fixed_point_vacation,
    heavy_traffic_vacation,
)
from repro.errors import UnstableSystemError
from repro.obs import metrics
from repro.obs.trace import span
from repro.phasetype import PhaseType
from repro.pipeline import stages
from repro.pipeline.cache import ArtifactCache
from repro.pipeline.context import SolveContext
from repro.policy import SchedulingPolicy, resolve_policy
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess
from repro.resilience.fallback import DEFAULT_POLICY, ResiliencePolicy

__all__ = ["FixedPointOptions", "FixedPointResult", "IterationRecord",
           "run_fixed_point"]


@dataclass(frozen=True)
class FixedPointOptions:
    """Tuning knobs of the fixed-point solver.

    Attributes
    ----------
    max_iterations:
        Iteration budget; the heavy-traffic solve counts as iteration 0.
    tol:
        Convergence threshold on the relative change of every stable
        class's mean job count between iterations.
    reduction:
        Effective-quantum order reduction (see
        :data:`repro.core.vacation.REDUCTIONS`).
    rmatrix_method:
        ``R``-matrix algorithm passed through to the QBD solver.
    truncation_mass:
        Tail mass allowed beyond the truncation level when extracting
        effective quanta.
    max_truncation_levels:
        Hard cap on the truncation level.
    heavy_traffic_only:
        Stop after the heavy-traffic solve (Theorem 4.1 model); no
        bootstrap or saturation handling is applied.
    allow_optimistic_bootstrap:
        Restart from near-zero effective quanta when the heavy-traffic
        initialization is unstable.
    """

    max_iterations: int = 200
    tol: float = 1e-5
    reduction: str = "moments2"
    rmatrix_method: str = "logreduction"
    #: Fallback/retry policy for every per-class QBD solve (see
    #: :mod:`repro.resilience.fallback`); ``None`` disables fallback,
    #: restoring fail-fast single-method solves.
    resilience: ResiliencePolicy | None = DEFAULT_POLICY
    truncation_mass: float = 1e-9
    max_truncation_levels: int = 400
    heavy_traffic_only: bool = False
    allow_optimistic_bootstrap: bool = True
    #: Scheduling policy shaping the cycle (``None`` = the paper's
    #: round-robin).  The policy's per-class views feed every stage:
    #: capacity ``c_p``, effective service, quantum mass, and the
    #: vacation cycle order (see :mod:`repro.policy`).
    policy: SchedulingPolicy | None = None
    #: Aitken delta-squared extrapolation of the effective-quantum
    #: means.  The plain iteration converges linearly (ratio ~0.8 on
    #: the paper's configurations), so extrapolating the per-class mean
    #: sequences periodically cuts the iteration count several-fold;
    #: extrapolated iterates that turn out unstable or non-positive are
    #: simply discarded for that round.
    acceleration: str = "aitken"
    #: Seed each class's ``R`` solve with its previous iterate (see
    #: :func:`repro.qbd.rmatrix.solve_R`).  The fixed point moves the
    #: blocks a little per iteration, so the previous ``R`` is a
    #: near-solution and the warm Newton refinement converges in a
    #: couple of steps.
    warm_start: bool = True
    #: Use the Kronecker assembler and vectorized extractor with their
    #: per-class workspaces (:mod:`repro.pipeline`); ``False`` routes
    #: every stage through the reference implementations in
    #: :mod:`repro.core`.
    reuse_artifacts: bool = True
    #: Kernel backend for assembly and the QBD solves: ``"auto"``
    #: switches each block/solve between the dense and sparse kernels
    #: on a size-and-density threshold, ``"dense"``/``"sparse"`` force
    #: one side (see :mod:`repro.kernels`).
    backend: str = "auto"
    #: Optional shared artifact cache; ``None`` gives each run its own.
    cache: ArtifactCache | None = field(default=None, compare=False)


@dataclass(frozen=True)
class IterationRecord:
    """Diagnostics for one fixed-point iteration.

    ``mean_jobs`` holds ``inf`` for classes saturated at that iterate.
    """

    iteration: int
    mean_jobs: tuple[float, ...]
    vacation_means: tuple[float, ...]
    max_rel_change: float


@dataclass
class FixedPointResult:
    """Raw output of the fixed-point driver (one entry per class).

    ``solutions[p]`` is ``None`` — and ``saturated[p]`` is ``True`` —
    for a class that is unstable at the fixed point.
    """

    spaces: list[ClassStateSpace]
    processes: list[QBDProcess]
    solutions: list[QBDStationaryDistribution | None]
    vacations: list[PhaseType]
    saturated: list[bool] = field(default_factory=list)
    history: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    used_bootstrap: bool = False
    #: Wall-clock seconds per pipeline stage, accumulated over the run.
    timings: dict[str, float] = field(default_factory=dict)
    #: Hit/miss/eviction counters of the run's artifact cache
    #: (:meth:`repro.pipeline.cache.ArtifactCache.stats`).
    cache_stats: dict[str, int] = field(default_factory=dict)

    @property
    def iterations(self) -> int:
        return len(self.history)


def _optimistic_quanta(views) -> dict[int, PhaseType]:
    """Near-zero effective quanta: the shortest plausible vacations.

    Scaled from the *policy's* quanta so the bootstrap respects
    whatever mass the policy granted each class.
    """
    return {v.index: v.quantum.rescaled(max(1e-6, 1e-3 * v.quantum.mean))
            for v in views}


def _aitken_target(x0: np.ndarray, x1: np.ndarray, x2: np.ndarray,
                   tol: float) -> tuple[np.ndarray, bool]:
    """Aitken delta-squared extrapolation of a vector mean sequence.

    With ``x_{n+1} ~ x* + rho (x_n - x*)``, the extrapolation
    ``x* ~ x_n - (dx_n)^2 / (dx_n - dx_{n-1})`` lands near the fixed
    point in one step.  Returns ``(target, ok)``; ``ok`` is ``False``
    unless the window shows a clean linear-convergence signature:
    meaningful deltas whose componentwise ratios sit well inside
    ``(0, 1)``.  Near the fixed point (or on oscillation) Aitken
    overshoots and *slows* the plain iteration down, so such windows
    are rejected.
    """
    d1, d2 = x1 - x0, x2 - x1
    denom = d2 - d1
    safe = np.abs(denom) > 1e-14
    target = np.where(safe, x2 - d2 * d2 / np.where(safe, denom, 1.0), x2)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(np.abs(d1) > 1e-12, d2 / d1, 0.5)
    meaningful = float(np.max(np.abs(d2) / np.maximum(x2, 1e-12)))
    ok = bool(np.all(target > 0) and np.all(np.isfinite(target))
              and np.all(target <= x2 * 1.5 + 1e-12)
              and np.all((ratio > 0.2) & (ratio < 0.95))
              and meaningful > 50 * tol)
    return target, ok


def run_fixed_point(config: SystemConfig,
                    opts: FixedPointOptions | None = None) -> FixedPointResult:
    """Run the Section 4.3 fixed-point iteration to convergence.

    Raises
    ------
    UnstableSystemError
        When every class is saturated (with ``heavy_traffic_only``,
        when any class fails the drift test — no recovery is attempted
        for the pure Theorem 4.1 model).
    """
    opts = opts or FixedPointOptions()
    pol = resolve_policy(opts.policy)
    with span("fixed_point", classes=config.num_classes, policy=pol.kind):
        return _run_fixed_point(config, opts)


def _run_fixed_point(config: SystemConfig,
                     opts: FixedPointOptions) -> FixedPointResult:
    L = config.num_classes
    pol = resolve_policy(opts.policy)
    ctx = SolveContext.create(config, opts)
    vacations = [heavy_traffic_vacation(config, p, policy=pol)
                 for p in range(L)]

    result = FixedPointResult(spaces=[], processes=[], solutions=[],
                              vacations=vacations)

    state = stages.solve_all(ctx, vacations)
    if opts.heavy_traffic_only and any(state[3]):
        bad = [p for p, s in enumerate(state[3]) if s]
        raise UnstableSystemError(
            f"heavy-traffic model unstable for class(es) {bad} "
            f"({', '.join(config.class_names[p] for p in bad)})")
    if any(state[3]) and opts.allow_optimistic_bootstrap \
            and not opts.heavy_traffic_only:
        # Heavy-traffic init failed for someone: approach from below.
        result.used_bootstrap = True
        eff0 = _optimistic_quanta(ctx.views)
        vacations = [fixed_point_vacation(config, p, eff0, policy=pol)
                     for p in range(L)]
        state = stages.solve_all(ctx, vacations)
    if all(state[3]):
        raise UnstableSystemError(
            "every class is saturated: the offered load exceeds the "
            "system's capacity under any vacation assignment")

    prev_means: np.ndarray | None = None
    prev_sat: list[bool] | None = None
    eff_means_history: list[np.ndarray] = []
    for it in range(max(1, opts.max_iterations)):
        spaces, processes, solutions, saturated = state
        means = np.array([
            sol.mean_level if sol is not None else np.inf
            for sol in solutions
        ])
        stable_idx = [p for p in range(L) if not saturated[p]]
        if prev_means is None or prev_sat != saturated:
            change = float("inf")
        elif stable_idx:
            diffs = [abs(means[p] - prev_means[p])
                     / max(1.0, abs(means[p])) for p in stable_idx]
            change = float(max(diffs))
        else:  # pragma: no cover - guarded by the all-saturated raise
            change = 0.0
        result.history.append(IterationRecord(
            iteration=it,
            mean_jobs=tuple(float(m) for m in means),
            vacation_means=tuple(v.mean for v in vacations),
            max_rel_change=change,
        ))
        result.spaces, result.processes = spaces, processes
        result.solutions, result.vacations = solutions, vacations
        result.saturated = saturated
        if opts.heavy_traffic_only:
            result.converged = True
            break
        if prev_means is not None and prev_sat == saturated \
                and change < opts.tol:
            result.converged = True
            break
        prev_means, prev_sat = means, saturated

        # Effective quanta: Theorem 4.3 for stable classes; a saturated
        # class never empties, so its effective quantum is its full
        # quantum (the heavy-traffic behaviour, exactly).
        eff: dict[int, PhaseType] = {}
        for p in range(L):
            if saturated[p]:
                eff[p] = ctx.views[p].quantum
            else:
                eff[p] = stages.extract_class(ctx, p)

        # Aitken delta-squared acceleration on the per-class effective-
        # quantum means, applied every third round from a window of
        # three consecutive mean vectors.
        eff_means_history.append(np.array([eff[p].mean for p in range(L)]))
        if opts.acceleration == "aitken" and len(eff_means_history) >= 3 \
                and it % 3 == 2 and not any(saturated):
            target, ok = _aitken_target(*eff_means_history[-3:], opts.tol)
            if ok:
                for p in range(L):
                    if eff[p].mean > 0 and target[p] != eff[p].mean:
                        eff[p] = PhaseType.from_trusted(
                            eff[p].alpha,
                            np.asarray(eff[p].S) * (eff[p].mean / target[p]))
                eff_means_history.clear()

        with span("stage.recombine", timings=ctx.timings, stage="recombine"):
            vacations = [fixed_point_vacation(config, p, eff, policy=pol)
                         for p in range(L)]
        state = stages.solve_all(ctx, vacations)
        if all(state[3]):
            raise UnstableSystemError(
                "every class became saturated during the fixed-point "
                "iteration: the system is over capacity")
    result.timings = ctx.timings.as_dict()
    result.cache_stats = ctx.cache.stats()
    metrics.inc("fixed_point.runs", converged=result.converged,
                bootstrap=result.used_bootstrap, policy=pol.kind)
    metrics.observe("fixed_point.iterations", result.iterations)
    return result
