"""Model configuration: system topology and per-class distributions.

Mirrors Section 3 of the paper.  A :class:`SystemConfig` holds ``P``
processors and ``L`` :class:`ClassConfig` entries; class ``p`` requests
partitions of ``g(p)`` processors, so ``c_p = P / g(p)`` class-``p``
jobs space-share the machine during class ``p``'s quantum.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.phasetype import PhaseType, exponential

__all__ = ["ClassConfig", "SystemConfig", "EMPTY_QUEUE_POLICIES"]

#: Supported behaviours when a class's queue empties mid-quantum.
#:
#: ``"switch"`` — the paper's policy: context-switch to the next class
#: immediately (Section 3.1).
#: ``"idle"`` — strict cycling: the quantum runs to its PH expiry over
#: an idle machine (ablation baseline).
EMPTY_QUEUE_POLICIES = ("switch", "idle")


def _require_proper(d: PhaseType, what: str) -> PhaseType:
    if not isinstance(d, PhaseType):
        raise ValidationError(f"{what} must be a PhaseType, got {type(d).__name__}")
    if d.atom_at_zero > 1e-12:
        raise ValidationError(
            f"{what} must not have an atom at zero (mass {d.atom_at_zero:.3g}); "
            "zero-length samples are not meaningful here"
        )
    return d


@dataclass(frozen=True)
class ClassConfig:
    """Workload and scheduling parameters of one job class.

    Parameters
    ----------
    partition_size:
        ``g(p)``: processors per job of this class; must divide the
        system's processor count.
    arrival:
        PH interarrival-time distribution ``A_p`` (rate ``lambda_p``
        is its reciprocal mean).
    service:
        PH service-time distribution ``B_p`` on a ``g(p)``-processor
        partition (rate ``mu_p``).
    quantum:
        PH quantum-length distribution ``G_p`` (mean ``1/gamma_p``).
    overhead:
        PH context-switch overhead ``C_p`` for switching from this
        class to the next (mean ``1/delta_p``).
    name:
        Optional display name.
    """

    partition_size: int
    arrival: PhaseType
    service: PhaseType
    quantum: PhaseType
    overhead: PhaseType
    name: str = ""

    def __post_init__(self):
        if int(self.partition_size) != self.partition_size or self.partition_size < 1:
            raise ValidationError(
                f"partition_size must be a positive integer, got {self.partition_size}"
            )
        object.__setattr__(self, "partition_size", int(self.partition_size))
        _require_proper(self.arrival, "arrival distribution")
        _require_proper(self.service, "service distribution")
        _require_proper(self.quantum, "quantum distribution")
        _require_proper(self.overhead, "overhead distribution")

    # Convenience rates (the paper's lambda_p, mu_p, gamma_p, delta_p).

    @property
    def arrival_rate(self) -> float:
        """``lambda_p = 1 / E[A_p]``."""
        return self.arrival.rate

    @property
    def service_rate(self) -> float:
        """``mu_p = 1 / E[B_p]``."""
        return self.service.rate

    @property
    def quantum_rate(self) -> float:
        """``gamma_p = 1 / E[G_p]``."""
        return self.quantum.rate

    @property
    def overhead_rate(self) -> float:
        """``delta_p = 1 / E[C_p]``."""
        return self.overhead.rate

    @staticmethod
    def markovian(partition_size: int, *, arrival_rate: float, service_rate: float,
                  quantum_mean: float, overhead_mean: float,
                  name: str = "") -> "ClassConfig":
        """All-exponential class (the configuration of Figures 2-5)."""
        return ClassConfig(
            partition_size=partition_size,
            arrival=exponential(arrival_rate),
            service=exponential(service_rate),
            quantum=exponential(mean=quantum_mean),
            overhead=exponential(mean=overhead_mean),
            name=name,
        )


@dataclass(frozen=True)
class SystemConfig:
    """The full gang-scheduled system: ``P`` processors and ``L`` classes.

    Parameters
    ----------
    processors:
        Total processor count ``P``.
    classes:
        One :class:`ClassConfig` per job class, in timeplexing order
        (class ``p`` is followed by class ``(p+1) mod L``).
    empty_queue_policy:
        See :data:`EMPTY_QUEUE_POLICIES`.
    """

    processors: int
    classes: tuple[ClassConfig, ...]
    empty_queue_policy: str = "switch"
    _names: tuple[str, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self):
        if int(self.processors) != self.processors or self.processors < 1:
            raise ValidationError(
                f"processors must be a positive integer, got {self.processors}"
            )
        object.__setattr__(self, "processors", int(self.processors))
        classes = tuple(self.classes)
        if not classes:
            raise ValidationError("at least one job class is required")
        for p, cls in enumerate(classes):
            if not isinstance(cls, ClassConfig):
                raise ValidationError(f"classes[{p}] is not a ClassConfig")
            if self.processors % cls.partition_size != 0:
                raise ValidationError(
                    f"class {p}: partition size {cls.partition_size} does not "
                    f"divide P={self.processors} into equal partitions"
                )
        if self.empty_queue_policy not in EMPTY_QUEUE_POLICIES:
            raise ValidationError(
                f"empty_queue_policy must be one of {EMPTY_QUEUE_POLICIES}, "
                f"got {self.empty_queue_policy!r}"
            )
        object.__setattr__(self, "classes", classes)
        names = tuple(c.name or f"class{p}" for p, c in enumerate(classes))
        object.__setattr__(self, "_names", names)

    @property
    def num_classes(self) -> int:
        """``L``."""
        return len(self.classes)

    @property
    def class_names(self) -> tuple[str, ...]:
        return self._names

    def partitions(self, p: int) -> int:
        """``c_p = P / g(p)``: partitions available to class ``p``."""
        return self.processors // self.classes[p].partition_size

    def utilization(self, p: int | None = None) -> float:
        """Traffic intensity.

        Per class: ``rho_p = lambda_p g(p) / (P mu_p)
        = lambda_p / (c_p mu_p)`` — the load class ``p`` would impose
        on the machine if it were dedicated to it.  With ``p=None``,
        the total ``rho = sum_p rho_p`` (the paper's utilization factor).
        """
        if p is not None:
            cls = self.classes[p]
            return cls.arrival_rate / (self.partitions(p) * cls.service_rate)
        return sum(self.utilization(q) for q in range(self.num_classes))

    def cycle_mean(self) -> float:
        """Mean timeplexing-cycle length ``sum_p (E[G_p] + E[C_p])``.

        This is the full-quantum (heavy-traffic) cycle; with early
        switching the realized cycle is shorter.
        """
        return sum(c.quantum.mean + c.overhead.mean for c in self.classes)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"Gang-scheduled system: P={self.processors} processors, "
            f"L={self.num_classes} classes, policy={self.empty_queue_policy}",
        ]
        for p, c in enumerate(self.classes):
            lines.append(
                f"  {self._names[p]}: g={c.partition_size} (c={self.partitions(p)} "
                f"partitions), lambda={c.arrival_rate:.4g}, mu={c.service_rate:.4g}, "
                f"E[G]={c.quantum.mean:.4g}, E[C]={c.overhead.mean:.4g}, "
                f"rho_p={self.utilization(p):.4g}"
            )
        lines.append(f"  total rho={self.utilization():.4g}, "
                     f"full cycle E[Z]={self.cycle_mean():.4g}")
        return "\n".join(lines)
