"""Vacation distributions: heavy-traffic form and fixed-point form.

From class ``p``'s perspective the machine alternates between its own
quantum ``T_p`` and a *vacation* ``Z_p`` during which the other classes
hold the processors.  This module builds the PH distribution
``F_p`` of ``Z_p``:

* :func:`heavy_traffic_vacation` — Theorem 4.1: when every class has
  enough work to exhaust its quantum,
  ``F_p = C_p * G_{p+1} * C_{p+1} * ... * G_{p-1} * C_{p-1}``.
* :func:`effective_quantum` — Theorem 4.3's ingredient: from class
  ``n``'s *solved* chain, the PH distribution of the time class ``n``
  actually holds the processors, ``min(T_n, time to empty)``, with an
  atom at zero for quanta that are skipped because class ``n``'s queue
  is empty when its turn comes.
* :func:`fixed_point_vacation` — reassembles ``F_p`` from effective
  quanta, ``F_p = C_p * Q^eff_{p+1} * C_{p+1} * ... * Q^eff_{p-1} *
  C_{p-1}``.
* :func:`reduce_order` — optional moment-matching compression of an
  effective quantum before it re-enters the (state-space-expanding)
  convolution; justified by the insensitivity argument the paper makes
  (its refs [21, 22, 26]) and measured by the reduction ablation bench.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import SystemConfig
from repro.core.statespace import ClassStateSpace
from repro.errors import ValidationError
from repro.kernels import ph_moments, select_backend, sub_dense
from repro.phasetype import PhaseType, convolve_many, match_three_moments, match_two_moments
from repro.policy import resolve_policy
from repro.qbd.stationary import QBDStationaryDistribution
from repro.qbd.structure import QBDProcess

__all__ = [
    "heavy_traffic_vacation",
    "effective_quantum",
    "fixed_point_vacation",
    "reduce_order",
    "REDUCTIONS",
]

#: Supported effective-quantum order reductions.
REDUCTIONS = ("exact", "moments2", "moments3")


def heavy_traffic_vacation(config: SystemConfig, p: int,
                           *, policy=None) -> PhaseType:
    """Theorem 4.1: the vacation of class ``p`` under heavy traffic.

    The convolution ``C_p * G_{p+1} * C_{p+1} * ... * G_{p-1} *
    C_{p-1}`` of quanta and overheads, of order
    ``N_p = sum_{n != p} M_n + sum_n m_{C_n}``.

    The cycle structure — which quanta, in which order — comes from the
    scheduling policy (:meth:`repro.policy.SchedulingPolicy.cycle_parts`);
    this builder only convolves what the policy hands it.  ``policy=None``
    is the paper's round-robin.
    """
    pol = resolve_policy(policy)
    return convolve_many(pol.cycle_parts(config, p))


def fixed_point_vacation(config: SystemConfig, p: int,
                         effective_quanta: dict[int, PhaseType],
                         *, policy=None) -> PhaseType:
    """Theorem 4.3: the vacation of class ``p`` from effective quanta.

    ``effective_quanta[n]`` must be present for every class ``n != p``.
    The cycle order again comes from the policy; the effective quanta
    replace the policy's full quanta class-for-class.
    """
    pol = resolve_policy(policy)
    return convolve_many(
        pol.cycle_parts(config, p, effective_quanta=effective_quanta))


def effective_quantum(space: ClassStateSpace, process: QBDProcess,
                      solution: QBDStationaryDistribution,
                      vacation: PhaseType,
                      *, truncation_mass: float = 1e-9,
                      max_levels: int = 400) -> PhaseType:
    """Extract the effective-quantum PH from a solved class chain.

    Implements the absorbing construction of Theorem 4.3 on a
    tail-truncated copy of the state space:

    1. Pick the smallest ``K`` with ``P(level > K) < truncation_mass``
       (capped at ``max_levels``).
    2. Restrict the generator to the service states
       ``Omega^s = {(i, a, v, k) : k < M_p}`` for levels up to ``K``;
       every transition leaving ``Omega^s`` — quantum expiry, or the
       last job departing under the switch policy — becomes absorption
       into the paper's state ``(0, 0)``.  Arrivals at level ``K`` are
       reflected (dropped from both the block and the diagonal), which
       is harmless because service and quantum dynamics do not depend
       on the level above ``c_p``.
    3. The initial vector ``xi`` is the steady-state distribution of
       the state in which a quantum *begins*: the probability flow from
       waiting states into ``Omega^s`` (vacation completions at level
       ``>= 1``), plus — as an atom at zero — the flow of *skipped*
       quanta (vacation completions at level 0 under the switch
       policy).

    Parameters
    ----------
    space, process, solution:
        The class's state space, QBD blocks and stationary solution.
    vacation:
        The vacation PH ``F_p`` the chain was built with (needed to
        recover the vacation completion rates that the generator drops
        as level-0 self-loops).

    Returns
    -------
    PhaseType
        The effective quantum, order = number of truncated service
        states; ``atom_at_zero`` is the skip probability.
    """
    c = space.boundary_levels
    # ---- truncation level ------------------------------------------------
    K = c + 1
    while K < max_levels and solution.tail_probability(K) > truncation_mass:
        K += 1

    include_level0 = space.policy == "idle"
    lvl_start = 0 if include_level0 else 1

    # ---- index service states -------------------------------------------
    # For each level, local indices of quantum-phase states in block order.
    def service_locals(level: int) -> np.ndarray:
        idx = [j for j, (a, v, k) in enumerate(space.states(level))
               if space.is_quantum_phase(k)]
        return np.asarray(idx, dtype=np.intp)

    svc: dict[int, np.ndarray] = {}
    offsets: dict[int, int] = {}
    pos = 0
    repeating = None  # levels > c share one structure
    for lvl in range(lvl_start, K + 1):
        if lvl > c:
            if repeating is None:
                repeating = service_locals(lvl)
            svc[lvl] = repeating
        else:
            svc[lvl] = service_locals(lvl)
        offsets[lvl] = pos
        pos += len(svc[lvl])
    order = pos
    if order == 0:
        raise ValidationError("no service states found; is m_quantum zero?")

    T = np.zeros((order, order))
    absorb = np.zeros(order)

    def block(i: int, j: int) -> np.ndarray | None:
        # Boundary blocks may be CSR under the sparse backend; every
        # submatrix taken below is small, so extraction densifies.
        return process.block(i, j)

    for lvl in range(lvl_start, K + 1):
        rows = svc[lvl]
        base = offsets[lvl]
        # Within-level: service -> service retained; service -> waiting
        # states (vacation phases) are absorption (quantum expiry, or the
        # immediate switch after the last departure is in the down block).
        local = block(lvl, lvl)
        sub = sub_dense(local, rows, rows)
        T[base:base + len(rows), base:base + len(rows)] += _off_diagonal(sub)
        wait_cols = np.setdiff1d(np.arange(local.shape[1]), rows, assume_unique=False)
        if wait_cols.size:
            absorb[base:base + len(rows)] += \
                sub_dense(local, rows, wait_cols).sum(axis=1)
        # Up: retained unless at the truncation edge (reflected there).
        if lvl < K:
            upb = block(lvl, lvl + 1)
            up_rows = svc[lvl + 1]
            T[base:base + len(rows),
              offsets[lvl + 1]:offsets[lvl + 1] + len(up_rows)] += \
                sub_dense(upb, rows, up_rows)
            # Arrivals can only land in service states (the cycle phase is
            # unchanged), so there is no up-contribution to absorption.
        # Down: to service states of lvl-1 retained; to waiting states
        # (the switch-on-empty jump to level 0) is absorption.
        if lvl > lvl_start:
            dnb = block(lvl, lvl - 1)
            dn_rows = svc[lvl - 1]
            T[base:base + len(rows),
              offsets[lvl - 1]:offsets[lvl - 1] + len(dn_rows)] += \
                sub_dense(dnb, rows, dn_rows)
            dn_wait = np.setdiff1d(np.arange(dnb.shape[1]), dn_rows)
            if dn_wait.size:
                absorb[base:base + len(rows)] += \
                    sub_dense(dnb, rows, dn_wait).sum(axis=1)
        elif lvl == 1 and not include_level0:
            # Down block from level 1 lands entirely in level-0 waiting
            # states: pure absorption.
            dnb = block(1, 0)
            absorb[base:base + len(rows)] += \
                sub_dense(dnb, rows, np.arange(dnb.shape[1])).sum(axis=1)

    # Diagonal: rows sum to -(retained off-diagonal + absorption).
    np.fill_diagonal(T, 0.0)
    T[np.diag_indices(order)] = -(T.sum(axis=1) + absorb)

    # ---- initial vector xi ------------------------------------------------
    # Flow from waiting states into service states = vacation completions
    # at level >= 1 (or >= 0 under idle): pi(x) * local[x, y].
    xi = np.zeros(order)
    for lvl in range(lvl_start, K + 1):
        pi = solution.level(lvl)
        local = block(lvl, lvl)
        rows_wait = np.setdiff1d(np.arange(local.shape[0]), svc[lvl])
        if rows_wait.size == 0:
            continue
        flow = pi[rows_wait] @ sub_dense(local, rows_wait, svc[lvl])
        xi[offsets[lvl]:offsets[lvl] + len(svc[lvl])] += flow

    # Skipped quanta: vacation completions while the system is empty
    # (switch policy only).  The generator drops the self-loop part of
    # the level-0 vacation restart, so recover the full completion rate
    # v0[j] from the vacation distribution itself.
    atom_flow = 0.0
    if not include_level0:
        pi0 = solution.level(0)
        v0 = vacation.exit_rates
        for j, (a, v, k) in enumerate(space.states(0)):
            atom_flow += pi0[j] * v0[k - space.m_quantum]

    total = xi.sum() + atom_flow
    if total <= 0:
        raise ValidationError(
            "no probability flow into quantum starts; the chain never serves"
        )
    # T is a sub-generator by construction (diagonal set from the
    # row sums plus absorption); skip the O(n^3) validation.
    return PhaseType.from_trusted(xi / total, T)


def _off_diagonal(M: np.ndarray) -> np.ndarray:
    out = M.copy()
    np.fill_diagonal(out, 0.0)
    return out


def reduce_order(dist: PhaseType, reduction: str, *,
                 backend: str | None = None) -> PhaseType:
    """Compress a PH distribution by moment matching.

    ``reduction`` is one of :data:`REDUCTIONS`.  The atom at zero is
    preserved exactly; the positive part is refit from its conditional
    moments.

    ``backend`` selects how the raw moments are computed.  The dense
    path inverts ``-S`` outright (and caches the inverse on the
    distribution); past the selector threshold the moments come from
    one sparse LU factorization and ``k`` back-substitutions instead
    (:func:`repro.kernels.ph_moments`) — for the effective quanta of
    large machines, whose sub-generator order grows with the truncated
    chain, that drops the ``reduce`` stage from ``O(order^3)`` dense
    to the cost of a banded solve.
    """
    if reduction not in REDUCTIONS:
        raise ValidationError(f"unknown reduction {reduction!r}; use one of {REDUCTIONS}")
    if reduction == "exact":
        return dist
    atom = dist.atom_at_zero
    if atom > 1.0 - 1e-9:
        # Essentially always skipped: a pure atom at zero.
        return PhaseType(np.zeros(1), [[-1.0]])
    cond = 1.0 - atom
    kmax = 2 if reduction == "moments2" else 3
    if select_backend(backend, dist.order, site="reduce") == "sparse":
        moments = ph_moments(dist.alpha, dist.S, kmax, backend=backend)
    else:
        moments = [dist.moment(k) for k in range(1, kmax + 1)]
    m1 = moments[0] / cond
    m2 = moments[1] / cond
    if reduction == "moments2":
        scv = m2 / m1 ** 2 - 1.0
        fitted = match_two_moments(m1, max(scv, 1e-6))
    else:
        m3 = moments[2] / cond
        fitted = match_three_moments(m1, m2, m3)
    if atom <= 1e-15:
        return fitted
    return PhaseType.from_trusted(cond * np.asarray(fitted.alpha), fitted.S)
