"""Construction of the per-class QBD generator blocks.

Given class ``p``'s PH parameters and a vacation distribution
``F_p = PH(zeta, V)``, this module assembles the level-transition
blocks of the Markov chain ``{X_p(t)}`` of Section 4.1 and packages
them as a :class:`repro.qbd.structure.QBDProcess` with boundary levels
``0 .. c_p`` (eq. 20 of the paper).

Transition inventory (rates; ``s0`` denotes PH exit-rate vectors and
Greek letters initial vectors):

===========================  =======================================
event                        rate and state change
===========================  =======================================
arrival-phase jump           ``S_A[a, a']``
arrival (level up)           ``s_A0[a] alpha_A[a']``; if ``i < c`` the
                             job takes a partition and draws a service
                             phase from ``beta_B``
service-phase jump           ``v[n] S_B[n, n']`` (quantum phases only)
service completion           ``v[n] s_B0[n]`` (quantum only); level
                             down; if ``i > c`` the head-of-queue job
                             takes the slot with phase ``beta_B``; if
                             ``i = 1`` (switch policy) the system
                             context-switches into the vacation
quantum-phase jump           ``S_G[k, k']``
quantum expiry               ``s_G0[k] zeta[j]`` into vacation phases
vacation-phase jump          ``V[j, j']``
vacation expiry, ``i >= 1``  ``v_0[j] beta_G[k']`` into quantum phases
vacation expiry, ``i = 0``   switch policy: ``v_0[j] zeta[j']`` — the
                             empty quantum is skipped and the next
                             vacation begins at once; idle policy: the
                             quantum starts over the empty system
===========================  =======================================

Jobs keep their service phase across preemptions (vacations freeze the
service process), and a job that takes a partition during a vacation
draws its initial service phase immediately — only phase *progress*
requires the quantum.
"""

from __future__ import annotations

import numpy as np

from repro.core.statespace import ClassStateSpace
from repro.errors import ValidationError
from repro.phasetype import PhaseType
from repro.qbd.structure import QBDProcess

__all__ = ["build_class_qbd", "class_state_space"]


def class_state_space(partitions: int, arrival: PhaseType, service: PhaseType,
                      quantum: PhaseType, vacation: PhaseType,
                      policy: str = "switch") -> ClassStateSpace:
    """State space implied by the PH orders of the four distributions."""
    return ClassStateSpace(
        partitions=partitions,
        m_arrival=arrival.order,
        m_service=service.order,
        m_quantum=quantum.order,
        m_vacation=vacation.order,
        policy=policy,
    )


def build_class_qbd(partitions: int, arrival: PhaseType, service: PhaseType,
                    quantum: PhaseType, vacation: PhaseType,
                    *, policy: str = "switch",
                    with_labels: bool = False) -> tuple[QBDProcess, ClassStateSpace]:
    """Build the QBD for one class given its vacation distribution.

    Parameters
    ----------
    partitions:
        ``c_p = P / g(p)``.
    arrival, service, quantum:
        The class's own PH parameters (must have no atom at zero).
    vacation:
        The PH distribution ``F_p`` of the time the processors belong
        to other classes (heavy-traffic form from Theorem 4.1 or
        fixed-point form from Theorem 4.3).  Must have no atom at zero
        (guaranteed when it starts with a proper context-switch
        overhead).
    policy:
        ``"switch"`` (paper) or ``"idle"`` (strict cycle ablation).
    with_labels:
        Attach per-level state labels to the returned process (for the
        Figure 1 diagram export); costs memory on big spaces.

    Returns
    -------
    (QBDProcess, ClassStateSpace)
    """
    for what, dist in (("arrival", arrival), ("service", service),
                       ("quantum", quantum), ("vacation", vacation)):
        if dist.atom_at_zero > 1e-12:
            raise ValidationError(
                f"{what} distribution has an atom at zero "
                f"({dist.atom_at_zero:.3g}); the chain would have instantaneous "
                "transitions"
            )
    space = class_state_space(partitions, arrival, service, quantum, vacation, policy)
    builder = _BlockBuilder(space, arrival, service, quantum, vacation)

    c = space.boundary_levels
    ups = [builder.up(i) for i in range(c + 1)]          # levels 0..c (c's up == A0)
    downs = [None] + [builder.down(i) for i in range(1, c + 2)]  # 1..c+1
    locals_ = [builder.local(i) for i in range(c + 2)]   # 0..c+1

    A0 = ups[c]
    A1 = locals_[c + 1]
    A2 = downs[c + 1]
    # Diagonals: negative total outflow per state.
    A1 = _with_diagonal(A1, [A0, A2])

    boundary: list[list[np.ndarray | None]] = [
        [None] * (c + 1) for _ in range(c + 1)
    ]
    for i in range(c + 1):
        out_blocks = []
        if i > 0:
            boundary[i][i - 1] = downs[i]
            out_blocks.append(downs[i])
        up_blk = ups[i] if i < c else A0   # level c's up block is A0
        out_blocks.append(up_blk)
        if i < c:
            boundary[i][i + 1] = ups[i]
        boundary[i][i] = _with_diagonal(locals_[i], out_blocks)

    labels = None
    if with_labels:
        labels = tuple(space.labels(i) for i in range(c + 1)) + (space.labels(c + 1),)
    process = QBDProcess(
        boundary=tuple(tuple(row) for row in boundary),
        A0=A0, A1=A1, A2=A2, level_labels=labels,
    )
    return process, space


def _with_diagonal(local: np.ndarray, other_blocks) -> np.ndarray:
    """Set the diagonal so each state's row sums to zero across all blocks."""
    out = local.copy()
    total = out.sum(axis=1)
    for blk in other_blocks:
        if blk is not None:
            total = total + blk.sum(axis=1)
    r = np.arange(out.shape[0])
    out[r, r] -= total
    return out


class _BlockBuilder:
    """Assembles off-diagonal rate blocks for one class's chain."""

    def __init__(self, space: ClassStateSpace, arrival: PhaseType,
                 service: PhaseType, quantum: PhaseType, vacation: PhaseType):
        self.sp = space
        self.SA = np.asarray(arrival.S)
        self.aA = np.asarray(arrival.alpha)
        self.sA0 = np.asarray(arrival.exit_rates)
        self.SB = np.asarray(service.S)
        self.aB = np.asarray(service.alpha)
        self.sB0 = np.asarray(service.exit_rates)
        self.SG = np.asarray(quantum.S)
        self.bG = np.asarray(quantum.alpha)
        self.sG0 = np.asarray(quantum.exit_rates)
        self.V = np.asarray(vacation.S)
        self.zeta = np.asarray(vacation.alpha)
        self.v0 = np.asarray(vacation.exit_rates)

    # -- helpers -------------------------------------------------------

    def _add(self, M: np.ndarray, x: int, y: int, rate: float,
             *, same_level: bool) -> None:
        """Accumulate an off-diagonal rate, dropping within-level self-loops."""
        if rate <= 0.0:
            return
        if same_level and x == y:
            return
        M[x, y] += rate

    # -- blocks --------------------------------------------------------

    def up(self, i: int) -> np.ndarray:
        """Arrival block: level ``i`` -> ``i + 1``."""
        sp = self.sp
        M = np.zeros((sp.level_dim(i), sp.level_dim(i + 1)))
        enters_service = i < sp.partitions
        for a, v, k in sp.states(i):
            x = sp.index(i, a, v, k)
            base = self.sA0[a]
            if base <= 0:
                continue
            for a2 in np.nonzero(self.aA)[0]:
                r = base * self.aA[a2]
                if enters_service:
                    for n in np.nonzero(self.aB)[0]:
                        v2 = list(v)
                        v2[n] += 1
                        y = sp.index(i + 1, int(a2), tuple(v2), k)
                        self._add(M, x, y, r * self.aB[n], same_level=False)
                else:
                    y = sp.index(i + 1, int(a2), v, k)
                    self._add(M, x, y, r, same_level=False)
        return M

    def down(self, i: int) -> np.ndarray:
        """Service-completion block: level ``i`` -> ``i - 1`` (``i >= 1``)."""
        sp = self.sp
        M = np.zeros((sp.level_dim(i), sp.level_dim(i - 1)))
        refill = i > sp.partitions        # a queued job takes the freed slot
        empties = (i == 1)
        for a, v, k in sp.states(i):
            if not sp.is_quantum_phase(k):
                continue  # service progresses only during the quantum
            x = sp.index(i, a, v, k)
            for n, count in enumerate(v):
                if count == 0 or self.sB0[n] <= 0:
                    continue
                base = count * self.sB0[n]
                if refill:
                    for n2 in np.nonzero(self.aB)[0]:
                        v2 = list(v)
                        v2[n] -= 1
                        v2[n2] += 1
                        y = sp.index(i - 1, a, tuple(v2), k)
                        self._add(M, x, y, base * self.aB[n2], same_level=False)
                    continue
                v2 = list(v)
                v2[n] -= 1
                v2t = tuple(v2)
                if empties and sp.policy == "switch":
                    # Last job leaves: immediate context switch into the
                    # vacation (level 0 has vacation phases only).
                    for j in np.nonzero(self.zeta)[0]:
                        y = sp.index(0, a, v2t, sp.m_quantum + int(j))
                        self._add(M, x, y, base * self.zeta[j], same_level=False)
                else:
                    y = sp.index(i - 1, a, v2t, k)
                    self._add(M, x, y, base, same_level=False)
        return M

    def local(self, i: int) -> np.ndarray:
        """Within-level block (off-diagonal part only)."""
        sp = self.sp
        d = sp.level_dim(i)
        M = np.zeros((d, d))
        for a, v, k in sp.states(i):
            x = sp.index(i, a, v, k)
            # Arrival-phase internal jumps.
            for a2 in range(self.SA.shape[0]):
                if a2 != a:
                    self._add(M, x, sp.index(i, a2, v, k), self.SA[a, a2],
                              same_level=True)
            in_quantum = sp.is_quantum_phase(k)
            if in_quantum:
                # Service-phase internal jumps.
                for n, count in enumerate(v):
                    if count == 0:
                        continue
                    for n2 in range(self.SB.shape[0]):
                        if n2 == n or self.SB[n, n2] <= 0:
                            continue
                        v2 = list(v)
                        v2[n] -= 1
                        v2[n2] += 1
                        self._add(M, x, sp.index(i, a, tuple(v2), k),
                                  count * self.SB[n, n2], same_level=True)
                # Quantum-phase internal jumps.
                for k2 in range(sp.m_quantum):
                    if k2 != k:
                        self._add(M, x, sp.index(i, a, v, k2), self.SG[k, k2],
                                  same_level=True)
                # Quantum expiry -> vacation start.
                if self.sG0[k] > 0:
                    for j in np.nonzero(self.zeta)[0]:
                        self._add(M, x, sp.index(i, a, v, sp.m_quantum + int(j)),
                                  self.sG0[k] * self.zeta[j], same_level=True)
            else:
                j = k - sp.m_quantum
                # Vacation-phase internal jumps.
                for j2 in range(sp.m_vacation):
                    if j2 != j:
                        self._add(M, x, sp.index(i, a, v, sp.m_quantum + j2),
                                  self.V[j, j2], same_level=True)
                # Vacation expiry.
                if self.v0[j] > 0:
                    if i >= 1 or sp.policy == "idle":
                        # Quantum begins.
                        for k2 in np.nonzero(self.bG)[0]:
                            self._add(M, x, sp.index(i, a, v, int(k2)),
                                      self.v0[j] * self.bG[k2], same_level=True)
                    else:
                        # Level 0 under switch policy: the empty quantum
                        # is skipped; the next vacation starts at once.
                        for j2 in np.nonzero(self.zeta)[0]:
                            self._add(M, x,
                                      sp.index(0, a, v, sp.m_quantum + int(j2)),
                                      self.v0[j] * self.zeta[j2], same_level=True)
        return M
