"""Analytic gang-scheduling model with batch arrivals.

Implements the extension the paper claims in Section 3: *"our
mathematical analysis is easily extended to handle batch arrivals
and/or departures as long as the batch sizes are bounded"*.  Each
class-``p`` arrival epoch brings ``k`` jobs with probability
``q_p(k)``, ``k <= K_p``; the per-class level process then jumps up by
``1..K_p``, making it *banded* rather than tridiagonal.  Grouping
``K_p`` levels into super-levels (:mod:`repro.qbd.banded`) restores
QBD form, and the whole Theorem 4.2/4.3 pipeline — heavy-traffic
vacations, matrix-geometric solve, effective-quantum fixed point —
carries over.

Jobs of one batch that find free partitions take them immediately
(drawing i.i.d. initial service phases — a multinomial over the
service PH's entry vector); the rest join the FCFS queue.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import SystemConfig
from repro.core.generator import _BlockBuilder, class_state_space
from repro.core.statespace import ClassStateSpace
from repro.utils.combinatorics import multinomial_compositions
from repro.core.vacation import (
    fixed_point_vacation,
    heavy_traffic_vacation,
    reduce_order,
)
from repro.errors import ValidationError
from repro.phasetype import PhaseType
from repro.qbd.banded import BandedLevelProcess, ReblockedIndex, reblock
from repro.qbd.stationary import QBDStationaryDistribution, solve_qbd

__all__ = ["BatchGangSchedulingModel", "BatchSolvedClass", "BatchSolvedModel"]


class _BatchBlockBuilder(_BlockBuilder):
    """Extends the per-class block builder with batch up-jumps."""

    def __init__(self, space: ClassStateSpace, arrival, service, quantum,
                 vacation, batch_pmf: np.ndarray):
        super().__init__(space, arrival, service, quantum, vacation)
        self.batch_pmf = batch_pmf

    def up_k(self, i: int, k: int) -> np.ndarray:
        """Arrival of a batch of ``k`` jobs: level ``i`` -> ``i + k``."""
        sp = self.sp
        qk = float(self.batch_pmf[k - 1])
        M = np.zeros((sp.level_dim(i), sp.level_dim(i + k)))
        if qk <= 0.0:
            return M
        enter = min(k, sp.partitions - sp.in_service(i))
        entries = multinomial_compositions(enter, self.aB) if enter > 0 \
            else [(tuple([0] * sp.m_service), 1.0)]
        for a, v, kc in sp.states(i):
            x = sp.index(i, a, v, kc)
            base = self.sA0[a] * qk
            if base <= 0:
                continue
            for a2 in np.nonzero(self.aA)[0]:
                for comp, prob in entries:
                    v2 = tuple(vi + ci for vi, ci in zip(v, comp))
                    y = sp.index(i + k, int(a2), v2, kc)
                    M[x, y] += base * self.aA[a2] * prob
        return M


def _build_banded(space: ClassStateSpace, builder: _BatchBlockBuilder,
                  K: int) -> BandedLevelProcess:
    """Wrap the builder as a cached banded block accessor."""
    c = space.boundary_levels
    cache: dict[tuple[int, int], np.ndarray | None] = {}

    def canonical(i: int, j: int) -> tuple[int, int]:
        # Levels above c+1 are homogeneous: reuse deep reference blocks.
        base = c + K + 2
        if i > base and j - i >= -1:
            shift = i - base
            return (base, j - shift)
        return (i, j)

    def block(i: int, j: int):
        key = canonical(i, j)
        if key not in cache:
            cache[key] = _compute_block(*key)
        return cache[key]

    def _compute_block(i: int, j: int):
        if j == i - 1 and i >= 1:
            return builder.down(i)
        if i < j <= i + K:
            return builder.up_k(i, j - i)
        if j == i:
            off = builder.local(i)
            total = off.sum(axis=1)
            if i >= 1:
                total = total + builder.down(i).sum(axis=1)
            for k in range(1, K + 1):
                total = total + builder.up_k(i, k).sum(axis=1)
            out = off.copy()
            out[np.diag_indices_from(out)] -= total
            return out
        return None

    return BandedLevelProcess(block=block, level_dim=space.level_dim,
                              max_jump=K, regular_from=c)


def _effective_quantum_banded(space: ClassStateSpace,
                              banded: BandedLevelProcess,
                              index: ReblockedIndex,
                              solution: QBDStationaryDistribution,
                              vacation: PhaseType,
                              *, truncation_mass: float = 1e-9,
                              max_levels: int = 300) -> PhaseType:
    """Theorem 4.3's effective quantum, generalized to batch up-jumps."""
    c = space.boundary_levels
    K = banded.max_jump
    # Truncation level by marginal mass.
    Kt = c + K + 2
    while Kt < max_levels:
        if float(index.marginal(solution, Kt).sum()) < truncation_mass:
            break
        Kt += 1

    include_level0 = space.policy == "idle"
    lvl_start = 0 if include_level0 else 1

    def service_locals(level: int) -> np.ndarray:
        return np.asarray([j for j, (a, v, k) in enumerate(space.states(level))
                           if space.is_quantum_phase(k)], dtype=np.intp)

    svc: dict[int, np.ndarray] = {}
    offsets: dict[int, int] = {}
    pos = 0
    rep = None
    for lvl in range(lvl_start, Kt + 1):
        if lvl > c:
            if rep is None:
                rep = service_locals(lvl)
            svc[lvl] = rep
        else:
            svc[lvl] = service_locals(lvl)
        offsets[lvl] = pos
        pos += len(svc[lvl])
    order = pos

    T = np.zeros((order, order))
    absorb = np.zeros(order)
    for lvl in range(lvl_start, Kt + 1):
        rows = svc[lvl]
        base = offsets[lvl]
        sl = slice(base, base + len(rows))
        # Within level.
        local = np.asarray(banded.block(lvl, lvl))
        sub = local[np.ix_(rows, rows)].copy()
        np.fill_diagonal(sub, 0.0)
        T[sl, sl] += sub
        wait_cols = np.setdiff1d(np.arange(local.shape[1]), rows)
        if wait_cols.size:
            absorb[sl] += local[np.ix_(rows, wait_cols)].sum(axis=1)
        # Batch up-jumps (reflected past the truncation edge).
        for k in range(1, K + 1):
            if lvl + k > Kt:
                break
            upb = banded.block(lvl, lvl + k)
            if upb is None:
                continue
            tr = svc[lvl + k]
            T[sl, offsets[lvl + k]:offsets[lvl + k] + len(tr)] += \
                np.asarray(upb)[np.ix_(rows, tr)]
        # Down one level.
        if lvl > lvl_start:
            dnb = np.asarray(banded.block(lvl, lvl - 1))
            dn_rows = svc[lvl - 1]
            T[sl, offsets[lvl - 1]:offsets[lvl - 1] + len(dn_rows)] += \
                dnb[np.ix_(rows, dn_rows)]
            dn_wait = np.setdiff1d(np.arange(dnb.shape[1]), dn_rows)
            if dn_wait.size:
                absorb[sl] += dnb[np.ix_(rows, dn_wait)].sum(axis=1)
        elif lvl == 1 and not include_level0:
            dnb = np.asarray(banded.block(1, 0))
            absorb[sl] += dnb[rows].sum(axis=1)
    T[np.diag_indices(order)] = 0.0
    T[np.diag_indices(order)] = -(T.sum(axis=1) + absorb)

    # Entry vector: vacation completions at level >= 1 (+ skip atom).
    xi = np.zeros(order)
    for lvl in range(lvl_start, Kt + 1):
        pi = index.marginal(solution, lvl)
        local = np.asarray(banded.block(lvl, lvl))
        rows_wait = np.setdiff1d(np.arange(local.shape[0]), svc[lvl])
        if rows_wait.size == 0:
            continue
        xi[offsets[lvl]:offsets[lvl] + len(svc[lvl])] += \
            pi[rows_wait] @ local[np.ix_(rows_wait, svc[lvl])]
    atom_flow = 0.0
    if not include_level0:
        pi0 = index.marginal(solution, 0)
        v0 = vacation.exit_rates
        for j, (a, v, k) in enumerate(space.states(0)):
            atom_flow += pi0[j] * v0[k - space.m_quantum]
    total = xi.sum() + atom_flow
    if total <= 0:
        raise ValidationError("no flow into quantum starts in batch chain")
    return PhaseType.from_trusted(xi / total, T)


@dataclass(frozen=True)
class BatchSolvedClass:
    """Per-class batch-model results."""

    name: str
    mean_jobs: float
    mean_response_time: float
    vacation: PhaseType
    stable: bool


@dataclass(frozen=True)
class BatchSolvedModel:
    """Solution of the batch-arrival gang model."""

    config: SystemConfig
    batch_pmfs: tuple[tuple[float, ...], ...]
    classes: tuple[BatchSolvedClass, ...]
    iterations: int
    converged: bool

    def mean_jobs(self, p: int | None = None) -> float:
        if p is not None:
            return self.classes[p].mean_jobs
        return sum(c.mean_jobs for c in self.classes)


class BatchGangSchedulingModel:
    """Gang scheduling with bounded batch arrivals, solved analytically.

    Parameters
    ----------
    config:
        The usual system description; the per-class arrival PH governs
        batch *epochs*.
    batch_pmfs:
        ``batch_pmfs[p][k-1] = P(batch size = k)`` for class ``p``.

    Examples
    --------
    >>> from repro.core import ClassConfig, SystemConfig
    >>> cfg = SystemConfig(processors=2, classes=(
    ...     ClassConfig.markovian(1, arrival_rate=0.3, service_rate=1.0,
    ...                           quantum_mean=2.0, overhead_mean=0.05),))
    >>> model = BatchGangSchedulingModel(cfg, [[0.5, 0.5]])
    >>> solved = model.solve()
    >>> solved.mean_jobs(0) > 0
    True
    """

    def __init__(self, config: SystemConfig, batch_pmfs, *,
                 reduction: str = "moments2",
                 rmatrix_method: str = "logreduction",
                 truncation_mass: float = 1e-9,
                 max_truncation_levels: int = 300):
        self.config = config
        if len(batch_pmfs) != config.num_classes:
            raise ValidationError(
                f"{len(batch_pmfs)} batch pmfs for {config.num_classes} classes")
        pmfs = []
        for p, pmf in enumerate(batch_pmfs):
            arr = np.asarray(pmf, dtype=np.float64)
            if arr.ndim != 1 or arr.size == 0 or np.any(arr < 0) \
                    or abs(arr.sum() - 1.0) > 1e-9:
                raise ValidationError(
                    f"batch pmf for class {p} must be a probability vector")
            pmfs.append(arr / arr.sum())
        self.batch_pmfs = pmfs
        self._reduction = reduction
        self._rmatrix_method = rmatrix_method
        self._truncation_mass = truncation_mass
        self._max_levels = max_truncation_levels

    def mean_batch_size(self, p: int) -> float:
        pmf = self.batch_pmfs[p]
        return float(np.dot(pmf, np.arange(1, pmf.size + 1)))

    def job_arrival_rate(self, p: int) -> float:
        """Jobs per unit time: epoch rate times mean batch size."""
        return self.config.classes[p].arrival_rate * self.mean_batch_size(p)

    def _solve_class(self, p: int, vacation: PhaseType):
        cls = self.config.classes[p]
        space = class_state_space(
            self.config.partitions(p), cls.arrival, cls.service,
            cls.quantum, vacation, self.config.empty_queue_policy)
        builder = _BatchBlockBuilder(space, cls.arrival, cls.service,
                                     cls.quantum, vacation,
                                     self.batch_pmfs[p])
        banded = _build_banded(space, builder, self.batch_pmfs[p].size)
        process, index = reblock(banded)
        solution = solve_qbd(process, method=self._rmatrix_method)
        return space, banded, index, solution

    def solve(self, *, max_iterations: int = 100,
              tol: float = 1e-5) -> BatchSolvedModel:
        """Heavy-traffic initialization + effective-quantum fixed point."""
        L = self.config.num_classes
        vacations = [heavy_traffic_vacation(self.config, p)
                     for p in range(L)]
        prev = None
        converged = False
        state = None
        for it in range(max_iterations):
            state = [self._solve_class(p, vacations[p]) for p in range(L)]
            means = np.array([index.mean_level(sol)
                              for (_, _, index, sol) in state])
            if prev is not None and float(np.max(
                    np.abs(means - prev) / np.maximum(1.0, means))) < tol:
                converged = True
                break
            prev = means
            eff = {}
            for p in range(L):
                space, banded, index, sol = state[p]
                raw = _effective_quantum_banded(
                    space, banded, index, sol, vacations[p],
                    truncation_mass=self._truncation_mass,
                    max_levels=self._max_levels)
                eff[p] = reduce_order(raw, self._reduction)
            vacations = [fixed_point_vacation(self.config, p, eff)
                         for p in range(L)]
        classes = []
        for p in range(L):
            _, _, index, sol = state[p]
            n = index.mean_level(sol)
            classes.append(BatchSolvedClass(
                name=self.config.class_names[p],
                mean_jobs=n,
                mean_response_time=n / self.job_arrival_rate(p),
                vacation=vacations[p],
                stable=True,
            ))
        return BatchSolvedModel(
            config=self.config,
            batch_pmfs=tuple(tuple(float(x) for x in pmf)
                             for pmf in self.batch_pmfs),
            classes=tuple(classes),
            iterations=it + 1,
            converged=converged,
        )
