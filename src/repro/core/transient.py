"""Transient behaviour of a class chain: how fast steady state arrives.

The paper's analysis is purely steady-state.  Operationally, the next
question is transient: after a reconfiguration (a class enabled, a
quantum retuned), how long until the queues settle?  This module
answers it for one class's decomposed chain by uniformized transient
analysis on a truncated copy of its QBD — ``E[N_p(t)]`` as a curve,
plus a settling-time estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import Series
from repro.core.model import SolvedModel
from repro.errors import ValidationError
from repro.markov.uniformization import transient_distribution

__all__ = ["TransientResult", "transient_mean_jobs"]


@dataclass(frozen=True)
class TransientResult:
    """``E[N_p(t)]`` on a time grid, with the stationary limit."""

    times: tuple[float, ...]
    mean_jobs: tuple[float, ...]
    stationary_mean: float

    def as_series(self, name: str = "E[N(t)]") -> Series:
        s = Series(name)
        for t, n in zip(self.times, self.mean_jobs):
            s.append(t, n)
        return s

    def settling_time(self, rel_tol: float = 0.05) -> float:
        """First grid time after which ``E[N(t)]`` stays within
        ``rel_tol`` of the stationary mean.  ``inf`` if never on this
        grid."""
        target = self.stationary_mean
        band = rel_tol * max(target, 1e-12)
        settled_from = float("inf")
        for t, n in zip(self.times, self.mean_jobs):
            if abs(n - target) <= band:
                if settled_from == float("inf"):
                    settled_from = t
            else:
                settled_from = float("inf")
        return settled_from


def transient_mean_jobs(solved: SolvedModel, p: int, times,
                        *, initial_level: int = 0,
                        truncation_mass: float = 1e-8,
                        max_levels: int = 200,
                        backend: str | None = None) -> TransientResult:
    """``E[N_p(t)]`` for class ``p`` starting from a fixed queue length.

    The chain is class ``p``'s converged decomposed model (vacations at
    their fixed-point law), truncated where the *stationary* tail mass
    drops below ``truncation_mass`` (the transient from a modest start
    stays below the stationary tail for all t, so the truncation is
    safe).  The start state is ``initial_level`` jobs with the vacation
    beginning — "the class is switched on at t = 0".

    Parameters
    ----------
    times:
        Increasing evaluation times.
    initial_level:
        Jobs present at t = 0 (0 = empty start).
    backend:
        Kernel selection (see :mod:`repro.kernels`): when the truncated
        generator is large enough for the sparse side, it is assembled
        in CSR and the uniformization steps run sparse matvecs instead
        of dense ones.
    """
    cr = solved.classes[p]
    if not cr.stable:
        raise ValidationError(f"class {p} is saturated; no steady state")
    times = [float(t) for t in times]
    if not times or any(t < 0 for t in times) \
            or any(b <= a for a, b in zip(times, times[1:])):
        raise ValidationError("times must be positive and strictly increasing")

    space = cr.space
    sol = cr.stationary
    # Truncation level from the stationary tail.
    levels = space.boundary_levels + 2
    while levels < max_levels and sol.tail_probability(levels) > truncation_mass:
        levels += 1
    levels += 1

    # Rebuild the process (cheap) to get the truncated generator.
    from repro.core.generator import build_class_qbd
    from repro.kernels import select_backend
    cls = solved.config.classes[p]
    process, _ = build_class_qbd(
        space.partitions, cls.arrival, cls.service, cls.quantum,
        cr.vacation, policy=space.policy)
    n_states = sum(process.boundary_dims()) \
        + process.phase_dim * (levels - space.boundary_levels - 1)
    if select_backend(backend, n_states) == "sparse":
        Q, tags = process.truncated_generator_sparse(levels)
    else:
        Q, tags = process.truncated_generator(levels)
    level_of_state = np.asarray([lvl for (lvl, _) in tags], dtype=np.float64)

    # Start state: `initial_level` jobs, arrival phase from its initial
    # vector, all service entries fresh, vacation just beginning.
    if initial_level >= levels - 1:
        raise ValidationError(
            f"initial_level {initial_level} exceeds the truncation window")
    p0 = np.zeros(Q.shape[0])
    offset = sum(space.level_dim(i) for i in range(initial_level))
    aA = np.asarray(cls.arrival.alpha)
    zeta = np.asarray(cr.vacation.alpha)
    vecs = space.service_vectors(initial_level)
    # Fresh jobs all start in the service PH's first-entry mix; use the
    # composition of initial_level jobs drawn from alpha_B (multinomial).
    from repro.utils.combinatorics import multinomial_compositions
    entries = multinomial_compositions(space.in_service(initial_level),
                                       np.asarray(cls.service.alpha))
    vmap = space.service_vector_index(initial_level)
    nk = len(space.cycle_phases_at(initial_level))
    for a in range(space.m_arrival):
        for comp, vprob in entries:
            vidx = vmap[comp]
            for kj, k in enumerate(space.cycle_phases_at(initial_level)):
                if space.is_quantum_phase(k):
                    continue
                j = k - space.m_quantum
                weight = aA[a] * vprob * zeta[j]
                p0[offset + (a * len(vecs) + vidx) * nk + kj] += weight
    if p0.sum() <= 0:
        raise ValidationError("could not construct a valid start state")
    p0 = p0 / p0.sum()

    means = []
    for t in times:
        pt = transient_distribution(Q, p0, t)
        means.append(float(pt @ level_of_state))
    return TransientResult(
        times=tuple(times),
        mean_jobs=tuple(means),
        stationary_mean=cr.mean_jobs,
    )
