"""Response-time *distributions* via tagged-job analysis.

The paper computes mean response times through Little's law
(Section 4.5).  This module goes further for exponential service: the
full response-time distribution of a class-``p`` job, as a phase-type
distribution, from which percentiles and SLO probabilities follow.

Construction (tagged-job / absorbing-chain argument):

* A Poisson arrival observes the stationary state (PASTA), giving the
  initial distribution over ``(m, k)`` where ``m`` counts the tagged
  job plus all jobs *ahead* of it and ``k`` is the cycle phase.
* Under FCFS with head-of-queue refill, jobs arriving *after* the
  tagged job can never influence it: freed partitions always go to
  earlier arrivals first, and the switch-on-empty event cannot fire
  while the tagged job is present.  The tagged-job chain therefore
  needs no arrival process at all — it only runs down.
* During quantum phases, service completes at rate
  ``min(m, c) * mu``; while ``m > c`` any completion moves the tagged
  job forward (``m -> m-1``); once ``m <= c`` the tagged job itself is
  in service and completes (absorption) at rate ``mu``, while the
  ``m - 1`` others complete in parallel.
* The cycle phase evolves exactly as in the class chain (quantum PH,
  vacation PH) — with the early switch impossible, the alternation is
  the plain ``G_p``/``F_p`` renewal.

The resulting absorption-time law is an order ``m_max * (M + N)``
phase-type distribution.  Its mean must (and does — see the tests)
reproduce ``T_p = N_p / lambda_p``, which is a strong independent check
of both computations.

Limitations: exponential service and Poisson (exponential interarrival)
per-class streams; general PH service would require tracking the
tagged job's and its predecessors' phases (a straightforward but large
extension of the same construction).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import ClassResult, SolvedModel
from repro.errors import ValidationError
from repro.phasetype import PhaseType

__all__ = ["response_time_distribution", "waiting_time_distribution"]


def response_time_distribution(solved: SolvedModel, p: int,
                               *, truncation_mass: float = 1e-10,
                               max_levels: int = 2000) -> PhaseType:
    """The response-time distribution of class ``p`` as a PhaseType.

    Parameters
    ----------
    solved:
        A converged :class:`~repro.core.model.SolvedModel`.
    p:
        Class index; the class must have exponential service and
        arrival distributions and be stable.
    truncation_mass:
        Stationary tail mass beyond which queue positions are ignored
        (folded into the deepest retained level).

    Returns
    -------
    PhaseType
        Response-time law; ``.quantile(0.95)`` etc. answer SLO
        questions the mean cannot.
    """
    cr: ClassResult = solved.classes[p]
    if not cr.stable:
        raise ValidationError(f"class {p} is saturated; response time diverges")
    cls = solved.config.classes[p]
    if cls.service.order != 1:
        raise ValidationError(
            "response_time_distribution currently requires exponential "
            f"service; class {p} has order {cls.service.order}")
    if cls.arrival.order != 1:
        raise ValidationError(
            "the PASTA initial vector requires Poisson arrivals; class "
            f"{p} has an order-{cls.arrival.order} interarrival PH")

    space = cr.space
    c = space.partitions
    mu = cls.service_rate
    M = space.m_quantum
    N = space.m_vacation
    nk = M + N
    quantum = cls.quantum
    vacation = cr.vacation
    SG = np.asarray(quantum.S)
    bG = np.asarray(quantum.alpha)
    sG0 = np.asarray(quantum.exit_rates)
    V = np.asarray(vacation.S)
    zeta = np.asarray(vacation.alpha)
    v0 = np.asarray(vacation.exit_rates)

    # ---- truncation of the tagged job's starting position --------------
    sol = cr.stationary
    m_max = c + 2
    while m_max < max_levels and sol.tail_probability(m_max - 1) > truncation_mass:
        m_max += 1

    # ---- state indexing: (m, k), m in 1..m_max, k in 0..nk-1 ----------
    def idx(m: int, k: int) -> int:
        return (m - 1) * nk + k

    order = m_max * nk
    T = np.zeros((order, order))
    for m in range(1, m_max + 1):
        in_service = min(m, c)
        for k in range(nk):
            x = idx(m, k)
            if k < M:  # quantum phase
                # Quantum-phase internal moves.
                for k2 in range(M):
                    if k2 != k:
                        T[x, idx(m, k2)] += SG[k, k2]
                # Quantum expiry -> vacation.
                for j in np.nonzero(zeta)[0]:
                    T[x, idx(m, M + int(j))] += sG0[k] * zeta[j]
                # Service completions.
                if m > c:
                    # Only jobs ahead complete: tagged moves up.
                    T[x, idx(m - 1, k)] += in_service * mu
                else:
                    # Tagged in service: own completion is absorption
                    # (left out of T); others' completions shrink m.
                    if m > 1:
                        T[x, idx(m - 1, k)] += (m - 1) * mu
            else:      # vacation phase
                j = k - M
                for j2 in range(N):
                    if j2 != j:
                        T[x, idx(m, M + j2)] += V[j, j2]
                for k2 in np.nonzero(bG)[0]:
                    T[x, idx(m, int(k2))] += v0[j] * bG[k2]
    # Diagonals: total outflow including the absorption rate mu for
    # states with the tagged job in service during a quantum.
    out = T.sum(axis=1)
    for m in range(1, min(m_max, c) + 1):
        for k in range(M):
            out[idx(m, k)] += mu
    T[np.diag_indices(order)] -= out

    # ---- PASTA initial vector -------------------------------------------
    # The tagged arrival sees stationary state (i, v, k); it becomes the
    # (i+1)-th job: m0 = i + 1 (capped at m_max), same cycle phase.
    alpha = np.zeros(order)
    for i in range(0, m_max):
        pi = sol.level(i)
        m0 = i + 1
        for jstate, (a, v, k) in enumerate(space.states(i)):
            alpha[idx(m0, k)] += pi[jstate]
    # Tail mass beyond the truncation starts at the deepest level.
    tail = max(0.0, 1.0 - alpha.sum())
    if tail > 0:
        # Distribute over the deepest level proportionally to its shape.
        deep = alpha[(m_max - 1) * nk:(m_max) * nk]
        if deep.sum() > 0:
            alpha[(m_max - 1) * nk:] += tail * deep / deep.sum()
        else:  # pragma: no cover - degenerate
            alpha[idx(m_max, M)] += tail
    alpha = alpha / alpha.sum()
    return PhaseType(alpha, T)


def waiting_time_distribution(solved: SolvedModel, p: int,
                              *, truncation_mass: float = 1e-10,
                              max_levels: int = 2000) -> PhaseType:
    """Time from arrival until the tagged job first *receives service*.

    Same tagged-job chain as :func:`response_time_distribution`, but
    absorption happens on first entry to the set
    ``{m <= c, quantum phase}`` — the tagged job holds a partition and
    the machine is executing its class.  A job arriving to a free
    partition mid-quantum has waited zero: that probability appears as
    the returned distribution's ``atom_at_zero``.
    """
    full = response_time_distribution(solved, p,
                                      truncation_mass=truncation_mass,
                                      max_levels=max_levels)
    space = solved.classes[p].space
    c = space.partitions
    M = space.m_quantum
    nk = M + space.m_vacation
    order = full.order
    m_max = order // nk

    def is_target(state: int) -> bool:
        m = state // nk + 1
        k = state % nk
        return m <= c and k < M

    keep = np.asarray([s for s in range(order) if not is_target(s)],
                      dtype=np.intp)
    S_full = np.asarray(full.S)
    alpha_full = np.asarray(full.alpha)
    # Restrict to pre-service states.  Keeping the original diagonals
    # preserves each state's total exit rate, so the dropped columns
    # (transitions into the target set) become exactly the absorption
    # rates.  The response chain's own absorption (tagged completion at
    # rate mu) occurs only from target states, so nothing else leaks.
    T = S_full[np.ix_(keep, keep)].copy()
    # The initial mass on target states is the waited-zero probability,
    # represented as the PH atom through the alpha deficit.
    return PhaseType(alpha_full[keep], T)
