"""Model façade: :class:`GangSchedulingModel` and :class:`SolvedModel`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.config import SystemConfig
from repro.core.fixed_point import (
    FixedPointOptions,
    FixedPointResult,
    IterationRecord,
    run_fixed_point,
)
from repro.core.measures import ClassMeasures, compute_measures
from repro.core.statespace import ClassStateSpace
from repro.kernels import resolve_backend
from repro.obs.trace import StageTimings, span
from repro.phasetype import PhaseType
from repro.pipeline.cache import ArtifactCache
from repro.policy import SchedulingPolicy, resolve_policy
from repro.qbd.stationary import QBDStationaryDistribution
from repro.resilience.fallback import DEFAULT_POLICY, ResiliencePolicy

__all__ = ["GangSchedulingModel", "SolvedModel", "ClassResult"]


@dataclass(frozen=True)
class ClassResult:
    """Everything the analysis produced for one job class.

    For a *saturated* class (unstable at the fixed point — its share
    of the cycle cannot carry its load), ``stationary`` is ``None``
    and the measures are infinite; ``stable`` distinguishes the cases.
    """

    name: str
    space: ClassStateSpace
    stationary: QBDStationaryDistribution | None
    vacation: PhaseType
    measures: ClassMeasures

    @property
    def stable(self) -> bool:
        return self.stationary is not None

    @property
    def mean_jobs(self) -> float:
        """``N_p``, the paper's headline measure."""
        return self.measures.mean_jobs

    @property
    def mean_response_time(self) -> float:
        """``T_p = N_p / lambda_p``."""
        return self.measures.mean_response_time


@dataclass(frozen=True)
class SolvedModel:
    """Converged (or heavy-traffic) solution of the full system."""

    config: SystemConfig
    classes: tuple[ClassResult, ...]
    history: tuple[IterationRecord, ...]
    converged: bool
    #: Wall-clock seconds per solver-pipeline stage (assemble,
    #: stability, rsolve, boundary, extract, reduce, recombine,
    #: measures), accumulated over the whole solve.
    timings: dict[str, float] = field(default_factory=dict, compare=False)
    #: Artifact-cache counters of the solve
    #: (:meth:`repro.pipeline.cache.ArtifactCache.stats`).  The cache
    #: lives on the model, so repeated solves see cumulative numbers.
    cache_stats: dict[str, int] = field(default_factory=dict, compare=False)
    #: Lazily built per-class :class:`ClassDistributions` cache
    #: (see :meth:`distributions`); never compared.
    _distributions: dict = field(default_factory=dict, compare=False,
                                 repr=False)

    @property
    def iterations(self) -> int:
        return len(self.history)

    def distributions(self, p: int):
        """Response/waiting-time laws of class ``p``, lazily cached.

        Returns a :class:`repro.metrics.distributions.ClassDistributions`;
        saturated or unsupported classes yield an explicit marker kind
        instead of raising, so sweep grid points degrade gracefully.
        """
        got = self._distributions.get(p)
        if got is None:
            from repro.metrics.distributions import class_distributions
            got = class_distributions(self, p)
            self._distributions[p] = got
        return got

    def mean_jobs(self, p: int | None = None) -> float:
        """``N_p`` for one class, or the system total ``sum_p N_p``."""
        if p is not None:
            return self.classes[p].mean_jobs
        return sum(c.mean_jobs for c in self.classes)

    def mean_response_time(self, p: int) -> float:
        """``T_p`` for class ``p``."""
        return self.classes[p].mean_response_time

    def tail_probability(self, p: int, k: int) -> float:
        """``P(N_p > k)`` (1.0 for a saturated class)."""
        if not self.classes[p].stable:
            return 1.0
        return self.classes[p].stationary.tail_probability(k)

    def describe(self) -> str:
        """Multi-line report of the solution."""
        lines = [self.config.describe(),
                 f"fixed point: {self.iterations} iteration(s), "
                 f"converged={self.converged}"]
        for p, cr in enumerate(self.classes):
            m = cr.measures
            lines.append(
                f"  {cr.name}: N={m.mean_jobs:.4f}  T={m.mean_response_time:.4f}  "
                f"waiting={m.mean_jobs_waiting:.4f}  "
                f"svc-frac={m.service_fraction:.4f}  util={m.utilization:.4f}"
            )
        lines.append(f"  total N={self.mean_jobs():.4f}")
        return "\n".join(lines)


class GangSchedulingModel:
    """Analytic gang-scheduling model (the paper's contribution).

    Wraps the whole pipeline: per-class QBD construction
    (Section 4.1), matrix-geometric solve (Theorem 4.2), stability test
    (Theorem 4.4), heavy-traffic vacations (Theorem 4.1) and the
    fixed-point refinement (Theorem 4.3, Section 4.3).

    Parameters
    ----------
    config:
        The system description.
    reduction, rmatrix_method, truncation_mass, max_truncation_levels, \
resilience, backend:
        Passed through to :class:`~repro.core.fixed_point.FixedPointOptions`
        (``backend`` selects the dense/sparse kernels, see
        :mod:`repro.kernels`).

    Examples
    --------
    >>> from repro.core import ClassConfig, SystemConfig, GangSchedulingModel
    >>> cfg = SystemConfig(processors=8, classes=(
    ...     ClassConfig.markovian(1, arrival_rate=0.4, service_rate=0.5,
    ...                           quantum_mean=2.0, overhead_mean=0.01),
    ...     ClassConfig.markovian(8, arrival_rate=0.4, service_rate=4.0,
    ...                           quantum_mean=2.0, overhead_mean=0.01),
    ... ))
    >>> solved = GangSchedulingModel(cfg).solve()
    >>> solved.mean_jobs(0) > 0
    True
    """

    def __init__(self, config: SystemConfig, *, reduction: str = "moments2",
                 rmatrix_method: str = "logreduction",
                 truncation_mass: float = 1e-9,
                 max_truncation_levels: int = 400,
                 resilience: "ResiliencePolicy | None" = DEFAULT_POLICY,
                 warm_start: bool = True, reuse_artifacts: bool = True,
                 backend: str = "auto",
                 policy: "SchedulingPolicy | None" = None,
                 cache: ArtifactCache | None = None):
        self.config = config
        self.policy = resolve_policy(policy) if policy is not None else None
        self._reduction = reduction
        self._rmatrix_method = rmatrix_method
        self._truncation_mass = truncation_mass
        self._max_truncation_levels = max_truncation_levels
        self._resilience = resilience
        self._warm_start = warm_start
        self._reuse_artifacts = reuse_artifacts
        self._backend = resolve_backend(backend)
        # One cache per model instance: solve() followed by
        # solve_heavy_traffic() (or repeated solves) revisit identical
        # heavy-traffic chains and get them for free.
        self._cache = cache if cache is not None else ArtifactCache()

    def _options(self, max_iterations: int, tol: float,
                 heavy_traffic_only: bool) -> FixedPointOptions:
        return FixedPointOptions(
            max_iterations=max_iterations,
            tol=tol,
            reduction=self._reduction,
            rmatrix_method=self._rmatrix_method,
            truncation_mass=self._truncation_mass,
            max_truncation_levels=self._max_truncation_levels,
            heavy_traffic_only=heavy_traffic_only,
            resilience=self._resilience,
            warm_start=self._warm_start,
            reuse_artifacts=self._reuse_artifacts,
            backend=self._backend,
            policy=self.policy,
            cache=self._cache,
        )

    def solve(self, *, max_iterations: int = 200, tol: float = 1e-5,
              heavy_traffic_only: bool = False) -> SolvedModel:
        """Solve the model; see :func:`repro.core.fixed_point.run_fixed_point`."""
        raw = run_fixed_point(
            self.config,
            self._options(max_iterations, tol, heavy_traffic_only),
        )
        return self._package(raw)

    def solve_heavy_traffic(self) -> SolvedModel:
        """The exact heavy-traffic solution of Theorem 4.1 (no iteration)."""
        return self.solve(heavy_traffic_only=True)

    def _package(self, raw: FixedPointResult) -> SolvedModel:
        classes = []
        views = resolve_policy(self.policy).views(self.config)
        acc = StageTimings()
        with span("stage.measures", timings=acc, stage="measures"):
            for p, cls in enumerate(self.config.classes):
                if raw.solutions[p] is None:
                    measures = ClassMeasures.saturated()
                else:
                    measures = compute_measures(
                        raw.spaces[p], raw.solutions[p],
                        arrival_rate=cls.arrival_rate,
                        service=views[p].service,
                        vacation=raw.vacations[p],
                    )
                classes.append(ClassResult(
                    name=self.config.class_names[p],
                    space=raw.spaces[p],
                    stationary=raw.solutions[p],
                    vacation=raw.vacations[p],
                    measures=measures,
                ))
        timings = dict(raw.timings)
        timings["measures"] = (timings.get("measures", 0.0)
                               + acc.as_dict().get("measures", 0.0))
        return SolvedModel(
            config=self.config,
            classes=tuple(classes),
            history=tuple(raw.history),
            converged=raw.converged,
            timings=timings,
            cache_stats=self._cache.stats(),
        )
