"""Steady-state performance measures for one job class.

Section 4.5 of the paper: the mean number of class-``p`` jobs ``N_p``
in the closed form of eq. (37), the mean response time
``T_p = N_p / lambda_p`` by Little's law (Theorem 2.1), plus the
operational quantities the figures discuss — waiting counts, the
fraction of time the class holds the processors, partition utilization
and throughput (the latter doubles as an internal consistency check:
in steady state it must equal ``lambda_p``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.statespace import ClassStateSpace
from repro.phasetype import PhaseType
from repro.qbd.stationary import QBDStationaryDistribution

__all__ = ["ClassMeasures", "compute_measures"]


@dataclass(frozen=True)
class ClassMeasures:
    """Steady-state measures of one class.

    Attributes
    ----------
    mean_jobs:
        ``N_p = E[number in system]`` (eq. 37).
    mean_response_time:
        ``T_p = N_p / lambda_p``.
    mean_jobs_waiting:
        ``E[(i - c_p)^+]`` — jobs without a partition.
    mean_jobs_in_service:
        ``E[min(i, c_p)]`` — jobs holding a partition (served or
        frozen during vacations).
    service_fraction:
        Long-run fraction of time the class holds the processors
        (``P(k < M_p)``).
    skip_probability_flow:
        Stationary rate of *skipped* quanta per unit time
        (vacation completions at level 0); 0 under the idle policy.
    throughput:
        Stationary departure rate; equals the arrival rate when the
        truncations are consistent (used as a self-check).
    utilization:
        Fraction of the class's partition-time actually busy serving:
        ``E[min(i, c) 1{quantum}] / c_p``.
    variance_jobs:
        ``Var[number in system]``.
    """

    mean_jobs: float
    mean_response_time: float
    mean_jobs_waiting: float
    mean_jobs_in_service: float
    service_fraction: float
    skip_probability_flow: float
    throughput: float
    utilization: float
    variance_jobs: float

    @classmethod
    def saturated(cls) -> "ClassMeasures":
        """Measures of a saturated class (unstable at the fixed point).

        Counts and response time diverge (``inf``); the time-share
        quantities have no steady-state value (``nan``) because the
        chain is not positive recurrent; and no quantum is ever
        skipped — a saturated class never empties — so the skip flow
        is exactly 0.
        """
        inf, nan = float("inf"), float("nan")
        return cls(
            mean_jobs=inf, mean_response_time=inf,
            mean_jobs_waiting=inf, mean_jobs_in_service=nan,
            service_fraction=nan, skip_probability_flow=0.0,
            throughput=nan, utilization=nan, variance_jobs=inf,
        )


def compute_measures(space: ClassStateSpace, solution: QBDStationaryDistribution,
                     *, arrival_rate: float, service: PhaseType,
                     vacation: PhaseType) -> ClassMeasures:
    """Evaluate all class measures from the stationary solution."""
    c = space.boundary_levels
    mean_jobs = solution.mean_level
    var_jobs = solution.variance_level
    resp = mean_jobs / arrival_rate

    # Aggregated phase vector over levels >= c: pi_c (I - R)^{-1}.
    agg = solution.repeating_phase_marginal()

    # E[min(i, c)] = sum_{i<c} i pi_i e + c P(level >= c).
    mean_in_service = sum(i * solution.level_mass(i) for i in range(c))
    mean_in_service += c * float(agg.sum())
    mean_waiting = mean_jobs - mean_in_service

    # Masks over the level-c phase structure (shared by all levels >= c).
    quantum_mask_rep = np.array(
        [space.is_quantum_phase(k) for (_, _, k) in space.states(c)], dtype=bool
    )

    service_fraction = float(agg[quantum_mask_rep].sum())
    utilization_num = c * float(agg[quantum_mask_rep].sum())
    throughput = 0.0
    sB0 = service.exit_rates
    states_c = list(space.states(c))
    for j, (a, v, k) in enumerate(states_c):
        if space.is_quantum_phase(k):
            throughput += agg[j] * float(np.dot(v, sB0))
    for i in range(c):
        pi = solution.level(i)
        for j, (a, v, k) in enumerate(space.states(i)):
            if space.is_quantum_phase(k):
                service_fraction += pi[j]
                utilization_num += min(i, c) * pi[j]
                throughput += pi[j] * float(np.dot(v, sB0))

    # Skipped-quantum flow: vacation completions while empty.
    skip_flow = 0.0
    if space.policy == "switch":
        pi0 = solution.level(0)
        v0 = vacation.exit_rates
        for j, (a, v, k) in enumerate(space.states(0)):
            skip_flow += pi0[j] * v0[k - space.m_quantum]

    return ClassMeasures(
        mean_jobs=mean_jobs,
        mean_response_time=resp,
        mean_jobs_waiting=mean_waiting,
        mean_jobs_in_service=mean_in_service,
        service_fraction=service_fraction,
        skip_probability_flow=skip_flow,
        throughput=throughput,
        utilization=utilization_num / c if c > 0 else 0.0,
        variance_jobs=var_jobs,
    )
