"""Gang scheduling for multiprogrammed parallel systems.

A full reproduction of *"An Analysis of Gang Scheduling for
Multiprogrammed Parallel Computing Environments"* (Squillante, Wang &
Papaefthymiou, SPAA 1996): the matrix-geometric queueing analysis of a
flexible gang scheduler, the substrates it stands on (phase-type
distributions, Markov-chain machinery, a general QBD solver), and a
discrete-event simulator of the same policy with time-/space-sharing
baselines.

Quick tour
----------
>>> from repro import ClassConfig, SystemConfig, GangSchedulingModel
>>> cfg = SystemConfig(processors=8, classes=(
...     ClassConfig.markovian(2, arrival_rate=0.4, service_rate=1.0,
...                           quantum_mean=2.0, overhead_mean=0.01),
...     ClassConfig.markovian(8, arrival_rate=0.4, service_rate=4.0,
...                           quantum_mean=2.0, overhead_mean=0.01),
... ))
>>> solved = GangSchedulingModel(cfg).solve()
>>> 0 < solved.mean_jobs(0) < 10
True

Subpackages
-----------
``repro.core``
    The paper's model: configuration, per-class QBD construction,
    heavy-traffic vacations, the fixed-point iteration, measures.
``repro.phasetype``
    Phase-type distributions: families, algebra, fitting, sampling.
``repro.markov``
    CTMC/DTMC machinery: GTH, uniformization, absorbing chains.
``repro.qbd``
    Matrix-geometric QBD solver (R/G matrices, drift test, boundary).
``repro.sim``
    Discrete-event simulation: the gang policy, the SP2-style lending
    variant, pure time-/space-sharing baselines, replication driver.
``repro.workloads``
    The paper's figure presets and generic parameter sweeps.
``repro.resilience``
    Production hardening: solver fallback chains with retry/budget
    guards, crash-safe sweep checkpointing, deterministic fault
    injection.
``repro.analysis``
    Result tables, shape checks, model-vs-simulation comparison.
"""

from repro.core import (
    ClassConfig,
    GangSchedulingModel,
    SolvedModel,
    SystemConfig,
)
from repro.errors import (
    CheckpointError,
    ConvergenceError,
    ReproError,
    SolverBudgetExceededError,
    UnstableSystemError,
    ValidationError,
)
from repro.phasetype import PhaseType, erlang, exponential, hyperexponential

__version__ = "1.0.0"

__all__ = [
    "ClassConfig",
    "SystemConfig",
    "GangSchedulingModel",
    "SolvedModel",
    "PhaseType",
    "exponential",
    "erlang",
    "hyperexponential",
    "ReproError",
    "ValidationError",
    "UnstableSystemError",
    "ConvergenceError",
    "SolverBudgetExceededError",
    "CheckpointError",
    "__version__",
]
