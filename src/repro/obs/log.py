"""Structured JSON-lines event log for the service.

Trace files (:mod:`repro.obs.trace`) answer "where did the time go";
this log answers "what happened, when, to which request".  Each event
is one JSON object per line:

* ``ts`` — wall-clock epoch seconds (for humans and log shippers);
* ``mono`` — monotonic seconds (orderable across restarts is *not*
  guaranteed, but within one process it never goes backwards);
* ``level`` — ``debug`` / ``info`` / ``warn`` / ``error``;
* ``event`` — dotted event name (``service.start``, ``worker.crash``,
  ``store.quarantine``, ``request.shed``, ...);
* ``pid`` — emitting process;
* ``request_id`` — present when the event fired inside a request
  scope (:func:`repro.obs.trace.request_scope`), linking log lines to
  the trace spans and the ``stats`` ring buffer for the same request;
* any extra keyword fields the call site passed.

The log rotates by size: when an event would push the file past
``max_bytes`` the file is renamed to ``<path>.1`` (existing backups
shift up, the oldest beyond ``backups`` is deleted) and a fresh file
is started.  Rotation is checked before each write so a single file
can exceed the limit by at most one event.

Like the metrics registry, the module keeps one process-global
instance behind :func:`configure`/:func:`shutdown`, and the
module-level :func:`emit` (plus ``debug/info/warn/error`` shorthands)
is a no-op costing one global load + one ``is None`` test while
unconfigured — the same disabled-path contract the overhead bench
enforces for spans and counters.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs.trace import current_request_id

__all__ = [
    "StructuredLog",
    "configure",
    "shutdown",
    "configured",
    "emit",
    "debug",
    "info",
    "warn",
    "error",
]

LEVELS = ("debug", "info", "warn", "error")


class StructuredLog:
    """Size-rotated JSON-lines event log (thread-safe)."""

    def __init__(self, path, *, max_bytes: int = 16 << 20,
                 backups: int = 3):
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self.backups = int(backups)
        self._lock = threading.Lock()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = self._fh.tell()

    def write(self, level: str, event: str, **fields) -> None:
        """Append one event; rotates first if the file is full."""
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        record = {"ts": time.time(), "mono": time.monotonic(),
                  "level": level, "event": event, "pid": os.getpid()}
        rid = current_request_id()
        if rid is not None:
            record["request_id"] = rid
        record.update(fields)
        line = json.dumps(record, default=str) + "\n"
        with self._lock:
            if self._fh is None:
                return
            if self._size and self._size + len(line) > self.max_bytes:
                self._rotate()
            self._fh.write(line)
            self._fh.flush()
            self._size += len(line)

    def _rotate(self) -> None:
        self._fh.close()
        oldest = self.path.with_name(self.path.name + f".{self.backups}")
        oldest.unlink(missing_ok=True)
        for i in range(self.backups - 1, 0, -1):
            src = self.path.with_name(self.path.name + f".{i}")
            if src.exists():
                os.replace(src, self.path.with_name(
                    self.path.name + f".{i + 1}"))
        if self.backups > 0:
            os.replace(self.path, self.path.with_name(self.path.name + ".1"))
        else:
            self.path.unlink(missing_ok=True)
        self._fh = open(self.path, "a", encoding="utf-8")
        self._size = 0

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


#: Process-global log, or ``None`` while unconfigured (the fast path).
_LOG: StructuredLog | None = None


def configure(path, *, max_bytes: int = 16 << 20,
              backups: int = 3) -> StructuredLog:
    """Open (replacing any previous) process-global structured log."""
    global _LOG
    if _LOG is not None:
        _LOG.close()
    _LOG = StructuredLog(path, max_bytes=max_bytes, backups=backups)
    return _LOG


def shutdown() -> None:
    """Close and detach the process-global log (idempotent)."""
    global _LOG
    if _LOG is not None:
        _LOG.close()
        _LOG = None


def configured() -> bool:
    """Whether a process-global log is currently attached."""
    return _LOG is not None


def emit(level: str, event: str, **fields) -> None:
    """Write one event to the global log; no-op while unconfigured."""
    log = _LOG
    if log is not None:
        log.write(level, event, **fields)


def debug(event: str, **fields) -> None:
    emit("debug", event, **fields)


def info(event: str, **fields) -> None:
    emit("info", event, **fields)


def warn(event: str, **fields) -> None:
    emit("warn", event, **fields)


def error(event: str, **fields) -> None:
    emit("error", event, **fields)
