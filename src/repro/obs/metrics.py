"""Process-global metrics registry: counters, gauges, histograms.

The solver stack is full of numbers that matter for understanding a
run but never reach the caller — R-solver iteration counts on the
*success* path, fallback attempts per method, cache hits and
evictions, GMRES iteration counts, dense-fallback boundary solves,
injected faults, checkpoint writes.  Instrumented call sites feed
them here through the module-level helpers (:func:`inc`,
:func:`observe`, :func:`set_gauge`), which are a single ``bool`` test
when collection is disabled — cheap enough to instrument every site
permanently.

Metric identity is ``name`` plus sorted ``key=value`` labels
(``"rsolve.iterations{method=logreduction}"``), Prometheus-style.
Three instrument kinds:

* **counter** — monotonically increasing float (:func:`inc`);
* **gauge** — last-written value (:func:`set_gauge`);
* **histogram** — running ``count/sum/min/max`` plus fixed log-spaced
  bucket counts (:data:`BUCKET_BOUNDS`), from which
  :func:`histogram_quantile` estimates latency percentiles
  (p50/p95/p99 in reports and the ``/metrics`` exposition).

:func:`snapshot` returns a plain-JSON dict (what
:func:`repro.obs.stop` embeds in the trace file as a ``"metrics"``
record, and what sweep workers emit per completed point);
:func:`merge_snapshots` folds many such records into one rollup for
the ``repro report`` subcommand.

The registry is thread-safe (one lock around every mutation) and
deliberately **not** shared across processes: parallel sweep workers
each reset, collect, and emit their own snapshot into their worker
trace file, and the report sums the records.

The canonical metric names live in the Observability section of
``docs/architecture.md``.
"""

from __future__ import annotations

import bisect
import threading

__all__ = [
    "BUCKET_BOUNDS",
    "MetricsRegistry",
    "REGISTRY",
    "enable",
    "disable",
    "enabled",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
    "reset",
    "merge_snapshots",
    "render_snapshot",
    "histogram_quantile",
    "metric_key",
]

#: Inclusive upper bounds of the fixed log-spaced histogram buckets:
#: half-decade spacing from 1e-6 to 1e3 (microseconds to ~17 minutes on
#: the latency scale every ``observe`` site uses).  Observations above
#: the last bound land in an implicit overflow bucket, so every
#: histogram carries ``len(BUCKET_BOUNDS) + 1`` counts.
BUCKET_BOUNDS: tuple[float, ...] = tuple(
    10.0 ** (e / 2.0) for e in range(-12, 7))


def metric_key(name: str, labels: dict | None) -> str:
    """Canonical series key: ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def _copy_hist(h: dict) -> dict:
    """Deep-enough copy of one histogram dict (buckets list included)."""
    out = dict(h)
    if "buckets" in out:
        out["buckets"] = list(out["buckets"])
    return out


class MetricsRegistry:
    """Thread-safe container of counters, gauges, and histograms."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    def inc(self, name: str, n: float = 1.0, **labels) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + n

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        value = float(value)
        with self._lock:
            h = self._histograms.get(key)
            if h is None:
                buckets = [0.0] * (len(BUCKET_BOUNDS) + 1)
                h = self._histograms[key] = {
                    "count": 0.0, "sum": 0.0, "min": value, "max": value,
                    "buckets": buckets}
            h["count"] += 1.0
            h["sum"] += value
            h["min"] = min(h["min"], value)
            h["max"] = max(h["max"], value)
            h["buckets"][bisect.bisect_left(BUCKET_BOUNDS, value)] += 1.0

    def snapshot(self) -> dict:
        """Plain-JSON view: ``{"counters": ..., "gauges": ...,
        "histograms": ...}`` (deep-copied; safe to mutate)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: _copy_hist(v)
                               for k, v in self._histograms.items()},
            }

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))


#: The process-global registry every instrumented site feeds.
REGISTRY = MetricsRegistry()

#: Collection switch.  The module-level helpers below test this first;
#: when ``False`` every instrumented site costs one call + one test.
_ENABLED = False


def enable() -> None:
    """Turn metric collection on (idempotent)."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    """Turn metric collection off (idempotent; data is kept)."""
    global _ENABLED
    _ENABLED = False


def enabled() -> bool:
    """Whether instrumented sites are currently recording."""
    return _ENABLED


def inc(name: str, n: float = 1.0, **labels) -> None:
    """Increment counter ``name`` (no-op while disabled)."""
    if _ENABLED:
        REGISTRY.inc(name, n, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    """Set gauge ``name`` (no-op while disabled)."""
    if _ENABLED:
        REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    """Record one histogram observation (no-op while disabled)."""
    if _ENABLED:
        REGISTRY.observe(name, value, **labels)


def snapshot() -> dict:
    """Snapshot of the global registry."""
    return REGISTRY.snapshot()


def reset() -> None:
    """Clear the global registry."""
    REGISTRY.reset()


def merge_snapshots(snapshots) -> dict:
    """Fold many snapshots into one rollup.

    Counters add, gauges keep the last value seen, histograms merge
    their ``count/sum/min/max`` and bucket counts.  Used by the trace
    report, where one file may carry the parent's close-time snapshot
    plus one record per completed worker point.  Colliding histogram
    keys whose bucket layouts disagree (one side bucket-less — a
    pre-bucket trace — or a different bound count) merge the summary
    fields and drop the buckets rather than mixing incompatible
    layouts.
    """
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    for snap in snapshots:
        for key, val in (snap.get("counters") or {}).items():
            out["counters"][key] = out["counters"].get(key, 0.0) + val
        for key, val in (snap.get("gauges") or {}).items():
            out["gauges"][key] = val
        for key, h in (snap.get("histograms") or {}).items():
            cur = out["histograms"].get(key)
            if cur is None:
                out["histograms"][key] = _copy_hist(h)
            else:
                cur["count"] += h["count"]
                cur["sum"] += h["sum"]
                cur["min"] = min(cur["min"], h["min"])
                cur["max"] = max(cur["max"], h["max"])
                a, b = cur.get("buckets"), h.get("buckets")
                if a is not None and b is not None and len(a) == len(b):
                    cur["buckets"] = [x + y for x, y in zip(a, b)]
                else:
                    cur.pop("buckets", None)
    return out


def histogram_quantile(hist: dict, q: float) -> float | None:
    """Estimate the ``q``-quantile of one histogram from its buckets.

    Delegates to :func:`repro.metrics.quantiles.bucket_quantile` — the
    Prometheus-style estimator of the repository-wide quantile
    contract: linear interpolation inside the bucket holding the
    target rank, clamped into the exact observed ``[min, max]`` so a
    single-observation histogram reports the observation itself.
    Returns ``None`` for empty or bucket-less (legacy) histograms.
    """
    from repro.metrics.quantiles import bucket_quantile
    buckets = hist.get("buckets")
    if not buckets:
        return None
    return bucket_quantile(buckets, BUCKET_BOUNDS, q,
                           count=float(hist.get("count") or 0.0),
                           lo=float(hist["min"]), hi=float(hist["max"]))


def render_snapshot(snap: dict, *, indent: str = "") -> str:
    """Human-readable text rendering of a snapshot (CLI ``--metrics``)."""
    lines: list[str] = []
    counters = snap.get("counters") or {}
    gauges = snap.get("gauges") or {}
    hists = snap.get("histograms") or {}
    if counters:
        lines.append(f"{indent}counters:")
        for key in sorted(counters):
            lines.append(f"{indent}  {key} = {counters[key]:g}")
    if gauges:
        lines.append(f"{indent}gauges:")
        for key in sorted(gauges):
            lines.append(f"{indent}  {key} = {gauges[key]:g}")
    if hists:
        lines.append(f"{indent}histograms:")
        for key in sorted(hists):
            h = hists[key]
            mean = h["sum"] / h["count"] if h["count"] else 0.0
            line = (f"{indent}  {key}: count={h['count']:g} mean={mean:g} "
                    f"min={h['min']:g} max={h['max']:g}")
            p50 = histogram_quantile(h, 0.50)
            if p50 is not None:
                line += (f" p50={p50:g}"
                         f" p95={histogram_quantile(h, 0.95):g}"
                         f" p99={histogram_quantile(h, 0.99):g}")
            lines.append(line)
    if not lines:
        lines.append(f"{indent}(no metrics recorded)")
    return "\n".join(lines)
