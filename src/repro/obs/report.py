"""Summarize a trace file into a human-readable run report.

``repro report out.jsonl`` (and :func:`summarize_trace` behind it)
reduces the raw event stream written by :mod:`repro.obs.trace` to:

* a **per-class, per-stage table** of wall-clock seconds — every
  ``stage.*`` span grouped by its ``klass`` attribute (spans with no
  class, e.g. ``recombine``, land in the ``-`` column).  The stage
  totals reproduce ``FixedPointResult.timings`` because both are fed
  from the same clock window;
* **span rollups** — count / total wall / total CPU per span name
  (``sweep.point``, ``fixed_point``...);
* a **metrics rollup** — every ``"metrics"`` record in the file
  (the close-time snapshot plus one per parallel-sweep worker point)
  merged with :func:`repro.obs.metrics.merge_snapshots`: cache
  hits/misses/evictions, backend decisions, fallback attempts,
  R-solve iterations, GMRES iterations, dense boundary fallbacks,
  fault injections, checkpoint writes;
* a **per-request rollup** — spans tagged with a service request ID
  (``"req"``; see :func:`repro.obs.trace.request_scope`) grouped per
  request with span counts, wall time, and the set of pids that worked
  on it, rendered by ``repro report --requests``;
* a **profile rollup** — ``"profile"`` records written by
  ``serve --profile-workers`` summed by function into a top-N hotspot
  table.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import merge_snapshots, render_snapshot

__all__ = ["TraceSummary", "load_trace", "summarize_trace",
           "render_report", "render_requests"]

#: Prefix of the spans that form the per-class/per-stage table.
STAGE_PREFIX = "stage."


@dataclass
class TraceSummary:
    """Aggregated view of one trace file."""

    path: str
    events: int = 0
    #: Distinct pids that wrote into the file (1 + worker count).
    pids: set = field(default_factory=set)
    #: ``(stage, klass)`` -> accumulated wall seconds; ``klass`` is the
    #: span's ``klass`` attribute or ``None``.
    stage_seconds: dict = field(default_factory=dict)
    #: ``(stage, klass)`` -> span count.
    stage_counts: dict = field(default_factory=dict)
    #: span name -> ``{"count": n, "wall": s, "cpu": s}`` (all spans,
    #: including the stage ones).
    spans: dict = field(default_factory=dict)
    #: Merged metrics rollup (see :func:`repro.obs.metrics.merge_snapshots`).
    metrics: dict = field(default_factory=dict)
    #: ``B`` events with no matching ``E`` (crash mid-span).
    unclosed: int = 0
    #: request id -> ``{"spans", "wall", "pids", "first_ts", "last_ts",
    #: "names"}`` for spans tagged with a service request ID.
    requests: dict = field(default_factory=dict)
    #: ``"file:line:function"`` -> summed ``{"calls", "tottime",
    #: "cumtime"}`` from ``"profile"`` records (``--profile-workers``).
    profile: dict = field(default_factory=dict)

    @property
    def stages(self) -> list[str]:
        """Stage names in first-seen order."""
        seen: list[str] = []
        for stage, _ in self.stage_seconds:
            if stage not in seen:
                seen.append(stage)
        return seen

    @property
    def classes(self) -> list:
        """Class labels in sorted order (``None`` last)."""
        ks = {k for _, k in self.stage_seconds}
        return sorted((k for k in ks if k is not None),
                      key=lambda k: (not isinstance(k, int), k)) \
            + ([None] if None in ks else [])

    def stage_total(self, stage: str) -> float:
        """Total wall seconds of one stage across every class."""
        return sum(v for (s, _), v in self.stage_seconds.items()
                   if s == stage)

    def stage_totals(self) -> dict[str, float]:
        """``stage -> total wall seconds`` — comparable to
        ``FixedPointResult.timings``."""
        return {stage: self.stage_total(stage) for stage in self.stages}


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a trace JSONL file into a list of event dicts.

    A corrupt *trailing* line (the writer was killed mid-write — the
    same torn tail the result store repairs) is silently dropped;
    corruption anywhere else is skipped with a ``UserWarning`` naming
    the line, so a partially damaged trace still reports rather than
    refusing outright.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break               # torn tail: expected after a crash
            warnings.warn(
                f"corrupt trace {path}: skipping unparseable line {i + 1}",
                stacklevel=2)
    return events


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Aggregate one trace file into a :class:`TraceSummary`."""
    events = load_trace(path)
    summary = TraceSummary(path=os.fspath(path), events=len(events))
    snapshots: list[dict] = []
    open_spans: dict[tuple, dict] = {}
    for ev in events:
        kind = ev.get("kind")
        if "pid" in ev:
            summary.pids.add(ev["pid"])
        if kind == "B":
            open_spans[(ev.get("pid"), ev.get("sid"))] = ev
        elif kind == "E":
            begun = open_spans.pop((ev.get("pid"), ev.get("sid")), None)
            name = ev.get("name", "?")
            wall = float(ev.get("wall", 0.0))
            cpu = float(ev.get("cpu", 0.0))
            agg = summary.spans.setdefault(
                name, {"count": 0, "wall": 0.0, "cpu": 0.0})
            agg["count"] += 1
            agg["wall"] += wall
            agg["cpu"] += cpu
            rid = ev.get("req") or (begun or {}).get("req")
            if rid is not None:
                req = summary.requests.setdefault(
                    rid, {"spans": 0, "wall": 0.0, "pids": set(),
                          "first_ts": None, "last_ts": None, "names": {}})
                req["spans"] += 1
                req["wall"] += wall
                if "pid" in ev:
                    req["pids"].add(ev["pid"])
                ts_b = float(begun["ts"]) if begun else float(ev["ts"]) - wall
                ts_e = float(ev["ts"])
                req["first_ts"] = (ts_b if req["first_ts"] is None
                                   else min(req["first_ts"], ts_b))
                req["last_ts"] = (ts_e if req["last_ts"] is None
                                  else max(req["last_ts"], ts_e))
                req["names"][name] = req["names"].get(name, 0) + 1
            if name.startswith(STAGE_PREFIX):
                stage = name[len(STAGE_PREFIX):]
                klass = (ev.get("attrs") or {}).get("klass")
                key = (stage, klass)
                summary.stage_seconds[key] = (
                    summary.stage_seconds.get(key, 0.0) + wall)
                summary.stage_counts[key] = (
                    summary.stage_counts.get(key, 0) + 1)
        elif kind == "metrics":
            snapshots.append(ev)
        elif kind == "profile":
            for hot in ev.get("hotspots") or []:
                func = hot.get("func", "?")
                agg = summary.profile.setdefault(
                    func, {"calls": 0, "tottime": 0.0, "cumtime": 0.0})
                agg["calls"] += int(hot.get("calls") or 0)
                agg["tottime"] += float(hot.get("tottime") or 0.0)
                agg["cumtime"] += float(hot.get("cumtime") or 0.0)
    summary.unclosed = len(open_spans)
    summary.metrics = merge_snapshots(snapshots)
    return summary


def _rollup_section(summary: TraceSummary, title: str,
                    prefixes: tuple[str, ...]) -> list[str]:
    """Render the metric series matching ``prefixes`` under a heading."""
    snap = summary.metrics
    sub = {
        "counters": {k: v for k, v in (snap.get("counters") or {}).items()
                     if k.startswith(prefixes)},
        "gauges": {k: v for k, v in (snap.get("gauges") or {}).items()
                   if k.startswith(prefixes)},
        "histograms": {k: v
                       for k, v in (snap.get("histograms") or {}).items()
                       if k.startswith(prefixes)},
    }
    if not (sub["counters"] or sub["gauges"] or sub["histograms"]):
        return []
    return [f"{title}:", render_snapshot(sub, indent="  "), ""]


def _continuation_lines(summary: TraceSummary) -> list[str]:
    """Derived continuation hit rate of batched sweeps.

    The batched sweep engine counts every solved point as
    ``sweep.points{start=warm}`` (continuation-seeded from a sweep
    neighbor) or ``{start=cold}``; the hit rate is the fraction of
    points the continuation actually reached.
    """
    counters = summary.metrics.get("counters") or {}
    warm = float(counters.get("sweep.points{start=warm}", 0.0))
    cold = float(counters.get("sweep.points{start=cold}", 0.0))
    total = warm + cold
    if total <= 0:
        return []
    return [f"continuation: warm={warm:g} cold={cold:g} "
            f"hit rate {100.0 * warm / total:.1f}%", ""]


def render_requests(summary: TraceSummary) -> str:
    """Per-request table of ``repro report --requests``.

    One row per service request ID found in the trace: elapsed
    wall-clock between its first span begin and last span end, summed
    span wall time, span count, and the pids that worked on it — the
    end-to-end view of one daemon request across its spawn workers.
    """
    if not summary.requests:
        return "(no request-tagged spans in trace)\n"
    lines = [f"{'request':<24}{'elapsed_s':>10}{'span_s':>10}"
             f"{'spans':>7}{'pids':>6}  processes"]
    lines.append("-" * len(lines[0]))

    def order(item):
        req = item[1]
        return req["first_ts"] if req["first_ts"] is not None else 0.0

    for rid, req in sorted(summary.requests.items(), key=order):
        elapsed = ((req["last_ts"] - req["first_ts"])
                   if req["first_ts"] is not None else 0.0)
        pids = ",".join(str(p) for p in sorted(req["pids"]))
        lines.append(f"{rid:<24}{elapsed:>10.4f}{req['wall']:>10.4f}"
                     f"{req['spans']:>7}{len(req['pids']):>6}  {pids}")
    return "\n".join(lines) + "\n"


def _profile_lines(summary: TraceSummary, top: int = 15) -> list[str]:
    if not summary.profile:
        return []
    lines = ["worker profile hotspots (by tottime):",
             f"  {'tottime_s':>10}{'cumtime_s':>10}{'calls':>9}  function"]
    ranked = sorted(summary.profile.items(),
                    key=lambda kv: kv[1]["tottime"], reverse=True)
    for func, agg in ranked[:top]:
        lines.append(f"  {agg['tottime']:>10.4f}{agg['cumtime']:>10.4f}"
                     f"{agg['calls']:>9}  {func}")
    if len(ranked) > top:
        lines.append(f"  ... {len(ranked) - top} more function(s)")
    lines.append("")
    return lines


def render_report(summary: TraceSummary) -> str:
    """The full text report of ``repro report``."""
    lines = [f"trace: {summary.path}",
             f"  {summary.events} event(s) from {len(summary.pids)} "
             f"process(es)"
             + (f", {summary.unclosed} unclosed span(s)"
                if summary.unclosed else ""),
             ""]

    classes = summary.classes
    stages = summary.stages
    if stages:
        width = 12
        headers = ["stage"] + [
            ("-" if k is None else f"class{k}") for k in classes] + ["total"]
        lines.append("per-class, per-stage wall seconds:")
        lines.append("".join(f"{h:>{width}}" for h in headers))
        lines.append("-" * (width * len(headers)))
        for stage in stages:
            row = [stage]
            for k in classes:
                v = summary.stage_seconds.get((stage, k))
                row.append("" if v is None else f"{v:.4f}")
            row.append(f"{summary.stage_total(stage):.4f}")
            lines.append("".join(f"{c:>{width}}" for c in row))
        total = sum(summary.stage_total(stage) for stage in stages)
        lines.append("".join(
            f"{c:>{width}}"
            for c in ["total"] + [""] * len(classes) + [f"{total:.4f}"]))
        lines.append("")

    other = {n: agg for n, agg in summary.spans.items()
             if not n.startswith(STAGE_PREFIX)}
    if other:
        lines.append("spans:")
        for name in sorted(other):
            agg = other[name]
            lines.append(f"  {name}: count={agg['count']} "
                         f"wall={agg['wall']:.4f}s cpu={agg['cpu']:.4f}s")
        lines.append("")

    if summary.requests:
        lines.append(f"requests: {len(summary.requests)} traced "
                     "(see `repro report --requests` for the table)")
        lines.append("")
    lines += _profile_lines(summary)
    lines += _rollup_section(summary, "cache", ("cache.",))
    lines += _rollup_section(summary, "backend", ("backend.",))
    lines += _rollup_section(
        summary, "solver", ("rsolve.", "fallback.", "gmres.", "boundary.",
                            "fixed_point."))
    lines += _rollup_section(
        summary, "resilience", ("faults.", "checkpoint.", "sweep."))
    lines += _continuation_lines(summary)
    remaining_prefixes = ("cache.", "backend.", "rsolve.", "fallback.",
                          "gmres.", "boundary.", "fixed_point.", "faults.",
                          "checkpoint.", "sweep.")
    snap = summary.metrics
    leftovers = {
        "counters": {k: v for k, v in (snap.get("counters") or {}).items()
                     if not k.startswith(remaining_prefixes)},
        "gauges": {k: v for k, v in (snap.get("gauges") or {}).items()
                   if not k.startswith(remaining_prefixes)},
        "histograms": {k: v for k, v in (snap.get("histograms") or {}).items()
                       if not k.startswith(remaining_prefixes)},
    }
    if leftovers["counters"] or leftovers["gauges"] or leftovers["histograms"]:
        lines.append("other metrics:")
        lines.append(render_snapshot(leftovers, indent="  "))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
