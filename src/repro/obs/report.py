"""Summarize a trace file into a human-readable run report.

``repro report out.jsonl`` (and :func:`summarize_trace` behind it)
reduces the raw event stream written by :mod:`repro.obs.trace` to:

* a **per-class, per-stage table** of wall-clock seconds — every
  ``stage.*`` span grouped by its ``klass`` attribute (spans with no
  class, e.g. ``recombine``, land in the ``-`` column).  The stage
  totals reproduce ``FixedPointResult.timings`` because both are fed
  from the same clock window;
* **span rollups** — count / total wall / total CPU per span name
  (``sweep.point``, ``fixed_point``...);
* a **metrics rollup** — every ``"metrics"`` record in the file
  (the close-time snapshot plus one per parallel-sweep worker point)
  merged with :func:`repro.obs.metrics.merge_snapshots`: cache
  hits/misses/evictions, backend decisions, fallback attempts,
  R-solve iterations, GMRES iterations, dense boundary fallbacks,
  fault injections, checkpoint writes.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import merge_snapshots, render_snapshot

__all__ = ["TraceSummary", "load_trace", "summarize_trace",
           "render_report"]

#: Prefix of the spans that form the per-class/per-stage table.
STAGE_PREFIX = "stage."


@dataclass
class TraceSummary:
    """Aggregated view of one trace file."""

    path: str
    events: int = 0
    #: Distinct pids that wrote into the file (1 + worker count).
    pids: set = field(default_factory=set)
    #: ``(stage, klass)`` -> accumulated wall seconds; ``klass`` is the
    #: span's ``klass`` attribute or ``None``.
    stage_seconds: dict = field(default_factory=dict)
    #: ``(stage, klass)`` -> span count.
    stage_counts: dict = field(default_factory=dict)
    #: span name -> ``{"count": n, "wall": s, "cpu": s}`` (all spans,
    #: including the stage ones).
    spans: dict = field(default_factory=dict)
    #: Merged metrics rollup (see :func:`repro.obs.metrics.merge_snapshots`).
    metrics: dict = field(default_factory=dict)
    #: ``B`` events with no matching ``E`` (crash mid-span).
    unclosed: int = 0

    @property
    def stages(self) -> list[str]:
        """Stage names in first-seen order."""
        seen: list[str] = []
        for stage, _ in self.stage_seconds:
            if stage not in seen:
                seen.append(stage)
        return seen

    @property
    def classes(self) -> list:
        """Class labels in sorted order (``None`` last)."""
        ks = {k for _, k in self.stage_seconds}
        return sorted((k for k in ks if k is not None),
                      key=lambda k: (not isinstance(k, int), k)) \
            + ([None] if None in ks else [])

    def stage_total(self, stage: str) -> float:
        """Total wall seconds of one stage across every class."""
        return sum(v for (s, _), v in self.stage_seconds.items()
                   if s == stage)

    def stage_totals(self) -> dict[str, float]:
        """``stage -> total wall seconds`` — comparable to
        ``FixedPointResult.timings``."""
        return {stage: self.stage_total(stage) for stage in self.stages}


def load_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a trace JSONL file into a list of event dicts.

    A corrupt *trailing* line (crash mid-write) is dropped; corruption
    anywhere else raises ``ValueError``.
    """
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    events: list[dict] = []
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise ValueError(
                f"corrupt trace {path}: unparseable line {i + 1}") from None
    return events


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Aggregate one trace file into a :class:`TraceSummary`."""
    events = load_trace(path)
    summary = TraceSummary(path=os.fspath(path), events=len(events))
    snapshots: list[dict] = []
    open_spans: dict[tuple, dict] = {}
    for ev in events:
        kind = ev.get("kind")
        if "pid" in ev:
            summary.pids.add(ev["pid"])
        if kind == "B":
            open_spans[(ev.get("pid"), ev.get("sid"))] = ev
        elif kind == "E":
            open_spans.pop((ev.get("pid"), ev.get("sid")), None)
            name = ev.get("name", "?")
            wall = float(ev.get("wall", 0.0))
            cpu = float(ev.get("cpu", 0.0))
            agg = summary.spans.setdefault(
                name, {"count": 0, "wall": 0.0, "cpu": 0.0})
            agg["count"] += 1
            agg["wall"] += wall
            agg["cpu"] += cpu
            if name.startswith(STAGE_PREFIX):
                stage = name[len(STAGE_PREFIX):]
                klass = (ev.get("attrs") or {}).get("klass")
                key = (stage, klass)
                summary.stage_seconds[key] = (
                    summary.stage_seconds.get(key, 0.0) + wall)
                summary.stage_counts[key] = (
                    summary.stage_counts.get(key, 0) + 1)
        elif kind == "metrics":
            snapshots.append(ev)
    summary.unclosed = len(open_spans)
    summary.metrics = merge_snapshots(snapshots)
    return summary


def _rollup_section(summary: TraceSummary, title: str,
                    prefixes: tuple[str, ...]) -> list[str]:
    """Render the metric series matching ``prefixes`` under a heading."""
    snap = summary.metrics
    sub = {
        "counters": {k: v for k, v in (snap.get("counters") or {}).items()
                     if k.startswith(prefixes)},
        "gauges": {k: v for k, v in (snap.get("gauges") or {}).items()
                   if k.startswith(prefixes)},
        "histograms": {k: v
                       for k, v in (snap.get("histograms") or {}).items()
                       if k.startswith(prefixes)},
    }
    if not (sub["counters"] or sub["gauges"] or sub["histograms"]):
        return []
    return [f"{title}:", render_snapshot(sub, indent="  "), ""]


def _continuation_lines(summary: TraceSummary) -> list[str]:
    """Derived continuation hit rate of batched sweeps.

    The batched sweep engine counts every solved point as
    ``sweep.points{start=warm}`` (continuation-seeded from a sweep
    neighbor) or ``{start=cold}``; the hit rate is the fraction of
    points the continuation actually reached.
    """
    counters = summary.metrics.get("counters") or {}
    warm = float(counters.get("sweep.points{start=warm}", 0.0))
    cold = float(counters.get("sweep.points{start=cold}", 0.0))
    total = warm + cold
    if total <= 0:
        return []
    return [f"continuation: warm={warm:g} cold={cold:g} "
            f"hit rate {100.0 * warm / total:.1f}%", ""]


def render_report(summary: TraceSummary) -> str:
    """The full text report of ``repro report``."""
    lines = [f"trace: {summary.path}",
             f"  {summary.events} event(s) from {len(summary.pids)} "
             f"process(es)"
             + (f", {summary.unclosed} unclosed span(s)"
                if summary.unclosed else ""),
             ""]

    classes = summary.classes
    stages = summary.stages
    if stages:
        width = 12
        headers = ["stage"] + [
            ("-" if k is None else f"class{k}") for k in classes] + ["total"]
        lines.append("per-class, per-stage wall seconds:")
        lines.append("".join(f"{h:>{width}}" for h in headers))
        lines.append("-" * (width * len(headers)))
        for stage in stages:
            row = [stage]
            for k in classes:
                v = summary.stage_seconds.get((stage, k))
                row.append("" if v is None else f"{v:.4f}")
            row.append(f"{summary.stage_total(stage):.4f}")
            lines.append("".join(f"{c:>{width}}" for c in row))
        total = sum(summary.stage_total(stage) for stage in stages)
        lines.append("".join(
            f"{c:>{width}}"
            for c in ["total"] + [""] * len(classes) + [f"{total:.4f}"]))
        lines.append("")

    other = {n: agg for n, agg in summary.spans.items()
             if not n.startswith(STAGE_PREFIX)}
    if other:
        lines.append("spans:")
        for name in sorted(other):
            agg = other[name]
            lines.append(f"  {name}: count={agg['count']} "
                         f"wall={agg['wall']:.4f}s cpu={agg['cpu']:.4f}s")
        lines.append("")

    lines += _rollup_section(summary, "cache", ("cache.",))
    lines += _rollup_section(summary, "backend", ("backend.",))
    lines += _rollup_section(
        summary, "solver", ("rsolve.", "fallback.", "gmres.", "boundary.",
                            "fixed_point."))
    lines += _rollup_section(
        summary, "resilience", ("faults.", "checkpoint.", "sweep."))
    lines += _continuation_lines(summary)
    remaining_prefixes = ("cache.", "backend.", "rsolve.", "fallback.",
                          "gmres.", "boundary.", "fixed_point.", "faults.",
                          "checkpoint.", "sweep.")
    snap = summary.metrics
    leftovers = {
        "counters": {k: v for k, v in (snap.get("counters") or {}).items()
                     if not k.startswith(remaining_prefixes)},
        "gauges": {k: v for k, v in (snap.get("gauges") or {}).items()
                   if not k.startswith(remaining_prefixes)},
        "histograms": {k: v for k, v in (snap.get("histograms") or {}).items()
                       if not k.startswith(remaining_prefixes)},
    }
    if leftovers["counters"] or leftovers["gauges"] or leftovers["histograms"]:
        lines.append("other metrics:")
        lines.append(render_snapshot(leftovers, indent="  "))
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"
