"""Chrome trace-event export: ``repro report FILE --chrome out.json``.

Converts a JSONL trace (:mod:`repro.obs.trace`) into the Chrome
trace-event JSON format understood by Perfetto (ui.perfetto.dev),
speedscope, and ``chrome://tracing``:

* each balanced ``B``/``E`` pair becomes one ``"X"`` (complete) event
  with microsecond ``ts``/``dur``; span attributes, the ``wall``/``cpu``
  seconds, and the request ID travel in ``args``;
* an unclosed ``B`` (crashed worker) becomes an ``"i"`` (instant)
  event so the kill point is visible on the timeline;
* trace headers become ``"M"`` ``process_name`` metadata records, so
  the daemon and each spawn worker show up as named process tracks.

Timestamps are ``time.monotonic()`` seconds rebased to the earliest
event in the file.  On Linux the monotonic clock is system-wide, so
daemon and worker spans from one merged trace line up on a common
axis — which is the whole point: one service request renders as one
end-to-end timeline across pids, grouped by its shared request ID.
"""

from __future__ import annotations

import json
import os

from repro.obs.report import load_trace

__all__ = ["chrome_trace", "write_chrome_trace"]


def chrome_trace(events) -> dict:
    """Build a Chrome trace-event document from parsed trace records."""
    events = list(events)
    t0 = min((e["ts"] for e in events if "ts" in e), default=0.0)

    def us(ts: float) -> float:
        return (ts - t0) * 1e6

    out: list[dict] = []
    open_b: dict[tuple, dict] = {}
    for e in events:
        kind = e.get("kind")
        if kind == "trace-header":
            out.append({
                "ph": "M", "name": "process_name", "pid": e.get("pid", 0),
                "tid": 0, "args": {"name": f"pid {e.get('pid', 0)}"}})
        elif kind == "B":
            open_b[(e.get("pid"), e.get("sid"))] = e
        elif kind == "E":
            b = open_b.pop((e.get("pid"), e.get("sid")), None)
            if b is None:
                continue            # E without B: clock-skewed merge tail
            wall = float(e.get("wall") or 0.0)
            args = dict(b.get("attrs") or {})
            args.update(e.get("attrs") or {})
            args["wall_s"] = wall
            if "cpu" in e:
                args["cpu_s"] = e["cpu"]
            req = e.get("req") or b.get("req")
            if req is not None:
                args["request_id"] = req
            out.append({
                "ph": "X", "name": e.get("name", "?"),
                "cat": "req:" + str(req) if req is not None else "span",
                "pid": e.get("pid", 0), "tid": e.get("tid", 0),
                "ts": us(float(b["ts"])), "dur": wall * 1e6,
                "args": args})
        # metrics / profile / unknown records carry no timeline geometry
    for (pid, _sid), b in open_b.items():
        args = dict(b.get("attrs") or {})
        if b.get("req") is not None:
            args["request_id"] = b["req"]
        args["note"] = "span never closed (crashed writer?)"
        out.append({
            "ph": "i", "s": "p", "name": b.get("name", "?") + " (unclosed)",
            "cat": "unclosed", "pid": pid, "tid": b.get("tid", 0),
            "ts": us(float(b["ts"])), "args": args})
    out.sort(key=lambda e: e.get("ts", 0.0))
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace_path: str | os.PathLike,
                       out_path: str | os.PathLike) -> int:
    """Convert a JSONL trace file; returns the trace-event count."""
    doc = chrome_trace(load_trace(trace_path))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh)
        fh.write("\n")
    return len(doc["traceEvents"])
