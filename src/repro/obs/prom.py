"""Prometheus text exposition of a metrics snapshot.

:func:`render_exposition` turns the plain-JSON snapshot of
:mod:`repro.obs.metrics` into the Prometheus text format (version
0.0.4) served by the daemon's ``GET /metrics`` endpoint:

* series keys (``service.requests{status=ok}``) are split back into a
  metric name and labels; names are sanitized into the Prometheus
  alphabet (``service_requests``) and label values escaped per the
  spec (backslash, double-quote, newline);
* counters gain the conventional ``_total`` suffix;
* histograms render as cumulative ``_bucket{le="..."}`` series (one
  per :data:`~repro.obs.metrics.BUCKET_BOUNDS` bound plus ``+Inf``)
  with ``_sum`` and ``_count``, and the registry's exact ``min``/``max``
  ride along as two gauge families — a scrape loses nothing the
  snapshot had;
* every family gets one ``# TYPE`` line, families and samples are
  emitted in sorted order, so the output is byte-stable for a given
  snapshot.

:func:`parse_exposition` is the matching strict parser — the tests
round-trip ``render → parse → compare`` through it, and the CI smoke
job validates the live daemon's ``/metrics`` body with it.  Both ends
are stdlib-only.

Metric names may not round-trip (sanitization is lossy: ``a.b`` and
``a_b`` collide); values and label sets do.  Label *values* containing
commas are refused by :func:`split_series_key` rather than silently
mis-split — the registry's call sites use simple scalar labels.
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import BUCKET_BOUNDS

__all__ = [
    "CONTENT_TYPE",
    "split_series_key",
    "sanitize_name",
    "escape_label_value",
    "render_exposition",
    "parse_exposition",
]

#: The Content-Type a Prometheus scraper expects for this format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def split_series_key(key: str) -> tuple[str, dict]:
    """Split a registry series key back into ``(name, labels)``.

    The inverse of :func:`repro.obs.metrics.metric_key` for the label
    shapes the instrumented sites actually produce.  A label value
    containing ``,`` or ``=`` would be ambiguous in the key encoding
    and raises ``ValueError``.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict = {}
    for part in inner[:-1].split(","):
        k, eq, v = part.partition("=")
        if not eq or "=" in v:
            raise ValueError(f"unsplittable series key {key!r}")
        labels[k] = v
    return name, labels


def sanitize_name(name: str) -> str:
    """Map a registry metric name into the Prometheus name alphabet."""
    out = _NAME_BAD_CHARS.sub("_", name)
    if not out or not _NAME_OK.match(out):
        out = "_" + out
    return out


def escape_label_value(value: str) -> str:
    """Escape a label value per the text-format spec."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _fmt_value(v: float) -> str:
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    return format(float(v), "g")


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(str(labels[k]))}"'
                     for k in sorted(labels))
    return "{" + inner + "}"


def _family(out: dict, name: str, kind: str):
    fam = out.setdefault(name, {"type": kind, "samples": []})
    if fam["type"] != kind:
        raise ValueError(
            f"metric family {name!r} rendered as both {fam['type']} "
            f"and {kind} — colliding sanitized names")
    return fam


def render_exposition(snap: dict, *, prefix: str = "repro_") -> str:
    """Render one metrics snapshot as Prometheus exposition text."""
    families: dict[str, dict] = {}
    for key, val in (snap.get("counters") or {}).items():
        name, labels = split_series_key(key)
        fam = _family(families, prefix + sanitize_name(name) + "_total",
                      "counter")
        fam["samples"].append(("", labels, float(val)))
    for key, val in (snap.get("gauges") or {}).items():
        name, labels = split_series_key(key)
        fam = _family(families, prefix + sanitize_name(name), "gauge")
        fam["samples"].append(("", labels, float(val)))
    for key, h in (snap.get("histograms") or {}).items():
        name, labels = split_series_key(key)
        base = prefix + sanitize_name(name)
        buckets = h.get("buckets")
        if buckets is not None:
            fam = _family(families, base, "histogram")
            cum = 0.0
            for i, n in enumerate(buckets):
                cum += n
                bound = (BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS)
                         else float("inf"))
                fam["samples"].append(
                    ("_bucket", {**labels, "le": _fmt_value(bound)}, cum))
            fam["samples"].append(("_sum", labels, float(h["sum"])))
            fam["samples"].append(("_count", labels, float(h["count"])))
        else:                   # legacy count/sum/min/max-only histogram
            fam = _family(families, base + "_sum", "gauge")
            fam["samples"].append(("", labels, float(h["sum"])))
            fam = _family(families, base + "_count", "gauge")
            fam["samples"].append(("", labels, float(h["count"])))
        for stat in ("min", "max"):
            fam = _family(families, f"{base}_{stat}", "gauge")
            fam["samples"].append(("", labels, float(h[stat])))

    lines: list[str] = []
    for name in sorted(families):
        fam = families[name]
        lines.append(f"# TYPE {name} {fam['type']}")
        for suffix, labels, value in fam["samples"]:
            lines.append(
                f"{name}{suffix}{_fmt_labels(labels)} {_fmt_value(value)}")
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# The strict parser the tests (and the CI smoke job) validate with.

def _parse_label_block(block: str, line: str) -> dict:
    """Parse the inside of a ``{...}`` label block, honoring escapes."""
    labels: dict = {}
    i = 0
    while i < len(block):
        eq = block.find("=", i)
        if eq < 0 or eq + 1 >= len(block) or block[eq + 1] != '"':
            raise ValueError(f"malformed labels in line {line!r}")
        key = block[i:eq]
        if not _NAME_OK.match(key):
            raise ValueError(f"bad label name {key!r} in line {line!r}")
        i = eq + 2
        chars: list[str] = []
        while i < len(block) and block[i] != '"':
            c = block[i]
            if c == "\\":
                if i + 1 >= len(block):
                    raise ValueError(f"dangling escape in line {line!r}")
                nxt = block[i + 1]
                chars.append({"n": "\n", "\\": "\\", '"': '"'}.get(nxt, nxt))
                i += 2
            else:
                chars.append(c)
                i += 1
        if i >= len(block):
            raise ValueError(f"unterminated label value in line {line!r}")
        labels[key] = "".join(chars)
        i += 1                              # the closing quote
        if i < len(block):
            if block[i] != ",":
                raise ValueError(f"malformed labels in line {line!r}")
            i += 1
    return labels


def _find_label_end(line: str, start: int) -> int:
    """Index of the ``}`` closing the label block opened at ``start``."""
    i = start + 1
    in_quotes = False
    while i < len(line):
        c = line[i]
        if in_quotes:
            if c == "\\":
                i += 1
            elif c == '"':
                in_quotes = False
        elif c == '"':
            in_quotes = True
        elif c == "}":
            return i
        i += 1
    raise ValueError(f"unterminated label block in line {line!r}")


def parse_exposition(text: str) -> dict:
    """Parse Prometheus exposition text into families.

    Returns ``{family_name: {"type": ..., "samples":
    [(sample_name, labels, value), ...]}}`` where ``sample_name``
    includes any ``_bucket``/``_sum``/``_count`` suffix.  Raises
    ``ValueError`` on any malformed line — this is the validation the
    tests and the CI smoke job rely on, not a lenient scraper.
    """
    families: dict[str, dict] = {}
    last_typed: str | None = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    raise ValueError(f"malformed TYPE line {raw!r}")
                _, _, name, kind = parts
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    raise ValueError(f"unknown metric type in {raw!r}")
                if name in families:
                    raise ValueError(f"duplicate TYPE for {name!r}")
                families[name] = {"type": kind, "samples": []}
                last_typed = name
            continue                        # HELP / comments
        brace = line.find("{")
        if brace >= 0:
            end = _find_label_end(line, brace)
            sample_name = line[:brace]
            labels = _parse_label_block(line[brace + 1:end], raw)
            rest = line[end + 1:].split()
        else:
            fields = line.split()
            sample_name, labels, rest = fields[0], {}, fields[1:]
        if not rest:
            raise ValueError(f"sample without a value: {raw!r}")
        if not _NAME_OK.match(sample_name):
            raise ValueError(f"bad metric name in line {raw!r}")
        value = float(rest[0])              # accepts +Inf/-Inf/NaN
        family = None
        if last_typed is not None and sample_name.startswith(last_typed):
            family = last_typed
        if family is None:
            family = sample_name
            families.setdefault(family, {"type": "untyped", "samples": []})
        families[family]["samples"].append((sample_name, labels, value))
    return families
