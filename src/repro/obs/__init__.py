"""Unified observability: structured tracing, metrics, run reports.

Zero-dependency (stdlib-only) substrate shared by every solver layer:

``repro.obs.trace``
    Span-based tracing — nested, attributed intervals emitted as
    balanced begin/end JSONL events through one process-global,
    thread-safe collector; worker processes write sibling files merged
    on join.  Also home of :class:`~repro.obs.trace.StageTimings`, the
    accumulator behind ``FixedPointResult.timings``.
``repro.obs.metrics``
    A registry of counters, gauges, and histograms fed by instrumented
    sites across the pipeline (R-solve iterations, cache hits,
    fallback attempts, GMRES iterations, dense boundary fallbacks,
    fault injections, checkpoint writes...).
``repro.obs.report``
    Trace-file summarization: the per-class/per-stage table, metric
    rollups, per-request timelines, and worker-profile hotspots behind
    the ``repro report`` CLI subcommand.
``repro.obs.prom``
    Prometheus text exposition of a metrics snapshot (the daemon's
    ``GET /metrics``), with the strict parser the tests round-trip
    through.
``repro.obs.log``
    Size-rotated structured JSON-lines event log (``serve --log``),
    request-ID-aware via the trace module's request scope.
``repro.obs.chrome``
    Chrome trace-event export (``repro report --chrome``): any JSONL
    trace rendered as a Perfetto/speedscope-loadable timeline.

Both collectors are **off by default**; every instrumented site then
costs a single global test, holding the disabled-path overhead on the
pipeline bench under 2% (guarded by
``benchmarks/test_bench_obs_overhead.py``).  Turn them on together
with :func:`start` / :func:`stop` (what the CLI's ``--trace`` /
``--metrics`` flags do) or the :func:`session` context manager::

    from repro import obs
    with obs.session(trace_path="run.jsonl"):
        GangSchedulingModel(config).solve()
    summary = obs.summarize_trace("run.jsonl")
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs import chrome, log, metrics, prom, trace
from repro.obs.chrome import write_chrome_trace
from repro.obs.metrics import (
    MetricsRegistry,
    histogram_quantile,
    merge_snapshots,
    render_snapshot,
)
from repro.obs.prom import parse_exposition, render_exposition
from repro.obs.report import (
    TraceSummary,
    load_trace,
    render_report,
    render_requests,
    summarize_trace,
)
from repro.obs.trace import (
    StageTimings,
    Tracer,
    current_request_id,
    request_scope,
    span,
    tracing_enabled,
)

__all__ = [
    "metrics",
    "trace",
    "prom",
    "log",
    "chrome",
    "span",
    "start",
    "stop",
    "session",
    "StageTimings",
    "Tracer",
    "MetricsRegistry",
    "TraceSummary",
    "load_trace",
    "summarize_trace",
    "render_report",
    "render_requests",
    "render_snapshot",
    "merge_snapshots",
    "histogram_quantile",
    "render_exposition",
    "parse_exposition",
    "write_chrome_trace",
    "request_scope",
    "current_request_id",
    "tracing_enabled",
]


def start(*, trace_path: str | os.PathLike | None = None,
          collect_metrics: bool = True) -> None:
    """Arm the observability collectors.

    Parameters
    ----------
    trace_path:
        When given, start span tracing into this JSONL file
        (truncating it).
    collect_metrics:
        Reset and enable the metrics registry (default): the session's
        snapshot is embedded in the trace file by :func:`stop`.
    """
    if trace_path is not None:
        trace.start_tracing(trace_path)
    if collect_metrics:
        metrics.reset()
        metrics.enable()


def stop() -> dict:
    """Disarm the collectors; returns the session's metrics snapshot.

    When a trace file is open, the snapshot is appended to it first as
    a ``{"kind": "metrics", ...}`` record so ``repro report`` can roll
    it up alongside any worker-emitted records.
    """
    snap = metrics.snapshot() if metrics.enabled() else {}
    tracer = trace.current_tracer()
    if tracer is not None:
        if snap and (snap.get("counters") or snap.get("gauges")
                     or snap.get("histograms")):
            tracer.emit({"kind": "metrics", "pid": os.getpid(),
                         "scope": "session", **snap})
        trace.stop_tracing()
    metrics.disable()
    return snap


@contextmanager
def session(*, trace_path: str | os.PathLike | None = None,
            collect_metrics: bool = True):
    """Context-managed :func:`start` / :func:`stop` for library use."""
    start(trace_path=trace_path, collect_metrics=collect_metrics)
    try:
        yield
    finally:
        stop()
