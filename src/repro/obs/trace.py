"""Span-based structured tracing with JSONL output.

One process-global :class:`Tracer` (armed with :func:`start_tracing`,
or the higher-level :func:`repro.obs.session`) collects *spans* —
named, nested, attributed intervals — from every instrumented layer of
the solve pipeline and appends them to a JSONL trace file as balanced
begin/end event pairs.  When no tracer is armed, :func:`span` returns
a shared no-op context manager: the disabled path is one global load
and one ``is None`` test, cheap enough to leave the instrumentation in
every hot path permanently.

Trace file schema (one JSON object per line)
--------------------------------------------
``{"kind": "trace-header", "version": 1, "pid": ..., "epoch": ...,
"mono": ...}``
    First record of every file.  ``epoch``/``mono`` anchor the
    monotonic span timestamps to wall-clock time.
``{"kind": "B", "name": ..., "ts": ..., "pid": ..., "tid": ...,
"sid": ..., "parent": ..., "depth": ..., "attrs": {...}}``
    Span begin.  ``ts`` is ``time.monotonic()``; ``sid`` is unique per
    tracer, ``parent`` is the enclosing span's sid (``None`` at the
    top level of a thread).
``{"kind": "E", "name": ..., "ts": ..., "pid": ..., "tid": ...,
"sid": ..., "wall": ..., "cpu": ..., "attrs": {...}}``
    Span end.  ``wall`` is ``perf_counter`` seconds, ``cpu`` is
    ``thread_time`` seconds spent inside the span on this thread.
``{"kind": "metrics", ...}``
    A metrics-registry snapshot (see :mod:`repro.obs.metrics`),
    written by :func:`repro.obs.stop` and by sweep workers after each
    completed point.

Within one thread the events are balanced (every ``B`` has a matching
``E``, properly nested) and ``ts`` is non-decreasing; the property
suite in ``tests/obs`` holds the collector to both invariants.

Stage accounting
----------------
:class:`StageTimings` (the per-run wall-clock accumulator behind
``FixedPointResult.timings``) lives here too: pipeline stages run
under ``span(..., timings=..., stage=...)``, which feeds the
accumulator from the *same* ``perf_counter`` window the trace event
records, so a trace report's per-stage totals and the result's
``timings`` view agree by construction.  With tracing disabled the
span degrades to exactly the old two-``perf_counter``-calls timing
path.

Worker processes
----------------
A parallel sweep's workers cannot share the parent's file handle (and
a forked child must never write through it).  Workers instead append
to a sibling file ``<trace>.w<pid>`` via :func:`ensure_worker_tracer`;
after the pool joins, the parent folds every worker file into the main
trace with :func:`merge_worker_traces` and deletes them.  A worker
SIGKILLed mid-write leaves a stale (possibly torn) ``.w`` file behind;
the next :func:`start_tracing` on the same base path salvages its
valid lines and removes it, so crashes never leak sidecars forever.

Request scoping
---------------
The service tags every span with the request that caused it:
:func:`request_scope` sets a :mod:`contextvars` request ID for the
duration of one request, and both ``B`` and ``E`` events carry it as
``"req"``.  The ID rides into spawn workers as a plain task argument
(the daemon appends it to each task tuple), so after
:func:`merge_worker_traces` one request renders as one end-to-end
timeline across daemon and worker pids.
"""

from __future__ import annotations

import contextvars
import glob
import itertools
import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "TRACE_VERSION",
    "StageTimings",
    "Tracer",
    "span",
    "start_tracing",
    "stop_tracing",
    "tracing",
    "tracing_enabled",
    "current_tracer",
    "current_request_id",
    "set_request_id",
    "request_scope",
    "ensure_worker_tracer",
    "merge_worker_traces",
    "worker_trace_paths",
]

#: Trace file format version, written in the header record.
TRACE_VERSION = 1

#: The request ID tagged onto spans emitted inside a request scope.
_REQUEST_ID: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_request_id", default=None)


def current_request_id() -> str | None:
    """The request ID of the active :func:`request_scope`, if any."""
    return _REQUEST_ID.get()


def set_request_id(rid: str | None) -> None:
    """Set (or clear, with ``None``) the ambient request ID.

    Prefer :func:`request_scope`; this unscoped setter exists for
    worker processes whose task loop cannot wrap the whole body in a
    ``with`` block per request.
    """
    _REQUEST_ID.set(rid)


@contextmanager
def request_scope(rid: str):
    """Tag every span (and structured-log event) in the body with
    request ID ``rid``; restores the previous ID on exit."""
    token = _REQUEST_ID.set(rid)
    try:
        yield rid
    finally:
        _REQUEST_ID.reset(token)


class StageTimings:
    """Wall-clock seconds accumulated per pipeline stage.

    The view behind ``FixedPointResult.timings`` /
    ``SolvedModel.timings``.  Stages feed it through
    :func:`span`; :meth:`timed` remains for callers that want the
    accumulation without a trace event.
    """

    def __init__(self):
        self._seconds: dict[str, float] = {}

    @contextmanager
    def timed(self, stage: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def add(self, stage: str, seconds: float) -> None:
        self._seconds[stage] = self._seconds.get(stage, 0.0) + seconds

    def as_dict(self) -> dict[str, float]:
        return dict(self._seconds)


class Tracer:
    """Thread-safe JSONL span collector bound to one output file.

    Spans nest per thread (a thread-local stack supplies ``parent`` and
    ``depth``); writes are serialized by a lock and the header record
    is emitted on first open.  ``mode="a"`` re-opens an existing file
    without a second header (the worker-file case).
    """

    def __init__(self, path: str | os.PathLike, *, mode: str = "w"):
        self.path = Path(path)
        self.pid = os.getpid()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._sids = itertools.count(1)
        self.events = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = mode == "w" or not self.path.exists() \
            or self.path.stat().st_size == 0
        self._fh = open(self.path, mode, encoding="utf-8")
        if fresh:
            self._emit({"kind": "trace-header", "version": TRACE_VERSION,
                        "pid": self.pid, "epoch": time.time(),
                        "mono": time.monotonic()})

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _emit(self, obj: dict) -> None:
        line = json.dumps(obj, separators=(",", ":"))
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()
            self.events += 1

    def begin(self, name: str, attrs: dict | None) -> int:
        stack = self._stack()
        sid = next(self._sids)
        event = {"kind": "B", "name": name, "ts": time.monotonic(),
                 "pid": self.pid, "tid": threading.get_ident(), "sid": sid,
                 "parent": stack[-1] if stack else None,
                 "depth": len(stack)}
        rid = _REQUEST_ID.get()
        if rid is not None:
            event["req"] = rid
        if attrs:
            event["attrs"] = attrs
        stack.append(sid)
        self._emit(event)
        return sid

    def end(self, sid: int, name: str, wall: float, cpu: float,
            attrs: dict | None) -> None:
        stack = self._stack()
        if stack and stack[-1] == sid:
            stack.pop()
        event = {"kind": "E", "name": name, "ts": time.monotonic(),
                 "pid": self.pid, "tid": threading.get_ident(), "sid": sid,
                 "wall": wall, "cpu": cpu}
        rid = _REQUEST_ID.get()
        if rid is not None:
            event["req"] = rid
        if attrs:
            event["attrs"] = attrs
        self._emit(event)

    def emit(self, obj: dict) -> None:
        """Append one raw record (e.g. a metrics snapshot)."""
        self._emit(obj)

    def absorb(self, path: str | os.PathLike) -> int:
        """Append every valid record of another trace file; returns the
        count.

        Used to fold worker trace files into the parent's.  Header
        records travel along (the report keys events by ``pid``), blank
        lines are skipped, and lines that do not parse as JSON — the
        torn tail a SIGKILLed worker leaves mid-write — are dropped
        rather than corrupting the merged trace.
        """
        n = 0
        with open(path, encoding="utf-8") as src:
            with self._lock:
                for line in src:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    try:
                        json.loads(stripped)
                    except ValueError:
                        continue        # torn tail from a killed writer
                    self._fh.write(stripped + "\n")
                    n += 1
                self._fh.flush()
                self.events += n
        return n

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()


#: The process-global tracer (``None``: tracing disabled).
_TRACER: Tracer | None = None


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL = _NullSpan()


class _TimedSpan:
    """Accumulator-only span: tracing disabled, a stage wants timing."""

    __slots__ = ("timings", "stage", "t0")

    def __init__(self, timings: StageTimings, stage: str):
        self.timings = timings
        self.stage = stage

    def __enter__(self):
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.timings.add(self.stage, time.perf_counter() - self.t0)
        return False


class _TracedSpan:
    """Full span: emits begin/end events, optionally feeds a stage
    accumulator from the same clock window."""

    __slots__ = ("tracer", "name", "attrs", "timings", "stage",
                 "sid", "t0", "cpu0")

    def __init__(self, tracer: Tracer, name: str, attrs: dict | None,
                 timings: StageTimings | None, stage: str | None):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.timings = timings
        self.stage = stage

    def __enter__(self):
        self.sid = self.tracer.begin(self.name, self.attrs)
        self.cpu0 = time.thread_time()
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        wall = time.perf_counter() - self.t0
        cpu = time.thread_time() - self.cpu0
        if self.timings is not None:
            self.timings.add(self.stage or self.name, wall)
        self.tracer.end(self.sid, self.name, wall, cpu, self.attrs)
        return False


def span(name: str, *, timings: StageTimings | None = None,
         stage: str | None = None, **attrs):
    """A span context manager for ``name``.

    Parameters
    ----------
    name:
        Span name (see the taxonomy in ``docs/architecture.md``; stage
        spans are ``"stage.<stage>"``).
    timings, stage:
        When given, the span's wall time is also accumulated into
        ``timings`` under ``stage`` (defaulting to ``name``) — the
        bridge between tracing and ``FixedPointResult.timings``.  With
        tracing disabled this degrades to the bare accumulation.
    **attrs:
        Structured attributes recorded on both events (``klass=p``,
        ``value=v``...).  Values must be JSON-serializable.

    With tracing disabled and no ``timings``, returns a shared no-op
    object — the guard is one global load.
    """
    tracer = _TRACER
    if tracer is None:
        if timings is None:
            return _NULL
        return _TimedSpan(timings, stage or name)
    return _TracedSpan(tracer, name, attrs or None, timings, stage)


def tracing_enabled() -> bool:
    """Whether a process-global tracer is armed."""
    return _TRACER is not None


def current_tracer() -> Tracer | None:
    """The armed tracer, if any."""
    return _TRACER


def start_tracing(path: str | os.PathLike) -> Tracer:
    """Arm the process-global tracer writing to ``path`` (truncates).

    Stale ``<path>.w*`` sidecars left by SIGKILLed workers of an
    earlier run are salvaged into the fresh trace (valid lines kept,
    torn tails dropped) and removed; a sidecar that cannot even be
    read is renamed to ``<sidecar>.quarantine`` for inspection instead
    of being silently leaked or destroyed.
    """
    global _TRACER
    if _TRACER is not None:
        stop_tracing()
    stale = worker_trace_paths(path)
    _TRACER = Tracer(path)
    for wpath in stale:
        try:
            _TRACER.absorb(wpath)
            wpath.unlink()
        except OSError:
            try:
                os.replace(wpath, f"{wpath}.quarantine")
            except OSError:
                pass
    return _TRACER


def stop_tracing() -> None:
    """Close and disarm the process-global tracer (no-op when off)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


@contextmanager
def tracing(path: str | os.PathLike):
    """Context-managed :func:`start_tracing` / :func:`stop_tracing`."""
    tracer = start_tracing(path)
    try:
        yield tracer
    finally:
        stop_tracing()


# ---------------------------------------------------------------------------
# Worker-process support (parallel sweeps).

def _worker_path(base: str | os.PathLike) -> Path:
    return Path(f"{os.fspath(base)}.w{os.getpid()}")


def worker_trace_paths(base: str | os.PathLike) -> list[Path]:
    """Existing worker trace files for main-trace path ``base``."""
    return [Path(p) for p in sorted(glob.glob(f"{os.fspath(base)}.w*"))]


def ensure_worker_tracer(base: str | os.PathLike) -> Tracer:
    """Arm (or return) this worker process's tracer.

    ``base`` is the *parent's* trace path; the worker appends to
    ``<base>.w<pid>``.  A tracer inherited through ``fork`` (same
    global, wrong pid) is discarded — never closed, the file handle
    belongs to the parent — before the worker's own file is opened.
    A worker serving many points keeps one file open across all of
    them (``mode="a"``).
    """
    global _TRACER
    if _TRACER is not None and _TRACER.pid != os.getpid():
        _TRACER = None  # forked copy of the parent's tracer: not ours
    if _TRACER is None:
        _TRACER = Tracer(_worker_path(base), mode="a")
    return _TRACER


def merge_worker_traces(tracer: Tracer | None = None) -> int:
    """Fold every ``<trace>.w*`` file into the main trace; delete them.

    Called by the sweep driver after its worker pool joins.  Returns
    the number of records absorbed.
    """
    tracer = tracer if tracer is not None else _TRACER
    if tracer is None:
        return 0
    n = 0
    for path in worker_trace_paths(tracer.path):
        if path == tracer.path:
            continue
        n += tracer.absorb(path)
        path.unlink()
    return n
