"""One numerical contract for every quantile in the repository.

Three code paths used to answer "what is the ``q``-quantile?" with
three private conventions: :meth:`repro.phasetype.PhaseType.quantile`
bisected its own CDF, the simulator's per-class statistics called
``np.quantile`` on raw sojourn samples, and
:func:`repro.obs.metrics.histogram_quantile` interpolated Prometheus
style inside log-spaced buckets.  This module is now the single home
of all three estimators; the call sites delegate here.

**Contract.**  For a distribution with CDF ``F`` the ``q``-quantile is
the left-continuous generalized inverse

    ``Q(q) = inf { t : F(t) >= q }``,  with ``0 <= q < 1``.

Levels outside ``[0, 1)`` raise :class:`ValueError` from every entry
point (``q = 1`` is excluded because ``Q(1)`` is infinite for the
unbounded laws this library works with).  The three estimators are
consistent approximations of ``Q``:

* :func:`cdf_quantile` evaluates ``Q`` exactly (to a relative
  bisection tolerance) given a callable CDF;
* :func:`empirical_quantile` estimates ``Q`` from finite samples with
  the linear-interpolation order statistic (``numpy``'s default),
  which converges to ``Q`` as the sample grows;
* :func:`bucket_quantile` knows only bucket counts, so it interpolates
  linearly *within* the bucket holding the target rank and clamps into
  the observed ``[min, max]`` — Prometheus semantics.

All three agree in the limit of infinite data / vanishing bucket
width; ``tail(Q(q)) -> 1 - q`` wherever ``F`` is continuous (asserted
by the hypothesis suite in ``tests/metrics``).
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "check_level",
    "cdf_quantile",
    "empirical_quantile",
    "empirical_tail",
    "bucket_quantile",
]


def check_level(q: float) -> float:
    """Validate a quantile level against the shared contract."""
    if not 0.0 <= q < 1.0:
        raise ValueError(f"quantile level must be in [0, 1), got {q}")
    return float(q)


def cdf_quantile(cdf: Callable[[float], float], q: float, *,
                 mean_hint: float, atom_at_zero: float = 0.0,
                 tol: float = 1e-10, max_iter: int = 200) -> float:
    """``Q(q)`` for an exact CDF, by bracketed bisection.

    Parameters
    ----------
    cdf:
        Monotone CDF of a non-negative random variable.
    q:
        Level in ``[0, 1)``.
    mean_hint:
        Any positive scale for the initial bracket (the mean works);
        the bracket doubles until ``cdf`` crosses ``q``.
    atom_at_zero:
        ``F(0)``; levels at or below it return exactly ``0.0``.
    tol:
        Relative width at which the bisection stops.
    """
    q = check_level(q)
    if q <= atom_at_zero:
        return 0.0
    lo, hi = 0.0, max(float(mean_hint), 1e-12)
    while cdf(hi) < q:
        hi *= 2.0
        if hi > 1e18:  # pragma: no cover - pathological
            raise ArithmeticError("quantile search diverged")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if cdf(mid) < q:
            lo = mid
        else:
            hi = mid
        if hi - lo < tol * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


def empirical_quantile(samples: Sequence[float], q: float) -> float:
    """``Q(q)`` estimated from raw samples; ``nan`` when empty."""
    q = check_level(q)
    if len(samples) == 0:
        return float("nan")
    return float(np.quantile(np.asarray(samples, dtype=float), q))


def empirical_tail(samples: Sequence[float], t: float) -> float:
    """``P{X > t}`` estimated from raw samples; ``nan`` when empty.

    The empirical survival function — the sample analogue of
    :meth:`repro.phasetype.PhaseType.sf`, kept here so the simulated
    and analytic ``tail@t`` columns estimate the same functional.
    """
    if len(samples) == 0:
        return float("nan")
    arr = np.asarray(samples, dtype=float)
    return float(np.count_nonzero(arr > float(t)) / arr.size)


def bucket_quantile(buckets: Sequence[float], bounds: Sequence[float],
                    q: float, *, count: float, lo: float,
                    hi: float) -> float | None:
    """``Q(q)`` from histogram bucket counts (Prometheus semantics).

    Parameters
    ----------
    buckets:
        Per-bucket observation counts; bucket ``i`` spans
        ``(bounds[i-1], bounds[i]]`` with an implicit leading edge at
        ``0`` and an implicit final bucket ``(bounds[-1], hi]``.
    bounds:
        Upper bucket bounds (``len(bounds) in {len(buckets) - 1,
        len(buckets)}``).
    q:
        Level in ``[0, 1)``.
    count:
        Total observation count (may exceed ``sum(buckets)`` for
        merged histograms); ``None`` is returned when non-positive.
    lo, hi:
        Exact observed extremes; the interpolated value is clamped
        into ``[lo, hi]`` so a single-observation histogram reports
        the observation itself.
    """
    check_level(q)
    count = float(count or 0.0)
    if count <= 0 or not buckets:
        return None
    target = q * count
    cum = 0.0
    value = float(hi)
    for i, n in enumerate(buckets):
        if n <= 0:
            continue
        if cum + n >= target:
            b_lo = bounds[i - 1] if i > 0 else 0.0
            b_hi = bounds[i] if i < len(bounds) else float(hi)
            value = b_lo + (b_hi - b_lo) * max(0.0, target - cum) / n
            break
        cum += n
    return min(max(value, float(lo)), float(hi))
