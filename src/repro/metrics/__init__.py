"""Distribution-first metrics: percentiles, tails, SLOs.

The paper's headline measures are means (``N_p``, ``T_p``); this
package makes full *distributions* first-class so every surface — the
sweep engine, scenarios, the CLI, the service daemon — can answer SLA
questions (``p99``, ``P{T > t}``, loss probabilities) instead of only
averages.

Three modules:

* :mod:`repro.metrics.quantiles` — the single numerical contract every
  quantile in the repo evaluates (exact CDFs, finite samples,
  histogram buckets);
* :mod:`repro.metrics.selectors` — parsing/validation of the
  ``("mean", "p95", "p99", "tail@t")`` metric selectors carried by
  :class:`repro.scenario.OutputSpec`;
* :mod:`repro.metrics.distributions` — :class:`ClassDistributions`,
  the per-class response/waiting-time laws extracted from a solved
  model (exact tagged-job phase type where feasible, moment-matched
  fallback otherwise, explicit ``saturated``/``unsupported`` markers).
"""

from repro.metrics.distributions import (
    ClassDistributions,
    class_distributions,
    metric_values,
)
from repro.metrics.quantiles import (
    bucket_quantile,
    cdf_quantile,
    check_level,
    empirical_quantile,
    empirical_tail,
)
from repro.metrics.selectors import (
    DEFAULT_METRICS,
    MetricSelector,
    parse_metric,
    parse_metrics,
    selector_columns,
)

__all__ = [
    "ClassDistributions",
    "class_distributions",
    "metric_values",
    "bucket_quantile",
    "cdf_quantile",
    "check_level",
    "empirical_quantile",
    "empirical_tail",
    "DEFAULT_METRICS",
    "MetricSelector",
    "parse_metric",
    "parse_metrics",
    "selector_columns",
]
