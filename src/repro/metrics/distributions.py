"""Per-class response/waiting-time distributions of a solved model.

:class:`ClassDistributions` is the distribution-first counterpart of
:class:`repro.core.measures.ClassMeasures`: where the measures carry
the paper's scalar means, this carries the *laws* — phase-type
response and waiting-time distributions with lazy ``quantile``,
``tail``, ``cdf``/``sf`` and moments — so every surface can report
percentiles and SLO probabilities.

Exactness is graded by ``kind``:

``"exact"``
    Both per-class streams are order-1 (Poisson arrivals, exponential
    service): the tagged-job construction of
    :mod:`repro.core.response` applies and the laws are exact.
``"moment"``
    Poisson arrivals but phase-type service: the tagged-job chain
    would need predecessor phases, so the response law is a
    two-moment phase-type fit obtained through the distributional
    Little's law ``E[N(N-1)] = lambda^2 E[T^2]`` (valid for
    FCFS-within-class under Poisson arrivals) from the exact
    queue-length moments.  The waiting-time law is unavailable.
``"saturated"``
    The class is unstable at the fixed point; response time diverges.
    Quantiles are ``inf``, tails are ``1.0`` — sweeps degrade to this
    marker instead of failing the grid point (mirroring
    :meth:`~repro.core.measures.ClassMeasures.saturated`).
``"unsupported"``
    Non-Poisson arrivals: the PASTA initial vector (and the
    distributional Little's law) do not apply; ``detail`` says why.
    Statistics evaluate to ``nan``.

Loss probability: with Poisson arrivals, PASTA makes the stationary
probability of finding ``>= K`` jobs exactly the fraction of arrivals
that would be rejected were the buffer truncated at capacity ``K`` —
:meth:`ClassDistributions.loss_probability` exposes it wherever the
model supports it (``None`` otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.metrics.quantiles import check_level
from repro.metrics.selectors import parse_metrics
from repro.phasetype import PhaseType
from repro.phasetype.fitting import fit_moments

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.model import SolvedModel
    from repro.qbd.stationary import QBDStationaryDistribution

__all__ = ["ClassDistributions", "class_distributions", "metric_values"]

_INF = float("inf")
_NAN = float("nan")


@dataclass(frozen=True)
class ClassDistributions:
    """Response/waiting-time laws of one job class.

    Attributes
    ----------
    kind:
        ``"exact"``, ``"moment"``, ``"saturated"`` or
        ``"unsupported"`` (see the module docstring).
    response:
        Response-time law ``T_p`` (``None`` for the marker kinds).
    waiting:
        Waiting-time law (``None`` unless ``kind == "exact"``); its
        ``atom_at_zero`` is the probability of entering service
        immediately.
    detail:
        Human-readable provenance (construction used, or the reason a
        marker kind applies).
    arrival_poisson:
        Whether the class's arrivals are Poisson — the condition for
        PASTA-based statements like :meth:`loss_probability`.
    """

    kind: str
    response: PhaseType | None = None
    waiting: PhaseType | None = None
    detail: str = ""
    arrival_poisson: bool = False
    #: Stationary queue-length law backing :meth:`loss_probability`;
    #: excluded from equality so marker instances compare by kind.
    stationary: "QBDStationaryDistribution | None" = field(
        default=None, repr=False, compare=False)

    @classmethod
    def saturated(cls) -> "ClassDistributions":
        """The marker for an unstable class (response time diverges)."""
        return cls(kind="saturated",
                   detail="class is saturated; response time diverges")

    @classmethod
    def unsupported(cls, reason: str, *,
                    stationary: "QBDStationaryDistribution | None" = None,
                    ) -> "ClassDistributions":
        """The marker for a class whose law cannot be constructed."""
        return cls(kind="unsupported", detail=reason, stationary=stationary)

    @property
    def supported(self) -> bool:
        """Whether a response-time law is available."""
        return self.response is not None

    @property
    def mean(self) -> float:
        """``E[T_p]`` (``inf`` saturated, ``nan`` unsupported)."""
        if self.kind == "saturated":
            return _INF
        if self.response is None:
            return _NAN
        return self.response.mean

    def moment(self, k: int) -> float:
        """``E[T_p^k]`` under the same marker conventions as ``mean``."""
        if self.kind == "saturated":
            return _INF
        if self.response is None:
            return _NAN
        return self.response.moment(k)

    def quantile(self, q: float) -> float:
        """``Q(q)`` of the response time (contract of
        :mod:`repro.metrics.quantiles`); ``inf`` for a saturated
        class at any ``q > 0``, ``nan`` when unsupported."""
        q = check_level(q)
        if self.kind == "saturated":
            return 0.0 if q == 0.0 else _INF
        if self.response is None:
            return _NAN
        return self.response.quantile(q)

    def cdf(self, t: float) -> float:
        """``P{T_p <= t}`` (``0.0`` saturated, ``nan`` unsupported)."""
        if self.kind == "saturated":
            return 0.0
        if self.response is None:
            return _NAN
        return self.response.cdf(t)

    def sf(self, t: float) -> float:
        """``P{T_p > t}`` (``1.0`` saturated, ``nan`` unsupported)."""
        if self.kind == "saturated":
            return 1.0
        if self.response is None:
            return _NAN
        return self.response.sf(t)

    def tail(self, t: float) -> float:
        """Alias of :meth:`sf` — the SLO violation probability."""
        return self.sf(t)

    def loss_probability(self, capacity: int) -> float | None:
        """Arrival loss fraction were the buffer truncated at ``capacity``.

        By PASTA this is the stationary probability of finding
        ``capacity`` or more jobs in system; available only with
        Poisson arrivals and a stationary law (``None`` otherwise,
        ``1.0`` for a saturated class — every arrival eventually finds
        a full buffer).
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if self.kind == "saturated":
            return 1.0
        if self.stationary is None or not self.arrival_poisson:
            return None
        return float(self.stationary.tail_probability(capacity - 1))


def class_distributions(solved: "SolvedModel", p: int, *,
                        truncation_mass: float = 1e-10,
                        max_levels: int = 2000) -> ClassDistributions:
    """Construct :class:`ClassDistributions` for class ``p``.

    Never raises on a saturated or unsupported class — the marker
    kinds degrade gracefully so sweeps keep their grid points.
    """
    from repro.core.response import (
        response_time_distribution,
        waiting_time_distribution,
    )

    cr = solved.classes[p]
    cls = solved.config.classes[p]
    if not cr.stable:
        return ClassDistributions.saturated()
    poisson = cls.arrival.order == 1
    if not poisson:
        return ClassDistributions.unsupported(
            f"class {p} has an order-{cls.arrival.order} interarrival PH; "
            "the PASTA initial vector requires Poisson arrivals",
            stationary=cr.stationary)
    if cls.service.order == 1:
        response = response_time_distribution(
            solved, p, truncation_mass=truncation_mass,
            max_levels=max_levels)
        waiting = waiting_time_distribution(
            solved, p, truncation_mass=truncation_mass,
            max_levels=max_levels)
        return ClassDistributions(
            kind="exact", response=response, waiting=waiting,
            detail="tagged-job phase-type construction (exact)",
            arrival_poisson=True, stationary=cr.stationary)

    # Phase-type service: exact tagged-job analysis would need the
    # predecessors' service phases.  Fit a PH to the exact response
    # moments instead, obtained from the queue-length moments through
    # the distributional Little's law (Poisson + FCFS-within-class):
    # E[N] = lambda E[T], E[N(N-1)] = lambda^2 E[T^2].
    lam = cls.arrival_rate
    meas = cr.measures
    m1 = meas.mean_response_time
    if not (math.isfinite(m1) and m1 > 0.0):  # pragma: no cover - guard
        return ClassDistributions.unsupported(
            f"class {p} has no finite mean response time to moment-match",
            stationary=cr.stationary)
    en = meas.mean_jobs
    en2 = meas.variance_jobs + en * en
    m2 = (en2 - en) / (lam * lam)
    moments = [m1]
    if math.isfinite(m2) and m2 > m1 * m1 * (1.0 + 1e-12):
        moments.append(m2)
    response = fit_moments(moments)
    return ClassDistributions(
        kind="moment", response=response, waiting=None,
        detail=f"{len(moments)}-moment phase-type fit via the "
               "distributional Little's law",
        arrival_poisson=True, stationary=cr.stationary)


def metric_values(solved: "SolvedModel", p: int, selectors) -> tuple[float, ...]:
    """Evaluate metric selectors for class ``p`` of a solved model.

    ``"mean"`` reads the exact Little's-law mean from the class
    measures; quantile and tail selectors evaluate the (lazily
    constructed, model-cached) response-time law.
    """
    parsed = parse_metrics(selectors)
    dist: ClassDistributions | None = None
    out: list[float] = []
    for sel in parsed:
        if sel.kind == "mean":
            out.append(float(solved.classes[p].measures.mean_response_time))
            continue
        if dist is None:
            dist = solved.distributions(p)
        if sel.kind == "quantile":
            out.append(float(dist.quantile(sel.value)))
        else:
            out.append(float(dist.tail(sel.value)))
    return tuple(out)
