"""Metric selectors: ``"mean" | "pNN[.N]" | "tail@t"``.

Scenario output specs (and the CLI flags that override them) name the
response-time statistics to report with compact selector strings:

* ``"mean"`` — the mean response time ``T_p`` (Little's law; the
  paper's measure);
* ``"p95"``, ``"p99"``, ``"p99.9"`` — quantiles of the response-time
  distribution at level ``NN / 100``, evaluated under the contract of
  :mod:`repro.metrics.quantiles`;
* ``"tail@2.5"`` — the SLO violation probability ``P{T > 2.5}``.

:data:`DEFAULT_METRICS` is ``("mean",)`` — scenarios that never asked
for distributions keep their schema bytes, hashes and solve cost
unchanged.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "DEFAULT_METRICS",
    "MetricSelector",
    "parse_metric",
    "parse_metrics",
    "selector_columns",
]

#: The selector set of a scenario that asked for nothing beyond means.
DEFAULT_METRICS: tuple[str, ...] = ("mean",)

_QUANTILE_RE = re.compile(r"^p(\d{1,2}(?:\.\d+)?)$")
_TAIL_RE = re.compile(r"^tail@(\d+(?:\.\d+)?([eE][+-]?\d+)?)$")


@dataclass(frozen=True)
class MetricSelector:
    """One parsed selector.

    ``kind`` is ``"mean"``, ``"quantile"`` or ``"tail"``; ``value`` is
    the quantile level ``q`` in ``(0, 1)`` or the tail threshold ``t``
    (``None`` for ``"mean"``).
    """

    raw: str
    kind: str
    value: float | None = None


def parse_metric(selector: str) -> MetricSelector:
    """Parse one selector string, raising :class:`ValidationError`."""
    text = str(selector).strip()
    if text == "mean":
        return MetricSelector(raw=text, kind="mean")
    match = _QUANTILE_RE.match(text)
    if match:
        level = float(match.group(1)) / 100.0
        if not 0.0 < level < 1.0:
            raise ValidationError(
                f"quantile selector {text!r} must lie strictly in (p0, p100)")
        return MetricSelector(raw=text, kind="quantile", value=level)
    match = _TAIL_RE.match(text)
    if match:
        return MetricSelector(raw=text, kind="tail",
                              value=float(match.group(1)))
    raise ValidationError(
        f"unknown metric selector {text!r}; expected 'mean', 'pNN' "
        "(e.g. 'p95', 'p99.9') or 'tail@t' (e.g. 'tail@2.5')")


def parse_metrics(selectors) -> tuple[MetricSelector, ...]:
    """Parse and validate a selector tuple (duplicates rejected)."""
    parsed = tuple(parse_metric(s) for s in selectors)
    seen: set[str] = set()
    for sel in parsed:
        if sel.raw in seen:
            raise ValidationError(f"duplicate metric selector {sel.raw!r}")
        seen.add(sel.raw)
    return parsed


def selector_columns(selectors) -> tuple[str, ...]:
    """Normalized column labels for a selector tuple (parse + rawize)."""
    return tuple(sel.raw for sel in parse_metrics(selectors))
