"""Enumeration of compositions (occupancy vectors).

The per-class gang-scheduling chain tracks, for each service phase
``n`` of the class-``p`` service distribution, how many in-service jobs
are currently in that phase.  A state of the service sub-process with
``s`` jobs in service over ``m`` phases is therefore a *weak
composition* of ``s`` into ``m`` parts — a tuple ``(j_1, ..., j_m)`` of
non-negative integers with ``sum(j) == s``.  This module enumerates
them in a deterministic (reverse-lexicographic) order and provides the
index maps used to address generator blocks.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb

__all__ = ["num_compositions", "compositions", "composition_index_map",
           "multinomial_compositions"]


def num_compositions(total: int, parts: int) -> int:
    """Number of weak compositions of ``total`` into ``parts`` parts.

    Equals the binomial coefficient ``C(total + parts - 1, parts - 1)``.
    ``parts`` must be positive; ``total`` non-negative.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    return comb(total + parts - 1, parts - 1)


@lru_cache(maxsize=4096)
def compositions(total: int, parts: int) -> tuple[tuple[int, ...], ...]:
    """All weak compositions of ``total`` into ``parts`` parts.

    Returned in reverse-lexicographic order (mass drains from the first
    coordinate): for ``total=2, parts=2`` the order is
    ``(2,0), (1,1), (0,2)``.  The result is cached — the gang model
    enumerates the same small composition sets for every level of every
    class.
    """
    if parts <= 0:
        raise ValueError(f"parts must be positive, got {parts}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    if parts == 1:
        return ((total,),)
    out: list[tuple[int, ...]] = []
    for first in range(total, -1, -1):
        for rest in compositions(total - first, parts - 1):
            out.append((first,) + rest)
    return tuple(out)


def multinomial_compositions(total: int, probs) -> list[tuple[tuple[int, ...], float]]:
    """Compositions of ``total`` i.i.d. draws over categories, with
    their multinomial probabilities.

    ``probs`` is the category distribution (e.g. a service PH's entry
    vector); zero-probability compositions are omitted.  Used wherever
    several jobs simultaneously draw initial service phases (batch
    entries, transient start states).
    """
    from math import factorial
    probs = list(float(p) for p in probs)
    out: list[tuple[tuple[int, ...], float]] = []
    for comp in compositions(total, len(probs)):
        prob = float(factorial(total))
        for cnt, p in zip(comp, probs):
            if cnt and p == 0.0:
                prob = 0.0
                break
            prob = prob / factorial(cnt) * (p ** cnt)
        if prob > 0.0:
            out.append((comp, prob))
    return out


@lru_cache(maxsize=4096)
def composition_index_map(total: int, parts: int) -> dict[tuple[int, ...], int]:
    """Map each composition of ``total`` into ``parts`` to its enumeration index.

    Inverse of :func:`compositions`: ``composition_index_map(t, m)[v] == i``
    iff ``compositions(t, m)[i] == v``.
    """
    return {v: i for i, v in enumerate(compositions(total, parts))}
