"""Linear-algebra kernels for Markov-chain computations.

The workhorse here is :func:`solve_stationary_gth`, the
Grassmann–Taksar–Heyman (GTH) elimination algorithm.  GTH computes the
stationary vector of an irreducible chain using only additions and
multiplications of non-negative quantities (the diagonal is recomputed
as a row sum at every elimination step), so it is immune to the
catastrophic cancellation that plagues naive LU approaches on stiff
generators.  Both DTMC (stochastic ``P``) and CTMC (generator ``Q``)
inputs are supported through a shared elimination core.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReducibleChainError, ValidationError

__all__ = [
    "spectral_radius",
    "kron_sum",
    "solve_stationary_gth",
    "solve_stationary_dtmc",
    "stationary_from_generator",
    "drazin_like_solve",
    "geometric_tail_sum",
]


def spectral_radius(A: np.ndarray) -> float:
    """Return the spectral radius (largest |eigenvalue|) of ``A``."""
    A = np.asarray(A, dtype=np.float64)
    if A.size == 0:
        return 0.0
    return float(np.max(np.abs(np.linalg.eigvals(A))))


def kron_sum(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Kronecker sum ``A ⊕ B = A ⊗ I + I ⊗ B``.

    The generator of two independent Markov processes running in
    parallel; used e.g. for the minimum of two PH distributions.
    """
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    return np.kron(A, np.eye(B.shape[0])) + np.kron(np.eye(A.shape[0]), B)


def _gth_core(T: np.ndarray) -> np.ndarray:
    """Shared GTH elimination on a rate-like matrix.

    ``T`` must have non-negative off-diagonals; the diagonal is ignored
    (recomputed from row sums), which is exactly what makes GTH stable.
    Returns the normalized stationary vector.
    """
    n = T.shape[0]
    if n == 0:
        raise ValidationError("cannot solve a 0-state chain")
    if n == 1:
        return np.ones(1)
    A = np.array(T, dtype=np.float64, copy=True)
    np.fill_diagonal(A, 0.0)

    # Forward elimination: fold state k into states 0..k-1.
    for k in range(n - 1, 0, -1):
        scale = A[k, :k].sum()
        if scale <= 0.0:
            raise ReducibleChainError(
                f"GTH elimination failed at state {k}: no transitions to "
                "remaining states; the chain is reducible"
            )
        A[:k, k] /= scale
        # Rank-1 update: rate i->j gains (rate i->k) * P(k->j | leave k).
        A[:k, :k] += np.outer(A[:k, k], A[k, :k])
        np.fill_diagonal(A[:k, :k], 0.0)

    # Back substitution.
    pi = np.zeros(n)
    pi[0] = 1.0
    for k in range(1, n):
        pi[k] = pi[:k] @ A[:k, k]
    total = pi.sum()
    if not np.isfinite(total) or total <= 0:
        raise ReducibleChainError("GTH back-substitution produced invalid mass")
    return pi / total


def solve_stationary_gth(Q: np.ndarray) -> np.ndarray:
    """Stationary vector of an irreducible CTMC generator via GTH.

    Solves ``pi Q = 0``, ``pi e = 1``.  Raises
    :class:`~repro.errors.ReducibleChainError` if elimination detects a
    reducible structure.
    """
    Q = np.asarray(Q, dtype=np.float64)
    return _gth_core(Q)


def solve_stationary_dtmc(P: np.ndarray) -> np.ndarray:
    """Stationary vector of an irreducible DTMC via GTH.

    Solves ``pi P = pi``, ``pi e = 1``.  The elimination operates on
    ``P`` with its diagonal ignored, which is equivalent to operating on
    the generator ``P - I``.
    """
    P = np.asarray(P, dtype=np.float64)
    return _gth_core(P)


def stationary_from_generator(Q: np.ndarray, *, method: str = "gth") -> np.ndarray:
    """Stationary vector of a CTMC generator.

    Parameters
    ----------
    Q:
        Irreducible generator matrix.
    method:
        ``"gth"`` (default, numerically robust) or ``"direct"`` (replace
        one balance equation by the normalization and solve the dense
        linear system; faster for large well-conditioned chains).
    """
    Q = np.asarray(Q, dtype=np.float64)
    if method == "gth":
        return solve_stationary_gth(Q)
    if method == "direct":
        n = Q.shape[0]
        A = Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError as exc:  # pragma: no cover - rare
            raise ReducibleChainError(f"direct stationary solve failed: {exc}") from exc
        if np.any(pi < -1e-8):
            raise ReducibleChainError(
                "direct stationary solve produced negative probabilities; "
                "the chain is likely reducible"
            )
        pi = np.clip(pi, 0.0, None)
        return pi / pi.sum()
    raise ValidationError(f"unknown stationary method {method!r}")


def drazin_like_solve(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """Least-squares solve ``X A = B`` for possibly singular ``A``.

    Used for group-inverse style computations (e.g. deviation matrices);
    returns the minimum-norm solution.
    """
    X, *_ = np.linalg.lstsq(np.asarray(A, dtype=np.float64).T,
                            np.asarray(B, dtype=np.float64).T, rcond=None)
    return X.T


def geometric_tail_sum(R: np.ndarray, *, weight: int = 0) -> np.ndarray:
    """Closed forms for matrix-geometric tail sums.

    For ``sp(R) < 1``:

    * ``weight=0`` returns ``sum_{n>=0} R^n = (I - R)^{-1}``
    * ``weight=1`` returns ``sum_{n>=0} n R^n = R (I - R)^{-2}``
    * ``weight=2`` returns ``sum_{n>=0} n^2 R^n = R (I + R) (I - R)^{-3}``

    These are the sums behind the closed-form queue-length moments of
    eq. (37) in the paper.
    """
    R = np.asarray(R, dtype=np.float64)
    n = R.shape[0]
    ImR = np.eye(n) - R
    inv = np.linalg.inv(ImR)
    if weight == 0:
        return inv
    if weight == 1:
        return R @ inv @ inv
    if weight == 2:
        return R @ (np.eye(n) + R) @ inv @ inv @ inv
    raise ValidationError(f"unsupported weight {weight}; use 0, 1 or 2")
