"""Structural validation of probabilistic matrices and vectors.

All checks raise a subclass of :class:`repro.errors.ValidationError` on
failure and return the validated object as a contiguous ``float64``
array on success, so they can be used as normalizing gates at API
boundaries::

    Q = check_generator(Q)          # now guaranteed to be a generator
    alpha = check_probability_vector(alpha)

Tolerances are absolute and default to ``1e-9`` scaled by the matrix
magnitude where appropriate; they can be overridden per call.
"""

from __future__ import annotations

import numpy as np

from repro.errors import (
    NotAGeneratorError,
    NotAPhaseTypeError,
    NotStochasticError,
    ValidationError,
)

__all__ = [
    "as_float_array",
    "check_probability_vector",
    "check_subprobability_vector",
    "check_stochastic",
    "check_substochastic",
    "check_generator",
    "check_subgenerator",
    "is_generator",
    "is_stochastic",
]

#: Default absolute tolerance for structural checks.
DEFAULT_ATOL = 1e-9


def as_float_array(x, *, ndim: int | None = None, name: str = "array") -> np.ndarray:
    """Coerce ``x`` to a contiguous float64 ndarray, optionally checking rank.

    Parameters
    ----------
    x:
        Array-like input.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    name:
        Name used in error messages.
    """
    arr = np.ascontiguousarray(x, dtype=np.float64)
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(
            f"{name} must be {ndim}-dimensional, got shape {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite entries")
    return arr


def check_probability_vector(v, *, atol: float = DEFAULT_ATOL,
                             name: str = "probability vector") -> np.ndarray:
    """Validate that ``v`` is a probability vector (non-negative, sums to 1)."""
    v = as_float_array(v, ndim=1, name=name)
    if v.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    if np.any(v < -atol):
        raise ValidationError(f"{name} has negative entries: min={v.min()}")
    s = float(v.sum())
    if abs(s - 1.0) > max(atol, atol * v.size):
        raise ValidationError(f"{name} must sum to 1, got {s}")
    # Clip tiny negatives and renormalize exactly so downstream code can
    # rely on the invariant bit-for-bit.
    v = np.clip(v, 0.0, None)
    return v / v.sum()


def check_subprobability_vector(v, *, atol: float = DEFAULT_ATOL,
                                name: str = "sub-probability vector") -> np.ndarray:
    """Validate a non-negative vector with sum at most 1."""
    v = as_float_array(v, ndim=1, name=name)
    if np.any(v < -atol):
        raise ValidationError(f"{name} has negative entries: min={v.min()}")
    s = float(v.sum())
    if s > 1.0 + max(atol, atol * max(v.size, 1)):
        raise ValidationError(f"{name} must sum to <= 1, got {s}")
    return np.clip(v, 0.0, None)


def is_stochastic(P, *, atol: float = DEFAULT_ATOL) -> bool:
    """Return ``True`` iff ``P`` is a row-stochastic matrix."""
    try:
        check_stochastic(P, atol=atol)
    except ValidationError:
        return False
    return True


def check_stochastic(P, *, atol: float = DEFAULT_ATOL,
                     name: str = "stochastic matrix") -> np.ndarray:
    """Validate that ``P`` is square, non-negative with unit row sums."""
    P = as_float_array(P, ndim=2, name=name)
    n, m = P.shape
    if n != m:
        raise NotStochasticError(f"{name} must be square, got {P.shape}")
    if np.any(P < -atol):
        raise NotStochasticError(f"{name} has negative entries: min={P.min()}")
    rows = P.sum(axis=1)
    bad = np.abs(rows - 1.0) > max(atol, atol * n)
    if np.any(bad):
        i = int(np.argmax(np.abs(rows - 1.0)))
        raise NotStochasticError(
            f"{name} row {i} sums to {rows[i]}, expected 1"
        )
    return np.clip(P, 0.0, None)


def check_substochastic(P, *, atol: float = DEFAULT_ATOL,
                        name: str = "substochastic matrix") -> np.ndarray:
    """Validate that ``P`` is square, non-negative with row sums ``<= 1``."""
    P = as_float_array(P, ndim=2, name=name)
    n, m = P.shape
    if n != m:
        raise NotStochasticError(f"{name} must be square, got {P.shape}")
    if np.any(P < -atol):
        raise NotStochasticError(f"{name} has negative entries: min={P.min()}")
    rows = P.sum(axis=1)
    if np.any(rows > 1.0 + max(atol, atol * n)):
        i = int(np.argmax(rows))
        raise NotStochasticError(
            f"{name} row {i} sums to {rows[i]}, expected <= 1"
        )
    return np.clip(P, 0.0, None)


def is_generator(Q, *, atol: float | None = None) -> bool:
    """Return ``True`` iff ``Q`` is a valid CTMC generator matrix."""
    try:
        check_generator(Q, atol=atol)
    except ValidationError:
        return False
    return True


def _rate_scale(Q: np.ndarray) -> float:
    """Magnitude scale used for relative tolerances on rate matrices."""
    scale = float(np.max(np.abs(Q))) if Q.size else 1.0
    return max(scale, 1.0)


def check_generator(Q, *, atol: float | None = None,
                    name: str = "generator") -> np.ndarray:
    """Validate that ``Q`` is a CTMC infinitesimal generator.

    Requirements: square; off-diagonal entries ``>= 0``; each row sums
    to zero within ``atol`` (scaled by the largest rate so that chains
    with fast clocks are not rejected for benign round-off).
    """
    Q = as_float_array(Q, ndim=2, name=name)
    n, m = Q.shape
    if n != m:
        raise NotAGeneratorError(f"{name} must be square, got {Q.shape}")
    tol = (DEFAULT_ATOL if atol is None else atol) * _rate_scale(Q) * max(n, 1)
    off = Q.copy()
    np.fill_diagonal(off, 0.0)
    if np.any(off < -tol):
        i, j = np.unravel_index(np.argmin(off), off.shape)
        raise NotAGeneratorError(
            f"{name} has negative off-diagonal entry Q[{i},{j}]={Q[i, j]}"
        )
    rows = Q.sum(axis=1)
    if np.any(np.abs(rows) > tol):
        i = int(np.argmax(np.abs(rows)))
        raise NotAGeneratorError(
            f"{name} row {i} sums to {rows[i]:.3e}, expected 0 (tol {tol:.1e})"
        )
    return Q


def check_subgenerator(S, *, atol: float | None = None, require_invertible: bool = True,
                       name: str = "sub-generator") -> np.ndarray:
    """Validate that ``S`` is a PH sub-generator.

    Requirements: square; off-diagonal entries ``>= 0``; row sums
    ``<= 0``; and, when ``require_invertible``, ``S`` non-singular
    (equivalently: every phase is transient, so absorption is certain
    and the PH distribution is proper).
    """
    S = as_float_array(S, ndim=2, name=name)
    n, m = S.shape
    if n != m:
        raise NotAPhaseTypeError(f"{name} must be square, got {S.shape}")
    tol = (DEFAULT_ATOL if atol is None else atol) * _rate_scale(S) * max(n, 1)
    off = S.copy()
    np.fill_diagonal(off, 0.0)
    if np.any(off < -tol):
        i, j = np.unravel_index(np.argmin(off), off.shape)
        raise NotAPhaseTypeError(
            f"{name} has negative off-diagonal entry S[{i},{j}]={S[i, j]}"
        )
    rows = S.sum(axis=1)
    if np.any(rows > tol):
        i = int(np.argmax(rows))
        raise NotAPhaseTypeError(
            f"{name} row {i} sums to {rows[i]:.3e}, expected <= 0"
        )
    if np.any(np.diag(S) > tol):
        raise NotAPhaseTypeError(f"{name} has a positive diagonal entry")
    if require_invertible and n > 0:
        # A singular sub-generator means some phase never reaches
        # absorption, i.e. the "distribution" places mass at infinity.
        cond = np.linalg.cond(S)
        if not np.isfinite(cond):
            raise NotAPhaseTypeError(f"{name} is singular: some phase is recurrent")
        if cond > 1e14:
            raise NotAPhaseTypeError(
                f"{name} is numerically singular (cond={cond:.2e})"
            )
    return S
