"""Shared numerical utilities.

Submodules
----------
``validation``
    Structural checks for stochastic vectors, (sub)stochastic matrices,
    CTMC generators and PH sub-generators.
``linalg``
    Stationary-vector solvers (GTH elimination, direct solve), spectral
    radius helpers, and Kronecker utilities.
``combinatorics``
    Enumeration of compositions / occupancy vectors used to build the
    service-phase state space.
``rng``
    Seed-sequence helpers for reproducible parallel streams.
"""

from repro.utils.combinatorics import (
    composition_index_map,
    compositions,
    num_compositions,
)
from repro.utils.linalg import (
    drazin_like_solve,
    kron_sum,
    solve_stationary_dtmc,
    solve_stationary_gth,
    spectral_radius,
    stationary_from_generator,
)
from repro.utils.validation import (
    check_generator,
    check_probability_vector,
    check_stochastic,
    check_subgenerator,
    check_substochastic,
    is_generator,
)

__all__ = [
    "compositions",
    "num_compositions",
    "composition_index_map",
    "spectral_radius",
    "kron_sum",
    "solve_stationary_gth",
    "solve_stationary_dtmc",
    "stationary_from_generator",
    "drazin_like_solve",
    "check_probability_vector",
    "check_stochastic",
    "check_substochastic",
    "check_generator",
    "check_subgenerator",
    "is_generator",
]
