"""Reproducible random-number-stream management.

The simulator gives every stochastic component (each class's arrival
process, service process, the scheduler's quantum and overhead clocks)
its own independent :class:`numpy.random.Generator`, spawned from a
single root seed via :class:`numpy.random.SeedSequence`.  Independent
streams keep variance-reduction comparisons honest: changing the
scheduling policy does not perturb the arrival sample path.
"""

from __future__ import annotations

import numpy as np

__all__ = ["spawn_generators", "StreamFactory"]


def spawn_generators(seed: int | np.random.SeedSequence | None,
                     count: int) -> list[np.random.Generator]:
    """Spawn ``count`` statistically independent generators from one seed."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


class StreamFactory:
    """Hands out named, independent random streams from one root seed.

    Asking twice for the same name returns the *same* generator object,
    so components can be wired lazily while still sharing streams when
    they intend to.

    Examples
    --------
    >>> streams = StreamFactory(seed=42)
    >>> arr = streams.get("arrivals.class0")
    >>> svc = streams.get("service.class0")
    >>> arr is streams.get("arrivals.class0")
    True
    """

    def __init__(self, seed: int | np.random.SeedSequence | None = None):
        self._root = (seed if isinstance(seed, np.random.SeedSequence)
                      else np.random.SeedSequence(seed))
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            # Deterministic per-name child: derive from the root entropy
            # plus a stable hash of the name so creation order does not
            # change the streams.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(int(b) for b in digest),
            )
            self._streams[name] = np.random.default_rng(child)
        return self._streams[name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"StreamFactory(entropy={self._root.entropy}, streams={sorted(self._streams)})"
