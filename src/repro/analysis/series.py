"""Lightweight tabular result containers.

Deliberately minimal — no pandas dependency — but enough for the
benchmark harness: ordered columns, CSV export, fixed-width text
rendering.
"""

from __future__ import annotations

import io
from collections.abc import Sequence
from dataclasses import dataclass, field

__all__ = ["Series", "Table"]


@dataclass
class Series:
    """One named curve ``y = f(x)``."""

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    def __iter__(self):
        return iter(zip(self.x, self.y))

    def argmin(self) -> int:
        """Index of the smallest finite y value."""
        best, best_i = None, -1
        for i, v in enumerate(self.y):
            if v == v and (best is None or v < best):
                best, best_i = v, i
        if best_i < 0:
            raise ValueError(f"series {self.name!r} has no finite values")
        return best_i


class Table:
    """Column-ordered table of floats with a leading key column."""

    def __init__(self, key_name: str, column_names: Sequence[str]):
        self.key_name = key_name
        self.column_names = list(column_names)
        self.keys: list[float] = []
        self.rows: list[list[float]] = []

    def add_row(self, key: float, values: Sequence[float]) -> None:
        values = [float(v) for v in values]
        if len(values) != len(self.column_names):
            raise ValueError(
                f"row has {len(values)} values for {len(self.column_names)} columns"
            )
        self.keys.append(float(key))
        self.rows.append(values)

    def column(self, name: str) -> Series:
        """Extract one column as a Series over the key."""
        j = self.column_names.index(name)
        s = Series(name)
        for k, row in zip(self.keys, self.rows):
            s.append(k, row[j])
        return s

    def to_csv(self) -> str:
        buf = io.StringIO()
        buf.write(",".join([self.key_name] + self.column_names) + "\n")
        for k, row in zip(self.keys, self.rows):
            buf.write(",".join(f"{v:.10g}" for v in [k] + row) + "\n")
        return buf.getvalue()

    def render(self, *, width: int = 12, precision: int = 4) -> str:
        """Fixed-width text rendering (what the benches print)."""
        head = "".join(f"{h:>{width}}" for h in [self.key_name] + self.column_names)
        lines = [head, "-" * len(head)]
        for k, row in zip(self.keys, self.rows):
            lines.append("".join(f"{v:>{width}.{precision}f}" for v in [k] + row))
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)
