"""Little's law consistency checks (Theorem 2.1: ``N = lambda T``)."""

from __future__ import annotations

__all__ = ["littles_law_gap"]


def littles_law_gap(mean_jobs: float, arrival_rate: float,
                    mean_response_time: float) -> float:
    """Relative gap ``|N - lambda T| / N``.

    Zero (to numerical precision) for the analytic model by
    construction; shrinks with the horizon for simulation estimates.
    """
    if mean_jobs <= 0:
        raise ValueError(f"mean_jobs must be positive, got {mean_jobs}")
    return abs(mean_jobs - arrival_rate * mean_response_time) / mean_jobs
