"""Result containers, comparisons and reporting.

* :class:`~repro.analysis.series.Series` / ``Table`` — lightweight
  ordered result holders with CSV and fixed-width rendering (the
  benchmark harness prints the same series the paper plots).
* :mod:`~repro.analysis.compare` — analytic-vs-simulation comparison
  with relative errors and CI coverage.
* :mod:`~repro.analysis.littles_law` — Little's-law consistency checks
  (Theorem 2.1).
* :mod:`~repro.analysis.shapes` — qualitative curve-shape assertions
  (U-shape, monotonicity, knee location) used to verify that the
  reproduced figures match the paper's reported trends.
"""

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.compare import ComparisonRow, compare_analytic_simulation
from repro.analysis.littles_law import littles_law_gap
from repro.analysis.report import build_results_report
from repro.analysis.series import Series, Table
from repro.analysis.shapes import (
    is_monotone_decreasing,
    is_monotone_increasing,
    is_u_shaped,
    knee_index,
)

__all__ = [
    "Series",
    "Table",
    "compare_analytic_simulation",
    "ComparisonRow",
    "littles_law_gap",
    "is_u_shaped",
    "is_monotone_increasing",
    "is_monotone_decreasing",
    "knee_index",
    "build_results_report",
    "ascii_plot",
]
