"""Terminal line plots for result series.

The environment has no plotting stack, but the paper's artifacts are
*curves*; this renders them legibly in a terminal so
``repro-gang figure 2 --plot`` (and the examples) can show shape, not
just numbers.  Multiple series share axes and get distinct glyphs.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.analysis.series import Series
from repro.errors import ValidationError

__all__ = ["ascii_plot"]

_GLYPHS = "ox+*#@%&"


def _fmt(v: float) -> str:
    return f"{v:.3g}"


def ascii_plot(series: Sequence[Series], *, width: int = 64,
               height: int = 18, logy: bool = False,
               title: str = "") -> str:
    """Render one or more series as a text line plot.

    Parameters
    ----------
    series:
        Curves sharing the axes; each needs at least one finite point.
    width, height:
        Plot area size in characters (axes add a margin).
    logy:
        Log-scale the y axis (useful for the near-saturation figures).
    title:
        Optional heading line.
    """
    series = list(series)
    if not series:
        raise ValidationError("ascii_plot needs at least one series")
    if width < 10 or height < 4:
        raise ValidationError("plot area too small")

    pts = []
    for s in series:
        pts.extend((x, y) for x, y in zip(s.x, s.y)
                   if math.isfinite(x) and math.isfinite(y)
                   and (not logy or y > 0))
    if not pts:
        raise ValidationError("no finite points to plot")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if logy:
        y_lo, y_hi = math.log10(y_lo), math.log10(y_hi)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, glyph: str) -> None:
        if logy:
            y = math.log10(y)
        col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        grid[height - 1 - row][col] = glyph

    for si, s in enumerate(series):
        glyph = _GLYPHS[si % len(_GLYPHS)]
        for x, y in zip(s.x, s.y):
            if math.isfinite(x) and math.isfinite(y) and (not logy or y > 0):
                place(x, y, glyph)

    y_top = 10 ** y_hi if logy else y_hi
    y_bot = 10 ** y_lo if logy else y_lo
    label_w = max(len(_fmt(y_top)), len(_fmt(y_bot)))
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = _fmt(y_top).rjust(label_w)
        elif r == height - 1:
            label = _fmt(y_bot).rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{' ' * label_w} +{'-' * width}+"
    lines.append(x_axis)
    left = _fmt(x_lo)
    right = _fmt(x_hi)
    pad = width - len(left) - len(right)
    lines.append(f"{' ' * label_w}  {left}{' ' * max(pad, 1)}{right}")
    legend = "   ".join(f"{_GLYPHS[i % len(_GLYPHS)]} {s.name}"
                        for i, s in enumerate(series))
    lines.append(f"{' ' * label_w}  {legend}")
    return "\n".join(lines)
