"""Markdown report generation from persisted benchmark results.

The benchmark harness leaves every regenerated series under
``benchmarks/results/`` as CSV + text.  :func:`build_results_report`
stitches them into one markdown document (the measured half of
``EXPERIMENTS.md``), so the record can be regenerated from a fresh
benchmark run with one call::

    python -c "from repro.analysis.report import build_results_report; \\
               print(build_results_report('benchmarks/results'))"
"""

from __future__ import annotations

import pathlib

__all__ = ["build_results_report", "load_result_csv"]

#: Section order and headings for the known artifacts.
_SECTIONS = [
    ("fig2", "Figure 2 — mean jobs vs quantum length (rho = 0.4)"),
    ("fig3", "Figure 3 — mean jobs vs quantum length (rho = 0.9)"),
    ("fig4", "Figure 4 — mean jobs vs service rate"),
    ("fig5", "Figure 5 — mean jobs vs cycle fraction"),
    ("fig1_statespace", "Figure 1 — state-space structure"),
    ("crosscheck_moderate", "Cross-check vs simulation (moderate load)"),
    ("crosscheck_heavy", "Cross-check vs simulation (heavy load)"),
    ("ablation_fixed_point", "Ablation — fixed point vs heavy traffic"),
    ("ablation_policy", "Ablation — switch-on-empty vs strict cycle"),
    ("ablation_policy_sim", "Ablation — policy (simulation)"),
    ("ablation_reduction", "Ablation — effective-quantum reduction"),
    ("ablation_rmatrix", "Ablation — R-matrix solvers"),
    ("baselines", "Baselines — gang vs time-/space-sharing"),
]


def load_result_csv(path: pathlib.Path) -> tuple[list[str], list[list[float]]]:
    """Read one result CSV: (header, rows of floats)."""
    lines = path.read_text().strip().splitlines()
    header = lines[0].split(",")
    rows = [[float(x) for x in ln.split(",")] for ln in lines[1:]]
    return header, rows


def _markdown_table(header: list[str], rows: list[list[float]]) -> str:
    out = ["| " + " | ".join(header) + " |",
           "|" + "---|" * len(header)]
    for row in rows:
        out.append("| " + " | ".join(f"{v:.4g}" for v in row) + " |")
    return "\n".join(out)


def build_results_report(results_dir: str | pathlib.Path) -> str:
    """Assemble the measured-results markdown from a results directory.

    Unknown files are appended after the known sections so nothing the
    harness wrote is silently dropped.
    """
    root = pathlib.Path(results_dir)
    if not root.is_dir():
        raise FileNotFoundError(
            f"{root} does not exist; run `pytest benchmarks/ "
            "--benchmark-only` first")
    parts = ["# Measured results", "",
             f"Generated from `{root}`.", ""]
    seen = set()
    for stem, title in _SECTIONS:
        csv = root / f"{stem}.csv"
        txt = root / f"{stem}.txt"
        if not csv.exists():
            continue
        seen.add(stem)
        parts.append(f"## {title}")
        parts.append("")
        if txt.exists():
            notes = txt.read_text().split("\n\n")[0].strip()
            if notes and not notes[0].isdigit():
                parts.append(notes)
                parts.append("")
        header, rows = load_result_csv(csv)
        parts.append(_markdown_table(header, rows))
        parts.append("")
    for csv in sorted(root.glob("*.csv")):
        if csv.stem in seen:
            continue
        parts.append(f"## {csv.stem}")
        parts.append("")
        header, rows = load_result_csv(csv)
        parts.append(_markdown_table(header, rows))
        parts.append("")
    return "\n".join(parts)
