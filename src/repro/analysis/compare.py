"""Analytic-model vs simulation comparison."""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.model import SolvedModel
from repro.sim.runner import ReplicationSummary

__all__ = ["ComparisonRow", "compare_analytic_simulation"]


@dataclass(frozen=True)
class ComparisonRow:
    """One class's analytic-vs-simulated mean job count.

    ``within_ci`` reports whether the analytic value falls inside the
    simulation's across-replication confidence interval — the primary
    acceptance criterion of the cross-validation bench.
    """

    class_name: str
    analytic: float
    simulated: float
    ci_half_width: float
    rel_error: float
    within_ci: bool


def compare_analytic_simulation(solved: SolvedModel,
                                sim_summary: ReplicationSummary,
                                ) -> list[ComparisonRow]:
    """Compare per-class ``N_p`` between model and simulation.

    Parameters
    ----------
    solved:
        Output of :meth:`repro.core.model.GangSchedulingModel.solve`.
    sim_summary:
        The ``"mean_jobs"`` :class:`~repro.sim.runner.ReplicationSummary`
        from :func:`repro.sim.runner.run_replications` on the same
        configuration.
    """
    rows = []
    for p, cr in enumerate(solved.classes):
        analytic = cr.mean_jobs
        simulated = sim_summary.mean[p]
        hw = sim_summary.half_width[p]
        rel = abs(analytic - simulated) / simulated if simulated > 0 else float("inf")
        rows.append(ComparisonRow(
            class_name=cr.name,
            analytic=analytic,
            simulated=simulated,
            ci_half_width=hw,
            rel_error=rel,
            within_ci=sim_summary.contains(p, analytic),
        ))
    return rows
