"""Qualitative curve-shape checks.

The reproduction targets the *shape* of the paper's figures (who
wins, where knees fall, what rises or falls), not absolute numbers.
These helpers turn "the curve bends and then increases monotonically"
into testable predicates, with a noise tolerance so simulation series
qualify too.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "is_monotone_increasing",
    "is_monotone_decreasing",
    "is_u_shaped",
    "knee_index",
]


def _clean(y: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(y), dtype=np.float64)
    if arr.size == 0 or not np.all(np.isfinite(arr)):
        raise ValueError("shape checks need a non-empty, finite series")
    return arr


def is_monotone_increasing(y: Sequence[float], *, rel_tol: float = 0.0) -> bool:
    """Whether ``y`` never decreases by more than ``rel_tol`` relatively."""
    arr = _clean(y)
    scale = np.maximum(np.abs(arr[:-1]), 1e-12)
    return bool(np.all(np.diff(arr) >= -rel_tol * scale))


def is_monotone_decreasing(y: Sequence[float], *, rel_tol: float = 0.0) -> bool:
    """Whether ``y`` never increases by more than ``rel_tol`` relatively."""
    arr = _clean(y)
    scale = np.maximum(np.abs(arr[:-1]), 1e-12)
    return bool(np.all(np.diff(arr) <= rel_tol * scale))


def knee_index(y: Sequence[float]) -> int:
    """Index of the global minimum — the "knee" of a U-shaped curve."""
    return int(np.argmin(_clean(y)))


def is_u_shaped(y: Sequence[float], *, rel_tol: float = 0.02,
                require_interior: bool = True) -> bool:
    """Whether ``y`` decreases to a knee and increases after it.

    Parameters
    ----------
    y:
        The curve values on an increasing grid.
    rel_tol:
        Allowed relative wiggle in each half (simulation noise).
    require_interior:
        Demand the knee be strictly inside the grid (a curve that only
        falls, or only rises, is not U-shaped).

    The paper's Figures 2/3 claim exactly this shape for ``N_p``
    versus the mean quantum length.
    """
    arr = _clean(y)
    k = knee_index(arr)
    if require_interior and (k == 0 or k == arr.size - 1):
        return False
    left_ok = is_monotone_decreasing(arr[:k + 1], rel_tol=rel_tol)
    right_ok = is_monotone_increasing(arr[k:], rel_tol=rel_tol)
    return left_ok and right_ok
