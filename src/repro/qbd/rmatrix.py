"""Solvers for the matrix-quadratic equations of a QBD.

The rate matrix ``R`` is the minimal non-negative solution of

    R^2 A2 + R A1 + A0 = 0                      (eq. 23 of the paper)

and the companion matrix ``G`` (first-passage probabilities one level
down) is the minimal non-negative solution of

    A0 G^2 + A1 G + A2 = 0.

Four algorithms are provided:

* ``"substitution"`` — natural successive substitution
  ``R <- -(A0 + R^2 A2) A1^{-1}``, the classical linearly-convergent
  iteration (Neuts 1981);
* ``"logreduction"`` — Latouche–Ramaswami logarithmic reduction on the
  uniformized (discrete-time) QBD, quadratically convergent; ``R`` is
  recovered from ``G`` via ``R = A0 (-(A1 + A0 G))^{-1}``;
* ``"cr"`` — Bini–Meini cyclic reduction on the uniformized QBD, the
  other quadratically convergent reduction (a genuinely different
  recurrence from logreduction, so the two rarely fail together);
* ``"spectral"`` — direct invariant-subspace solve: the eigenvalues of
  ``G`` are the roots of ``det(z^2 A0 + z A1 + A2)`` in the closed
  unit disk, found via a companion linearization.  Non-iterative, so
  it is immune to slow-convergence failures entirely (at the price of
  requiring ``G`` to be diagonalizable); it serves as the last rung of
  the resilience fallback chain.

All but ``"spectral"`` converge only for *positive recurrent* QBDs
(``sp(R) < 1``); call :func:`repro.qbd.stability.is_stable` first, or
rely on the iteration budget raising
:class:`~repro.errors.ConvergenceError`.  For multi-method solving
with automatic fallback, retries, and budgets, use
:func:`repro.resilience.fallback.resilient_solve_R`.

Warm starts
-----------
:func:`solve_R` accepts an optional initial iterate ``R0``.  For
``"substitution"`` it replaces the cold ``R = A0 (-A1)^{-1}`` start;
for every other method a few steps of Newton's method on the quadratic
residual (each step solves the generalized Sylvester equation
``H (A1 + R A2) + R H A2 = -F(R)`` via Kronecker linearization,
:func:`refine_R`) are attempted first, falling back silently to the
cold algorithm if the refinement does not converge.  Near a fixed
point of Section 4.3 the vacation blocks change by a shrinking
perturbation per iteration, so the previous ``R`` is an excellent
seed and one or two Newton steps replace a full reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import linalg as _sla

from repro.errors import ConvergenceError, ValidationError
from repro.kernels import select_backend
from repro.kernels.kron import solve_sylvester
from repro.obs import metrics
from repro.resilience.faults import maybe_corrupt, maybe_fault

__all__ = ["solve_R", "solve_G", "r_from_g", "refine_R", "METHODS",
           "RSolveDiagnostics"]

METHODS = ("logreduction", "cr", "substitution", "spectral")


@dataclass(frozen=True)
class RSolveDiagnostics:
    """Diagnostics of one *successful* ``R`` solve.

    Historically only :class:`~repro.errors.ConvergenceError` carried
    iteration counts and residuals — a solve that worked discarded
    them.  ``solve_R(..., return_info=True)`` now returns them on the
    success path too (and every solve feeds them to the
    :mod:`repro.obs.metrics` registry when collection is on).

    Attributes
    ----------
    method:
        The algorithm that produced ``R``.
    iterations:
        Iterations the winning path used: substitution steps, doubling
        steps for the reduction methods, Newton steps when a warm
        start was refined, ``0`` for the non-iterative spectral solve.
    residual:
        Quadratic residual ``max|R^2 A2 + R A1 + A0|`` of the returned
        ``R``.
    refined:
        ``True`` when the result came from the warm-start Newton
        refinement (:func:`refine_R`) rather than the cold algorithm.
    """

    method: str
    iterations: int
    residual: float
    refined: bool = False


def _quad_residual(R, A0, A1, A2) -> float:
    return float(np.max(np.abs(R @ R @ A2 + R @ A1 + A0)))


def _check_deadline(deadline: float | None, what: str, it: int,
                    residual: float) -> None:
    """Abort an iteration that overran its wall-clock deadline.

    The check runs once per iteration, so a single runaway attempt —
    large blocks, linear convergence toward an unstable fixed point —
    can overshoot the budget by at most one iteration, not unboundedly.
    """
    if deadline is not None and time.monotonic() >= deadline:
        raise ConvergenceError(
            f"{what} hit its wall-clock deadline mid-solve "
            f"(after {it} iteration(s))", iterations=it, residual=residual,
        )


def solve_R(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
            method: str = "logreduction", tol: float = 1e-12,
            max_iter: int = 100_000,
            R0: np.ndarray | None = None,
            backend: str | None = None,
            return_info: bool = False,
            deadline: float | None = None):
    """Minimal non-negative solution of ``R^2 A2 + R A1 + A0 = 0``.

    Parameters
    ----------
    A0, A1, A2:
        Repeating blocks of a continuous-time QBD (``A1`` carries the
        negative diagonal).
    method:
        One of :data:`METHODS` (default ``"logreduction"``).
    tol:
        Convergence threshold on the iteration's residual measure.
    max_iter:
        Iteration budget; exceeded budgets raise
        :class:`~repro.errors.ConvergenceError` (the usual cause is an
        unstable QBD, for which the minimal solution has
        ``sp(R) >= 1`` and substitution creeps toward it forever).
    R0:
        Optional warm-start iterate (e.g. the previous fixed-point
        iteration's ``R``).  ``"substitution"`` iterates from it
        directly; the other methods first try a short Newton
        refinement (:func:`refine_R`) and fall back to their cold
        algorithm when it fails.  A shape mismatch (the vacation order
        changed between iterations) silently discards ``R0``.
    backend:
        ``"auto"`` / ``"dense"`` / ``"sparse"`` kernel selection,
        forwarded to :func:`refine_R` (the only step with a sparse
        variant: the matrix-free Newton correction for large phase
        dimensions).  The cold algorithms are dense ``d x d`` BLAS
        regardless.
    return_info:
        When ``True``, return ``(R, RSolveDiagnostics)`` instead of
        ``R`` alone — iteration count and final residual survive the
        success path.
    deadline:
        Optional :func:`time.monotonic` timestamp; the iterative
        methods check it once per iteration and raise
        :class:`~repro.errors.ConvergenceError` when it passes, so a
        wall-clock budget binds *inside* an attempt, not just between
        attempts (:func:`repro.resilience.fallback.resilient_solve_R`
        threads its :class:`~repro.resilience.fallback.RetryPolicy`
        budget through here).
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    if method not in METHODS:
        raise ValidationError(
            f"unknown R-matrix method {method!r}; use one of {METHODS}")
    maybe_fault("rmatrix.solve", key=method)
    if R0 is not None:
        R0 = np.asarray(R0, dtype=np.float64)
        if R0.shape != A1.shape or not np.all(np.isfinite(R0)):
            R0 = None
    R = None
    iterations = 0
    refined = False
    if method == "substitution":
        R, iterations = _solve_r_substitution(A0, A1, A2, tol=tol,
                                              max_iter=max_iter, R0=R0,
                                              deadline=deadline)
    else:
        if R0 is not None:
            warm = refine_R(A0, A1, A2, R0, tol=tol, backend=backend,
                            return_info=True)
            if warm is not None:
                R, iterations = warm
                refined = True
        if R is None:
            if method == "logreduction":
                G, iterations = solve_G(A0, A1, A2, tol=tol,
                                        max_iter=max_iter, return_info=True,
                                        deadline=deadline)
            elif method == "cr":
                G, iterations = _solve_g_cr(A0, A1, A2, tol=tol,
                                            max_iter=max_iter,
                                            deadline=deadline)
            else:  # spectral: non-iterative
                G = _solve_g_spectral(A0, A1, A2, tol=tol)
                iterations = 0
            R = r_from_g(A0, A1, G)
    info = None
    if return_info or metrics.enabled():
        residual = _quad_residual(R, A0, A1, A2)
        info = RSolveDiagnostics(method=method, iterations=int(iterations),
                                 residual=residual, refined=refined)
        metrics.inc("rsolve.solves", method=method, refined=refined)
        metrics.observe("rsolve.iterations", iterations, method=method)
        metrics.observe("rsolve.residual", residual, method=method)
    R = maybe_corrupt("rmatrix.result", R, key=method)
    if return_info:
        return R, info
    return R


def refine_R(A0, A1, A2, R0, *, tol: float = 1e-12,
             max_steps: int = 8,
             backend: str | None = None,
             return_info: bool = False):
    """Newton refinement of a warm-start iterate for ``R``.

    Newton's method on ``F(R) = A0 + R A1 + R^2 A2``: the Fréchet
    derivative at ``R`` maps ``H`` to ``H (A1 + R A2) + R H A2``, so
    each step solves that generalized Sylvester equation for the
    correction ``H``.  Small phase dimensions use the dense Kronecker
    linearization (a ``d^2 x d^2`` solve); past the backend selector's
    threshold on the linearized size ``d^2``, the correction comes
    from the matrix-free GMRES solve of
    :func:`repro.kernels.kron.solve_sylvester` instead — the
    ``d^2 x d^2`` operand is never materialized.  Quadratically
    convergent from a good seed.

    Returns the refined ``R`` once the quadratic residual drops below
    ``tol * max(1, max|A1|)`` and ``sp(R) < 1``, or ``None`` when the
    refinement fails to converge (the caller falls back to a cold
    solve) — this is an opportunistic accelerator, never an error
    source.  It is intentionally *not* part of :data:`METHODS`: it
    cannot solve from scratch.  With ``return_info=True`` a successful
    refinement returns ``(R, newton_steps)`` instead (failures are
    still ``None``).
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    R = np.asarray(R0, dtype=np.float64).copy()
    d = A1.shape[0]
    if R.shape != A1.shape:
        return None
    matrix_free = select_backend(backend, d * d, site="rsolve") == "sparse"
    if matrix_free:
        maybe_fault("kernels.sparse", key="refine_R")
    scale = max(1.0, float(np.max(np.abs(A1))))
    target = max(tol, 1e-14) * scale
    I = np.eye(d)
    prev_resid = np.inf
    steps = 0
    for _ in range(max_steps):
        F = A0 + R @ A1 + R @ R @ A2
        resid = float(np.max(np.abs(F)))
        if not np.isfinite(resid):
            return None
        if resid <= target:
            break
        if resid >= prev_resid:  # diverging: the seed was too far off
            return None
        prev_resid = resid
        steps += 1
        if matrix_free:
            H = solve_sylvester(R, A1 + R @ A2, A2, F, tol=tol)
            if H is None:
                return None
            R = R + H
            continue
        # vec-row-major: vec(A H B) = (A kron B^T) vec(H).
        M = np.kron(I, (A1 + R @ A2).T) + np.kron(R, A2.T)
        try:
            h = np.linalg.solve(M, -F.ravel())
        except np.linalg.LinAlgError:
            return None
        R = R + h.reshape(d, d)
    else:
        F = A0 + R @ A1 + R @ R @ A2
        resid = float(np.max(np.abs(F)))
        if not (np.isfinite(resid) and resid <= target):
            return None
    if not np.all(np.isfinite(R)):
        return None
    # The minimal solution is the unique *nonnegative* solvent with
    # sp(R) < 1; Newton from a far-off seed can land on a different
    # solvent (one of its eigenvalues sits on the unit circle and it
    # has negative entries), so both checks are required.
    if float(R.min()) < -1e-8 * max(1.0, float(np.max(np.abs(R)))):
        return None
    sp = float(np.max(np.abs(np.linalg.eigvals(R))))
    if sp >= 1.0:
        return None
    if return_info:
        return R, steps
    return R


def _solve_r_substitution(A0, A1, A2, *, tol: float, max_iter: int,
                          R0: np.ndarray | None = None,
                          deadline: float | None = None,
                          ) -> tuple[np.ndarray, int]:
    neg_A1_inv = np.linalg.inv(-A1)
    if R0 is None:
        R = A0 @ neg_A1_inv  # first substitution step from R=0
    else:
        R = R0
    delta = float("inf")
    for it in range(1, max_iter + 1):
        _check_deadline(deadline, "successive substitution", it - 1, delta)
        R_next = (A0 + R @ R @ A2) @ neg_A1_inv
        delta = float(np.max(np.abs(R_next - R)))
        R = R_next
        if delta < tol:
            return R, it
    raise ConvergenceError(
        "successive substitution for R did not converge "
        "(the QBD may be unstable)", iterations=max_iter, residual=delta,
    )


def solve_G(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
            tol: float = 1e-12, max_iter: int = 64,
            return_info: bool = False,
            deadline: float | None = None):
    """Minimal non-negative solution of ``A0 G^2 + A1 G + A2 = 0``.

    Uses logarithmic reduction on the uniformized QBD.  For a positive
    recurrent process ``G`` is stochastic; convergence is quadratic, so
    ``max_iter`` counts *doubling* steps (64 covers any practical
    case — the residual after ``k`` steps is order ``xi^(2^k)``).
    With ``return_info=True`` returns ``(G, doubling_steps)``; a
    passed ``deadline`` (:func:`time.monotonic`) aborts mid-iteration
    with :class:`~repro.errors.ConvergenceError`.
    """
    D0, D1, D2 = _uniformized_blocks(A0, A1, A2)
    d = D1.shape[0]
    I = np.eye(d)
    inv = np.linalg.inv(I - D1)
    H = inv @ D0   # up-step kernel
    L = inv @ D2   # down-step kernel
    G = L.copy()
    T = H.copy()
    defect = correction = float("inf")
    for it in range(1, max_iter + 1):
        _check_deadline(deadline, "logarithmic reduction", it - 1,
                        max(defect, correction))
        U = H @ L + L @ H
        M = H @ H
        H = np.linalg.solve(I - U, M)
        M = L @ L
        L = np.linalg.solve(I - U, M)
        G += T @ L
        T = T @ H
        # For a recurrent QBD G is stochastic; track both the defect of
        # stochasticity and the shrinking correction term.
        defect = float(np.max(np.abs(1.0 - G.sum(axis=1))))
        correction = float(np.max(np.abs(T)))
        if correction < tol or defect < tol:
            break
    else:
        raise ConvergenceError(
            "logarithmic reduction did not converge (unstable QBD?)",
            iterations=max_iter, residual=max(defect, correction),
        )
    G = np.clip(G, 0.0, None)
    if return_info:
        return G, it
    return G


def _uniformized_blocks(A0, A1, A2) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniformize the repeating part: ``(D0, D1, D2)`` is a discrete
    QBD with the same ``G`` matrix (``D1`` carries the lazy self-loop)."""
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    rate = float(np.max(-np.diag(A1)))
    if rate <= 0:
        raise ValidationError("A1 has no negative diagonal; not a CTMC QBD")
    return A0 / rate, A1 / rate + np.eye(A1.shape[0]), A2 / rate


def _solve_g_cr(A0, A1, A2, *, tol: float, max_iter: int = 64,
                deadline: float | None = None) -> tuple[np.ndarray, int]:
    """Bini–Meini cyclic reduction for ``G`` on the uniformized QBD.

    With discrete blocks ``(up, local, down) = (D0, D1, D2)`` the
    recurrences square the path length each step; the "hat" sequence
    converges quadratically to ``U = D1 + D0 G`` (local transitions
    taboo of going down), from which
    ``G = (I - U)^{-1} D2``.
    """
    D0, D1, D2 = _uniformized_blocks(A0, A1, A2)
    d = D1.shape[0]
    I = np.eye(d)
    down, local, up = D2.copy(), D1.copy(), D0.copy()
    local_hat = D1.copy()
    correction = float("inf")
    for it in range(1, max_iter + 1):
        _check_deadline(deadline, "cyclic reduction", it - 1, correction)
        S = np.linalg.inv(I - local)
        downS = down @ S
        upS = up @ S
        local_hat = local_hat + upS @ down
        local = local + downS @ up + upS @ down
        down = downS @ down
        up = upS @ up
        # ``up`` shrinks to zero quadratically for a positive recurrent
        # QBD; it bounds the remaining correction to ``local_hat``.
        correction = float(np.max(np.abs(up)))
        if correction < tol:
            break
    else:
        raise ConvergenceError(
            "cyclic reduction did not converge (unstable QBD?)",
            iterations=max_iter, residual=correction,
        )
    G = np.linalg.solve(I - local_hat, D2)
    return np.clip(G, 0.0, None), it


def _solve_g_spectral(A0, A1, A2, *, tol: float) -> np.ndarray:
    """Invariant-subspace solve for ``G``.

    Eigenpairs ``G v = z v`` satisfy the quadratic eigenvalue problem
    ``(z^2 A0 + z A1 + A2) v = 0``; the minimal non-negative solvent
    collects the ``d`` roots inside the closed unit disk.  Solved via
    the companion linearization

        [ 0    I  ] [ v  ]       [ I  0  ] [ v  ]
        [ -A2  -A1] [ zv ]  =  z [ 0  A0 ] [ zv ] .

    Raises :class:`~repro.errors.ConvergenceError` when the selected
    eigenvector basis is numerically singular (defective ``G``) or the
    reconstructed solvent fails the quadratic-residual check.
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    d = A1.shape[0]
    I = np.eye(d)
    Z = np.zeros((d, d))
    lhs = np.block([[Z, I], [-A2, -A1]])
    rhs = np.block([[I, Z], [Z, A0]])
    vals, vecs = _sla.eig(lhs, rhs)
    moduli = np.abs(vals)
    moduli[~np.isfinite(moduli)] = np.inf  # infinite eigenvalues (A0 singular)
    order = np.argsort(moduli)
    chosen = order[:d]
    if moduli[chosen[-1]] > 1.0 + 1e-8:
        raise ConvergenceError(
            "spectral solve found fewer than d roots in the unit disk "
            "(unstable QBD?)", residual=float(moduli[chosen[-1]] - 1.0))
    V = vecs[:d, chosen]
    z = vals[chosen]
    try:
        G = np.real(V @ np.diag(z) @ np.linalg.inv(V))
    except np.linalg.LinAlgError as exc:
        raise ConvergenceError(
            f"spectral solve: eigenvector basis is singular ({exc}); "
            "G may be defective") from None
    residual = float(np.max(np.abs(A0 @ G @ G + A1 @ G + A2)))
    scale = max(1.0, float(np.max(np.abs(A1))))
    if not np.isfinite(residual) or residual > scale * max(tol * 1e4, 1e-8):
        raise ConvergenceError(
            "spectral solve residual too large (ill-conditioned "
            "eigenbasis?)", residual=residual)
    return np.clip(G, 0.0, None)


def r_from_g(A0: np.ndarray, A1: np.ndarray, G: np.ndarray) -> np.ndarray:
    """Recover ``R`` from ``G``: ``R = A0 (-(A1 + A0 G))^{-1}``.

    ``U = A1 + A0 G`` is the generator of the process restricted to a
    level before first passage down; its negated inverse collects
    expected sojourn times, and ``R`` is the expected number of visits
    to level ``n+1`` states per unit time in level ``n`` states.
    """
    A0 = np.asarray(A0, dtype=np.float64)
    U = np.asarray(A1, dtype=np.float64) + A0 @ np.asarray(G, dtype=np.float64)
    return A0 @ np.linalg.inv(-U)
