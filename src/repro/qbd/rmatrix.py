"""Solvers for the matrix-quadratic equations of a QBD.

The rate matrix ``R`` is the minimal non-negative solution of

    R^2 A2 + R A1 + A0 = 0                      (eq. 23 of the paper)

and the companion matrix ``G`` (first-passage probabilities one level
down) is the minimal non-negative solution of

    A0 G^2 + A1 G + A2 = 0.

Two algorithms are provided:

* ``"substitution"`` — natural successive substitution
  ``R <- -(A0 + R^2 A2) A1^{-1}``, the classical linearly-convergent
  iteration (Neuts 1981);
* ``"logreduction"`` — Latouche–Ramaswami logarithmic reduction on the
  uniformized (discrete-time) QBD, quadratically convergent; ``R`` is
  recovered from ``G`` via ``R = A0 (-(A1 + A0 G))^{-1}``.

Both converge only for *positive recurrent* QBDs (``sp(R) < 1``); call
:func:`repro.qbd.stability.is_stable` first, or rely on the iteration
budget raising :class:`~repro.errors.ConvergenceError`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.markov.uniformization import uniformize

__all__ = ["solve_R", "solve_G", "r_from_g", "METHODS"]

METHODS = ("logreduction", "substitution")


def solve_R(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
            method: str = "logreduction", tol: float = 1e-12,
            max_iter: int = 100_000) -> np.ndarray:
    """Minimal non-negative solution of ``R^2 A2 + R A1 + A0 = 0``.

    Parameters
    ----------
    A0, A1, A2:
        Repeating blocks of a continuous-time QBD (``A1`` carries the
        negative diagonal).
    method:
        ``"logreduction"`` (default) or ``"substitution"``.
    tol:
        Convergence threshold on the iteration's residual measure.
    max_iter:
        Iteration budget; exceeded budgets raise
        :class:`~repro.errors.ConvergenceError` (the usual cause is an
        unstable QBD, for which the minimal solution has
        ``sp(R) >= 1`` and substitution creeps toward it forever).
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    if method == "substitution":
        return _solve_r_substitution(A0, A1, A2, tol=tol, max_iter=max_iter)
    if method == "logreduction":
        G = solve_G(A0, A1, A2, tol=tol, max_iter=max_iter)
        return r_from_g(A0, A1, G)
    raise ValidationError(f"unknown R-matrix method {method!r}; use one of {METHODS}")


def _solve_r_substitution(A0, A1, A2, *, tol: float, max_iter: int) -> np.ndarray:
    neg_A1_inv = np.linalg.inv(-A1)
    R = A0 @ neg_A1_inv  # first substitution step from R=0
    for it in range(1, max_iter + 1):
        R_next = (A0 + R @ R @ A2) @ neg_A1_inv
        delta = float(np.max(np.abs(R_next - R)))
        R = R_next
        if delta < tol:
            return R
    raise ConvergenceError(
        "successive substitution for R did not converge "
        "(the QBD may be unstable)", iterations=max_iter, residual=delta,
    )


def solve_G(A0: np.ndarray, A1: np.ndarray, A2: np.ndarray, *,
            tol: float = 1e-12, max_iter: int = 64) -> np.ndarray:
    """Minimal non-negative solution of ``A0 G^2 + A1 G + A2 = 0``.

    Uses logarithmic reduction on the uniformized QBD.  For a positive
    recurrent process ``G`` is stochastic; convergence is quadratic, so
    ``max_iter`` counts *doubling* steps (64 covers any practical
    case — the residual after ``k`` steps is order ``xi^(2^k)``).
    """
    A0 = np.asarray(A0, dtype=np.float64)
    A1 = np.asarray(A1, dtype=np.float64)
    A2 = np.asarray(A2, dtype=np.float64)
    d = A1.shape[0]
    # Uniformize the repeating part: (D0, D1, D2) is a discrete QBD
    # with the same G matrix.
    rate = float(np.max(-np.diag(A1)))
    if rate <= 0:
        raise ValidationError("A1 has no negative diagonal; not a CTMC QBD")
    D0 = A0 / rate
    D1 = A1 / rate + np.eye(d)
    D2 = A2 / rate

    I = np.eye(d)
    inv = np.linalg.inv(I - D1)
    H = inv @ D0   # up-step kernel
    L = inv @ D2   # down-step kernel
    G = L.copy()
    T = H.copy()
    for it in range(1, max_iter + 1):
        U = H @ L + L @ H
        M = H @ H
        H = np.linalg.solve(I - U, M)
        M = L @ L
        L = np.linalg.solve(I - U, M)
        G += T @ L
        T = T @ H
        # For a recurrent QBD G is stochastic; track both the defect of
        # stochasticity and the shrinking correction term.
        defect = float(np.max(np.abs(1.0 - G.sum(axis=1))))
        correction = float(np.max(np.abs(T)))
        if correction < tol or defect < tol:
            break
    else:
        raise ConvergenceError(
            "logarithmic reduction did not converge (unstable QBD?)",
            iterations=max_iter, residual=max(defect, correction),
        )
    return np.clip(G, 0.0, None)


def r_from_g(A0: np.ndarray, A1: np.ndarray, G: np.ndarray) -> np.ndarray:
    """Recover ``R`` from ``G``: ``R = A0 (-(A1 + A0 G))^{-1}``.

    ``U = A1 + A0 G`` is the generator of the process restricted to a
    level before first passage down; its negated inverse collects
    expected sojourn times, and ``R`` is the expected number of visits
    to level ``n+1`` states per unit time in level ``n`` states.
    """
    A0 = np.asarray(A0, dtype=np.float64)
    U = np.asarray(A1, dtype=np.float64) + A0 @ np.asarray(G, dtype=np.float64)
    return A0 @ np.linalg.inv(-U)
