"""Quasi-birth-death (QBD) processes and matrix-geometric solutions.

A (continuous-time) QBD is a Markov chain whose states are organized in
*levels* ``0, 1, 2, ...`` with transitions only between adjacent
levels.  From some boundary level ``b`` onward the transition blocks
repeat: ``A0`` (up one level), ``A1`` (within a level), ``A2`` (down
one level).  Neuts' matrix-geometric result (Theorem 4.2 of the paper)
states that the stationary vector satisfies
``pi_{b+n+1} = pi_{b+n} R`` where ``R`` is the minimal non-negative
solution of ``R^2 A2 + R A1 + A0 = 0`` with spectral radius below 1.

This package provides:

* :class:`~repro.qbd.structure.QBDProcess` — the process description
  (level-dependent boundary blocks + repeating blocks) with structural
  validation;
* :mod:`~repro.qbd.rmatrix` — four ``R`` solvers (logarithmic
  reduction, cyclic reduction, successive substitution, and a
  spectral invariant-subspace solve — the rungs of the resilience
  fallback chain);
* :mod:`~repro.qbd.stability` — the mean-drift stability test
  (Theorem 4.4);
* :mod:`~repro.qbd.boundary` / :mod:`~repro.qbd.stationary` — boundary
  balance solve, normalization, and the resulting
  :class:`~repro.qbd.stationary.QBDStationaryDistribution` with
  closed-form level moments (eq. 37).
"""

from repro.qbd.rmatrix import solve_G, solve_R
from repro.qbd.spectral import (
    CaudalCharacteristic,
    caudal_characteristic,
    decay_rate,
)
from repro.qbd.stability import drift, is_stable
from repro.qbd.stationary import QBDStationaryDistribution, solve_qbd
from repro.qbd.structure import QBDProcess

__all__ = [
    "QBDProcess",
    "solve_R",
    "solve_G",
    "drift",
    "is_stable",
    "solve_qbd",
    "QBDStationaryDistribution",
    "caudal_characteristic",
    "CaudalCharacteristic",
    "decay_rate",
]
