"""Stationary distribution of a QBD and its closed-form level moments.

:func:`solve_qbd` runs the full pipeline — stability test, ``R``
matrix, boundary solve — and returns a
:class:`QBDStationaryDistribution` exposing per-level vectors
``pi_i`` (matrix-geometric beyond the boundary), the level marginal,
tails, and the closed-form moments behind eq. (37) of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.errors import UnstableSystemError, ValidationError
from repro.qbd.boundary import solve_boundary
from repro.qbd.rmatrix import solve_R
from repro.qbd.stability import DriftReport, drift
from repro.qbd.structure import QBDProcess
from repro.resilience.fallback import (
    DEFAULT_POLICY,
    ResiliencePolicy,
    SolveReport,
    resilient_solve_R,
)
from repro.resilience.faults import maybe_fault
from repro.utils.linalg import spectral_radius

__all__ = ["solve_qbd", "QBDStationaryDistribution"]


@dataclass(frozen=True)
class QBDStationaryDistribution:
    """Stationary distribution ``(pi_0, ..., pi_b, pi_b R, pi_b R^2, ...)``.

    Attributes
    ----------
    boundary_pi:
        Tuple of stationary vectors for boundary levels ``0..b``.
    R:
        Rate matrix of the repeating portion.
    drift_report:
        The Theorem 4.4 stability diagnostics.
    """

    boundary_pi: tuple[np.ndarray, ...]
    R: np.ndarray
    drift_report: DriftReport
    #: Attempt history of the resilient ``R`` solve (``None`` when the
    #: solve ran without the resilience layer).
    solve_report: SolveReport | None = None

    @property
    def boundary_levels(self) -> int:
        return len(self.boundary_pi) - 1

    @cached_property
    def _tail_inv(self) -> np.ndarray:
        d = self.R.shape[0]
        return np.linalg.inv(np.eye(d) - self.R)

    def level(self, i: int) -> np.ndarray:
        """Stationary vector of level ``i`` (matrix-geometric for ``i > b``)."""
        if i < 0:
            raise ValidationError(f"level must be non-negative, got {i}")
        b = self.boundary_levels
        if i <= b:
            return self.boundary_pi[i]
        return self.boundary_pi[b] @ np.linalg.matrix_power(self.R, i - b)

    def level_mass(self, i: int) -> float:
        """Total probability of level ``i``: ``pi_i e``."""
        return float(self.level(i).sum())

    def level_marginal(self, max_level: int) -> np.ndarray:
        """Vector of ``P(level = i)`` for ``i = 0..max_level``."""
        return np.array([self.level_mass(i) for i in range(max_level + 1)])

    def tail_probability(self, k: int) -> float:
        """``P(level > k)`` in closed form.

        For ``k >= b``: ``pi_b R^{k-b+1} (I - R)^{-1} e``.
        """
        b = self.boundary_levels
        if k < b:
            return max(0.0, 1.0 - sum(self.level_mass(i) for i in range(k + 1)))
        pib = self.boundary_pi[b]
        Rp = np.linalg.matrix_power(self.R, k - b + 1)
        return float(pib @ Rp @ self._tail_inv @ np.ones(self.R.shape[0]))

    @cached_property
    def mean_level(self) -> float:
        """``E[level] = sum_i i pi_i e`` in closed form (eq. 37).

        ``sum_{i<b} i pi_i e + b pi_b (I-R)^{-1} e
        + pi_b (I-R)^{-2} R e``.
        """
        b = self.boundary_levels
        pib = self.boundary_pi[b]
        e = np.ones(self.R.shape[0])
        total = sum(i * self.level_mass(i) for i in range(b))
        total += b * float(pib @ self._tail_inv @ e)
        total += float(pib @ self._tail_inv @ self._tail_inv @ self.R @ e)
        return total

    @cached_property
    def second_moment_level(self) -> float:
        """``E[level^2]`` in closed form.

        Uses ``sum_n (b+n)^2 R^n = b^2 T0 + 2 b T1 + T2`` with
        ``T0=(I-R)^{-1}``, ``T1=R(I-R)^{-2}``,
        ``T2=R(I+R)(I-R)^{-3}``.
        """
        b = self.boundary_levels
        pib = self.boundary_pi[b]
        d = self.R.shape[0]
        e = np.ones(d)
        T0 = self._tail_inv
        T1 = self.R @ T0 @ T0
        T2 = self.R @ (np.eye(d) + self.R) @ T0 @ T0 @ T0
        total = sum(i * i * self.level_mass(i) for i in range(b))
        total += float(pib @ (b * b * T0 + 2 * b * T1 + T2) @ e)
        return total

    @property
    def variance_level(self) -> float:
        """``Var[level]``."""
        return max(0.0, self.second_moment_level - self.mean_level ** 2)

    def repeating_phase_marginal(self) -> np.ndarray:
        """Aggregate phase distribution over levels ``>= b``: ``pi_b (I-R)^{-1}``.

        Not normalized — its sum is ``P(level >= b)``.
        """
        return self.boundary_pi[self.boundary_levels] @ self._tail_inv

    def total_mass_check(self) -> float:
        """Total probability mass (should be 1.0); exposed for tests."""
        b = self.boundary_levels
        mass = sum(float(pi.sum()) for pi in self.boundary_pi[:b])
        mass += float(self.repeating_phase_marginal().sum())
        return mass

    @property
    def spectral_radius_R(self) -> float:
        return spectral_radius(self.R)


def solve_qbd(process: QBDProcess, *, method: str = "logreduction",
              tol: float = 1e-12, require_stable: bool = True,
              resilience: ResiliencePolicy | None = DEFAULT_POLICY,
              R0: np.ndarray | None = None,
              backend: str | None = None,
              ) -> QBDStationaryDistribution:
    """Full matrix-geometric solution of a QBD.

    Parameters
    ----------
    process:
        Validated QBD description.
    method:
        Primary ``R``-matrix algorithm (see
        :func:`repro.qbd.rmatrix.solve_R`).
    tol:
        Convergence tolerance for the ``R`` iteration.
    require_stable:
        When ``True`` (default), raise
        :class:`~repro.errors.UnstableSystemError` if the drift test
        fails instead of attempting a divergent iteration.
    resilience:
        Fallback/retry policy for the ``R`` solve (see
        :func:`repro.resilience.fallback.resilient_solve_R`): when the
        primary method fails, the remaining algorithms are tried in
        turn and the attempt history lands on the result's
        ``solve_report``.  Pass ``None`` to run the single configured
        method with no retries (legacy behaviour).
    R0:
        Optional warm-start iterate for the ``R`` solve (see
        :func:`repro.qbd.rmatrix.solve_R`); used by the fixed-point
        pipeline to seed each iteration with the previous one's ``R``.
    backend:
        Kernel selection (``"auto"`` / ``"dense"`` / ``"sparse"``),
        threaded to the ``R`` refinement and the boundary solve; see
        :mod:`repro.kernels`.

    Raises
    ------
    UnstableSystemError
        If the repeating portion has non-negative mean drift.
    ConvergenceError
        If the ``R`` solve fails — with resilience enabled, only after
        every method in the chain has failed.
    SolverBudgetExceededError
        If the resilience policy's iteration or wall-clock budget ran
        out before any method succeeded.
    """
    maybe_fault("qbd.solve")
    report = drift(process.A0, process.A1, process.A2)
    if require_stable and not report.stable:
        raise UnstableSystemError(
            f"QBD is not positive recurrent: mean up-rate {report.up:.6g} >= "
            f"mean down-rate {report.down:.6g} (rho={report.traffic_intensity:.4g})",
            drift=report.drift,
        )
    if resilience is None:
        R = solve_R(process.A0, process.A1, process.A2, method=method, tol=tol,
                    R0=R0, backend=backend)
        solve_report = None
    else:
        R, solve_report = resilient_solve_R(
            process.A0, process.A1, process.A2, method=method, tol=tol,
            policy=resilience, R0=R0, backend=backend)
    pi = solve_boundary(process, R, backend=backend)
    return QBDStationaryDistribution(boundary_pi=tuple(pi), R=R,
                                     drift_report=report,
                                     solve_report=solve_report)
