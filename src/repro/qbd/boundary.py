"""Boundary balance equations of a QBD.

With the repeating portion expressed through ``R`` (Theorem 4.2), the
only remaining unknowns are the boundary vectors
``pi_0, ..., pi_b``.  They satisfy the balance equations (25)–(27) of
the paper restricted to the boundary columns:

* column ``j < b``:   ``sum_{i ~ j} pi_i B[i][j] = 0``
* column ``j = b``:   ``pi_{b-1} B[b-1][b] + pi_b (B[b][b] + R A2) = 0``

together with the normalization (eq. 24)::

    sum_{i<b} pi_i e + pi_b (I - R)^{-1} e = 1 .

The balance system has rank deficiency one (global balance is
redundant), so one scalar equation is replaced by the normalization.

Two solve paths exist.  The dense reference below materializes the
full ``n x n`` system; it is the fast case for small boundaries and
the fallback of last resort.  Above the backend selector's size
threshold the block-tridiagonal elimination of
:func:`repro.kernels.boundary.solve_boundary_blocktridiag` takes over
(``O(b d^3)`` instead of ``O(n^3)``, nothing larger than one block
ever materialized); any numerical degeneracy there falls back to the
dense path transparently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError, ValidationError
from repro.kernels import (
    select_backend,
    solve_boundary_blocktridiag,
    to_dense,
)
from repro.obs import metrics
from repro.qbd.structure import QBDProcess

__all__ = ["solve_boundary"]


def solve_boundary(process: QBDProcess, R: np.ndarray, *,
                   backend: str | None = None) -> list[np.ndarray]:
    """Solve for the boundary stationary vectors ``pi_0 .. pi_b``.

    Parameters
    ----------
    process:
        The QBD description (boundary blocks may be dense or CSR).
    R:
        The rate matrix of the repeating portion, with ``sp(R) < 1``.
    backend:
        ``"auto"`` (default), ``"dense"``, or ``"sparse"``.  ``auto``
        routes boundaries past the size threshold to the
        block-tridiagonal kernel; ``dense`` forces the reference path;
        ``sparse`` uses the block kernel whenever the system is big
        enough for it to pay.  The block kernel's failures always fall
        back to the dense reference.

    Returns
    -------
    list of ndarray
        Boundary level vectors, not yet padded with the geometric tail.
    """
    b = process.boundary_levels
    dims = process.boundary_dims()
    offsets = np.concatenate([[0], np.cumsum(dims)]).astype(int)
    n = int(offsets[-1])
    R = np.asarray(R, dtype=np.float64)
    d = process.phase_dim
    if R.shape != (d, d):
        raise ValidationError(f"R must be {d}x{d}, got {R.shape}")

    if b >= 1 and select_backend(backend, n, site="boundary") == "sparse":
        try:
            pi = solve_boundary_blocktridiag(process, R, backend=backend)
            metrics.inc("boundary.solves", path="blocktridiag")
            return pi
        except ConvergenceError:
            # Degenerate elimination: the dense path handles it.
            metrics.inc("boundary.dense_fallbacks")

    metrics.inc("boundary.solves", path="dense")

    # Column-block assembly of x M = 0 where x = [pi_0 ... pi_b].
    M = np.zeros((n, n))
    for j in range(b + 1):
        cols = slice(offsets[j], offsets[j + 1])
        for i in (j - 1, j, j + 1):
            if i < 0 or i > b:
                continue
            blk = process.boundary[i][j]
            if blk is None:
                continue
            M[offsets[i]:offsets[i + 1], cols] += to_dense(blk)
    # Fold the repeating tail into the level-b column:
    # pi_{b+1} A2 = pi_b R A2.
    M[offsets[b]:offsets[b + 1], offsets[b]:offsets[b + 1]] += \
        R @ to_dense(process.A2)

    # Normalization coefficients: 1 for levels < b, (I-R)^{-1} e for level b.
    norm = np.ones(n)
    tail = np.linalg.solve(np.eye(d) - R, np.ones(d))
    if np.any(tail < 0):
        raise ValidationError(
            "(I - R)^{-1} e has negative entries; sp(R) >= 1 (unstable QBD)"
        )
    norm[offsets[b]:offsets[b + 1]] = tail

    # Replace one balance column with the normalization.  Any single
    # balance equation is redundant for an irreducible chain; pick the
    # one whose column has the largest norm to keep conditioning sane.
    col_norms = np.linalg.norm(M, axis=0)
    if not np.any(col_norms > 0.0):
        raise ValidationError("boundary balance system is identically zero")
    drop = int(np.argmax(col_norms))
    A = M.copy()
    A[:, drop] = norm
    # Unreachable phases show up as all-zero balance columns (no flux
    # in or out): they carry no probability, but left in place they
    # make the system singular — and they poison the column
    # equilibration below with 0/0 NaNs before the lstsq fallback can
    # mask the damage.  Pin each such state to pi_k = 0 explicitly.
    dead = np.flatnonzero(col_norms == 0.0)
    for k in dead:
        if k != drop:
            A[k, k] = 1.0
    rhs = np.zeros(n)
    rhs[drop] = 1.0
    # Column equilibration: the balance columns mix rates spanning many
    # orders of magnitude with the O(1) normalization column; scaling
    # each column to unit norm is a diagonal row scaling of ``A^T x =
    # rhs`` (solution unchanged, pivoting much saner).
    scales = np.linalg.norm(A, axis=0)
    scales[scales == 0.0] = 1.0
    try:
        x = np.linalg.solve((A / scales).T, rhs / scales)
        residual = float(np.max(np.abs(x @ M))) if n else 0.0
    except np.linalg.LinAlgError:
        residual = np.inf
        x = None
    if x is None or residual > 1e-6 * max(1.0, float(np.max(np.abs(M)))) \
            or np.any(x < -1e-8):
        # Fall back to least squares on the full system + normalization.
        full = np.hstack([M, norm[:, None]])
        for k in dead:
            full[k, k] = 1.0  # keep the dead states pinned to zero
        rhs_full = np.zeros(n + 1)
        rhs_full[-1] = 1.0
        x, *_ = np.linalg.lstsq(full.T, rhs_full, rcond=None)
    x = np.clip(x, 0.0, None)
    # Re-normalize exactly against the tail-aware mass.
    mass = float(x @ norm)
    if mass <= 0:
        raise ValidationError("boundary solve produced zero probability mass")
    x = x / mass
    return [x[offsets[i]:offsets[i + 1]].copy() for i in range(b + 1)]
