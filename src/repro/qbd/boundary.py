"""Boundary balance equations of a QBD.

With the repeating portion expressed through ``R`` (Theorem 4.2), the
only remaining unknowns are the boundary vectors
``pi_0, ..., pi_b``.  They satisfy the balance equations (25)–(27) of
the paper restricted to the boundary columns:

* column ``j < b``:   ``sum_{i ~ j} pi_i B[i][j] = 0``
* column ``j = b``:   ``pi_{b-1} B[b-1][b] + pi_b (B[b][b] + R A2) = 0``

together with the normalization (eq. 24)::

    sum_{i<b} pi_i e + pi_b (I - R)^{-1} e = 1 .

The balance system has rank deficiency one (global balance is
redundant), so one scalar equation is replaced by the normalization.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.qbd.structure import QBDProcess

__all__ = ["solve_boundary"]


def solve_boundary(process: QBDProcess, R: np.ndarray) -> list[np.ndarray]:
    """Solve for the boundary stationary vectors ``pi_0 .. pi_b``.

    Parameters
    ----------
    process:
        The QBD description.
    R:
        The rate matrix of the repeating portion, with ``sp(R) < 1``.

    Returns
    -------
    list of ndarray
        Boundary level vectors, not yet padded with the geometric tail.
    """
    b = process.boundary_levels
    dims = process.boundary_dims()
    offsets = np.concatenate([[0], np.cumsum(dims)]).astype(int)
    n = int(offsets[-1])
    R = np.asarray(R, dtype=np.float64)
    d = process.phase_dim
    if R.shape != (d, d):
        raise ValidationError(f"R must be {d}x{d}, got {R.shape}")

    # Column-block assembly of x M = 0 where x = [pi_0 ... pi_b].
    M = np.zeros((n, n))
    for j in range(b + 1):
        cols = slice(offsets[j], offsets[j + 1])
        for i in (j - 1, j, j + 1):
            if i < 0 or i > b:
                continue
            blk = process.boundary[i][j]
            if blk is None:
                continue
            M[offsets[i]:offsets[i + 1], cols] += blk
    # Fold the repeating tail into the level-b column:
    # pi_{b+1} A2 = pi_b R A2.
    M[offsets[b]:offsets[b + 1], offsets[b]:offsets[b + 1]] += R @ process.A2

    # Normalization coefficients: 1 for levels < b, (I-R)^{-1} e for level b.
    norm = np.ones(n)
    tail = np.linalg.solve(np.eye(d) - R, np.ones(d))
    if np.any(tail < 0):
        raise ValidationError(
            "(I - R)^{-1} e has negative entries; sp(R) >= 1 (unstable QBD)"
        )
    norm[offsets[b]:offsets[b + 1]] = tail

    # Replace one balance column with the normalization.  Any single
    # balance equation is redundant for an irreducible chain; pick the
    # one whose column has the largest norm to keep conditioning sane.
    col_norms = np.linalg.norm(M, axis=0)
    drop = int(np.argmax(col_norms))
    A = M.copy()
    A[:, drop] = norm
    rhs = np.zeros(n)
    rhs[drop] = 1.0
    try:
        x = np.linalg.solve(A.T, rhs)
        residual = float(np.max(np.abs(x @ M))) if n else 0.0
    except np.linalg.LinAlgError:
        residual = np.inf
        x = None
    if x is None or residual > 1e-6 * max(1.0, float(np.max(np.abs(M)))) \
            or np.any(x < -1e-8):
        # Fall back to least squares on the full system + normalization.
        full = np.hstack([M, norm[:, None]])
        rhs_full = np.zeros(n + 1)
        rhs_full[-1] = 1.0
        x, *_ = np.linalg.lstsq(full.T, rhs_full, rcond=None)
    x = np.clip(x, 0.0, None)
    # Re-normalize exactly against the tail-aware mass.
    mass = float(x @ norm)
    if mass <= 0:
        raise ValidationError("boundary solve produced zero probability mass")
    x = x / mass
    return [x[offsets[i]:offsets[i + 1]].copy() for i in range(b + 1)]
